//! Versioned on-disk checkpoint store.
//!
//! A [`CkptStore`] is a keyed collection of [`Snapshot`] trees — one
//! entry per completed sweep cell (key like `"fig4/cell3"`), plus
//! whatever run-level state the caller adds. It serializes to a single
//! deterministic JSON file with a format version header, so `bsim fig
//! --resume <ckpt>` can skip finished cells and a stale file from an
//! incompatible binary fails loudly with
//! [`CkptError::VersionMismatch`] instead of silently misparsing.
//!
//! ## Format (v1)
//!
//! ```json
//! { "version": 1, "cells": { "<key>": <snapshot tree>, ... } }
//! ```
//!
//! Keys keep insertion order, so re-writing the same store is
//! byte-stable — the property the resume determinism tests rely on.

use crate::snapshot::{field, CkptError, Snapshot};
use serde::Value;
use std::path::Path;

/// Checkpoint format version this binary reads and writes.
///
/// Bump on any layout change; `load` refuses other versions. There is
/// deliberately no migration machinery — checkpoints are short-lived
/// run artifacts, not archives.
pub const CKPT_VERSION: u64 = 1;

/// Keyed, versioned collection of snapshot trees.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CkptStore {
    entries: Vec<(String, Value)>,
}

impl CkptStore {
    pub fn new() -> CkptStore {
        CkptStore::default()
    }

    /// Number of checkpointed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Save `state` under `key`, replacing any previous entry for it.
    pub fn put<T: Snapshot>(&mut self, key: &str, state: &T) {
        let tree = state.save();
        match self.entries.iter_mut().find(|(k, _)| k == key) {
            Some((_, slot)) => *slot = tree,
            None => self.entries.push((key.to_string(), tree)),
        }
    }

    /// Restore the entry under `key`, or `None` if absent. A present
    /// but malformed entry is an error, not a silent miss.
    pub fn get<T: Snapshot>(&self, key: &str) -> Result<Option<T>, CkptError> {
        match self.entries.iter().find(|(k, _)| k == key) {
            Some((_, tree)) => T::restore(tree).map(Some),
            None => Ok(None),
        }
    }

    pub fn contains(&self, key: &str) -> bool {
        self.entries.iter().any(|(k, _)| k == key)
    }

    /// Removes the entry under `key`, returning its tree. Later entries
    /// keep their relative order, so a rewritten store stays byte-stable
    /// minus the removed key — the scrub path relies on this.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let at = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(at).1)
    }

    /// Raw `(key, tree)` views in insertion order — the integrity scrub
    /// walks these to re-verify entry checksums without interpreting
    /// the trees.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("version".to_string(), Value::U64(CKPT_VERSION)),
            ("cells".to_string(), Value::Map(self.entries.clone())),
        ])
    }

    /// Render the store to its on-disk JSON text.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("shim renderer is total")
    }

    /// Parse a store from JSON text, verifying the version header.
    pub fn from_json(text: &str) -> Result<CkptStore, CkptError> {
        let tree = serde_json::from_str(text).map_err(|e| CkptError::Corrupt {
            detail: e.to_string(),
        })?;
        let version = field(&tree, "version")?
            .as_u64()
            .ok_or(CkptError::WrongType {
                field: "version".to_string(),
                expected: "u64",
            })?;
        if version != CKPT_VERSION {
            return Err(CkptError::VersionMismatch {
                found: version,
                supported: CKPT_VERSION,
            });
        }
        match field(&tree, "cells")? {
            Value::Map(entries) => Ok(CkptStore {
                entries: entries.clone(),
            }),
            _ => Err(CkptError::WrongType {
                field: "cells".to_string(),
                expected: "map",
            }),
        }
    }

    /// Write the store to `path`, returning the byte count written
    /// (feeds the `host.resilience.ckpt_bytes` counter).
    pub fn save(&self, path: &Path) -> Result<u64, CkptError> {
        let text = self.to_json();
        std::fs::write(path, &text).map_err(|e| CkptError::Corrupt {
            detail: format!("write {}: {e}", path.display()),
        })?;
        Ok(text.len() as u64)
    }

    /// [`CkptStore::save`] through a temp-file-plus-rename, so a reader
    /// (or a crash) can never observe a half-written store: the rename is
    /// atomic on POSIX filesystems, and a process killed mid-write leaves
    /// the previous complete file in place plus an orphaned `.tmp`.
    pub fn save_atomic(&self, path: &Path) -> Result<u64, CkptError> {
        let text = self.to_json();
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, &text).map_err(|e| CkptError::Corrupt {
            detail: format!("write {}: {e}", tmp.display()),
        })?;
        std::fs::rename(&tmp, path).map_err(|e| CkptError::Corrupt {
            detail: format!("rename {} -> {}: {e}", tmp.display(), path.display()),
        })?;
        Ok(text.len() as u64)
    }

    /// Load a store from `path`.
    pub fn load(path: &Path) -> Result<CkptStore, CkptError> {
        let text = std::fs::read_to_string(path).map_err(|e| CkptError::Corrupt {
            detail: format!("read {}: {e}", path.display()),
        })?;
        CkptStore::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_and_json_roundtrip() {
        let mut store = CkptStore::new();
        store.put("fig4/cell0", &(1.5f64, 42u64));
        store.put("fig4/cell1", &(2.5f64, 43u64));
        store.put("fig4/cell0", &(9.0f64, 99u64)); // overwrite, order kept
        assert_eq!(store.len(), 2);
        assert!(store.contains("fig4/cell1"));
        assert_eq!(
            store.keys().collect::<Vec<_>>(),
            ["fig4/cell0", "fig4/cell1"]
        );
        assert_eq!(
            store.get::<(f64, u64)>("fig4/cell0").unwrap(),
            Some((9.0, 99))
        );
        assert_eq!(store.get::<(f64, u64)>("fig9/none").unwrap(), None);

        let text = store.to_json();
        let reloaded = CkptStore::from_json(&text).unwrap();
        assert_eq!(reloaded, store);
        // Byte-stable re-render.
        assert_eq!(reloaded.to_json(), text);
    }

    #[test]
    fn version_and_shape_are_enforced() {
        assert!(matches!(
            CkptStore::from_json(r#"{"version":99,"cells":{}}"#),
            Err(CkptError::VersionMismatch { found: 99, .. })
        ));
        assert!(matches!(
            CkptStore::from_json(r#"{"cells":{}}"#),
            Err(CkptError::MissingField { .. })
        ));
        assert!(matches!(
            CkptStore::from_json(r#"{"version":1,"cells":[]}"#),
            Err(CkptError::WrongType { .. })
        ));
        assert!(matches!(
            CkptStore::from_json("not json"),
            Err(CkptError::Corrupt { .. })
        ));
        // Malformed entry under a present key is loud.
        let store = CkptStore::from_json(r#"{"version":1,"cells":{"a":"nope"}}"#).unwrap();
        assert!(store.get::<u64>("a").is_err());
    }

    #[test]
    fn file_save_load_accounts_bytes() {
        let dir = std::env::temp_dir().join("bsim-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("store-{}.ckpt.json", std::process::id()));
        let mut store = CkptStore::new();
        store.put("k", &7u64);
        let bytes = store.save(&path).unwrap();
        assert!(bytes > 0);
        assert_eq!(CkptStore::load(&path).unwrap(), store);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn atomic_save_replaces_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join("bsim-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("atomic-{}.ckpt.json", std::process::id()));
        let mut store = CkptStore::new();
        store.put("k", &1u64);
        store.save_atomic(&path).unwrap();
        store.put("k", &2u64);
        store.save_atomic(&path).unwrap();
        assert_eq!(
            CkptStore::load(&path).unwrap().get::<u64>("k").unwrap(),
            Some(2)
        );
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        assert!(!tmp.exists(), "temp file must be renamed away");
        std::fs::remove_file(&path).ok();
    }
}

//! # bsim-resilience — runtime robustness for long simulations
//!
//! The paper's FireSim experiments are multi-hour FPGA-hosted runs where
//! a single stalled token channel or crashed target model loses the
//! whole experiment. `bsim-check` (static analysis) catches
//! misconfigurations *before* cycle 0; this crate defends a run *at
//! runtime*:
//!
//! * [`fault`] — a deterministic, seeded [`FaultPlan`] describing token
//!   drops, duplicates, payload bit-flips, model stalls and host-thread
//!   delays, applied by the engine at `TokenChannel`/`TickModel`
//!   boundaries. Used by the built-in fault campaign (`bsim faults`) to
//!   prove the harness survives — or fails loudly — under every fault
//!   class.
//! * [`watchdog`] — [`WatchdogConfig`] host-time budgets and the typed
//!   [`SimError`] the guarded harness returns instead of hanging, with a
//!   per-thread/per-channel [`StallReport`] progress snapshot.
//! * [`snapshot`] — the [`Snapshot`] trait (serde-`Value`-based
//!   save/restore) models and reports implement so runs can be
//!   checkpointed.
//! * [`ckpt`] — the versioned on-disk [`CkptStore`] behind
//!   `bsim fig --resume <ckpt>`.
//! * [`retry`] — [`RetryPolicy`] with exponential backoff and the
//!   [`CellOutcome`] rows resilient sweeps record instead of aborting.
//! * [`guard`] — bsim-guard hardening primitives: the [`crc32`] the
//!   dist wire protocol and svc result store stamp over payloads,
//!   seeded-jittered [`Backoff`], and the per-rank circuit [`Breaker`]
//!   the dist launcher arms against flapping ranks.
//!
//! Config sanity is linted through `bsim-check` diagnostics under the
//! `RS0xx` codes (see `crates/check/README.md`), and runtime events flow
//! through `bsim-telemetry` counters (`fault.injected.*`,
//! `host.resilience.*`).
//!
//! This crate sits *below* the engine (the engine applies the plans and
//! budgets), so it holds data types and policies only — the executable
//! fault campaign lives in `bsim-core::campaign`.

pub mod ckpt;
pub mod fault;
pub mod guard;
pub mod peers;
pub mod retry;
pub mod snapshot;
pub mod watchdog;

pub use ckpt::{CkptStore, CKPT_VERSION};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use guard::{crc32, Backoff, Breaker, BreakerState};
pub use peers::PeerWatchdog;
pub use retry::{CellOutcome, RetryPolicy};
pub use snapshot::{CkptError, Snapshot};
pub use watchdog::{ChannelProgress, SimError, StallReport, ThreadProgress, WatchdogConfig};

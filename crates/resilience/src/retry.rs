//! Per-cell retry with exponential backoff.
//!
//! Long sweeps run dozens of independent cells; one poisoned cell (a
//! model panic, a watchdog trip) should not abort the figure. A
//! [`RetryPolicy`] re-runs a failing cell a bounded number of times
//! with exponential host-time backoff, and the sweep records a
//! [`CellOutcome`] row — either the value or a typed
//! [`CellOutcome::Failed`] diagnostic — instead of unwinding.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Ceiling on any single retry backoff. Geometric growth with an
/// aggressive factor can otherwise reach minutes within a handful of
/// attempts; no transient host condition is worth waiting longer than
/// this for (`GD003` lints configurations that dodge the cap).
pub const BACKOFF_CAP_MS: u64 = 10_000;

/// Bounded retry with exponential backoff.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` means no retry.
    pub max_attempts: u32,
    /// Host-time sleep before the second attempt.
    pub base_backoff_ms: u64,
    /// Backoff multiplier per further attempt.
    pub factor: u32,
}

impl Default for RetryPolicy {
    /// Three attempts, 50 ms then 200 ms between them — enough to ride
    /// out transient host contention without stretching a sweep.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 50,
            factor: 4,
        }
    }
}

impl RetryPolicy {
    /// A single attempt, no backoff: resilient bookkeeping without
    /// retry semantics (used by tests and `--no-retry` style callers).
    pub fn once() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 0,
            factor: 1,
        }
    }

    /// Backoff slept *after* failed attempt `attempt` (1-based).
    pub fn backoff_after(&self, attempt: u32) -> Duration {
        if attempt >= self.max_attempts {
            return Duration::ZERO; // no further attempt follows
        }
        let mult = self.factor.saturating_pow(attempt.saturating_sub(1)) as u64;
        Duration::from_millis(
            self.base_backoff_ms
                .saturating_mul(mult)
                .min(BACKOFF_CAP_MS),
        )
    }

    /// Run `cell`, retrying on panic. Panics are contained with
    /// `catch_unwind` and rendered into the failure diagnostic; the
    /// value and the number of attempts used are returned on success.
    ///
    /// The closure must be re-runnable from scratch — cells in this
    /// workspace rebuild their whole `Soc`/`MpiWorld` per call, so a
    /// retry observes no state from the failed attempt.
    pub fn run<T>(&self, mut cell: impl FnMut() -> T) -> CellOutcome<T> {
        let attempts = self.max_attempts.max(1);
        let mut last_diag = String::new();
        for attempt in 1..=attempts {
            match catch_unwind(AssertUnwindSafe(&mut cell)) {
                Ok(value) => {
                    return CellOutcome::Ok {
                        value,
                        attempts: attempt,
                    }
                }
                Err(payload) => {
                    last_diag = panic_message(payload.as_ref());
                    let backoff = self.backoff_after(attempt);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
            }
        }
        CellOutcome::Failed {
            diag: last_diag,
            attempts,
        }
    }
}

/// Render a panic payload the way the runtime would print it.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("non-string panic payload")
    }
}

/// What a resilient sweep records for one cell.
#[derive(Clone, Debug, PartialEq)]
pub enum CellOutcome<T> {
    /// The cell produced a value (possibly after retries).
    Ok {
        /// The cell's result.
        value: T,
        /// Attempts consumed, `1` = first try succeeded.
        attempts: u32,
    },
    /// Every attempt failed; the sweep degrades instead of aborting.
    Failed {
        /// Diagnostic from the last attempt (panic message or stall
        /// report rendering).
        diag: String,
        /// Attempts consumed.
        attempts: u32,
    },
}

impl<T> CellOutcome<T> {
    pub fn is_ok(&self) -> bool {
        matches!(self, CellOutcome::Ok { .. })
    }

    /// Attempts beyond the first, i.e. what `host.resilience.retries`
    /// counts.
    pub fn retries(&self) -> u32 {
        match self {
            CellOutcome::Ok { attempts, .. } | CellOutcome::Failed { attempts, .. } => {
                attempts.saturating_sub(1)
            }
        }
    }

    /// Borrow the value if the cell succeeded.
    pub fn value(&self) -> Option<&T> {
        match self {
            CellOutcome::Ok { value, .. } => Some(value),
            CellOutcome::Failed { .. } => None,
        }
    }

    /// Consume into the value if the cell succeeded.
    pub fn into_value(self) -> Option<T> {
        match self {
            CellOutcome::Ok { value, .. } => Some(value),
            CellOutcome::Failed { .. } => None,
        }
    }

    /// Borrow the diagnostic if the cell failed.
    pub fn diag(&self) -> Option<&str> {
        match self {
            CellOutcome::Failed { diag, .. } => Some(diag),
            CellOutcome::Ok { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn first_try_success_uses_one_attempt() {
        let out = RetryPolicy::default().run(|| 42u64);
        assert_eq!(
            out,
            CellOutcome::Ok {
                value: 42,
                attempts: 1
            }
        );
        assert_eq!(out.retries(), 0);
        assert_eq!(out.value(), Some(&42));
    }

    #[test]
    fn transient_panic_is_retried_to_success() {
        let calls = AtomicU32::new(0);
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 0,
            factor: 1,
        };
        let out = policy.run(|| {
            if calls.fetch_add(1, Ordering::Relaxed) < 2 {
                panic!("transient host hiccup");
            }
            7u64
        });
        assert_eq!(
            out,
            CellOutcome::Ok {
                value: 7,
                attempts: 3
            }
        );
        assert_eq!(out.retries(), 2);
    }

    #[test]
    fn persistent_panic_degrades_to_failed_with_diag() {
        let policy = RetryPolicy {
            max_attempts: 2,
            base_backoff_ms: 0,
            factor: 1,
        };
        let out: CellOutcome<u64> = policy.run(|| panic!("cell poisoned at cycle {}", 99));
        match &out {
            CellOutcome::Failed { diag, attempts } => {
                assert_eq!(*attempts, 2);
                assert!(diag.contains("cell poisoned at cycle 99"));
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert_eq!(out.retries(), 1);
        assert!(out.value().is_none());
        assert!(out.diag().unwrap().contains("poisoned"));
    }

    #[test]
    fn backoff_grows_geometrically_and_stops_at_the_last_attempt() {
        let policy = RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 10,
            factor: 3,
        };
        assert_eq!(policy.backoff_after(1), Duration::from_millis(10));
        assert_eq!(policy.backoff_after(2), Duration::from_millis(30));
        assert_eq!(policy.backoff_after(3), Duration::from_millis(90));
        assert_eq!(policy.backoff_after(4), Duration::ZERO);
        assert_eq!(RetryPolicy::once().backoff_after(1), Duration::ZERO);
        // Runaway growth clamps at the cap instead of sleeping minutes.
        let runaway = RetryPolicy {
            max_attempts: 10,
            base_backoff_ms: 1000,
            factor: 100,
        };
        assert_eq!(
            runaway.backoff_after(5),
            Duration::from_millis(BACKOFF_CAP_MS)
        );
    }
}

//! Deterministic, seeded fault-injection plans.
//!
//! A [`FaultPlan`] is pure data: a list of [`FaultEvent`]s keyed by
//! target (model or wire index) and target cycle. The engine consults
//! the plan at `TokenChannel`/`TickModel` boundaries; the MPI layer
//! applies [`FaultKind::LinkDegrade`]/[`FaultKind::LinkZeroLatency`] to
//! its `NetConfig`. Because every event is fixed by `(seed, target,
//! cycle)` before the run starts, an injected campaign is exactly as
//! reproducible as a clean run — rerunning with the same seed injects
//! the same faults at the same target cycles.

use bsim_check::{Diagnostic, Report};
use serde::{Serialize, Value};

/// The fault classes the campaign injects.
///
/// Survival semantics (asserted by `bsim faults`):
///
/// | kind | expectation |
/// |---|---|
/// | `TokenDrop` | fails **loudly**: the channel desynchronizes permanently (a lost token shifts every later token's cycle stamp), so the injector severs the link and the watchdog must convert the ensuing stall into [`crate::SimError::Stalled`] |
/// | `TokenDuplicate` | fails **loudly**: the cycle-stamped protocol rejects the re-send (`WrongCycle`) and the harness tears down with a typed diagnostic |
/// | `PayloadBitFlip` | **survives**: protocol intact, data deliberately corrupted — the run completes and the corruption is visible in the result |
/// | `ModelStall` | **survives bit-identically**: host-time decoupling means a slow model changes nothing in target time |
/// | `HostThreadDelay` | **survives bit-identically**: host scheduling jitter is invisible to the token protocol |
/// | `LinkDegrade` | **survives**: virtual time stretches, results stay sound |
/// | `LinkZeroLatency` | **survives with diagnostic**: `NC002` warns that zero link latency breaks token-decoupling assumptions |
/// | `WireBitFlip` | **survives**: the dist frame CRC32 detects the corruption, the connection is torn down as a typed loss, and the rank respawns from the checkpoint — the merged result stays byte-identical |
/// | `SlowPeer` | **survives**: guard socket timeouts convert a silent peer into a typed timeout error within the deadline budget instead of pinning a worker forever |
/// | `StoreCorrupt` | **survives**: the result-store entry checksum mismatches, the entry is quarantined (never served), and the value is recomputed |
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Sever a wire: the producer stops delivering tokens from the
    /// event cycle on (a dropped token desynchronizes the channel
    /// permanently, so loss is modeled as the link going dead).
    TokenDrop,
    /// Re-send an already-delivered cycle's token on a wire.
    TokenDuplicate,
    /// XOR one bit into the token a model produces at the event cycle.
    PayloadBitFlip {
        /// Bit index (0..64) to flip in the token payload.
        bit: u32,
    },
    /// The model thread stops making progress for this many host
    /// microseconds when it reaches the event cycle.
    ModelStall {
        /// Host-time stall length in microseconds.
        micros: u64,
    },
    /// The model's host thread is delayed this many microseconds before
    /// it starts driving (scheduling jitter).
    HostThreadDelay {
        /// Host-time delay in microseconds.
        micros: u64,
    },
    /// Divide the link bandwidth and multiply the link latency by this
    /// factor (applied to `NetConfig` by the MPI layer).
    LinkDegrade {
        /// Degradation factor (≥ 1).
        factor: u32,
    },
    /// Zero the link latency while bandwidth stays finite (`NC002`).
    LinkZeroLatency,
    /// XOR one bit into the raw byte stream of a dist socket link —
    /// below the frame layer, so only the frame CRC can catch it.
    WireBitFlip {
        /// Bit index within the corrupted byte window.
        bit: u32,
    },
    /// A peer that accepts the connection and then goes silent for this
    /// many host milliseconds (slow-loris on the wire).
    SlowPeer {
        /// Host-time silence length in milliseconds.
        millis: u64,
    },
    /// Flip bytes inside a serialized result-store entry at rest.
    StoreCorrupt,
}

impl FaultKind {
    /// Stable lowercase label, used in telemetry counter names
    /// (`fault.injected.<label>`) and campaign rows.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::TokenDrop => "token_drop",
            FaultKind::TokenDuplicate => "token_duplicate",
            FaultKind::PayloadBitFlip { .. } => "payload_bit_flip",
            FaultKind::ModelStall { .. } => "model_stall",
            FaultKind::HostThreadDelay { .. } => "host_thread_delay",
            FaultKind::LinkDegrade { .. } => "link_degrade",
            FaultKind::LinkZeroLatency => "link_zero_latency",
            FaultKind::WireBitFlip { .. } => "wire_bit_flip",
            FaultKind::SlowPeer { .. } => "slow_peer",
            FaultKind::StoreCorrupt => "store_corrupt",
        }
    }
}

/// What a fault event targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTarget {
    /// A wire index in the harness graph (token faults).
    Wire(usize),
    /// A model index in the harness graph (stall/delay faults).
    Model(usize),
    /// The MPI link model (link faults).
    Link,
}

/// One planned fault.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct FaultEvent {
    /// What is hit.
    pub target: FaultTarget,
    /// Target cycle at which the fault fires (producer-side tick cycle
    /// for token faults; ignored for [`FaultTarget::Link`]).
    pub cycle: u64,
    /// The fault class.
    pub kind: FaultKind,
}

/// A deterministic, seeded set of [`FaultEvent`]s.
///
/// Plans are built either explicitly ([`FaultPlan::inject`]) or
/// pseudo-randomly from a seed ([`FaultPlan::scatter`]); both are pure
/// functions of their inputs, never of host time.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct FaultPlan {
    /// Seed recorded for reproduction (0 for hand-built plans).
    pub seed: u64,
    /// The planned events, in insertion order.
    pub events: Vec<FaultEvent>,
}

/// `splitmix64` step — the same tiny deterministic generator the
/// workloads use for input synthesis; no dependence on host entropy.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan with a recorded seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Adds one event.
    pub fn inject(mut self, target: FaultTarget, cycle: u64, kind: FaultKind) -> FaultPlan {
        self.events.push(FaultEvent {
            target,
            cycle,
            kind,
        });
        self
    }

    /// Builds a seeded plan of `count` events of `kind`, scattered over
    /// `targets` wires/models and the first `horizon` cycles. Entirely
    /// deterministic in `(seed, kind, targets, horizon, count)`.
    pub fn scatter(
        seed: u64,
        kind: FaultKind,
        targets: usize,
        horizon: u64,
        count: usize,
    ) -> FaultPlan {
        let mut state = seed ^ 0xB5D4_C129_77F4_A7C1;
        let mut plan = FaultPlan::new(seed);
        for _ in 0..count {
            let t = (splitmix64(&mut state) as usize) % targets.max(1);
            let c = splitmix64(&mut state) % horizon.max(1);
            let target = match kind {
                FaultKind::ModelStall { .. }
                | FaultKind::HostThreadDelay { .. }
                | FaultKind::SlowPeer { .. } => FaultTarget::Model(t),
                FaultKind::LinkDegrade { .. }
                | FaultKind::LinkZeroLatency
                | FaultKind::StoreCorrupt => FaultTarget::Link,
                _ => FaultTarget::Wire(t),
            };
            plan.events.push(FaultEvent {
                target,
                cycle: c,
                kind,
            });
        }
        plan
    }

    /// Whether the plan has no events (the engine's fast path).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events targeting wire `wi`.
    pub fn wire_events(&self, wi: usize) -> impl Iterator<Item = &FaultEvent> {
        self.events
            .iter()
            .filter(move |e| e.target == FaultTarget::Wire(wi))
    }

    /// Events targeting model `mi`.
    pub fn model_events(&self, mi: usize) -> impl Iterator<Item = &FaultEvent> {
        self.events
            .iter()
            .filter(move |e| e.target == FaultTarget::Model(mi))
    }

    /// Events targeting the link model.
    pub fn link_events(&self) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(|e| e.target == FaultTarget::Link)
    }

    /// Static sanity lint (`RS00x` codes) against the graph the plan
    /// will be applied to.
    ///
    /// * `RS001` (error): event targets a wire/model index outside the
    ///   graph — the fault would silently never fire, which voids the
    ///   campaign's coverage claim.
    /// * `RS002` (warning): event cycle is at or beyond the run length —
    ///   same silent no-op, but the run itself stays sound.
    /// * `RS003` (warning): two events of the same kind on the same
    ///   target and cycle — the duplicate is indistinguishable from the
    ///   first and usually a plan-construction bug.
    /// * `RS004` (error): `PayloadBitFlip` bit index ≥ 64 — the XOR
    ///   mask would be a no-op on 64-bit tokens.
    pub fn lint(&self, models: usize, wires: usize, cycles: u64, span: &str) -> Report {
        let mut report = Report::new();
        let mut seen: Vec<(FaultTarget, u64, &'static str)> = Vec::new();
        for (i, e) in self.events.iter().enumerate() {
            let where_ = format!("{span}.events[{i}]");
            match e.target {
                FaultTarget::Wire(w) if w >= wires => report.push(
                    Diagnostic::error(
                        "RS001",
                        &where_,
                        format!("fault targets wire {w} but the graph has {wires} wire(s)"),
                    )
                    .with_help("use a wire index from the harness wiring list"),
                ),
                FaultTarget::Model(m) if m >= models => report.push(
                    Diagnostic::error(
                        "RS001",
                        &where_,
                        format!("fault targets model {m} but the graph has {models} model(s)"),
                    )
                    .with_help("use a model index from the harness model list"),
                ),
                _ => {}
            }
            if e.cycle >= cycles && e.target != FaultTarget::Link {
                report.push(
                    Diagnostic::warning(
                        "RS002",
                        &where_,
                        format!(
                            "fault cycle {} is at or beyond the {cycles}-cycle run: it never fires",
                            e.cycle
                        ),
                    )
                    .with_help("move the event inside the run, or shorten the plan horizon"),
                );
            }
            if let FaultKind::PayloadBitFlip { bit } = e.kind {
                if bit >= 64 {
                    report.push(
                        Diagnostic::error(
                            "RS004",
                            &where_,
                            format!("bit-flip index {bit} is out of range for 64-bit tokens"),
                        )
                        .with_help("use a bit index in 0..64"),
                    );
                }
            }
            let key = (e.target, e.cycle, e.kind.label());
            if seen.contains(&key) {
                report.push(Diagnostic::warning(
                    "RS003",
                    &where_,
                    format!(
                        "duplicate {} fault on {:?} at cycle {}",
                        e.kind.label(),
                        e.target,
                        e.cycle
                    ),
                ));
            } else {
                seen.push(key);
            }
        }
        report
    }

    /// Per-kind event counts, for `fault.injected.*` telemetry.
    pub fn count_by_kind(&self) -> Vec<(&'static str, u64)> {
        let mut counts: Vec<(&'static str, u64)> = Vec::new();
        for e in &self.events {
            match counts.iter_mut().find(|(l, _)| *l == e.kind.label()) {
                Some((_, n)) => *n += 1,
                None => counts.push((e.kind.label(), 1)),
            }
        }
        counts
    }
}

impl Serialize for FaultTarget {
    fn to_value(&self) -> Value {
        match self {
            FaultTarget::Wire(w) => Value::Map(vec![("wire".into(), Value::U64(*w as u64))]),
            FaultTarget::Model(m) => Value::Map(vec![("model".into(), Value::U64(*m as u64))]),
            FaultTarget::Link => Value::Str("link".into()),
        }
    }
}

impl Serialize for FaultKind {
    fn to_value(&self) -> Value {
        let mut entries = vec![("kind".to_string(), Value::Str(self.label().to_string()))];
        match self {
            FaultKind::PayloadBitFlip { bit } | FaultKind::WireBitFlip { bit } => {
                entries.push(("bit".into(), Value::U64(*bit as u64)));
            }
            FaultKind::ModelStall { micros } | FaultKind::HostThreadDelay { micros } => {
                entries.push(("micros".into(), Value::U64(*micros)));
            }
            FaultKind::LinkDegrade { factor } => {
                entries.push(("factor".into(), Value::U64(*factor as u64)));
            }
            FaultKind::SlowPeer { millis } => {
                entries.push(("millis".into(), Value::U64(*millis)));
            }
            FaultKind::TokenDrop
            | FaultKind::TokenDuplicate
            | FaultKind::LinkZeroLatency
            | FaultKind::StoreCorrupt => {}
        }
        Value::Map(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_is_deterministic_in_the_seed() {
        let a = FaultPlan::scatter(42, FaultKind::TokenDrop, 4, 1000, 3);
        let b = FaultPlan::scatter(42, FaultKind::TokenDrop, 4, 1000, 3);
        let c = FaultPlan::scatter(43, FaultKind::TokenDrop, 4, 1000, 3);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a.events, c.events, "different seed, different plan");
        assert_eq!(a.events.len(), 3);
        for e in &a.events {
            assert!(matches!(e.target, FaultTarget::Wire(w) if w < 4));
            assert!(e.cycle < 1000);
        }
    }

    #[test]
    fn lint_flags_out_of_range_targets_and_duplicates() {
        let plan = FaultPlan::new(0)
            .inject(FaultTarget::Wire(9), 10, FaultKind::TokenDrop)
            .inject(
                FaultTarget::Model(5),
                10,
                FaultKind::ModelStall { micros: 1 },
            )
            .inject(FaultTarget::Wire(0), 2000, FaultKind::TokenDuplicate)
            .inject(
                FaultTarget::Wire(1),
                5,
                FaultKind::PayloadBitFlip { bit: 64 },
            )
            .inject(FaultTarget::Wire(2), 7, FaultKind::TokenDrop)
            .inject(FaultTarget::Wire(2), 7, FaultKind::TokenDrop);
        let report = plan.lint(2, 3, 1000, "plan");
        assert_eq!(report.with_code("RS001").count(), 2, "{}", report.render());
        assert!(report.has_code("RS002"), "beyond-run cycle warns");
        assert!(report.has_code("RS003"), "duplicate event warns");
        assert!(report.has_code("RS004"), "bit 64 is invalid");
        assert!(report.has_errors());
    }

    #[test]
    fn clean_plan_lints_clean() {
        let plan = FaultPlan::new(7)
            .inject(
                FaultTarget::Wire(0),
                50,
                FaultKind::PayloadBitFlip { bit: 3 },
            )
            .inject(
                FaultTarget::Model(1),
                80,
                FaultKind::ModelStall { micros: 10 },
            )
            .inject(FaultTarget::Link, 0, FaultKind::LinkDegrade { factor: 4 });
        assert!(plan.lint(2, 1, 100, "plan").is_clean());
        assert_eq!(
            plan.count_by_kind(),
            vec![
                ("payload_bit_flip", 1),
                ("model_stall", 1),
                ("link_degrade", 1)
            ]
        );
    }

    #[test]
    fn target_filters_partition_the_plan() {
        let plan = FaultPlan::new(1)
            .inject(FaultTarget::Wire(0), 1, FaultKind::TokenDrop)
            .inject(FaultTarget::Wire(1), 2, FaultKind::TokenDuplicate)
            .inject(
                FaultTarget::Model(0),
                3,
                FaultKind::HostThreadDelay { micros: 5 },
            )
            .inject(FaultTarget::Link, 0, FaultKind::LinkZeroLatency);
        assert_eq!(plan.wire_events(0).count(), 1);
        assert_eq!(plan.wire_events(1).count(), 1);
        assert_eq!(plan.model_events(0).count(), 1);
        assert_eq!(plan.link_events().count(), 1);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new(0).is_empty());
    }
}

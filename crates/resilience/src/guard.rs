//! bsim-guard primitives: data-integrity checksums, seeded jittered
//! backoff, and a call-count circuit breaker.
//!
//! Everything here is deterministic in its inputs — the backoff jitter
//! comes from `splitmix64` over `(seed, attempt)`, never from host
//! entropy, and the breaker advances on recorded calls, never on host
//! clocks — so a guarded run replays exactly under the same seed, the
//! same way a [`crate::FaultPlan`] campaign does.
//!
//! * [`crc32`] — the IEEE CRC32 the dist frame header and the svc
//!   result store both stamp over their payloads.
//! * [`Backoff`] — capped exponential backoff whose per-attempt delay
//!   carries deterministic jitter in `[50%, 100%]` of nominal, so
//!   respawning ranks never retry-storm in lockstep.
//! * [`Breaker`] — a closed → open → half-open circuit breaker driven
//!   by consecutive failure counts; the dist launcher keeps one per
//!   rank so a flapping rank degrades to backoff-gated
//!   respawn-from-checkpoint instead of hot-looping.

use crate::fault::splitmix64;

/// The reflected IEEE CRC32 polynomial (zlib/Ethernet/PNG).
const CRC32_POLY: u32 = 0xEDB8_8320;

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ CRC32_POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC32 of `bytes` (the zlib `crc32` everyone can cross-check).
///
/// Used as the frame-payload checksum on the dist wire and the
/// entry checksum in the svc result store: cheap enough to run on every
/// frame, and strong enough that a single flipped bit anywhere in the
/// payload is always detected.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Capped exponential backoff with seeded deterministic jitter.
///
/// `delay_ms(attempt)` grows geometrically from `base_ms` by `factor`,
/// saturates at `cap_ms`, and is then jittered into
/// `[nominal/2, nominal]` by a `splitmix64` draw keyed on
/// `(seed, attempt)` — so two ranks with different seeds desynchronize
/// while every rerun of the same seed sleeps identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Backoff {
    /// First-attempt nominal delay in milliseconds.
    pub base_ms: u64,
    /// Geometric growth factor per attempt.
    pub factor: u64,
    /// Hard ceiling on the nominal delay (GD003 wants one to exist).
    pub cap_ms: u64,
    /// Jitter seed; vary per peer/rank to avoid lockstep retries.
    pub seed: u64,
}

impl Backoff {
    /// The campaign default: 50 ms doubling up to a 2 s ceiling.
    pub fn new(seed: u64) -> Backoff {
        Backoff {
            base_ms: 50,
            factor: 2,
            cap_ms: 2_000,
            seed,
        }
    }

    /// The jittered delay before retry number `attempt` (0-based).
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let mut nominal = self.base_ms.max(1);
        for _ in 0..attempt {
            nominal = nominal.saturating_mul(self.factor.max(1));
            if nominal >= self.cap_ms {
                nominal = self.cap_ms.max(1);
                break;
            }
        }
        nominal = nominal.min(self.cap_ms.max(1));
        // Jitter into [nominal/2, nominal]: keyed draw, no host entropy.
        let mut state = self.seed ^ 0x9E37_79B9_7F4A_7C15 ^ (attempt as u64);
        let jitter = splitmix64(&mut state) % (nominal / 2 + 1);
        nominal - jitter
    }
}

/// Circuit-breaker state: `Closed` passes calls, `Open` refuses them,
/// `HalfOpen` allows exactly one probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: calls flow, failures are counted.
    Closed,
    /// Tripped: calls are refused until a probe is granted.
    Open,
    /// One probe is in flight; its outcome decides the next state.
    HalfOpen,
}

/// A closed → open → half-open circuit breaker driven by call counts.
///
/// Deliberately clock-free: the owner decides *when* to probe (after a
/// [`Backoff`] sleep); the breaker only tracks *whether* a probe is due
/// and how the peer has been behaving. That keeps it deterministic and
/// testable without host time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Breaker {
    threshold: u32,
    consecutive: u32,
    state: BreakerState,
    opens: u64,
}

impl Breaker {
    /// A closed breaker tripping after `threshold` consecutive failures
    /// (clamped to at least 1).
    pub fn new(threshold: u32) -> Breaker {
        Breaker {
            threshold: threshold.max(1),
            consecutive: 0,
            state: BreakerState::Closed,
            opens: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// How many times the breaker has tripped open so far — feeds the
    /// backoff attempt number so repeated trips sleep longer.
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// Consecutive failures since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive
    }

    /// Records a failed call. A closed breaker trips open at the
    /// threshold; a half-open probe failure re-opens immediately.
    pub fn record_failure(&mut self) -> BreakerState {
        self.consecutive = self.consecutive.saturating_add(1);
        match self.state {
            BreakerState::Closed if self.consecutive >= self.threshold => {
                self.state = BreakerState::Open;
                self.opens += 1;
            }
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.opens += 1;
            }
            _ => {}
        }
        self.state
    }

    /// Records a successful call: the breaker closes and the failure
    /// streak resets.
    pub fn record_success(&mut self) {
        self.consecutive = 0;
        self.state = BreakerState::Closed;
    }

    /// Asks to send one probe. `Closed` always grants; `Open` grants
    /// once and moves to `HalfOpen`; `HalfOpen` refuses (a probe is
    /// already out).
    pub fn try_probe(&mut self) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                self.state = BreakerState::HalfOpen;
                true
            }
            BreakerState::HalfOpen => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard zlib check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_any_single_bit_flip() {
        let clean = b"platform=milkv kernel=Cca cycles=123456";
        let reference = crc32(clean);
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut flipped = clean.to_vec();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let b = Backoff::new(42);
        for attempt in 0..12 {
            let d = b.delay_ms(attempt);
            assert_eq!(d, b.delay_ms(attempt), "same (seed, attempt), same delay");
            assert!(d <= b.cap_ms, "attempt {attempt}: {d} over cap");
            let nominal = (b.base_ms << attempt.min(16)).min(b.cap_ms);
            assert!(
                d >= nominal / 2,
                "attempt {attempt}: {d} under half nominal"
            );
        }
        // Different seeds desynchronize (at least one attempt differs).
        let other = Backoff::new(43);
        assert!(
            (0..12).any(|a| b.delay_ms(a) != other.delay_ms(a)),
            "two seeds produced identical schedules"
        );
        // Growth: later attempts never nominally shrink below earlier floors.
        assert!(b.delay_ms(8) >= b.cap_ms / 2);
    }

    #[test]
    fn breaker_walks_closed_open_halfopen() {
        let mut br = Breaker::new(3);
        assert_eq!(br.state(), BreakerState::Closed);
        assert!(br.try_probe(), "closed breaker passes calls");
        br.record_failure();
        br.record_failure();
        assert_eq!(br.state(), BreakerState::Closed, "under threshold");
        assert_eq!(
            br.record_failure(),
            BreakerState::Open,
            "third strike trips"
        );
        assert_eq!(br.opens(), 1);
        assert!(br.try_probe(), "open grants one probe");
        assert_eq!(br.state(), BreakerState::HalfOpen);
        assert!(!br.try_probe(), "no second probe while one is out");
        assert_eq!(
            br.record_failure(),
            BreakerState::Open,
            "failed probe re-opens"
        );
        assert_eq!(br.opens(), 2);
        assert!(br.try_probe());
        br.record_success();
        assert_eq!(br.state(), BreakerState::Closed, "good probe closes");
        assert_eq!(br.consecutive_failures(), 0);
    }

    #[test]
    fn zero_threshold_clamps_to_one() {
        let mut br = Breaker::new(0);
        assert_eq!(
            br.record_failure(),
            BreakerState::Open,
            "first failure trips"
        );
    }
}

//! The [`Snapshot`] trait: serde-`Value`-based save/restore.
//!
//! The workspace's serde shim serializes (lowers a value into a
//! [`serde::Value`] tree) but has no deserializer, so checkpointing
//! needs an explicit restore path. `Snapshot` pairs `save` (usually just
//! `Serialize::to_value`) with a hand-written `restore` that rebuilds
//! the type from the tree, reporting shape mismatches as typed
//! [`CkptError`]s instead of panicking — a checkpoint file is external
//! input and may come from an older binary.

use serde::Value;
use std::fmt;

/// Error restoring state from a checkpoint tree.
#[derive(Clone, Debug, PartialEq)]
pub enum CkptError {
    /// A required field was absent from a map.
    MissingField {
        /// Dotted path of the missing field.
        field: String,
    },
    /// A field existed but held the wrong value shape.
    WrongType {
        /// Dotted path of the offending field.
        field: String,
        /// What the restore code expected, e.g. `"u64"`.
        expected: &'static str,
    },
    /// The checkpoint's format version is not one this binary reads.
    VersionMismatch {
        /// Version found in the file.
        found: u64,
        /// Version this binary writes.
        supported: u64,
    },
    /// The file could not be read or parsed at all.
    Corrupt {
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::MissingField { field } => {
                write!(f, "checkpoint missing field `{field}`")
            }
            CkptError::WrongType { field, expected } => {
                write!(f, "checkpoint field `{field}` is not a {expected}")
            }
            CkptError::VersionMismatch { found, supported } => write!(
                f,
                "checkpoint version {found} unsupported (this binary reads v{supported})"
            ),
            CkptError::Corrupt { detail } => write!(f, "corrupt checkpoint: {detail}"),
        }
    }
}

impl std::error::Error for CkptError {}

/// State that can be checkpointed and restored.
///
/// `save` must capture everything `restore` needs to continue the run
/// bit-identically; anything deliberately excluded (host-side caches,
/// telemetry accumulators) must be documented at the impl site.
pub trait Snapshot: Sized {
    /// Lower the state into a value tree.
    fn save(&self) -> Value;
    /// Rebuild the state from a tree produced by [`Snapshot::save`].
    fn restore(value: &Value) -> Result<Self, CkptError>;
}

/// Fetch `value[field]`, typed error if absent.
pub fn field<'a>(value: &'a Value, field_name: &str) -> Result<&'a Value, CkptError> {
    value
        .get(field_name)
        .ok_or_else(|| CkptError::MissingField {
            field: field_name.to_string(),
        })
}

/// Fetch `value[field]` as `T` via its `Snapshot` impl.
pub fn restore_field<T: Snapshot>(value: &Value, field_name: &str) -> Result<T, CkptError> {
    T::restore(field(value, field_name)?)
}

macro_rules! impl_snapshot_uint {
    ($($t:ty => $name:literal),*) => {$(
        impl Snapshot for $t {
            fn save(&self) -> Value {
                Value::U64(*self as u64)
            }
            fn restore(value: &Value) -> Result<Self, CkptError> {
                let n = value.as_u64().ok_or(CkptError::WrongType {
                    field: String::new(),
                    expected: $name,
                })?;
                <$t>::try_from(n).map_err(|_| CkptError::WrongType {
                    field: String::new(),
                    expected: $name,
                })
            }
        }
    )*};
}
impl_snapshot_uint!(u64 => "u64", u32 => "u32", usize => "usize");

impl Snapshot for i64 {
    fn save(&self) -> Value {
        Value::I64(*self)
    }
    fn restore(value: &Value) -> Result<Self, CkptError> {
        value.as_i64().ok_or(CkptError::WrongType {
            field: String::new(),
            expected: "i64",
        })
    }
}

impl Snapshot for f64 {
    fn save(&self) -> Value {
        Value::F64(*self)
    }
    fn restore(value: &Value) -> Result<Self, CkptError> {
        value.as_f64().ok_or(CkptError::WrongType {
            field: String::new(),
            expected: "f64",
        })
    }
}

impl Snapshot for bool {
    fn save(&self) -> Value {
        Value::Bool(*self)
    }
    fn restore(value: &Value) -> Result<Self, CkptError> {
        value.as_bool().ok_or(CkptError::WrongType {
            field: String::new(),
            expected: "bool",
        })
    }
}

impl Snapshot for String {
    fn save(&self) -> Value {
        Value::Str(self.clone())
    }
    fn restore(value: &Value) -> Result<Self, CkptError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or(CkptError::WrongType {
                field: String::new(),
                expected: "string",
            })
    }
}

impl<T: Snapshot> Snapshot for Vec<T> {
    fn save(&self) -> Value {
        Value::Seq(self.iter().map(Snapshot::save).collect())
    }
    fn restore(value: &Value) -> Result<Self, CkptError> {
        value
            .as_seq()
            .ok_or(CkptError::WrongType {
                field: String::new(),
                expected: "sequence",
            })?
            .iter()
            .map(T::restore)
            .collect()
    }
}

impl<T: Snapshot> Snapshot for Option<T> {
    fn save(&self) -> Value {
        match self {
            Some(v) => v.save(),
            None => Value::Null,
        }
    }
    fn restore(value: &Value) -> Result<Self, CkptError> {
        if value.is_null() {
            Ok(None)
        } else {
            T::restore(value).map(Some)
        }
    }
}

impl<A: Snapshot, B: Snapshot> Snapshot for (A, B) {
    fn save(&self) -> Value {
        Value::Seq(vec![self.0.save(), self.1.save()])
    }
    fn restore(value: &Value) -> Result<Self, CkptError> {
        match value.as_seq() {
            Some([a, b]) => Ok((A::restore(a)?, B::restore(b)?)),
            _ => Err(CkptError::WrongType {
                field: String::new(),
                expected: "2-tuple",
            }),
        }
    }
}

impl<T: Snapshot + Default + Copy, const N: usize> Snapshot for [T; N] {
    fn save(&self) -> Value {
        Value::Seq(self.iter().map(Snapshot::save).collect())
    }
    fn restore(value: &Value) -> Result<Self, CkptError> {
        let seq = value.as_seq().ok_or(CkptError::WrongType {
            field: String::new(),
            expected: "array",
        })?;
        if seq.len() != N {
            return Err(CkptError::WrongType {
                field: String::new(),
                expected: "array of fixed length",
            });
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(seq) {
            *slot = T::restore(item)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Snapshot + PartialEq + fmt::Debug>(v: T) {
        assert_eq!(T::restore(&v.save()).unwrap(), v);
    }

    #[test]
    fn scalars_and_containers_roundtrip() {
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(42u32);
        roundtrip(7usize);
        roundtrip(-3i64);
        roundtrip(1.5f64);
        roundtrip(true);
        roundtrip(String::from("fig4/x86"));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Option::<u64>::None);
        roundtrip(Some(9u64));
        roundtrip((3.25f64, 99u64));
        roundtrip([1.0f64, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn shape_mismatches_are_typed_errors() {
        assert!(matches!(
            u64::restore(&Value::Str("no".into())),
            Err(CkptError::WrongType {
                expected: "u64",
                ..
            })
        ));
        assert!(matches!(
            u32::restore(&Value::U64(u64::MAX)),
            Err(CkptError::WrongType { .. })
        ));
        assert!(matches!(
            <[f64; 4]>::restore(&Value::Seq(vec![Value::F64(1.0)])),
            Err(CkptError::WrongType { .. })
        ));
        let map = Value::Map(vec![("cycle".into(), Value::U64(5))]);
        assert_eq!(restore_field::<u64>(&map, "cycle").unwrap(), 5);
        assert!(matches!(
            restore_field::<u64>(&map, "missing"),
            Err(CkptError::MissingField { .. })
        ));
    }

    #[test]
    fn errors_render() {
        let e = CkptError::VersionMismatch {
            found: 9,
            supported: 1,
        };
        assert!(format!("{e}").contains("version 9"));
    }
}

//! Runtime stall detection: host-time budgets and typed stall reports.
//!
//! The parallel harness synchronizes model threads only through token
//! channels, so a severed channel, a protocol bug, or a peer that died
//! silently turns into *every* thread spinning forever — the failure
//! mode PR 2 hit in production. A [`WatchdogConfig`] gives the guarded
//! harness a host-time budget: if no model completes a quantum within
//! the budget, the run is torn down with [`SimError::Stalled`] carrying
//! a [`StallReport`] snapshot (per-thread cycle, per-channel depths and
//! last-moved token) instead of hanging.

use bsim_check::{Diagnostic, Report};
use std::fmt;
use std::time::Duration;

/// Host-time stall budget for a guarded run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Tear the run down when no model thread has completed a quantum
    /// for this long in host time.
    pub budget: Duration,
    /// How often the watchdog samples progress. Trip latency is at most
    /// `budget + poll`.
    pub poll: Duration,
}

impl Default for WatchdogConfig {
    /// 5 s budget polled every 50 ms: generous against host scheduling
    /// noise, still minutes-not-hours on a real deadlock.
    fn default() -> WatchdogConfig {
        WatchdogConfig {
            budget: Duration::from_secs(5),
            poll: Duration::from_millis(50),
        }
    }
}

impl WatchdogConfig {
    /// A tight budget for tests and the fault campaign.
    pub fn tight() -> WatchdogConfig {
        WatchdogConfig {
            budget: Duration::from_millis(400),
            poll: Duration::from_millis(10),
        }
    }

    /// Static sanity lint (`RS01x` codes).
    ///
    /// * `RS010` (error): zero budget — the watchdog would trip on the
    ///   first poll of any run, healthy or not.
    /// * `RS011` (warning): poll interval at or above the budget — the
    ///   effective trip latency doubles and short stalls are missed.
    pub fn lint(&self, span: &str) -> Report {
        let mut report = Report::new();
        if self.budget.is_zero() {
            report.push(
                Diagnostic::error(
                    "RS010",
                    span,
                    "watchdog budget is zero: every run trips on the first poll",
                )
                .with_help("give the budget at least a few hundred milliseconds"),
            );
        }
        if !self.budget.is_zero() && self.poll >= self.budget {
            report.push(
                Diagnostic::warning(
                    "RS011",
                    span,
                    format!(
                        "poll interval ({:?}) is not smaller than the budget ({:?}): \
                         trip latency degrades to budget + poll",
                        self.poll, self.budget
                    ),
                )
                .with_help("poll at least 4x faster than the budget"),
            );
        }
        report
    }
}

/// One model thread's progress at trip time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThreadProgress {
    /// Model index.
    pub model: usize,
    /// Target cycle the thread had reached.
    pub cycle: u64,
}

/// One channel's state at trip time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChannelProgress {
    /// Wire index.
    pub wire: usize,
    /// Tokens buffered in the channel.
    pub buffered: usize,
    /// Next cycle the producer will push.
    pub producer_cycle: u64,
    /// Next cycle the consumer will pop.
    pub consumer_cycle: u64,
    /// The last token value that moved through the channel, if any did.
    pub last_token: Option<u64>,
}

/// Progress snapshot captured when the watchdog trips.
#[derive(Clone, Debug, PartialEq)]
pub struct StallReport {
    /// Target length of the run that stalled.
    pub target_cycles: u64,
    /// The budget that expired, in milliseconds.
    pub budget_ms: u64,
    /// Per-thread progress (index order = model order).
    pub threads: Vec<ThreadProgress>,
    /// Per-channel state (index order = wire order).
    pub channels: Vec<ChannelProgress>,
}

impl StallReport {
    /// The most-starved consumer: the channel whose consumer cycle is
    /// lowest — usually the first place to look.
    pub fn most_starved(&self) -> Option<&ChannelProgress> {
        self.channels
            .iter()
            .filter(|c| c.buffered == 0)
            .min_by_key(|c| c.consumer_cycle)
    }
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "no quantum progress within {} ms budget (run of {} target cycles)",
            self.budget_ms, self.target_cycles
        )?;
        for t in &self.threads {
            writeln!(f, "  model {:>3}: at cycle {}", t.model, t.cycle)?;
        }
        for c in &self.channels {
            writeln!(
                f,
                "  chan {:>4}: {} buffered, producer@{} consumer@{}{}",
                c.wire,
                c.buffered,
                c.producer_cycle,
                c.consumer_cycle,
                match c.last_token {
                    Some(t) => format!(", last token {t:#x}"),
                    None => String::from(", no token ever moved"),
                }
            )?;
        }
        if let Some(s) = self.most_starved() {
            write!(
                f,
                "  => starved: channel {} (empty at cycle {})",
                s.wire, s.consumer_cycle
            )?;
        }
        Ok(())
    }
}

/// Typed failure of a guarded run — what the harness returns instead of
/// hanging or aborting the process.
#[derive(Clone, Debug)]
pub enum SimError {
    /// The watchdog saw no quantum progress within its budget.
    Stalled(StallReport),
    /// A model panicked inside `tick()` (or violated the token
    /// protocol); the first payload's message is captured.
    Panicked {
        /// Rendered panic message.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Stalled(r) => write!(f, "simulation stalled: {r}"),
            SimError::Panicked { message } => write!(f, "model panicked: {message}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_flags_zero_budget_and_slow_poll() {
        let bad = WatchdogConfig {
            budget: Duration::ZERO,
            poll: Duration::from_millis(10),
        };
        let report = bad.lint("wd");
        assert!(report.has_code("RS010") && report.has_errors());

        let slow = WatchdogConfig {
            budget: Duration::from_millis(100),
            poll: Duration::from_millis(100),
        };
        let report = slow.lint("wd");
        assert!(report.has_code("RS011") && !report.has_errors());

        assert!(WatchdogConfig::default().lint("wd").is_clean());
        assert!(WatchdogConfig::tight().lint("wd").is_clean());
    }

    #[test]
    fn stall_report_renders_and_finds_the_starved_channel() {
        let r = StallReport {
            target_cycles: 10_000,
            budget_ms: 400,
            threads: vec![
                ThreadProgress {
                    model: 0,
                    cycle: 320,
                },
                ThreadProgress {
                    model: 1,
                    cycle: 200,
                },
            ],
            channels: vec![
                ChannelProgress {
                    wire: 0,
                    buffered: 4,
                    producer_cycle: 321,
                    consumer_cycle: 317,
                    last_token: Some(0xBEEF),
                },
                ChannelProgress {
                    wire: 1,
                    buffered: 0,
                    producer_cycle: 200,
                    consumer_cycle: 200,
                    last_token: None,
                },
            ],
        };
        assert_eq!(r.most_starved().unwrap().wire, 1);
        let text = format!("{}", SimError::Stalled(r));
        assert!(text.contains("400 ms budget"));
        assert!(text.contains("starved: channel 1"));
        assert!(text.contains("no token ever moved"));
        let p = SimError::Panicked {
            message: "model exploded".into(),
        };
        assert!(format!("{p}").contains("model exploded"));
    }
}

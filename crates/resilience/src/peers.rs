//! Host-time liveness tracking for remote peers.
//!
//! The engine watchdog ([`crate::watchdog`]) guards threads inside one
//! process; a distributed launcher needs the same verdict about *other
//! processes*, where the only observable signals are frames arriving on
//! a socket and the OS reporting the child exited. [`PeerWatchdog`]
//! folds both into one liveness view: every received frame is a
//! heartbeat, an explicit [`PeerWatchdog::lost`] records an observed
//! death (socket EOF, non-zero exit), and [`PeerWatchdog::dead`] names
//! every peer that is lost or silent past the budget — the launcher's
//! cue to migrate that partition onto a fresh process.

use std::time::{Duration, Instant};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PeerState {
    Live,
    Lost,
}

/// Liveness tracker over `n` remote peers with a host-time silence
/// budget.
#[derive(Clone, Debug)]
pub struct PeerWatchdog {
    budget: Duration,
    last_seen: Vec<Instant>,
    state: Vec<PeerState>,
}

impl PeerWatchdog {
    /// Starts tracking `peers` peers, all considered live and freshly
    /// heard-from now.
    pub fn new(peers: usize, budget: Duration) -> PeerWatchdog {
        let now = Instant::now();
        PeerWatchdog {
            budget,
            last_seen: vec![now; peers],
            state: vec![PeerState::Live; peers],
        }
    }

    /// Records a heartbeat from `peer` — any received frame counts.
    pub fn beat(&mut self, peer: usize) {
        self.last_seen[peer] = Instant::now();
    }

    /// Records an observed death: socket EOF, process exit. A lost peer
    /// stays dead until [`PeerWatchdog::revive`]d by a respawn.
    pub fn lost(&mut self, peer: usize) {
        self.state[peer] = PeerState::Lost;
    }

    /// Marks a respawned peer live again with a fresh heartbeat.
    pub fn revive(&mut self, peer: usize) {
        self.state[peer] = PeerState::Live;
        self.beat(peer);
    }

    /// Every peer currently considered dead: explicitly lost, or silent
    /// longer than the budget.
    pub fn dead(&self) -> Vec<usize> {
        let now = Instant::now();
        (0..self.state.len())
            .filter(|&p| {
                self.state[p] == PeerState::Lost
                    || now.duration_since(self.last_seen[p]) > self.budget
            })
            .collect()
    }

    /// True when every peer is live and inside its budget.
    pub fn all_live(&self) -> bool {
        self.dead().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_peers_are_live_and_loss_is_sticky() {
        let mut dog = PeerWatchdog::new(3, Duration::from_secs(60));
        assert!(dog.all_live());
        dog.lost(1);
        assert_eq!(dog.dead(), vec![1]);
        dog.beat(1);
        assert_eq!(dog.dead(), vec![1], "a heartbeat does not resurrect");
        dog.revive(1);
        assert!(dog.all_live(), "an explicit respawn does");
    }

    #[test]
    fn silence_past_the_budget_is_death() {
        let mut dog = PeerWatchdog::new(2, Duration::from_millis(20));
        dog.beat(0);
        std::thread::sleep(Duration::from_millis(40));
        dog.beat(1);
        assert_eq!(dog.dead(), vec![0], "peer 0 silent past budget");
    }
}

//! Property tests for the ISA layer: encode/decode round-trips over the
//! whole operand space, interpreter arithmetic vs native Rust semantics,
//! and assembler `li` materialization.

use bsim_isa::inst::{AluOp, BranchKind, LoadKind, MulOp, StoreKind};
use bsim_isa::reg::*;
use bsim_isa::{Asm, Cpu, FReg, Inst, Reg, RunResult};
use proptest::prelude::*;

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg)
}

fn freg() -> impl Strategy<Value = FReg> {
    (0u8..32).prop_map(FReg)
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
    ]
}

fn mul_op() -> impl Strategy<Value = MulOp> {
    prop_oneof![
        Just(MulOp::Mul),
        Just(MulOp::Mulh),
        Just(MulOp::Mulhsu),
        Just(MulOp::Mulhu),
        Just(MulOp::Div),
        Just(MulOp::Divu),
        Just(MulOp::Rem),
        Just(MulOp::Remu),
    ]
}

proptest! {
    #[test]
    fn op_roundtrips(op in alu_op(), rd in reg(), rs1 in reg(), rs2 in reg()) {
        let i = Inst::Op { op, rd, rs1, rs2 };
        prop_assert_eq!(Inst::decode(i.encode()).unwrap(), i);
    }

    #[test]
    fn muldiv_roundtrips(op in mul_op(), rd in reg(), rs1 in reg(), rs2 in reg()) {
        let i = Inst::MulDiv { op, rd, rs1, rs2 };
        prop_assert_eq!(Inst::decode(i.encode()).unwrap(), i);
    }

    #[test]
    fn load_store_roundtrip(rd in reg(), rs1 in reg(), off in -2048i32..=2047) {
        for kind in [LoadKind::B, LoadKind::H, LoadKind::W, LoadKind::D, LoadKind::Bu, LoadKind::Hu, LoadKind::Wu] {
            let i = Inst::Load { kind, rd, rs1, offset: off };
            prop_assert_eq!(Inst::decode(i.encode()).unwrap(), i);
        }
        for kind in [StoreKind::B, StoreKind::H, StoreKind::W, StoreKind::D] {
            let i = Inst::Store { kind, rs1, rs2: rd, offset: off };
            prop_assert_eq!(Inst::decode(i.encode()).unwrap(), i);
        }
    }

    #[test]
    fn branch_roundtrips(rs1 in reg(), rs2 in reg(), off in (-2048i32..=2047).prop_map(|x| x * 2)) {
        for kind in [BranchKind::Eq, BranchKind::Ne, BranchKind::Lt, BranchKind::Ge, BranchKind::Ltu, BranchKind::Geu] {
            let i = Inst::Branch { kind, rs1, rs2, offset: off };
            prop_assert_eq!(Inst::decode(i.encode()).unwrap(), i);
        }
    }

    #[test]
    fn fp_roundtrips(rd in freg(), rs1 in freg(), rs2 in freg(), rs3 in freg()) {
        use bsim_isa::inst::FpOp;
        for op in [FpOp::Add, FpOp::Sub, FpOp::Mul, FpOp::Div, FpOp::Min, FpOp::Max, FpOp::Sgnj, FpOp::Sgnjn, FpOp::Sgnjx] {
            let i = Inst::FpOp { op, rd, rs1, rs2 };
            prop_assert_eq!(Inst::decode(i.encode()).unwrap(), i);
        }
        let i = Inst::Fmadd { rd, rs1, rs2, rs3 };
        prop_assert_eq!(Inst::decode(i.encode()).unwrap(), i);
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        // Any 32-bit word either decodes or errors; re-encoding a decode
        // must reproduce the word (encode ∘ decode = id on valid words).
        if let Ok(i) = Inst::decode(word) {
            prop_assert_eq!(i.encode(), word);
        }
    }

    #[test]
    fn li_materializes_any_value(v in any::<i64>()) {
        let mut a = Asm::new();
        a.li(S2, v); // exit() clobbers a0/a7, so park the value in s2
        a.exit(0);
        let mut cpu = Cpu::new(&a.assemble().unwrap());
        prop_assert!(matches!(cpu.run(1000), RunResult::Exited(0)));
        prop_assert_eq!(cpu.x(S2) as i64, v);
    }

    #[test]
    fn interpreter_arithmetic_matches_rust(x in any::<i64>(), y in any::<i64>()) {
        let mut a = Asm::new();
        a.li(T0, x).li(T1, y);
        a.add(S2, T0, T1);
        a.sub(S3, T0, T1);
        a.xor(S4, T0, T1);
        a.mul(S5, T0, T1);
        a.sltu(S6, T0, T1);
        a.exit(0);
        let mut cpu = Cpu::new(&a.assemble().unwrap());
        prop_assert!(matches!(cpu.run(1000), RunResult::Exited(0)));
        prop_assert_eq!(cpu.x(S2), (x as u64).wrapping_add(y as u64));
        prop_assert_eq!(cpu.x(S3), (x as u64).wrapping_sub(y as u64));
        prop_assert_eq!(cpu.x(S4), (x ^ y) as u64);
        prop_assert_eq!(cpu.x(S5), (x as u64).wrapping_mul(y as u64));
        prop_assert_eq!(cpu.x(S6), ((x as u64) < (y as u64)) as u64);
    }

    #[test]
    fn memory_roundtrip_any_addr(addr in 0u64..0x7FFF_0000, v in any::<u64>()) {
        use bsim_isa::Memory;
        let mut m = Memory::new();
        m.write_u64(addr, v);
        prop_assert_eq!(m.read_u64(addr), v);
    }
}

//! Functional RV64 interpreter.
//!
//! [`Cpu`] executes a [`Program`] and produces one [`Retired`] record per
//! dynamic instruction. The record carries everything the cycle-level
//! timing models need — PC, decoded instruction, effective address and
//! branch outcome — so a single functional pass drives any number of
//! timing configurations (the "functional-first, timing-directed" style
//! used by many architectural simulators).

use crate::asm::Program;
use crate::inst::{AluOp, BranchKind, FpCmp, FpOp, Inst, LoadKind, MulOp, StoreKind};
use crate::mem::Memory;
use crate::reg::Reg;

/// One retired dynamic instruction.
#[derive(Clone, Copy, Debug)]
pub struct Retired {
    /// PC of the instruction.
    pub pc: u64,
    /// The decoded instruction.
    pub inst: Inst,
    /// PC of the next instruction (reflects taken branches).
    pub next_pc: u64,
    /// Effective address for loads/stores.
    pub mem_addr: Option<u64>,
    /// Access size in bytes (0 when `mem_addr` is `None`).
    pub mem_size: u8,
    /// True when the access is a store.
    pub is_store: bool,
    /// For conditional branches: whether it was taken.
    pub taken: bool,
}

/// Reason execution stopped inside `step`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Trap {
    /// Program issued the exit ecall with this status.
    Exit(i64),
    /// EBREAK executed.
    Breakpoint(u64),
    /// Unsupported ecall number.
    UnknownSyscall(u64),
    /// PC left the code image or hit an undecodable word.
    IllegalInstruction { pc: u64, word: u32 },
}

/// Error type for `step` (alias kept for API clarity).
pub type ExecError = Trap;

/// Result of [`Cpu::run`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RunResult {
    /// Clean exit with status.
    Exited(i64),
    /// The fuel budget was exhausted before exit.
    OutOfFuel,
    /// Execution trapped.
    Trapped(Trap),
}

/// CSR numbers the interpreter understands (read-only).
const CSR_CYCLE: u16 = 0xC00;
const CSR_TIME: u16 = 0xC01;
const CSR_INSTRET: u16 = 0xC02;

/// The functional CPU state.
pub struct Cpu {
    /// Integer register file (`x0` is forced to zero on read).
    x: [u64; 32],
    /// FP register file (double precision).
    f: [f64; 32],
    /// Program counter.
    pub pc: u64,
    /// Target memory.
    pub mem: Memory,
    /// Retired instruction counter.
    pub instret: u64,
    code_base: u64,
    decoded: Vec<Option<Inst>>,
    exit_code: Option<i64>,
}

impl Cpu {
    /// Builds a CPU with the program loaded and PC at its entry.
    pub fn new(prog: &Program) -> Cpu {
        let mut mem = Memory::new();
        prog.load_into(&mut mem);
        let decoded = prog.code.iter().map(|&w| Inst::decode(w).ok()).collect();
        Cpu {
            x: [0; 32],
            f: [0.0; 32],
            pc: prog.entry,
            mem,
            instret: 0,
            code_base: prog.code_base,
            decoded,
            exit_code: None,
        }
    }

    /// Reads an integer register.
    #[inline]
    pub fn x(&self, r: Reg) -> u64 {
        if r.0 == 0 {
            0
        } else {
            self.x[r.0 as usize]
        }
    }

    /// Writes an integer register (writes to `x0` are discarded).
    #[inline]
    pub fn set_x(&mut self, r: Reg, v: u64) {
        if r.0 != 0 {
            self.x[r.0 as usize] = v;
        }
    }

    /// Reads an FP register.
    #[inline]
    pub fn freg(&self, i: u8) -> f64 {
        self.f[i as usize]
    }

    /// Writes an FP register.
    #[inline]
    pub fn set_freg(&mut self, i: u8, v: f64) {
        self.f[i as usize] = v;
    }

    /// Exit status, once the program has exited.
    pub fn exit_code(&self) -> Option<i64> {
        self.exit_code
    }

    #[inline]
    fn fetch(&self, pc: u64) -> Result<Inst, Trap> {
        let off = pc.wrapping_sub(self.code_base);
        if off.is_multiple_of(4) {
            if let Some(slot) = self.decoded.get((off / 4) as usize) {
                if let Some(i) = slot {
                    return Ok(*i);
                }
                return Err(Trap::IllegalInstruction {
                    pc,
                    word: self.mem.read_u32(pc),
                });
            }
        }
        // Outside the preloaded image: decode from memory (self-modifying
        // code is not supported; this path exists for diagnostics).
        let word = self.mem.read_u32(pc);
        Inst::decode(word).map_err(|e| Trap::IllegalInstruction { pc, word: e.word })
    }

    /// Executes one instruction.
    pub fn step(&mut self) -> Result<Retired, Trap> {
        let pc = self.pc;
        let inst = self.fetch(pc)?;
        let mut next_pc = pc.wrapping_add(4);
        let mut mem_addr = None;
        let mut mem_size = 0u8;
        let mut is_store = false;
        let mut taken = false;

        match inst {
            Inst::Lui { rd, imm } => self.set_x(rd, imm as u64),
            Inst::Auipc { rd, imm } => self.set_x(rd, pc.wrapping_add(imm as u64)),
            Inst::Jal { rd, offset } => {
                self.set_x(rd, next_pc);
                next_pc = pc.wrapping_add(offset as i64 as u64);
                taken = true;
            }
            Inst::Jalr { rd, rs1, offset } => {
                let target = self.x(rs1).wrapping_add(offset as i64 as u64) & !1;
                self.set_x(rd, next_pc);
                next_pc = target;
                taken = true;
            }
            Inst::Branch {
                kind,
                rs1,
                rs2,
                offset,
            } => {
                let a = self.x(rs1);
                let b = self.x(rs2);
                taken = match kind {
                    BranchKind::Eq => a == b,
                    BranchKind::Ne => a != b,
                    BranchKind::Lt => (a as i64) < (b as i64),
                    BranchKind::Ge => (a as i64) >= (b as i64),
                    BranchKind::Ltu => a < b,
                    BranchKind::Geu => a >= b,
                };
                if taken {
                    next_pc = pc.wrapping_add(offset as i64 as u64);
                }
            }
            Inst::Load {
                kind,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.x(rs1).wrapping_add(offset as i64 as u64);
                let v = match kind {
                    LoadKind::B => self.mem.read_u8(addr) as i8 as i64 as u64,
                    LoadKind::Bu => self.mem.read_u8(addr) as u64,
                    LoadKind::H => self.mem.read_u16(addr) as i16 as i64 as u64,
                    LoadKind::Hu => self.mem.read_u16(addr) as u64,
                    LoadKind::W => self.mem.read_u32(addr) as i32 as i64 as u64,
                    LoadKind::Wu => self.mem.read_u32(addr) as u64,
                    LoadKind::D => self.mem.read_u64(addr),
                };
                self.set_x(rd, v);
                mem_addr = Some(addr);
                mem_size = kind.size();
            }
            Inst::Store {
                kind,
                rs1,
                rs2,
                offset,
            } => {
                let addr = self.x(rs1).wrapping_add(offset as i64 as u64);
                let v = self.x(rs2);
                match kind {
                    StoreKind::B => self.mem.write_u8(addr, v as u8),
                    StoreKind::H => self.mem.write_u16(addr, v as u16),
                    StoreKind::W => self.mem.write_u32(addr, v as u32),
                    StoreKind::D => self.mem.write_u64(addr, v),
                }
                mem_addr = Some(addr);
                mem_size = kind.size();
                is_store = true;
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                let a = self.x(rs1);
                let b = imm as i64 as u64;
                self.set_x(rd, alu64(op, a, b));
            }
            Inst::OpImmShift { op, rd, rs1, shamt } => {
                let a = self.x(rs1);
                let v = match op {
                    AluOp::Sll => a << shamt,
                    AluOp::Srl => a >> shamt,
                    AluOp::Sra => ((a as i64) >> shamt) as u64,
                    _ => unreachable!(),
                };
                self.set_x(rd, v);
            }
            Inst::OpImm32 { rd, rs1, imm } => {
                let v = (self.x(rs1) as i32).wrapping_add(imm) as i64 as u64;
                self.set_x(rd, v);
            }
            Inst::OpImm32Shift { op, rd, rs1, shamt } => {
                let a = self.x(rs1) as u32;
                let v = match op {
                    AluOp::Sll => (a << shamt) as i32,
                    AluOp::Srl => (a >> shamt) as i32,
                    AluOp::Sra => (a as i32) >> shamt,
                    _ => unreachable!(),
                } as i64 as u64;
                self.set_x(rd, v);
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                let v = alu64(op, self.x(rs1), self.x(rs2));
                self.set_x(rd, v);
            }
            Inst::Op32 { op, rd, rs1, rs2 } => {
                let a = self.x(rs1) as u32;
                let b = self.x(rs2) as u32;
                let v = match op {
                    AluOp::Add => a.wrapping_add(b) as i32,
                    AluOp::Sub => a.wrapping_sub(b) as i32,
                    AluOp::Sll => (a << (b & 31)) as i32,
                    AluOp::Srl => (a >> (b & 31)) as i32,
                    AluOp::Sra => (a as i32) >> (b & 31),
                    _ => unreachable!(),
                } as i64 as u64;
                self.set_x(rd, v);
            }
            Inst::MulDiv { op, rd, rs1, rs2 } => {
                let a = self.x(rs1);
                let b = self.x(rs2);
                let v = muldiv64(op, a, b);
                self.set_x(rd, v);
            }
            Inst::MulDiv32 { op, rd, rs1, rs2 } => {
                let a = self.x(rs1) as i32;
                let b = self.x(rs2) as i32;
                let v = match op {
                    MulOp::Mul => a.wrapping_mul(b),
                    MulOp::Div => {
                        if b == 0 {
                            -1
                        } else if a == i32::MIN && b == -1 {
                            a
                        } else {
                            a.wrapping_div(b)
                        }
                    }
                    MulOp::Divu => {
                        let (a, b) = (a as u32, b as u32);
                        a.checked_div(b).unwrap_or(u32::MAX) as i32
                    }
                    MulOp::Rem => {
                        if b == 0 {
                            a
                        } else if a == i32::MIN && b == -1 {
                            0
                        } else {
                            a.wrapping_rem(b)
                        }
                    }
                    MulOp::Remu => {
                        let (a, b) = (a as u32, b as u32);
                        if b == 0 {
                            a as i32
                        } else {
                            (a % b) as i32
                        }
                    }
                    _ => unreachable!("MulDiv32 only encodes W-form ops"),
                } as i64 as u64;
                self.set_x(rd, v);
            }
            Inst::Fld { rd, rs1, offset } => {
                let addr = self.x(rs1).wrapping_add(offset as i64 as u64);
                let v = self.mem.read_f64(addr);
                self.set_freg(rd.0, v);
                mem_addr = Some(addr);
                mem_size = 8;
            }
            Inst::Fsd { rs1, rs2, offset } => {
                let addr = self.x(rs1).wrapping_add(offset as i64 as u64);
                self.mem.write_f64(addr, self.freg(rs2.0));
                mem_addr = Some(addr);
                mem_size = 8;
                is_store = true;
            }
            Inst::FpOp { op, rd, rs1, rs2 } => {
                let a = self.freg(rs1.0);
                let b = self.freg(rs2.0);
                let v = match op {
                    FpOp::Add => a + b,
                    FpOp::Sub => a - b,
                    FpOp::Mul => a * b,
                    FpOp::Div => a / b,
                    FpOp::Min => a.min(b),
                    FpOp::Max => a.max(b),
                    FpOp::Sgnj => a.copysign(b),
                    FpOp::Sgnjn => a.copysign(-b),
                    FpOp::Sgnjx => f64::from_bits(a.to_bits() ^ (b.to_bits() & (1u64 << 63))),
                };
                self.set_freg(rd.0, v);
            }
            Inst::Fsqrt { rd, rs1 } => {
                let v = self.freg(rs1.0).sqrt();
                self.set_freg(rd.0, v);
            }
            Inst::Fmadd { rd, rs1, rs2, rs3 } => {
                let v = self.freg(rs1.0).mul_add(self.freg(rs2.0), self.freg(rs3.0));
                self.set_freg(rd.0, v);
            }
            Inst::FpCmp { cmp, rd, rs1, rs2 } => {
                let a = self.freg(rs1.0);
                let b = self.freg(rs2.0);
                let v = match cmp {
                    FpCmp::Eq => a == b,
                    FpCmp::Lt => a < b,
                    FpCmp::Le => a <= b,
                } as u64;
                self.set_x(rd, v);
            }
            Inst::FcvtDL { rd, rs1 } => {
                let v = self.x(rs1) as i64 as f64;
                self.set_freg(rd.0, v);
            }
            Inst::FcvtDW { rd, rs1 } => {
                let v = self.x(rs1) as i32 as f64;
                self.set_freg(rd.0, v);
            }
            Inst::FcvtLD { rd, rs1 } => {
                let v = self.freg(rs1.0) as i64; // saturating, RTZ
                self.set_x(rd, v as u64);
            }
            Inst::FcvtWD { rd, rs1 } => {
                let v = self.freg(rs1.0) as i32; // saturating, RTZ
                self.set_x(rd, v as i64 as u64);
            }
            Inst::FmvXD { rd, rs1 } => {
                let v = self.freg(rs1.0).to_bits();
                self.set_x(rd, v);
            }
            Inst::FmvDX { rd, rs1 } => {
                let v = f64::from_bits(self.x(rs1));
                self.set_freg(rd.0, v);
            }
            Inst::Fsin { rd, rs1 } => {
                let v = self.freg(rs1.0).sin();
                self.set_freg(rd.0, v);
            }
            Inst::Fence => {}
            Inst::Ecall => {
                let nr = self.x(crate::reg::A7);
                match nr {
                    93 => {
                        let code = self.x(crate::reg::A0) as i64;
                        self.exit_code = Some(code);
                        return Err(Trap::Exit(code));
                    }
                    _ => return Err(Trap::UnknownSyscall(nr)),
                }
            }
            Inst::Ebreak => return Err(Trap::Breakpoint(pc)),
            Inst::Csrrs { rd, csr, rs1 } => {
                debug_assert_eq!(rs1.0, 0, "only read-only CSR access is supported");
                let v = match csr {
                    CSR_CYCLE | CSR_TIME | CSR_INSTRET => self.instret,
                    _ => 0,
                };
                self.set_x(rd, v);
            }
        }

        self.pc = next_pc;
        self.instret += 1;
        Ok(Retired {
            pc,
            inst,
            next_pc,
            mem_addr,
            mem_size,
            is_store,
            taken,
        })
    }

    /// Runs until exit, trap, or `fuel` retired instructions.
    pub fn run(&mut self, fuel: u64) -> RunResult {
        self.run_traced(fuel, |_| {})
    }

    /// Runs like [`Cpu::run`], invoking `sink` on every retired instruction.
    ///
    /// This is the hook the timing models attach to.
    pub fn run_traced<F: FnMut(&Retired)>(&mut self, fuel: u64, mut sink: F) -> RunResult {
        for _ in 0..fuel {
            match self.step() {
                Ok(r) => sink(&r),
                Err(Trap::Exit(code)) => return RunResult::Exited(code),
                Err(t) => return RunResult::Trapped(t),
            }
        }
        RunResult::OutOfFuel
    }
}

#[inline]
fn alu64(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a << (b & 63),
        AluOp::Slt => ((a as i64) < (b as i64)) as u64,
        AluOp::Sltu => (a < b) as u64,
        AluOp::Xor => a ^ b,
        AluOp::Srl => a >> (b & 63),
        AluOp::Sra => ((a as i64) >> (b & 63)) as u64,
        AluOp::Or => a | b,
        AluOp::And => a & b,
    }
}

#[inline]
fn muldiv64(op: MulOp, a: u64, b: u64) -> u64 {
    match op {
        MulOp::Mul => a.wrapping_mul(b),
        MulOp::Mulh => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
        MulOp::Mulhsu => (((a as i64 as i128) * (b as u128 as i128)) >> 64) as u64,
        MulOp::Mulhu => (((a as u128) * (b as u128)) >> 64) as u64,
        MulOp::Div => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                u64::MAX
            } else if a == i64::MIN && b == -1 {
                a as u64
            } else {
                a.wrapping_div(b) as u64
            }
        }
        MulOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
        MulOp::Rem => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                a as u64
            } else if a == i64::MIN && b == -1 {
                0
            } else {
                a.wrapping_rem(b) as u64
            }
        }
        MulOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{Asm, SYS_EXIT};
    use crate::reg::*;

    fn exec(a: &Asm) -> (Cpu, RunResult) {
        let p = a.assemble().unwrap();
        let mut cpu = Cpu::new(&p);
        let r = cpu.run(1_000_000);
        (cpu, r)
    }

    #[test]
    fn arithmetic_wraps() {
        let mut a = Asm::new();
        a.li(T0, i64::MAX);
        a.addi(T1, T0, 1);
        a.exit(0);
        let (cpu, _) = exec(&a);
        assert_eq!(cpu.x(T1) as i64, i64::MIN);
    }

    #[test]
    fn division_by_zero_follows_spec() {
        let mut a = Asm::new();
        a.li(T0, 42).li(T1, 0);
        a.div(T2, T0, T1); // -1
        a.rem(T3, T0, T1); // 42
        a.divu(T4, T0, T1); // all-ones
        a.exit(0);
        let (cpu, _) = exec(&a);
        assert_eq!(cpu.x(T2) as i64, -1);
        assert_eq!(cpu.x(T3), 42);
        assert_eq!(cpu.x(T4), u64::MAX);
    }

    #[test]
    fn signed_overflow_division() {
        let mut a = Asm::new();
        a.li(T0, i64::MIN).li(T1, -1);
        a.div(T2, T0, T1);
        a.rem(T3, T0, T1);
        a.exit(0);
        let (cpu, _) = exec(&a);
        assert_eq!(cpu.x(T2) as i64, i64::MIN);
        assert_eq!(cpu.x(T3), 0);
    }

    #[test]
    fn mulh_variants() {
        let mut a = Asm::new();
        a.li(T0, -2).li(T1, 3);
        a.inst(Inst::MulDiv {
            op: MulOp::Mulh,
            rd: T2,
            rs1: T0,
            rs2: T1,
        });
        a.inst(Inst::MulDiv {
            op: MulOp::Mulhu,
            rd: T3,
            rs1: T0,
            rs2: T1,
        });
        a.exit(0);
        let (cpu, _) = exec(&a);
        assert_eq!(cpu.x(T2) as i64, -1); // high bits of -6
        assert_eq!(cpu.x(T3), 2); // (2^64-2)*3 >> 64
    }

    #[test]
    fn word_ops_sign_extend() {
        let mut a = Asm::new();
        a.li(T0, 0x8000_0000u32 as i64); // already sign-extended by li
        a.li(T1, 0x7FFF_FFFF);
        a.addw(T2, T1, ZERO); // 0x7FFFFFFF
        a.addiw(T3, T1, 1); // wraps to i32::MIN
        a.exit(0);
        let (cpu, _) = exec(&a);
        assert_eq!(cpu.x(T2) as i64, 0x7FFF_FFFF);
        assert_eq!(cpu.x(T3) as i64, i32::MIN as i64);
    }

    #[test]
    fn loads_sign_and_zero_extend() {
        let mut a = Asm::new();
        let addr = a.data_u64(0xFFFF_FFFF_FFFF_FF80); // byte 0 = 0x80
        a.li(T0, addr as i64);
        a.lb(T1, 0, T0);
        a.lbu(T2, 0, T0);
        a.lh(T3, 0, T0);
        a.lhu(T4, 0, T0);
        a.lw(T5, 0, T0);
        a.lwu(T6, 0, T0);
        a.exit(0);
        let (cpu, _) = exec(&a);
        assert_eq!(cpu.x(T1) as i64, -128);
        assert_eq!(cpu.x(T2), 0x80);
        assert_eq!(cpu.x(T3) as i64, -128);
        assert_eq!(cpu.x(T4), 0xFF80);
        assert_eq!(cpu.x(T5) as i64, -128);
        assert_eq!(cpu.x(T6), 0xFFFF_FF80);
    }

    #[test]
    fn fp_pipeline() {
        let mut a = Asm::new();
        let src = a.data_f64s(&[1.5, 2.5]);
        let dst = a.data_zeros(8);
        a.li(T0, src as i64);
        a.li(T1, dst as i64);
        a.fld(FT0, 0, T0);
        a.fld(FT1, 8, T0);
        a.fadd_d(FT2, FT0, FT1); // 4.0
        a.fmul_d(FT3, FT2, FT2); // 16.0
        a.fsqrt_d(FT4, FT3); // 4.0
        a.fmadd_d(FT5, FT4, FT0, FT1); // 4*1.5+2.5 = 8.5
        a.fsd(FT5, 0, T1);
        a.fcvt_l_d(A0, FT5); // 8 (RTZ)
        a.li(A7, SYS_EXIT as i64).ecall();
        let (cpu, r) = exec(&a);
        assert_eq!(r, RunResult::Exited(8));
        assert_eq!(cpu.mem.read_f64(dst), 8.5);
    }

    #[test]
    fn fsin_matches_libm() {
        let mut a = Asm::new();
        let src = a.data_f64s(&[1.0]);
        a.li(T0, src as i64);
        a.fld(FT0, 0, T0);
        a.fsin_d(FT1, FT0);
        a.exit(0);
        let (cpu, _) = exec(&a);
        assert!((cpu.freg(1) - 1.0f64.sin()).abs() < 1e-15);
    }

    #[test]
    fn retired_records_have_addresses_and_outcomes() {
        let mut a = Asm::new();
        let addr = a.data_u64(7);
        a.li(T0, addr as i64);
        a.ld(T1, 0, T0);
        a.sd(T1, 8, T0);
        a.beq(T1, T1, "next"); // always taken
        a.label("next");
        a.exit(0);
        let p = a.assemble().unwrap();
        let mut cpu = Cpu::new(&p);
        let mut loads = 0;
        let mut stores = 0;
        let mut taken_branches = 0;
        let r = cpu.run_traced(1000, |ret| {
            if let Some(ea) = ret.mem_addr {
                if ret.is_store {
                    stores += 1;
                    assert_eq!(ea, addr + 8);
                } else {
                    loads += 1;
                    assert_eq!(ea, addr);
                }
            }
            if matches!(ret.inst, Inst::Branch { .. }) && ret.taken {
                taken_branches += 1;
            }
        });
        assert!(matches!(r, RunResult::Exited(0)));
        assert_eq!(loads, 1);
        assert_eq!(stores, 1);
        assert_eq!(taken_branches, 1);
    }

    #[test]
    fn out_of_fuel_reported() {
        let mut a = Asm::new();
        a.label("spin");
        a.j("spin");
        let (_, r) = exec(&a);
        assert_eq!(r, RunResult::OutOfFuel);
    }

    #[test]
    fn illegal_instruction_traps() {
        let mut a = Asm::new();
        a.jalr(ZERO, ZERO, 0); // jump to address 0: empty memory decodes as illegal
        let (_, r) = exec(&a);
        match r {
            RunResult::Trapped(Trap::IllegalInstruction { pc: 0, .. }) => {}
            other => panic!("expected illegal instruction, got {other:?}"),
        }
    }

    #[test]
    fn csr_instret_visible() {
        let mut a = Asm::new();
        a.nop().nop().nop();
        a.csrrs(A0, 0xC02, ZERO);
        a.li(A7, SYS_EXIT as i64).ecall();
        let (_, r) = exec(&a);
        // 3 nops retired before the csrrs reads instret.
        assert_eq!(r, RunResult::Exited(3));
    }
}

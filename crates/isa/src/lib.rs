//! # bsim-isa — RV64IM(+D) instruction set substrate
//!
//! This crate provides the instruction-set layer that the rest of the
//! `silicon-bridge` stack is built on:
//!
//! * [`Inst`] — a decoded RV64IM + D-subset instruction, with exact
//!   bit-level [`Inst::encode`] / [`Inst::decode`] round-tripping,
//! * [`Asm`] — a programmatic assembler with labels, pseudo-instructions
//!   and a data section, producing a loadable [`Program`],
//! * [`Cpu`] — a functional interpreter that executes a [`Program`] and
//!   emits one [`Retired`] record per dynamic instruction; the timing
//!   models in `bsim-uarch` consume that stream.
//!
//! The paper ("Bridging Simulation and Silicon", SC 2025) runs its 40
//! MicroBench kernels as compiled RISC-V binaries on both silicon and
//! FireSim. Here the same kernels are written against [`Asm`] and run
//! through [`Cpu`]; the dynamic instruction stream drives the
//! cycle-level core models exactly as the decoded RTL stream drives the
//! FireSim target.
//!
//! One deliberate extension: the `FSIN.D` instruction in the CUSTOM-0
//! opcode space stands in for a `libm` `sin()` call (used by the DPT and
//! DPTd microbenchmarks). The timing models expand it to a long-latency
//! floating-point operation calibrated to a software `sin` implementation;
//! see DESIGN.md §2 for the substitution rationale.

pub mod asm;
pub mod inst;
pub mod interp;
pub mod mem;
pub mod reg;

pub use asm::{Asm, Program};
pub use inst::{DecodeError, Inst, OpClass};
pub use interp::{Cpu, ExecError, Retired, RunResult, Trap};
pub use mem::Memory;
pub use reg::{FReg, Reg};

//! Programmatic RV64 assembler.
//!
//! [`Asm`] builds a [`Program`] — a code image plus a data image — from
//! method calls that mirror assembly mnemonics, with string labels for
//! control flow and data symbols, and the usual pseudo-instructions
//! (`li`, `la`, `mv`, `j`, `ret`, `call`, `nop`, ...).
//!
//! The MicroBench suite (Table 1 of the paper) is written entirely against
//! this API; see `bsim-workloads::microbench`.

use crate::inst::{AluOp, BranchKind, FpCmp, FpOp, Inst, LoadKind, MulOp, StoreKind};
use crate::mem::Memory;
use crate::reg::{FReg, Reg, A0, A7, RA, SP, ZERO};
use std::collections::HashMap;
use std::fmt;

/// Default base address of the code image.
pub const CODE_BASE: u64 = 0x0001_0000;
/// Default base address of the data image.
pub const DATA_BASE: u64 = 0x0100_0000;
/// Initial stack pointer (grows down).
pub const STACK_TOP: u64 = 0x7FFF_F000;
/// The `ecall` a7 value for "exit" (Linux RV64 ABI).
pub const SYS_EXIT: u64 = 93;

/// An assembled, loadable program.
#[derive(Clone, Debug)]
pub struct Program {
    /// Encoded instruction words.
    pub code: Vec<u32>,
    /// Load address of `code`.
    pub code_base: u64,
    /// Initialized data image.
    pub data: Vec<u8>,
    /// Load address of `data`.
    pub data_base: u64,
    /// Entry PC.
    pub entry: u64,
}

impl Program {
    /// Loads the code and data images into a target [`Memory`].
    pub fn load_into(&self, mem: &mut Memory) {
        for (i, w) in self.code.iter().enumerate() {
            mem.write_u32(self.code_base + 4 * i as u64, *w);
        }
        mem.load(self.data_base, &self.data);
    }

    /// Static code size in instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True if the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}

/// Error produced at `assemble()` time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A branch target is beyond the ±4 KiB B-type range.
    BranchOutOfRange { label: String, offset: i64 },
    /// A jump target is beyond the ±1 MiB J-type range.
    JumpOutOfRange { label: String, offset: i64 },
    /// A data symbol was referenced but never defined.
    UndefinedSymbol(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::BranchOutOfRange { label, offset } => {
                write!(f, "branch to `{label}` out of range ({offset} bytes)")
            }
            AsmError::JumpOutOfRange { label, offset } => {
                write!(f, "jump to `{label}` out of range ({offset} bytes)")
            }
            AsmError::UndefinedSymbol(s) => write!(f, "undefined data symbol `{s}`"),
        }
    }
}

impl std::error::Error for AsmError {}

enum Slot {
    Done(Inst),
    BranchTo {
        kind: BranchKind,
        rs1: Reg,
        rs2: Reg,
        label: String,
    },
    JalTo {
        rd: Reg,
        label: String,
    },
    /// `lui+addiw` pair materializing the absolute address of a data symbol
    /// (all our images sit below 2^31, so two instructions always suffice).
    LaHi {
        rd: Reg,
        sym: String,
    },
    LaLo {
        rd: Reg,
        sym: String,
    },
}

/// Programmatic assembler. See the module docs for an overview.
#[derive(Default)]
pub struct Asm {
    slots: Vec<Slot>,
    labels: HashMap<String, usize>,
    data: Vec<u8>,
    syms: HashMap<String, u64>,
    scratch_labels: u64,
}

impl Asm {
    /// Creates an empty program under construction.
    pub fn new() -> Asm {
        Asm::default()
    }

    // ---- labels & data ------------------------------------------------

    /// Defines a code label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        let prev = self.labels.insert(name.to_string(), self.slots.len());
        assert!(prev.is_none(), "duplicate label `{name}`");
        self
    }

    /// Returns a unique label name (for generated control flow).
    pub fn fresh_label(&mut self, stem: &str) -> String {
        self.scratch_labels += 1;
        format!("{}__{}", stem, self.scratch_labels)
    }

    /// Current instruction index (useful for size accounting in tests).
    pub fn here(&self) -> usize {
        self.slots.len()
    }

    /// Defines a data symbol at the current end of the data section.
    pub fn data_label(&mut self, name: &str) -> u64 {
        let addr = DATA_BASE + self.data.len() as u64;
        let prev = self.syms.insert(name.to_string(), addr);
        assert!(prev.is_none(), "duplicate data symbol `{name}`");
        addr
    }

    /// Pads the data section to `align` bytes (power of two).
    pub fn data_align(&mut self, align: usize) -> &mut Self {
        debug_assert!(align.is_power_of_two());
        while !self.data.len().is_multiple_of(align) {
            self.data.push(0);
        }
        self
    }

    /// Appends a u64 to the data section, returning its address.
    pub fn data_u64(&mut self, v: u64) -> u64 {
        self.data_align(8);
        let addr = DATA_BASE + self.data.len() as u64;
        self.data.extend_from_slice(&v.to_le_bytes());
        addr
    }

    /// Appends a slice of u64s, returning the base address.
    pub fn data_u64s(&mut self, vs: &[u64]) -> u64 {
        self.data_align(8);
        let addr = DATA_BASE + self.data.len() as u64;
        for v in vs {
            self.data.extend_from_slice(&v.to_le_bytes());
        }
        addr
    }

    /// Appends a slice of f64s, returning the base address.
    pub fn data_f64s(&mut self, vs: &[f64]) -> u64 {
        self.data_align(8);
        let addr = DATA_BASE + self.data.len() as u64;
        for v in vs {
            self.data.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        addr
    }

    /// Reserves `n` zeroed bytes, returning the base address.
    pub fn data_zeros(&mut self, n: usize) -> u64 {
        self.data_align(8);
        let addr = DATA_BASE + self.data.len() as u64;
        self.data.resize(self.data.len() + n, 0);
        addr
    }

    /// Address of a previously defined data symbol.
    pub fn sym(&self, name: &str) -> u64 {
        *self
            .syms
            .get(name)
            .unwrap_or_else(|| panic!("undefined data symbol `{name}`"))
    }

    // ---- raw emit ------------------------------------------------------

    /// Emits an already-constructed instruction.
    pub fn inst(&mut self, i: Inst) -> &mut Self {
        self.slots.push(Slot::Done(i));
        self
    }

    // ---- integer ALU ----------------------------------------------------

    /// `addi rd, rs1, imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.inst(Inst::OpImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm,
        })
    }
    /// `addiw rd, rs1, imm`
    pub fn addiw(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.inst(Inst::OpImm32 { rd, rs1, imm })
    }
    /// `andi rd, rs1, imm`
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.inst(Inst::OpImm {
            op: AluOp::And,
            rd,
            rs1,
            imm,
        })
    }
    /// `ori rd, rs1, imm`
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.inst(Inst::OpImm {
            op: AluOp::Or,
            rd,
            rs1,
            imm,
        })
    }
    /// `xori rd, rs1, imm`
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.inst(Inst::OpImm {
            op: AluOp::Xor,
            rd,
            rs1,
            imm,
        })
    }
    /// `slti rd, rs1, imm`
    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.inst(Inst::OpImm {
            op: AluOp::Slt,
            rd,
            rs1,
            imm,
        })
    }
    /// `sltiu rd, rs1, imm`
    pub fn sltiu(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.inst(Inst::OpImm {
            op: AluOp::Sltu,
            rd,
            rs1,
            imm,
        })
    }
    /// `slli rd, rs1, shamt`
    pub fn slli(&mut self, rd: Reg, rs1: Reg, shamt: u8) -> &mut Self {
        self.inst(Inst::OpImmShift {
            op: AluOp::Sll,
            rd,
            rs1,
            shamt,
        })
    }
    /// `srli rd, rs1, shamt`
    pub fn srli(&mut self, rd: Reg, rs1: Reg, shamt: u8) -> &mut Self {
        self.inst(Inst::OpImmShift {
            op: AluOp::Srl,
            rd,
            rs1,
            shamt,
        })
    }
    /// `srai rd, rs1, shamt`
    pub fn srai(&mut self, rd: Reg, rs1: Reg, shamt: u8) -> &mut Self {
        self.inst(Inst::OpImmShift {
            op: AluOp::Sra,
            rd,
            rs1,
            shamt,
        })
    }
    /// `add rd, rs1, rs2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Op {
            op: AluOp::Add,
            rd,
            rs1,
            rs2,
        })
    }
    /// `sub rd, rs1, rs2`
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Op {
            op: AluOp::Sub,
            rd,
            rs1,
            rs2,
        })
    }
    /// `and rd, rs1, rs2`
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Op {
            op: AluOp::And,
            rd,
            rs1,
            rs2,
        })
    }
    /// `or rd, rs1, rs2`
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Op {
            op: AluOp::Or,
            rd,
            rs1,
            rs2,
        })
    }
    /// `xor rd, rs1, rs2`
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Op {
            op: AluOp::Xor,
            rd,
            rs1,
            rs2,
        })
    }
    /// `sll rd, rs1, rs2`
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Op {
            op: AluOp::Sll,
            rd,
            rs1,
            rs2,
        })
    }
    /// `srl rd, rs1, rs2`
    pub fn srl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Op {
            op: AluOp::Srl,
            rd,
            rs1,
            rs2,
        })
    }
    /// `sra rd, rs1, rs2`
    pub fn sra(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Op {
            op: AluOp::Sra,
            rd,
            rs1,
            rs2,
        })
    }
    /// `slt rd, rs1, rs2`
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Op {
            op: AluOp::Slt,
            rd,
            rs1,
            rs2,
        })
    }
    /// `sltu rd, rs1, rs2`
    pub fn sltu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Op {
            op: AluOp::Sltu,
            rd,
            rs1,
            rs2,
        })
    }
    /// `addw rd, rs1, rs2`
    pub fn addw(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Op32 {
            op: AluOp::Add,
            rd,
            rs1,
            rs2,
        })
    }
    /// `subw rd, rs1, rs2`
    pub fn subw(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Op32 {
            op: AluOp::Sub,
            rd,
            rs1,
            rs2,
        })
    }
    /// `mul rd, rs1, rs2`
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::MulDiv {
            op: MulOp::Mul,
            rd,
            rs1,
            rs2,
        })
    }
    /// `mulhu rd, rs1, rs2`
    pub fn mulhu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::MulDiv {
            op: MulOp::Mulhu,
            rd,
            rs1,
            rs2,
        })
    }
    /// `div rd, rs1, rs2`
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::MulDiv {
            op: MulOp::Div,
            rd,
            rs1,
            rs2,
        })
    }
    /// `divu rd, rs1, rs2`
    pub fn divu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::MulDiv {
            op: MulOp::Divu,
            rd,
            rs1,
            rs2,
        })
    }
    /// `rem rd, rs1, rs2`
    pub fn rem(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::MulDiv {
            op: MulOp::Rem,
            rd,
            rs1,
            rs2,
        })
    }
    /// `remu rd, rs1, rs2`
    pub fn remu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::MulDiv {
            op: MulOp::Remu,
            rd,
            rs1,
            rs2,
        })
    }
    /// `lui rd, imm` (imm is the full shifted value, 4 KiB aligned)
    pub fn lui(&mut self, rd: Reg, imm: i64) -> &mut Self {
        self.inst(Inst::Lui { rd, imm })
    }
    /// `auipc rd, imm`
    pub fn auipc(&mut self, rd: Reg, imm: i64) -> &mut Self {
        self.inst(Inst::Auipc { rd, imm })
    }

    // ---- memory ---------------------------------------------------------

    /// `ld rd, offset(rs1)`
    pub fn ld(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.inst(Inst::Load {
            kind: LoadKind::D,
            rd,
            rs1,
            offset,
        })
    }
    /// `lw rd, offset(rs1)`
    pub fn lw(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.inst(Inst::Load {
            kind: LoadKind::W,
            rd,
            rs1,
            offset,
        })
    }
    /// `lwu rd, offset(rs1)`
    pub fn lwu(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.inst(Inst::Load {
            kind: LoadKind::Wu,
            rd,
            rs1,
            offset,
        })
    }
    /// `lh rd, offset(rs1)`
    pub fn lh(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.inst(Inst::Load {
            kind: LoadKind::H,
            rd,
            rs1,
            offset,
        })
    }
    /// `lhu rd, offset(rs1)`
    pub fn lhu(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.inst(Inst::Load {
            kind: LoadKind::Hu,
            rd,
            rs1,
            offset,
        })
    }
    /// `lb rd, offset(rs1)`
    pub fn lb(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.inst(Inst::Load {
            kind: LoadKind::B,
            rd,
            rs1,
            offset,
        })
    }
    /// `lbu rd, offset(rs1)`
    pub fn lbu(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.inst(Inst::Load {
            kind: LoadKind::Bu,
            rd,
            rs1,
            offset,
        })
    }
    /// `sd rs2, offset(rs1)`
    pub fn sd(&mut self, rs2: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.inst(Inst::Store {
            kind: StoreKind::D,
            rs1,
            rs2,
            offset,
        })
    }
    /// `sw rs2, offset(rs1)`
    pub fn sw(&mut self, rs2: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.inst(Inst::Store {
            kind: StoreKind::W,
            rs1,
            rs2,
            offset,
        })
    }
    /// `sh rs2, offset(rs1)`
    pub fn sh(&mut self, rs2: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.inst(Inst::Store {
            kind: StoreKind::H,
            rs1,
            rs2,
            offset,
        })
    }
    /// `sb rs2, offset(rs1)`
    pub fn sb(&mut self, rs2: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.inst(Inst::Store {
            kind: StoreKind::B,
            rs1,
            rs2,
            offset,
        })
    }
    /// `fld rd, offset(rs1)`
    pub fn fld(&mut self, rd: FReg, offset: i32, rs1: Reg) -> &mut Self {
        self.inst(Inst::Fld { rd, rs1, offset })
    }
    /// `fsd rs2, offset(rs1)`
    pub fn fsd(&mut self, rs2: FReg, offset: i32, rs1: Reg) -> &mut Self {
        self.inst(Inst::Fsd { rs1, rs2, offset })
    }

    // ---- control flow ----------------------------------------------------

    /// `beq rs1, rs2, label`
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.slots.push(Slot::BranchTo {
            kind: BranchKind::Eq,
            rs1,
            rs2,
            label: label.into(),
        });
        self
    }
    /// `bne rs1, rs2, label`
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.slots.push(Slot::BranchTo {
            kind: BranchKind::Ne,
            rs1,
            rs2,
            label: label.into(),
        });
        self
    }
    /// `blt rs1, rs2, label`
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.slots.push(Slot::BranchTo {
            kind: BranchKind::Lt,
            rs1,
            rs2,
            label: label.into(),
        });
        self
    }
    /// `bge rs1, rs2, label`
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.slots.push(Slot::BranchTo {
            kind: BranchKind::Ge,
            rs1,
            rs2,
            label: label.into(),
        });
        self
    }
    /// `bltu rs1, rs2, label`
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.slots.push(Slot::BranchTo {
            kind: BranchKind::Ltu,
            rs1,
            rs2,
            label: label.into(),
        });
        self
    }
    /// `bgeu rs1, rs2, label`
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.slots.push(Slot::BranchTo {
            kind: BranchKind::Geu,
            rs1,
            rs2,
            label: label.into(),
        });
        self
    }
    /// `beqz rs1, label`
    pub fn beqz(&mut self, rs1: Reg, label: &str) -> &mut Self {
        self.beq(rs1, ZERO, label)
    }
    /// `bnez rs1, label`
    pub fn bnez(&mut self, rs1: Reg, label: &str) -> &mut Self {
        self.bne(rs1, ZERO, label)
    }
    /// `jal rd, label`
    pub fn jal(&mut self, rd: Reg, label: &str) -> &mut Self {
        self.slots.push(Slot::JalTo {
            rd,
            label: label.into(),
        });
        self
    }
    /// `j label` (jal zero)
    pub fn j(&mut self, label: &str) -> &mut Self {
        self.jal(ZERO, label)
    }
    /// `call label` (jal ra)
    pub fn call(&mut self, label: &str) -> &mut Self {
        self.jal(RA, label)
    }
    /// `jalr rd, offset(rs1)`
    pub fn jalr(&mut self, rd: Reg, rs1: Reg, offset: i32) -> &mut Self {
        self.inst(Inst::Jalr { rd, rs1, offset })
    }
    /// `ret` (jalr zero, 0(ra))
    pub fn ret(&mut self) -> &mut Self {
        self.jalr(ZERO, RA, 0)
    }
    /// `jr rs1` (jalr zero, 0(rs1)) — indirect jump, e.g. switch tables.
    pub fn jr(&mut self, rs1: Reg) -> &mut Self {
        self.jalr(ZERO, rs1, 0)
    }

    // ---- FP ---------------------------------------------------------------

    /// `fadd.d rd, rs1, rs2`
    pub fn fadd_d(&mut self, rd: FReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.inst(Inst::FpOp {
            op: FpOp::Add,
            rd,
            rs1,
            rs2,
        })
    }
    /// `fsub.d rd, rs1, rs2`
    pub fn fsub_d(&mut self, rd: FReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.inst(Inst::FpOp {
            op: FpOp::Sub,
            rd,
            rs1,
            rs2,
        })
    }
    /// `fmul.d rd, rs1, rs2`
    pub fn fmul_d(&mut self, rd: FReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.inst(Inst::FpOp {
            op: FpOp::Mul,
            rd,
            rs1,
            rs2,
        })
    }
    /// `fdiv.d rd, rs1, rs2`
    pub fn fdiv_d(&mut self, rd: FReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.inst(Inst::FpOp {
            op: FpOp::Div,
            rd,
            rs1,
            rs2,
        })
    }
    /// `fmadd.d rd, rs1, rs2, rs3`
    pub fn fmadd_d(&mut self, rd: FReg, rs1: FReg, rs2: FReg, rs3: FReg) -> &mut Self {
        self.inst(Inst::Fmadd { rd, rs1, rs2, rs3 })
    }
    /// `fsqrt.d rd, rs1`
    pub fn fsqrt_d(&mut self, rd: FReg, rs1: FReg) -> &mut Self {
        self.inst(Inst::Fsqrt { rd, rs1 })
    }
    /// `fmv.d rd, rs1` (fsgnj.d rd, rs1, rs1)
    pub fn fmv_d(&mut self, rd: FReg, rs1: FReg) -> &mut Self {
        self.inst(Inst::FpOp {
            op: FpOp::Sgnj,
            rd,
            rs1,
            rs2: rs1,
        })
    }
    /// `fneg.d rd, rs1` (fsgnjn.d rd, rs1, rs1)
    pub fn fneg_d(&mut self, rd: FReg, rs1: FReg) -> &mut Self {
        self.inst(Inst::FpOp {
            op: FpOp::Sgnjn,
            rd,
            rs1,
            rs2: rs1,
        })
    }
    /// `feq.d rd, rs1, rs2`
    pub fn feq_d(&mut self, rd: Reg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.inst(Inst::FpCmp {
            cmp: FpCmp::Eq,
            rd,
            rs1,
            rs2,
        })
    }
    /// `flt.d rd, rs1, rs2`
    pub fn flt_d(&mut self, rd: Reg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.inst(Inst::FpCmp {
            cmp: FpCmp::Lt,
            rd,
            rs1,
            rs2,
        })
    }
    /// `fle.d rd, rs1, rs2`
    pub fn fle_d(&mut self, rd: Reg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.inst(Inst::FpCmp {
            cmp: FpCmp::Le,
            rd,
            rs1,
            rs2,
        })
    }
    /// `fcvt.d.l rd, rs1`
    pub fn fcvt_d_l(&mut self, rd: FReg, rs1: Reg) -> &mut Self {
        self.inst(Inst::FcvtDL { rd, rs1 })
    }
    /// `fcvt.d.w rd, rs1`
    pub fn fcvt_d_w(&mut self, rd: FReg, rs1: Reg) -> &mut Self {
        self.inst(Inst::FcvtDW { rd, rs1 })
    }
    /// `fcvt.l.d rd, rs1`
    pub fn fcvt_l_d(&mut self, rd: Reg, rs1: FReg) -> &mut Self {
        self.inst(Inst::FcvtLD { rd, rs1 })
    }
    /// `fcvt.w.d rd, rs1`
    pub fn fcvt_w_d(&mut self, rd: Reg, rs1: FReg) -> &mut Self {
        self.inst(Inst::FcvtWD { rd, rs1 })
    }
    /// `fmv.x.d rd, rs1`
    pub fn fmv_x_d(&mut self, rd: Reg, rs1: FReg) -> &mut Self {
        self.inst(Inst::FmvXD { rd, rs1 })
    }
    /// `fmv.d.x rd, rs1`
    pub fn fmv_d_x(&mut self, rd: FReg, rs1: Reg) -> &mut Self {
        self.inst(Inst::FmvDX { rd, rs1 })
    }
    /// Custom `fsin.d rd, rs1` — libm `sin()` stand-in (see crate docs).
    pub fn fsin_d(&mut self, rd: FReg, rs1: FReg) -> &mut Self {
        self.inst(Inst::Fsin { rd, rs1 })
    }

    // ---- system -------------------------------------------------------------

    /// `fence`
    pub fn fence(&mut self) -> &mut Self {
        self.inst(Inst::Fence)
    }
    /// `ecall`
    pub fn ecall(&mut self) -> &mut Self {
        self.inst(Inst::Ecall)
    }
    /// `csrrs rd, csr, rs1`
    pub fn csrrs(&mut self, rd: Reg, csr: u16, rs1: Reg) -> &mut Self {
        self.inst(Inst::Csrrs { rd, csr, rs1 })
    }

    // ---- pseudo-instructions ---------------------------------------------------

    /// `nop`
    pub fn nop(&mut self) -> &mut Self {
        self.addi(ZERO, ZERO, 0)
    }
    /// `mv rd, rs1`
    pub fn mv(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.addi(rd, rs1, 0)
    }
    /// `neg rd, rs1`
    pub fn neg(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.sub(rd, ZERO, rs1)
    }
    /// `seqz rd, rs1`
    pub fn seqz(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.sltiu(rd, rs1, 1)
    }
    /// `snez rd, rs1`
    pub fn snez(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.sltu(rd, ZERO, rs1)
    }

    /// `li rd, imm` — materializes an arbitrary 64-bit constant
    /// (1–8 instructions, standard lui/addiw/slli/addi expansion).
    pub fn li(&mut self, rd: Reg, imm: i64) -> &mut Self {
        self.li_rec(rd, imm);
        self
    }

    fn li_rec(&mut self, rd: Reg, imm: i64) {
        if (-2048..=2047).contains(&imm) {
            self.addi(rd, ZERO, imm as i32);
            return;
        }
        if imm >= i32::MIN as i64 && imm <= i32::MAX as i64 {
            // lui + addiw, with carry correction for a negative low part.
            let lo = ((imm << 52) >> 52) as i32; // sign-extended low 12 bits
            let hi = (imm - lo as i64) & 0xFFFF_F000;
            // `hi` as computed can be 0x8000_0000 for imm near i32::MAX;
            // sign-extend it through the 32-bit LUI semantics.
            let hi_sext = (hi << 32) >> 32;
            self.lui(rd, hi_sext);
            if lo != 0 {
                self.addiw(rd, rd, lo);
            }
            return;
        }
        // 64-bit: materialize the upper part, shift, add low 12 bits.
        let lo = ((imm << 52) >> 52) as i32;
        // Wrapping is deliberate: the target composes `(upper << 12) + lo`
        // with 64-bit wraparound, so the value is preserved mod 2^64.
        let upper = imm.wrapping_sub(lo as i64) >> 12;
        self.li_rec(rd, upper);
        self.slli(rd, rd, 12);
        if lo != 0 {
            self.addi(rd, rd, lo);
        }
    }

    /// `la rd, sym` — loads the absolute address of a data symbol
    /// (always a 2-instruction lui/addiw pair; symbols may be defined
    /// after the reference).
    pub fn la(&mut self, rd: Reg, sym: &str) -> &mut Self {
        self.slots.push(Slot::LaHi {
            rd,
            sym: sym.into(),
        });
        self.slots.push(Slot::LaLo {
            rd,
            sym: sym.into(),
        });
        self
    }

    /// Exit the program via `ecall` with status `code`.
    pub fn exit(&mut self, code: i64) -> &mut Self {
        self.li(A0, code);
        self.li(A7, SYS_EXIT as i64);
        self.ecall()
    }

    // ---- assemble ---------------------------------------------------------------

    /// Resolves all labels and symbols and produces the final [`Program`].
    pub fn assemble(&self) -> Result<Program, AsmError> {
        let mut code = Vec::with_capacity(self.slots.len());
        for (idx, slot) in self.slots.iter().enumerate() {
            let pc = CODE_BASE + 4 * idx as u64;
            let inst = match slot {
                Slot::Done(i) => *i,
                Slot::BranchTo {
                    kind,
                    rs1,
                    rs2,
                    label,
                } => {
                    let target = self.resolve_label(label)?;
                    let offset = target as i64 - pc as i64;
                    if !(-4096..=4094).contains(&offset) {
                        return Err(AsmError::BranchOutOfRange {
                            label: label.clone(),
                            offset,
                        });
                    }
                    Inst::Branch {
                        kind: *kind,
                        rs1: *rs1,
                        rs2: *rs2,
                        offset: offset as i32,
                    }
                }
                Slot::JalTo { rd, label } => {
                    let target = self.resolve_label(label)?;
                    let offset = target as i64 - pc as i64;
                    if !(-(1 << 20)..(1 << 20)).contains(&offset) {
                        return Err(AsmError::JumpOutOfRange {
                            label: label.clone(),
                            offset,
                        });
                    }
                    Inst::Jal {
                        rd: *rd,
                        offset: offset as i32,
                    }
                }
                Slot::LaHi { rd, sym } => {
                    let (hi, _) = self.resolve_sym_parts(sym)?;
                    Inst::Lui { rd: *rd, imm: hi }
                }
                Slot::LaLo { rd, sym } => {
                    let (_, lo) = self.resolve_sym_parts(sym)?;
                    Inst::OpImm32 {
                        rd: *rd,
                        rs1: *rd,
                        imm: lo,
                    }
                }
            };
            code.push(inst.encode());
        }
        Ok(Program {
            code,
            code_base: CODE_BASE,
            data: self.data.clone(),
            data_base: DATA_BASE,
            entry: CODE_BASE,
        })
    }

    fn resolve_label(&self, label: &str) -> Result<u64, AsmError> {
        self.labels
            .get(label)
            .map(|&i| CODE_BASE + 4 * i as u64)
            .ok_or_else(|| AsmError::UndefinedLabel(label.to_string()))
    }

    fn resolve_sym_parts(&self, sym: &str) -> Result<(i64, i32), AsmError> {
        let addr = *self
            .syms
            .get(sym)
            .ok_or_else(|| AsmError::UndefinedSymbol(sym.to_string()))? as i64;
        debug_assert!(addr < (1 << 31), "data addresses must fit lui/addiw");
        let lo = ((addr << 52) >> 52) as i32;
        let hi = (addr - lo as i64) & 0xFFFF_F000;
        Ok((hi, lo))
    }
}

// Re-export SP so kernels can set up a stack without importing reg directly.
pub use crate::reg::SP as STACK_REG;

/// Convenience: sets up `sp` at [`STACK_TOP`] as a prologue.
pub fn with_stack(a: &mut Asm) {
    a.li(SP, STACK_TOP as i64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Cpu, RunResult};
    use crate::reg::*;

    fn run(a: &Asm) -> Cpu {
        let p = a.assemble().expect("assembly failed");
        let mut cpu = Cpu::new(&p);
        match cpu.run(10_000_000) {
            RunResult::Exited(_) => cpu,
            other => panic!("program did not exit cleanly: {other:?}"),
        }
    }

    #[test]
    fn branch_loop_counts() {
        let mut a = Asm::new();
        a.li(T0, 0).li(T1, 10);
        a.label("loop");
        a.addi(T0, T0, 1);
        a.blt(T0, T1, "loop");
        a.mv(A0, T0);
        a.li(A7, SYS_EXIT as i64).ecall();
        let cpu = run(&a);
        assert_eq!(cpu.exit_code(), Some(10));
    }

    #[test]
    fn li_materializes_64_bit_constants() {
        for &v in &[
            0i64,
            1,
            -1,
            2047,
            -2048,
            2048,
            0x7FFF_FFFF,
            -0x8000_0000,
            0x8000_0000,
            0x1234_5678_9ABC_DEF0,
            i64::MIN,
            i64::MAX,
            0x7FFF_F000,
        ] {
            let mut a = Asm::new();
            a.li(A0, v);
            a.li(A7, SYS_EXIT as i64).ecall();
            let cpu = run(&a);
            assert_eq!(cpu.x(A0) as i64, v, "li failed for {v:#x}");
        }
    }

    #[test]
    fn la_and_data_roundtrip() {
        let mut a = Asm::new();
        a.data_label("tbl");
        a.data_u64s(&[5, 7, 11]);
        a.la(T0, "tbl");
        a.ld(A0, 16, T0); // third element
        a.li(A7, SYS_EXIT as i64).ecall();
        let cpu = run(&a);
        assert_eq!(cpu.exit_code(), Some(11));
    }

    #[test]
    fn forward_data_symbol_reference() {
        let mut a = Asm::new();
        a.la(T0, "later"); // referenced before definition
        a.ld(A0, 0, T0);
        a.li(A7, SYS_EXIT as i64).ecall();
        a.data_label("later");
        a.data_u64(42);
        let cpu = run(&a);
        assert_eq!(cpu.exit_code(), Some(42));
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut a = Asm::new();
        a.j("nowhere");
        assert_eq!(
            a.assemble().unwrap_err(),
            AsmError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    fn branch_out_of_range_is_an_error() {
        let mut a = Asm::new();
        a.label("start");
        for _ in 0..2000 {
            a.nop();
        }
        a.beq(ZERO, ZERO, "start");
        match a.assemble() {
            Err(AsmError::BranchOutOfRange { .. }) => {}
            other => panic!("expected out-of-range error, got {other:?}"),
        }
    }

    #[test]
    fn call_ret_works() {
        let mut a = Asm::new();
        with_stack(&mut a);
        a.li(A0, 5);
        a.call("double");
        a.li(A7, SYS_EXIT as i64).ecall();
        a.label("double");
        a.add(A0, A0, A0);
        a.ret();
        let cpu = run(&a);
        assert_eq!(cpu.exit_code(), Some(10));
    }

    #[test]
    fn exit_helper() {
        let mut a = Asm::new();
        a.exit(7);
        let cpu = run(&a);
        assert_eq!(cpu.exit_code(), Some(7));
    }
}

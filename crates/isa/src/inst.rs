//! Decoded RV64IM + D-subset instructions with exact bit-level
//! encode/decode.
//!
//! The encoding follows the RISC-V unprivileged specification (RV64I base,
//! M extension, and the portion of the D extension used by the workloads).
//! `encode(decode(x)) == x` holds for every word this module accepts, and
//! `decode(encode(i)) == i` holds for every [`Inst`] value with in-range
//! immediates — both are enforced by property tests.

use crate::reg::{FReg, Reg};
use std::fmt;

/// Coarse operation class, used by the timing models to choose functional
/// units and latencies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Single-cycle integer ALU op (add, logic, shifts, LUI, AUIPC).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide / remainder (long latency, unpipelined).
    IntDiv,
    /// Memory load (int or fp destination).
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional jump (JAL/JALR).
    Jump,
    /// FP add/sub/sign-ops/compares/converts/moves.
    FpAlu,
    /// FP multiply and fused multiply-add.
    FpMul,
    /// FP divide / sqrt (long latency, unpipelined).
    FpDiv,
    /// Long-latency transcendental (the custom `FSIN.D` stand-in for libm).
    FpTranscendental,
    /// System instruction (ECALL/EBREAK/CSR/FENCE).
    System,
}

/// Width/signedness selector for integer loads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LoadKind {
    /// LB: sign-extended byte.
    B,
    /// LH: sign-extended halfword.
    H,
    /// LW: sign-extended word.
    W,
    /// LD: doubleword.
    D,
    /// LBU: zero-extended byte.
    Bu,
    /// LHU: zero-extended halfword.
    Hu,
    /// LWU: zero-extended word.
    Wu,
}

impl LoadKind {
    /// Access size in bytes.
    pub fn size(self) -> u8 {
        match self {
            LoadKind::B | LoadKind::Bu => 1,
            LoadKind::H | LoadKind::Hu => 2,
            LoadKind::W | LoadKind::Wu => 4,
            LoadKind::D => 8,
        }
    }
    fn funct3(self) -> u32 {
        match self {
            LoadKind::B => 0b000,
            LoadKind::H => 0b001,
            LoadKind::W => 0b010,
            LoadKind::D => 0b011,
            LoadKind::Bu => 0b100,
            LoadKind::Hu => 0b101,
            LoadKind::Wu => 0b110,
        }
    }
}

/// Width selector for integer stores.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StoreKind {
    /// SB: byte.
    B,
    /// SH: halfword.
    H,
    /// SW: word.
    W,
    /// SD: doubleword.
    D,
}

impl StoreKind {
    /// Access size in bytes.
    pub fn size(self) -> u8 {
        match self {
            StoreKind::B => 1,
            StoreKind::H => 2,
            StoreKind::W => 4,
            StoreKind::D => 8,
        }
    }
    fn funct3(self) -> u32 {
        match self {
            StoreKind::B => 0b000,
            StoreKind::H => 0b001,
            StoreKind::W => 0b010,
            StoreKind::D => 0b011,
        }
    }
}

/// Register-register integer ALU operations (OP / OP-32 opcodes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Shift left logical.
    Sll,
    /// Set less than (signed).
    Slt,
    /// Set less than (unsigned).
    Sltu,
    /// Bitwise exclusive or.
    Xor,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
    /// Bitwise or.
    Or,
    /// Bitwise and.
    And,
}

impl AluOp {
    fn f3_f7(self) -> (u32, u32) {
        match self {
            AluOp::Add => (0b000, 0b0000000),
            AluOp::Sub => (0b000, 0b0100000),
            AluOp::Sll => (0b001, 0b0000000),
            AluOp::Slt => (0b010, 0b0000000),
            AluOp::Sltu => (0b011, 0b0000000),
            AluOp::Xor => (0b100, 0b0000000),
            AluOp::Srl => (0b101, 0b0000000),
            AluOp::Sra => (0b101, 0b0100000),
            AluOp::Or => (0b110, 0b0000000),
            AluOp::And => (0b111, 0b0000000),
        }
    }
}

/// M-extension multiply/divide operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MulOp {
    /// MUL: low 64 bits of product.
    Mul,
    /// MULH: high 64 bits, signed × signed.
    Mulh,
    /// MULHSU: high 64 bits, signed × unsigned.
    Mulhsu,
    /// MULHU: high 64 bits, unsigned × unsigned.
    Mulhu,
    /// DIV: signed division.
    Div,
    /// DIVU: unsigned division.
    Divu,
    /// REM: signed remainder.
    Rem,
    /// REMU: unsigned remainder.
    Remu,
}

impl MulOp {
    fn funct3(self) -> u32 {
        match self {
            MulOp::Mul => 0b000,
            MulOp::Mulh => 0b001,
            MulOp::Mulhsu => 0b010,
            MulOp::Mulhu => 0b011,
            MulOp::Div => 0b100,
            MulOp::Divu => 0b101,
            MulOp::Rem => 0b110,
            MulOp::Remu => 0b111,
        }
    }

    /// True for the divide/remainder subgroup (long-latency unit).
    pub fn is_div(self) -> bool {
        matches!(self, MulOp::Div | MulOp::Divu | MulOp::Rem | MulOp::Remu)
    }
}

/// Conditional branch comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if less than (signed).
    Lt,
    /// Branch if greater or equal (signed).
    Ge,
    /// Branch if less than (unsigned).
    Ltu,
    /// Branch if greater or equal (unsigned).
    Geu,
}

impl BranchKind {
    fn funct3(self) -> u32 {
        match self {
            BranchKind::Eq => 0b000,
            BranchKind::Ne => 0b001,
            BranchKind::Lt => 0b100,
            BranchKind::Ge => 0b101,
            BranchKind::Ltu => 0b110,
            BranchKind::Geu => 0b111,
        }
    }
}

/// Double-precision FP register-register operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// FADD.D
    Add,
    /// FSUB.D
    Sub,
    /// FMUL.D
    Mul,
    /// FDIV.D
    Div,
    /// FMIN.D
    Min,
    /// FMAX.D
    Max,
    /// FSGNJ.D (also encodes `fmv.d`)
    Sgnj,
    /// FSGNJN.D (also encodes `fneg.d`)
    Sgnjn,
    /// FSGNJX.D (also encodes `fabs.d`)
    Sgnjx,
}

/// FP comparison predicates (result to an integer register).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FpCmp {
    /// FEQ.D
    Eq,
    /// FLT.D
    Lt,
    /// FLE.D
    Le,
}

/// A decoded instruction.
///
/// Immediates are stored in their natural, sign-extended, byte-scaled form
/// (e.g. a branch offset is the byte distance from the branch PC).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // field meanings follow the RISC-V spec mnemonics
pub enum Inst {
    /// LUI rd, imm — load upper immediate (`imm` is the full shifted value).
    Lui { rd: Reg, imm: i64 },
    /// AUIPC rd, imm — add upper immediate to PC.
    Auipc { rd: Reg, imm: i64 },
    /// JAL rd, offset.
    Jal { rd: Reg, offset: i32 },
    /// JALR rd, rs1, offset.
    Jalr { rd: Reg, rs1: Reg, offset: i32 },
    /// Conditional branch.
    Branch {
        kind: BranchKind,
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    /// Integer load.
    Load {
        kind: LoadKind,
        rd: Reg,
        rs1: Reg,
        offset: i32,
    },
    /// Integer store.
    Store {
        kind: StoreKind,
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    /// OP-IMM: ADDI/SLTI/SLTIU/XORI/ORI/ANDI.
    OpImm {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    /// OP-IMM shift: SLLI/SRLI/SRAI (6-bit shamt on RV64).
    OpImmShift {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        shamt: u8,
    },
    /// OP-IMM-32: ADDIW.
    OpImm32 { rd: Reg, rs1: Reg, imm: i32 },
    /// OP-IMM-32 shift: SLLIW/SRLIW/SRAIW (5-bit shamt).
    OpImm32Shift {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        shamt: u8,
    },
    /// OP: register-register ALU.
    Op {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// OP-32: register-register ALU on the low 32 bits (ADDW/SUBW/SLLW/SRLW/SRAW).
    Op32 {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// M extension on 64-bit operands.
    MulDiv {
        op: MulOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// M extension on 32-bit operands (MULW/DIVW/DIVUW/REMW/REMUW).
    MulDiv32 {
        op: MulOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// FLD rd, offset(rs1).
    Fld { rd: FReg, rs1: Reg, offset: i32 },
    /// FSD rs2, offset(rs1).
    Fsd { rs1: Reg, rs2: FReg, offset: i32 },
    /// Double-precision register-register arithmetic.
    FpOp {
        op: FpOp,
        rd: FReg,
        rs1: FReg,
        rs2: FReg,
    },
    /// FSQRT.D rd, rs1.
    Fsqrt { rd: FReg, rs1: FReg },
    /// FMADD.D rd, rs1, rs2, rs3 → rd = rs1*rs2 + rs3.
    Fmadd {
        rd: FReg,
        rs1: FReg,
        rs2: FReg,
        rs3: FReg,
    },
    /// FP comparison into an integer register.
    FpCmp {
        cmp: FpCmp,
        rd: Reg,
        rs1: FReg,
        rs2: FReg,
    },
    /// FCVT.D.L rd, rs1 — signed 64-bit int to double.
    FcvtDL { rd: FReg, rs1: Reg },
    /// FCVT.D.W rd, rs1 — signed 32-bit int to double.
    FcvtDW { rd: FReg, rs1: Reg },
    /// FCVT.L.D rd, rs1 — double to signed 64-bit int (RTZ semantics here).
    FcvtLD { rd: Reg, rs1: FReg },
    /// FCVT.W.D rd, rs1 — double to signed 32-bit int (RTZ semantics here).
    FcvtWD { rd: Reg, rs1: FReg },
    /// FMV.X.D rd, rs1 — bit-move double to integer register.
    FmvXD { rd: Reg, rs1: FReg },
    /// FMV.D.X rd, rs1 — bit-move integer register to double.
    FmvDX { rd: FReg, rs1: Reg },
    /// Custom-0 `FSIN.D rd, rs1` — stands in for a libm sin() call.
    Fsin { rd: FReg, rs1: FReg },
    /// FENCE (modeled as a pipeline drain; fields ignored).
    Fence,
    /// ECALL.
    Ecall,
    /// EBREAK.
    Ebreak,
    /// CSRRS rd, csr, rs1 — only the read-only uses (rs1 = x0) are executed;
    /// the interpreter exposes `cycle`, `time` and `instret`.
    Csrrs { rd: Reg, csr: u16, rs1: Reg },
}

/// Error returned when a 32-bit word is not a recognised instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending instruction word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

// Opcode constants (major opcode, bits [6:0]).
const OPC_LOAD: u32 = 0x03;
const OPC_LOAD_FP: u32 = 0x07;
const OPC_CUSTOM0: u32 = 0x0B;
const OPC_MISC_MEM: u32 = 0x0F;
const OPC_OP_IMM: u32 = 0x13;
const OPC_AUIPC: u32 = 0x17;
const OPC_OP_IMM_32: u32 = 0x1B;
const OPC_STORE: u32 = 0x23;
const OPC_STORE_FP: u32 = 0x27;
const OPC_OP: u32 = 0x33;
const OPC_LUI: u32 = 0x37;
const OPC_OP_32: u32 = 0x3B;
const OPC_MADD: u32 = 0x43;
const OPC_OP_FP: u32 = 0x53;
const OPC_BRANCH: u32 = 0x63;
const OPC_JALR: u32 = 0x67;
const OPC_JAL: u32 = 0x6F;
const OPC_SYSTEM: u32 = 0x73;

// Field packers.
#[inline]
fn r_type(opc: u32, rd: u32, f3: u32, rs1: u32, rs2: u32, f7: u32) -> u32 {
    opc | (rd << 7) | (f3 << 12) | (rs1 << 15) | (rs2 << 20) | (f7 << 25)
}

#[inline]
fn i_type(opc: u32, rd: u32, f3: u32, rs1: u32, imm: i32) -> u32 {
    debug_assert!((-2048..=2047).contains(&imm), "I-imm out of range: {imm}");
    opc | (rd << 7) | (f3 << 12) | (rs1 << 15) | (((imm as u32) & 0xFFF) << 20)
}

#[inline]
fn s_type(opc: u32, f3: u32, rs1: u32, rs2: u32, imm: i32) -> u32 {
    debug_assert!((-2048..=2047).contains(&imm), "S-imm out of range: {imm}");
    let imm = imm as u32;
    opc | ((imm & 0x1F) << 7) | (f3 << 12) | (rs1 << 15) | (rs2 << 20) | (((imm >> 5) & 0x7F) << 25)
}

#[inline]
fn b_type(opc: u32, f3: u32, rs1: u32, rs2: u32, imm: i32) -> u32 {
    debug_assert!(
        (-4096..=4095).contains(&imm) && imm % 2 == 0,
        "B-imm out of range or misaligned: {imm}"
    );
    let imm = imm as u32;
    opc | (((imm >> 11) & 1) << 7)
        | (((imm >> 1) & 0xF) << 8)
        | (f3 << 12)
        | (rs1 << 15)
        | (rs2 << 20)
        | (((imm >> 5) & 0x3F) << 25)
        | (((imm >> 12) & 1) << 31)
}

#[inline]
fn u_type(opc: u32, rd: u32, imm: i64) -> u32 {
    debug_assert!(imm % 4096 == 0, "U-imm must be 4 KiB aligned: {imm}");
    let imm20 = ((imm >> 12) as u32) & 0xFFFFF;
    opc | (rd << 7) | (imm20 << 12)
}

#[inline]
fn j_type(opc: u32, rd: u32, imm: i32) -> u32 {
    debug_assert!(
        (-(1 << 20)..(1 << 20)).contains(&imm) && imm % 2 == 0,
        "J-imm out of range or misaligned: {imm}"
    );
    let imm = imm as u32;
    opc | (rd << 7)
        | (((imm >> 12) & 0xFF) << 12)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 20) & 1) << 31)
}

// Field extractors.
#[inline]
fn rd_of(w: u32) -> u32 {
    (w >> 7) & 0x1F
}
#[inline]
fn f3_of(w: u32) -> u32 {
    (w >> 12) & 0x7
}
#[inline]
fn rs1_of(w: u32) -> u32 {
    (w >> 15) & 0x1F
}
#[inline]
fn rs2_of(w: u32) -> u32 {
    (w >> 20) & 0x1F
}
#[inline]
fn f7_of(w: u32) -> u32 {
    (w >> 25) & 0x7F
}
#[inline]
fn i_imm(w: u32) -> i32 {
    (w as i32) >> 20
}
#[inline]
fn s_imm(w: u32) -> i32 {
    (((w as i32) >> 25) << 5) | (((w >> 7) & 0x1F) as i32)
}
#[inline]
fn b_imm(w: u32) -> i32 {
    let sign = (w as i32) >> 31; // bit 12, sign-extended
    (sign << 12)
        | ((((w >> 7) & 1) as i32) << 11)
        | ((((w >> 25) & 0x3F) as i32) << 5)
        | ((((w >> 8) & 0xF) as i32) << 1)
}
#[inline]
fn u_imm(w: u32) -> i64 {
    ((w & 0xFFFFF000) as i32) as i64
}
#[inline]
fn j_imm(w: u32) -> i32 {
    let sign = (w as i32) >> 31; // bit 20, sign-extended
    (sign << 20)
        | ((((w >> 12) & 0xFF) as i32) << 12)
        | ((((w >> 20) & 1) as i32) << 11)
        | ((((w >> 21) & 0x3FF) as i32) << 1)
}

/// Rounding-mode field used on encode (DYN).
const RM_DYN: u32 = 0b111;
/// Format field for double precision in OP-FP funct7.
const FMT_D: u32 = 0b01;

impl Inst {
    /// Encodes this instruction to its 32-bit RISC-V machine word.
    ///
    /// Panics (in debug builds) if an immediate is out of the encodable
    /// range; the assembler validates ranges before calling this.
    pub fn encode(self) -> u32 {
        use crate::inst::{FpCmp as FCmp, FpOp as FOp};
        use Inst::*;
        match self {
            Lui { rd, imm } => u_type(OPC_LUI, rd.0 as u32, imm),
            Auipc { rd, imm } => u_type(OPC_AUIPC, rd.0 as u32, imm),
            Jal { rd, offset } => j_type(OPC_JAL, rd.0 as u32, offset),
            Jalr { rd, rs1, offset } => i_type(OPC_JALR, rd.0 as u32, 0, rs1.0 as u32, offset),
            Branch {
                kind,
                rs1,
                rs2,
                offset,
            } => b_type(
                OPC_BRANCH,
                kind.funct3(),
                rs1.0 as u32,
                rs2.0 as u32,
                offset,
            ),
            Load {
                kind,
                rd,
                rs1,
                offset,
            } => i_type(OPC_LOAD, rd.0 as u32, kind.funct3(), rs1.0 as u32, offset),
            Store {
                kind,
                rs1,
                rs2,
                offset,
            } => s_type(OPC_STORE, kind.funct3(), rs1.0 as u32, rs2.0 as u32, offset),
            OpImm { op, rd, rs1, imm } => {
                let (f3, _) = op.f3_f7();
                debug_assert!(
                    matches!(
                        op,
                        AluOp::Add | AluOp::Slt | AluOp::Sltu | AluOp::Xor | AluOp::Or | AluOp::And
                    ),
                    "OP-IMM does not encode {op:?}"
                );
                i_type(OPC_OP_IMM, rd.0 as u32, f3, rs1.0 as u32, imm)
            }
            OpImmShift { op, rd, rs1, shamt } => {
                debug_assert!(shamt < 64);
                let (f3, f7) = op.f3_f7();
                debug_assert!(matches!(op, AluOp::Sll | AluOp::Srl | AluOp::Sra));
                r_type(
                    OPC_OP_IMM,
                    rd.0 as u32,
                    f3,
                    rs1.0 as u32,
                    (shamt & 0x1F) as u32,
                    f7 | ((shamt as u32) >> 5),
                )
            }
            OpImm32 { rd, rs1, imm } => i_type(OPC_OP_IMM_32, rd.0 as u32, 0, rs1.0 as u32, imm),
            OpImm32Shift { op, rd, rs1, shamt } => {
                debug_assert!(shamt < 32);
                let (f3, f7) = op.f3_f7();
                debug_assert!(matches!(op, AluOp::Sll | AluOp::Srl | AluOp::Sra));
                r_type(
                    OPC_OP_IMM_32,
                    rd.0 as u32,
                    f3,
                    rs1.0 as u32,
                    shamt as u32,
                    f7,
                )
            }
            Op { op, rd, rs1, rs2 } => {
                let (f3, f7) = op.f3_f7();
                r_type(OPC_OP, rd.0 as u32, f3, rs1.0 as u32, rs2.0 as u32, f7)
            }
            Op32 { op, rd, rs1, rs2 } => {
                let (f3, f7) = op.f3_f7();
                debug_assert!(matches!(
                    op,
                    AluOp::Add | AluOp::Sub | AluOp::Sll | AluOp::Srl | AluOp::Sra
                ));
                r_type(OPC_OP_32, rd.0 as u32, f3, rs1.0 as u32, rs2.0 as u32, f7)
            }
            MulDiv { op, rd, rs1, rs2 } => r_type(
                OPC_OP,
                rd.0 as u32,
                op.funct3(),
                rs1.0 as u32,
                rs2.0 as u32,
                1,
            ),
            MulDiv32 { op, rd, rs1, rs2 } => {
                debug_assert!(
                    matches!(
                        op,
                        MulOp::Mul | MulOp::Div | MulOp::Divu | MulOp::Rem | MulOp::Remu
                    ),
                    "OP-32 does not encode {op:?}"
                );
                r_type(
                    OPC_OP_32,
                    rd.0 as u32,
                    op.funct3(),
                    rs1.0 as u32,
                    rs2.0 as u32,
                    1,
                )
            }
            Fld { rd, rs1, offset } => {
                i_type(OPC_LOAD_FP, rd.0 as u32, 0b011, rs1.0 as u32, offset)
            }
            Fsd { rs1, rs2, offset } => {
                s_type(OPC_STORE_FP, 0b011, rs1.0 as u32, rs2.0 as u32, offset)
            }
            FpOp { op, rd, rs1, rs2 } => {
                let (f7hi, f3) = match op {
                    FOp::Add => (0b00000, RM_DYN),
                    FOp::Sub => (0b00001, RM_DYN),
                    FOp::Mul => (0b00010, RM_DYN),
                    FOp::Div => (0b00011, RM_DYN),
                    FOp::Sgnj => (0b00100, 0b000),
                    FOp::Sgnjn => (0b00100, 0b001),
                    FOp::Sgnjx => (0b00100, 0b010),
                    FOp::Min => (0b00101, 0b000),
                    FOp::Max => (0b00101, 0b001),
                };
                r_type(
                    OPC_OP_FP,
                    rd.0 as u32,
                    f3,
                    rs1.0 as u32,
                    rs2.0 as u32,
                    (f7hi << 2) | FMT_D,
                )
            }
            Fsqrt { rd, rs1 } => r_type(
                OPC_OP_FP,
                rd.0 as u32,
                RM_DYN,
                rs1.0 as u32,
                0,
                (0b01011 << 2) | FMT_D,
            ),
            Fmadd { rd, rs1, rs2, rs3 } => {
                OPC_MADD
                    | ((rd.0 as u32) << 7)
                    | (RM_DYN << 12)
                    | ((rs1.0 as u32) << 15)
                    | ((rs2.0 as u32) << 20)
                    | (FMT_D << 25)
                    | ((rs3.0 as u32) << 27)
            }
            FpCmp { cmp, rd, rs1, rs2 } => {
                let f3 = match cmp {
                    FCmp::Le => 0b000,
                    FCmp::Lt => 0b001,
                    FCmp::Eq => 0b010,
                };
                r_type(
                    OPC_OP_FP,
                    rd.0 as u32,
                    f3,
                    rs1.0 as u32,
                    rs2.0 as u32,
                    (0b10100 << 2) | FMT_D,
                )
            }
            FcvtDL { rd, rs1 } => r_type(
                OPC_OP_FP,
                rd.0 as u32,
                RM_DYN,
                rs1.0 as u32,
                0b00010,
                (0b11010 << 2) | FMT_D,
            ),
            FcvtDW { rd, rs1 } => r_type(
                OPC_OP_FP,
                rd.0 as u32,
                RM_DYN,
                rs1.0 as u32,
                0b00000,
                (0b11010 << 2) | FMT_D,
            ),
            FcvtLD { rd, rs1 } => r_type(
                OPC_OP_FP,
                rd.0 as u32,
                0b001,
                rs1.0 as u32,
                0b00010,
                (0b11000 << 2) | FMT_D,
            ),
            FcvtWD { rd, rs1 } => r_type(
                OPC_OP_FP,
                rd.0 as u32,
                0b001,
                rs1.0 as u32,
                0b00000,
                (0b11000 << 2) | FMT_D,
            ),
            FmvXD { rd, rs1 } => r_type(
                OPC_OP_FP,
                rd.0 as u32,
                0b000,
                rs1.0 as u32,
                0,
                (0b11100 << 2) | FMT_D,
            ),
            FmvDX { rd, rs1 } => r_type(
                OPC_OP_FP,
                rd.0 as u32,
                0b000,
                rs1.0 as u32,
                0,
                (0b11110 << 2) | FMT_D,
            ),
            Fsin { rd, rs1 } => r_type(OPC_CUSTOM0, rd.0 as u32, 0, rs1.0 as u32, 0, 0),
            Fence => i_type(OPC_MISC_MEM, 0, 0, 0, 0x0FF),
            Ecall => OPC_SYSTEM,
            Ebreak => OPC_SYSTEM | (1 << 20),
            Csrrs { rd, csr, rs1 } => {
                OPC_SYSTEM
                    | ((rd.0 as u32) << 7)
                    | (0b010 << 12)
                    | ((rs1.0 as u32) << 15)
                    | ((csr as u32) << 20)
            }
        }
    }

    /// Decodes a 32-bit machine word.
    pub fn decode(w: u32) -> Result<Inst, DecodeError> {
        use crate::inst::{FpCmp as FCmp, FpOp as FOp};
        use Inst::*;
        let err = Err(DecodeError { word: w });
        let opc = w & 0x7F;
        let rd = Reg(rd_of(w) as u8);
        let frd = FReg(rd_of(w) as u8);
        let rs1 = Reg(rs1_of(w) as u8);
        let frs1 = FReg(rs1_of(w) as u8);
        let rs2 = Reg(rs2_of(w) as u8);
        let frs2 = FReg(rs2_of(w) as u8);
        let f3 = f3_of(w);
        let f7 = f7_of(w);
        Ok(match opc {
            OPC_LUI => Lui { rd, imm: u_imm(w) },
            OPC_AUIPC => Auipc { rd, imm: u_imm(w) },
            OPC_JAL => Jal {
                rd,
                offset: j_imm(w),
            },
            OPC_JALR if f3 == 0 => Jalr {
                rd,
                rs1,
                offset: i_imm(w),
            },
            OPC_BRANCH => {
                let kind = match f3 {
                    0b000 => BranchKind::Eq,
                    0b001 => BranchKind::Ne,
                    0b100 => BranchKind::Lt,
                    0b101 => BranchKind::Ge,
                    0b110 => BranchKind::Ltu,
                    0b111 => BranchKind::Geu,
                    _ => return err,
                };
                Branch {
                    kind,
                    rs1,
                    rs2,
                    offset: b_imm(w),
                }
            }
            OPC_LOAD => {
                let kind = match f3 {
                    0b000 => LoadKind::B,
                    0b001 => LoadKind::H,
                    0b010 => LoadKind::W,
                    0b011 => LoadKind::D,
                    0b100 => LoadKind::Bu,
                    0b101 => LoadKind::Hu,
                    0b110 => LoadKind::Wu,
                    _ => return err,
                };
                Load {
                    kind,
                    rd,
                    rs1,
                    offset: i_imm(w),
                }
            }
            OPC_STORE => {
                let kind = match f3 {
                    0b000 => StoreKind::B,
                    0b001 => StoreKind::H,
                    0b010 => StoreKind::W,
                    0b011 => StoreKind::D,
                    _ => return err,
                };
                Store {
                    kind,
                    rs1,
                    rs2,
                    offset: s_imm(w),
                }
            }
            OPC_OP_IMM => match f3 {
                0b000 => OpImm {
                    op: AluOp::Add,
                    rd,
                    rs1,
                    imm: i_imm(w),
                },
                0b010 => OpImm {
                    op: AluOp::Slt,
                    rd,
                    rs1,
                    imm: i_imm(w),
                },
                0b011 => OpImm {
                    op: AluOp::Sltu,
                    rd,
                    rs1,
                    imm: i_imm(w),
                },
                0b100 => OpImm {
                    op: AluOp::Xor,
                    rd,
                    rs1,
                    imm: i_imm(w),
                },
                0b110 => OpImm {
                    op: AluOp::Or,
                    rd,
                    rs1,
                    imm: i_imm(w),
                },
                0b111 => OpImm {
                    op: AluOp::And,
                    rd,
                    rs1,
                    imm: i_imm(w),
                },
                0b001 if f7 >> 1 == 0 => OpImmShift {
                    op: AluOp::Sll,
                    rd,
                    rs1,
                    shamt: (rs2_of(w) | ((f7 & 1) << 5)) as u8,
                },
                0b101 if f7 >> 1 == 0 => OpImmShift {
                    op: AluOp::Srl,
                    rd,
                    rs1,
                    shamt: (rs2_of(w) | ((f7 & 1) << 5)) as u8,
                },
                0b101 if f7 >> 1 == 0b010000 => OpImmShift {
                    op: AluOp::Sra,
                    rd,
                    rs1,
                    shamt: (rs2_of(w) | ((f7 & 1) << 5)) as u8,
                },
                _ => return err,
            },
            OPC_OP_IMM_32 => match (f3, f7) {
                (0b000, _) => OpImm32 {
                    rd,
                    rs1,
                    imm: i_imm(w),
                },
                (0b001, 0) => OpImm32Shift {
                    op: AluOp::Sll,
                    rd,
                    rs1,
                    shamt: rs2_of(w) as u8,
                },
                (0b101, 0) => OpImm32Shift {
                    op: AluOp::Srl,
                    rd,
                    rs1,
                    shamt: rs2_of(w) as u8,
                },
                (0b101, 0b0100000) => OpImm32Shift {
                    op: AluOp::Sra,
                    rd,
                    rs1,
                    shamt: rs2_of(w) as u8,
                },
                _ => return err,
            },
            OPC_OP => {
                if f7 == 1 {
                    let op = match f3 {
                        0b000 => MulOp::Mul,
                        0b001 => MulOp::Mulh,
                        0b010 => MulOp::Mulhsu,
                        0b011 => MulOp::Mulhu,
                        0b100 => MulOp::Div,
                        0b101 => MulOp::Divu,
                        0b110 => MulOp::Rem,
                        0b111 => MulOp::Remu,
                        _ => unreachable!(),
                    };
                    MulDiv { op, rd, rs1, rs2 }
                } else {
                    let op = match (f3, f7) {
                        (0b000, 0b0000000) => AluOp::Add,
                        (0b000, 0b0100000) => AluOp::Sub,
                        (0b001, 0b0000000) => AluOp::Sll,
                        (0b010, 0b0000000) => AluOp::Slt,
                        (0b011, 0b0000000) => AluOp::Sltu,
                        (0b100, 0b0000000) => AluOp::Xor,
                        (0b101, 0b0000000) => AluOp::Srl,
                        (0b101, 0b0100000) => AluOp::Sra,
                        (0b110, 0b0000000) => AluOp::Or,
                        (0b111, 0b0000000) => AluOp::And,
                        _ => return err,
                    };
                    Op { op, rd, rs1, rs2 }
                }
            }
            OPC_OP_32 => {
                if f7 == 1 {
                    let op = match f3 {
                        0b000 => MulOp::Mul,
                        0b100 => MulOp::Div,
                        0b101 => MulOp::Divu,
                        0b110 => MulOp::Rem,
                        0b111 => MulOp::Remu,
                        _ => return err,
                    };
                    MulDiv32 { op, rd, rs1, rs2 }
                } else {
                    let op = match (f3, f7) {
                        (0b000, 0b0000000) => AluOp::Add,
                        (0b000, 0b0100000) => AluOp::Sub,
                        (0b001, 0b0000000) => AluOp::Sll,
                        (0b101, 0b0000000) => AluOp::Srl,
                        (0b101, 0b0100000) => AluOp::Sra,
                        _ => return err,
                    };
                    Op32 { op, rd, rs1, rs2 }
                }
            }
            OPC_LOAD_FP if f3 == 0b011 => Fld {
                rd: frd,
                rs1,
                offset: i_imm(w),
            },
            OPC_STORE_FP if f3 == 0b011 => Fsd {
                rs1,
                rs2: frs2,
                offset: s_imm(w),
            },
            OPC_MADD if (w >> 25) & 0b11 == FMT_D && f3 == RM_DYN => Fmadd {
                rd: frd,
                rs1: frs1,
                rs2: frs2,
                rs3: FReg((w >> 27) as u8 & 0x1F),
            },
            OPC_OP_FP if f7 & 0b11 == FMT_D => {
                let f7hi = f7 >> 2;
                match f7hi {
                    // Arithmetic ops are canonical only with rm = DYN,
                    // the encoding this crate emits.
                    0b00000 if f3 == RM_DYN => FpOp {
                        op: FOp::Add,
                        rd: frd,
                        rs1: frs1,
                        rs2: frs2,
                    },
                    0b00001 if f3 == RM_DYN => FpOp {
                        op: FOp::Sub,
                        rd: frd,
                        rs1: frs1,
                        rs2: frs2,
                    },
                    0b00010 if f3 == RM_DYN => FpOp {
                        op: FOp::Mul,
                        rd: frd,
                        rs1: frs1,
                        rs2: frs2,
                    },
                    0b00011 if f3 == RM_DYN => FpOp {
                        op: FOp::Div,
                        rd: frd,
                        rs1: frs1,
                        rs2: frs2,
                    },
                    0b00100 => {
                        let op = match f3 {
                            0b000 => FOp::Sgnj,
                            0b001 => FOp::Sgnjn,
                            0b010 => FOp::Sgnjx,
                            _ => return err,
                        };
                        FpOp {
                            op,
                            rd: frd,
                            rs1: frs1,
                            rs2: frs2,
                        }
                    }
                    0b00101 => {
                        let op = match f3 {
                            0b000 => FOp::Min,
                            0b001 => FOp::Max,
                            _ => return err,
                        };
                        FpOp {
                            op,
                            rd: frd,
                            rs1: frs1,
                            rs2: frs2,
                        }
                    }
                    0b01011 if rs2_of(w) == 0 && f3 == RM_DYN => Fsqrt { rd: frd, rs1: frs1 },
                    0b10100 => {
                        let cmp = match f3 {
                            0b000 => FCmp::Le,
                            0b001 => FCmp::Lt,
                            0b010 => FCmp::Eq,
                            _ => return err,
                        };
                        FpCmp {
                            cmp,
                            rd,
                            rs1: frs1,
                            rs2: frs2,
                        }
                    }
                    0b11010 if f3 == RM_DYN => match rs2_of(w) {
                        0b00010 => FcvtDL { rd: frd, rs1 },
                        0b00000 => FcvtDW { rd: frd, rs1 },
                        _ => return err,
                    },
                    // Conversions to int are canonical with rm = RTZ (001).
                    0b11000 if f3 == 0b001 => match rs2_of(w) {
                        0b00010 => FcvtLD { rd, rs1: frs1 },
                        0b00000 => FcvtWD { rd, rs1: frs1 },
                        _ => return err,
                    },
                    0b11100 if rs2_of(w) == 0 && f3 == 0 => FmvXD { rd, rs1: frs1 },
                    0b11110 if rs2_of(w) == 0 && f3 == 0 => FmvDX { rd: frd, rs1 },
                    _ => return err,
                }
            }
            OPC_CUSTOM0 if f3 == 0 && f7 == 0 && rs2_of(w) == 0 => Fsin { rd: frd, rs1: frs1 },
            // Only the canonical full fence (pred = succ = iorw) is
            // accepted; we never emit other fence flavors.
            OPC_MISC_MEM if w == 0x0FF0_000F => Fence,
            OPC_SYSTEM => match (f3, w >> 20) {
                (0, 0) if rd_of(w) == 0 && rs1_of(w) == 0 => Ecall,
                (0, 1) if rd_of(w) == 0 && rs1_of(w) == 0 => Ebreak,
                (0b010, csr) => Csrrs {
                    rd,
                    csr: csr as u16,
                    rs1,
                },
                _ => return err,
            },
            _ => return err,
        })
    }

    /// The coarse operation class (used for functional unit selection).
    pub fn class(self) -> OpClass {
        use crate::inst::FpOp as FOp;
        use Inst::*;
        match self {
            Lui { .. }
            | Auipc { .. }
            | OpImm { .. }
            | OpImmShift { .. }
            | OpImm32 { .. }
            | OpImm32Shift { .. }
            | Op { .. }
            | Op32 { .. } => OpClass::IntAlu,
            MulDiv { op, .. } | MulDiv32 { op, .. } => {
                if op.is_div() {
                    OpClass::IntDiv
                } else {
                    OpClass::IntMul
                }
            }
            Jal { .. } | Jalr { .. } => OpClass::Jump,
            Branch { .. } => OpClass::Branch,
            Load { .. } | Fld { .. } => OpClass::Load,
            Store { .. } | Fsd { .. } => OpClass::Store,
            FpOp { op, .. } => match op {
                FOp::Mul => OpClass::FpMul,
                FOp::Div => OpClass::FpDiv,
                _ => OpClass::FpAlu,
            },
            Fsqrt { .. } => OpClass::FpDiv,
            Fmadd { .. } => OpClass::FpMul,
            FpCmp { .. }
            | FcvtDL { .. }
            | FcvtDW { .. }
            | FcvtLD { .. }
            | FcvtWD { .. }
            | FmvXD { .. }
            | FmvDX { .. } => OpClass::FpAlu,
            Fsin { .. } => OpClass::FpTranscendental,
            Fence | Ecall | Ebreak | Csrrs { .. } => OpClass::System,
        }
    }

    /// Destination register, numbered 0–31 for integer and 32–63 for FP
    /// registers, or `None` (includes writes to `x0`, which are discarded).
    pub fn dest(self) -> Option<u8> {
        use Inst::*;
        let ireg = |r: Reg| if r.0 == 0 { None } else { Some(r.0) };
        let freg = |r: FReg| Some(32 + r.0);
        match self {
            Lui { rd, .. }
            | Auipc { rd, .. }
            | Jal { rd, .. }
            | Jalr { rd, .. }
            | Load { rd, .. }
            | OpImm { rd, .. }
            | OpImmShift { rd, .. }
            | OpImm32 { rd, .. }
            | OpImm32Shift { rd, .. }
            | Op { rd, .. }
            | Op32 { rd, .. }
            | MulDiv { rd, .. }
            | MulDiv32 { rd, .. }
            | FpCmp { rd, .. }
            | FcvtLD { rd, .. }
            | FcvtWD { rd, .. }
            | FmvXD { rd, .. }
            | Csrrs { rd, .. } => ireg(rd),
            Fld { rd, .. }
            | FpOp { rd, .. }
            | Fsqrt { rd, .. }
            | Fmadd { rd, .. }
            | FcvtDL { rd, .. }
            | FcvtDW { rd, .. }
            | FmvDX { rd, .. }
            | Fsin { rd, .. } => freg(rd),
            Branch { .. } | Store { .. } | Fsd { .. } | Fence | Ecall | Ebreak => None,
        }
    }

    /// Source registers in the unified 0–63 numbering (x0 omitted).
    pub fn sources(self) -> [Option<u8>; 3] {
        use Inst::*;
        let ireg = |r: Reg| if r.0 == 0 { None } else { Some(r.0) };
        let freg = |r: FReg| Some(32 + r.0);
        match self {
            Lui { .. } | Auipc { .. } | Jal { .. } | Fence | Ecall | Ebreak => [None; 3],
            Jalr { rs1, .. }
            | Load { rs1, .. }
            | OpImm { rs1, .. }
            | OpImmShift { rs1, .. }
            | OpImm32 { rs1, .. }
            | OpImm32Shift { rs1, .. }
            | Fld { rs1, .. }
            | Csrrs { rs1, .. } => [ireg(rs1), None, None],
            Branch { rs1, rs2, .. } | Store { rs1, rs2, .. } => [ireg(rs1), ireg(rs2), None],
            Op { rs1, rs2, .. }
            | Op32 { rs1, rs2, .. }
            | MulDiv { rs1, rs2, .. }
            | MulDiv32 { rs1, rs2, .. } => [ireg(rs1), ireg(rs2), None],
            Fsd { rs1, rs2, .. } => [ireg(rs1), freg(rs2), None],
            FpOp { rs1, rs2, .. } => [freg(rs1), freg(rs2), None],
            Fsqrt { rs1, .. } | Fsin { rs1, .. } => [freg(rs1), None, None],
            Fmadd { rs1, rs2, rs3, .. } => [freg(rs1), freg(rs2), Some(32 + rs3.0)],
            FpCmp { rs1, rs2, .. } => [freg(rs1), freg(rs2), None],
            FcvtDL { rs1, .. } | FcvtDW { rs1, .. } | FmvDX { rs1, .. } => [ireg(rs1), None, None],
            FcvtLD { rs1, .. } | FcvtWD { rs1, .. } | FmvXD { rs1, .. } => [freg(rs1), None, None],
        }
    }

    /// True if this instruction can redirect the PC.
    pub fn is_control_flow(self) -> bool {
        matches!(self.class(), OpClass::Branch | OpClass::Jump)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::*;

    fn rt(i: Inst) {
        let w = i.encode();
        let d = Inst::decode(w).unwrap_or_else(|e| panic!("decode failed for {i:?}: {e}"));
        assert_eq!(d, i, "round-trip mismatch, word={w:#010x}");
        assert_eq!(d.encode(), w);
    }

    #[test]
    fn roundtrip_basic_alu() {
        rt(Inst::Lui {
            rd: A0,
            imm: 0x12345 << 12,
        });
        rt(Inst::Lui {
            rd: A0,
            imm: -(0x800i64 << 12),
        });
        rt(Inst::Auipc {
            rd: T0,
            imm: 0x7FFFF << 12,
        });
        rt(Inst::OpImm {
            op: AluOp::Add,
            rd: A0,
            rs1: A1,
            imm: -2048,
        });
        rt(Inst::OpImm {
            op: AluOp::And,
            rd: A0,
            rs1: A1,
            imm: 2047,
        });
        rt(Inst::OpImmShift {
            op: AluOp::Sra,
            rd: T1,
            rs1: T2,
            shamt: 63,
        });
        rt(Inst::OpImmShift {
            op: AluOp::Sll,
            rd: T1,
            rs1: T2,
            shamt: 1,
        });
        rt(Inst::OpImm32 {
            rd: S3,
            rs1: S4,
            imm: -1,
        });
        rt(Inst::OpImm32Shift {
            op: AluOp::Srl,
            rd: S3,
            rs1: S4,
            shamt: 31,
        });
        rt(Inst::Op {
            op: AluOp::Sub,
            rd: A0,
            rs1: A1,
            rs2: A2,
        });
        rt(Inst::Op32 {
            op: AluOp::Sra,
            rd: A0,
            rs1: A1,
            rs2: A2,
        });
    }

    #[test]
    fn roundtrip_muldiv() {
        for op in [
            MulOp::Mul,
            MulOp::Mulh,
            MulOp::Mulhsu,
            MulOp::Mulhu,
            MulOp::Div,
            MulOp::Divu,
            MulOp::Rem,
            MulOp::Remu,
        ] {
            rt(Inst::MulDiv {
                op,
                rd: A0,
                rs1: A1,
                rs2: A2,
            });
        }
        for op in [MulOp::Mul, MulOp::Div, MulOp::Divu, MulOp::Rem, MulOp::Remu] {
            rt(Inst::MulDiv32 {
                op,
                rd: A0,
                rs1: A1,
                rs2: A2,
            });
        }
    }

    #[test]
    fn roundtrip_mem_and_control() {
        for kind in [
            LoadKind::B,
            LoadKind::H,
            LoadKind::W,
            LoadKind::D,
            LoadKind::Bu,
            LoadKind::Hu,
            LoadKind::Wu,
        ] {
            rt(Inst::Load {
                kind,
                rd: A0,
                rs1: SP,
                offset: -8,
            });
        }
        for kind in [StoreKind::B, StoreKind::H, StoreKind::W, StoreKind::D] {
            rt(Inst::Store {
                kind,
                rs1: SP,
                rs2: A0,
                offset: 2040,
            });
        }
        for kind in [
            BranchKind::Eq,
            BranchKind::Ne,
            BranchKind::Lt,
            BranchKind::Ge,
            BranchKind::Ltu,
            BranchKind::Geu,
        ] {
            rt(Inst::Branch {
                kind,
                rs1: A0,
                rs2: A1,
                offset: -4096,
            });
            rt(Inst::Branch {
                kind,
                rs1: A0,
                rs2: A1,
                offset: 4094,
            });
        }
        rt(Inst::Jal {
            rd: RA,
            offset: -(1 << 20),
        });
        rt(Inst::Jal {
            rd: ZERO,
            offset: (1 << 20) - 2,
        });
        rt(Inst::Jalr {
            rd: RA,
            rs1: T0,
            offset: 16,
        });
    }

    #[test]
    fn roundtrip_fp() {
        for op in [
            FpOp::Add,
            FpOp::Sub,
            FpOp::Mul,
            FpOp::Div,
            FpOp::Min,
            FpOp::Max,
            FpOp::Sgnj,
            FpOp::Sgnjn,
            FpOp::Sgnjx,
        ] {
            rt(Inst::FpOp {
                op,
                rd: FA0,
                rs1: FA1,
                rs2: FA2,
            });
        }
        rt(Inst::Fld {
            rd: FT0,
            rs1: SP,
            offset: 8,
        });
        rt(Inst::Fsd {
            rs1: SP,
            rs2: FT1,
            offset: -16,
        });
        rt(Inst::Fsqrt { rd: FT0, rs1: FT1 });
        rt(Inst::Fmadd {
            rd: FT0,
            rs1: FT1,
            rs2: FT2,
            rs3: FT3,
        });
        for cmp in [FpCmp::Eq, FpCmp::Lt, FpCmp::Le] {
            rt(Inst::FpCmp {
                cmp,
                rd: A0,
                rs1: FA0,
                rs2: FA1,
            });
        }
        rt(Inst::FcvtDL { rd: FT0, rs1: A0 });
        rt(Inst::FcvtDW { rd: FT0, rs1: A0 });
        rt(Inst::FcvtLD { rd: A0, rs1: FT0 });
        rt(Inst::FcvtWD { rd: A0, rs1: FT0 });
        rt(Inst::FmvXD { rd: A0, rs1: FT0 });
        rt(Inst::FmvDX { rd: FT0, rs1: A0 });
        rt(Inst::Fsin { rd: FT0, rs1: FT1 });
    }

    #[test]
    fn roundtrip_system() {
        rt(Inst::Fence);
        rt(Inst::Ecall);
        rt(Inst::Ebreak);
        rt(Inst::Csrrs {
            rd: A0,
            csr: 0xC00,
            rs1: ZERO,
        });
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Inst::decode(0x0000_0000).is_err());
        assert!(Inst::decode(0xFFFF_FFFF).is_err());
        // AMO opcode (0x2F) is unsupported.
        assert!(Inst::decode(0x0000_002F).is_err());
    }

    #[test]
    fn x0_dest_is_discarded() {
        let i = Inst::OpImm {
            op: AluOp::Add,
            rd: ZERO,
            rs1: A0,
            imm: 1,
        };
        assert_eq!(i.dest(), None);
        let i = Inst::Fld {
            rd: FReg(0),
            rs1: SP,
            offset: 0,
        };
        assert_eq!(i.dest(), Some(32));
    }

    #[test]
    fn classes_are_sensible() {
        assert_eq!(Inst::Ecall.class(), OpClass::System);
        assert_eq!(
            Inst::MulDiv {
                op: MulOp::Div,
                rd: A0,
                rs1: A1,
                rs2: A2
            }
            .class(),
            OpClass::IntDiv
        );
        assert_eq!(
            Inst::Fsin { rd: FT0, rs1: FT0 }.class(),
            OpClass::FpTranscendental
        );
        assert!(Inst::Jal {
            rd: ZERO,
            offset: 8
        }
        .is_control_flow());
    }

    #[test]
    fn known_encodings_match_gnu_as() {
        // Cross-checked against `riscv64-unknown-elf-as` output.
        // addi a0, a0, 1  => 0x00150513
        assert_eq!(
            Inst::OpImm {
                op: AluOp::Add,
                rd: A0,
                rs1: A0,
                imm: 1
            }
            .encode(),
            0x00150513
        );
        // add a0, a1, a2  => 0x00c58533
        assert_eq!(
            Inst::Op {
                op: AluOp::Add,
                rd: A0,
                rs1: A1,
                rs2: A2
            }
            .encode(),
            0x00c58533
        );
        // ld a0, 0(sp)    => 0x00013503
        assert_eq!(
            Inst::Load {
                kind: LoadKind::D,
                rd: A0,
                rs1: SP,
                offset: 0
            }
            .encode(),
            0x00013503
        );
        // sd a0, 8(sp)    => 0x00a13423
        assert_eq!(
            Inst::Store {
                kind: StoreKind::D,
                rs1: SP,
                rs2: A0,
                offset: 8
            }
            .encode(),
            0x00a13423
        );
        // beq a0, a1, +8  => 0x00b50463
        assert_eq!(
            Inst::Branch {
                kind: BranchKind::Eq,
                rs1: A0,
                rs2: A1,
                offset: 8
            }
            .encode(),
            0x00b50463
        );
        // jal ra, +16     => 0x010000ef
        assert_eq!(Inst::Jal { rd: RA, offset: 16 }.encode(), 0x010000ef);
        // lui a0, 0x12345 => 0x12345537
        assert_eq!(
            Inst::Lui {
                rd: A0,
                imm: 0x12345 << 12
            }
            .encode(),
            0x12345537
        );
        // ecall           => 0x00000073
        assert_eq!(Inst::Ecall.encode(), 0x00000073);
        // mul a0, a1, a2  => 0x02c58533
        assert_eq!(
            Inst::MulDiv {
                op: MulOp::Mul,
                rd: A0,
                rs1: A1,
                rs2: A2
            }
            .encode(),
            0x02c58533
        );
    }
}

//! Sparse, paged byte-addressable target memory.
//!
//! The interpreter's memory is a map of 4 KiB pages allocated on first
//! touch, so a 64-bit address space costs only what the workload actually
//! uses. All accessors are little-endian and tolerate unaligned and
//! page-straddling accesses (the silicon and FireSim targets both allow
//! unaligned scalar accesses via trap-and-emulate; we just allow them).

use std::collections::HashMap;

const PAGE_BITS: u32 = 12;
/// Page size in bytes (4 KiB).
pub const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// Sparse paged memory image.
#[derive(Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of distinct 4 KiB pages touched so far.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    #[inline]
    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_BITS)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads one byte (untouched memory reads as zero).
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_BITS)) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, val: u8) {
        self.page_mut(addr)[(addr as usize) & (PAGE_SIZE - 1)] = val;
    }

    /// Reads `N` little-endian bytes starting at `addr`.
    #[inline]
    fn read_bytes<const N: usize>(&self, addr: u64) -> [u8; N] {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + N <= PAGE_SIZE {
            // Fast path: within one page.
            match self.pages.get(&(addr >> PAGE_BITS)) {
                Some(p) => p[off..off + N]
                    .try_into()
                    .expect("slice is exactly N bytes"),
                None => [0u8; N],
            }
        } else {
            let mut out = [0u8; N];
            for (i, b) in out.iter_mut().enumerate() {
                *b = self.read_u8(addr.wrapping_add(i as u64));
            }
            out
        }
    }

    #[inline]
    fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + bytes.len() <= PAGE_SIZE {
            self.page_mut(addr)[off..off + bytes.len()].copy_from_slice(bytes);
        } else {
            for (i, b) in bytes.iter().enumerate() {
                self.write_u8(addr.wrapping_add(i as u64), *b);
            }
        }
    }

    /// Reads a little-endian u16.
    #[inline]
    pub fn read_u16(&self, addr: u64) -> u16 {
        u16::from_le_bytes(self.read_bytes(addr))
    }

    /// Reads a little-endian u32.
    #[inline]
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_bytes(addr))
    }

    /// Reads a little-endian u64.
    #[inline]
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_bytes(addr))
    }

    /// Reads an f64 (bit pattern).
    #[inline]
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes a little-endian u16.
    #[inline]
    pub fn write_u16(&mut self, addr: u64, val: u16) {
        self.write_bytes(addr, &val.to_le_bytes());
    }

    /// Writes a little-endian u32.
    #[inline]
    pub fn write_u32(&mut self, addr: u64, val: u32) {
        self.write_bytes(addr, &val.to_le_bytes());
    }

    /// Writes a little-endian u64.
    #[inline]
    pub fn write_u64(&mut self, addr: u64, val: u64) {
        self.write_bytes(addr, &val.to_le_bytes());
    }

    /// Writes an f64 (bit pattern).
    #[inline]
    pub fn write_f64(&mut self, addr: u64, val: f64) {
        self.write_u64(addr, val.to_bits());
    }

    /// Bulk-loads a byte image at `base`.
    pub fn load(&mut self, base: u64, bytes: &[u8]) {
        self.write_bytes(base, bytes);
        // write_bytes fast path only handles one page; fall back for bulk.
        if bytes.len() > PAGE_SIZE {
            for (i, chunk) in bytes.chunks(PAGE_SIZE).enumerate() {
                let addr = base + (i * PAGE_SIZE) as u64;
                // Rewrite each chunk; the per-chunk path may still straddle.
                let off = (addr as usize) & (PAGE_SIZE - 1);
                if off + chunk.len() <= PAGE_SIZE {
                    self.page_mut(addr)[off..off + chunk.len()].copy_from_slice(chunk);
                } else {
                    for (j, b) in chunk.iter().enumerate() {
                        self.write_u8(addr + j as u64, *b);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_on_first_read() {
        let m = Memory::new();
        assert_eq!(m.read_u64(0xDEAD_BEEF), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn roundtrip_scalars() {
        let mut m = Memory::new();
        m.write_u8(10, 0xAB);
        m.write_u16(100, 0xBEEF);
        m.write_u32(200, 0xDEAD_BEEF);
        m.write_u64(300, 0x0123_4567_89AB_CDEF);
        m.write_f64(400, -3.5);
        assert_eq!(m.read_u8(10), 0xAB);
        assert_eq!(m.read_u16(100), 0xBEEF);
        assert_eq!(m.read_u32(200), 0xDEAD_BEEF);
        assert_eq!(m.read_u64(300), 0x0123_4567_89AB_CDEF);
        assert_eq!(m.read_f64(400), -3.5);
    }

    #[test]
    fn page_straddling_access() {
        let mut m = Memory::new();
        let addr = (PAGE_SIZE as u64) - 3; // u64 write crosses the boundary
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
        // Byte-level check on both sides of the boundary.
        assert_eq!(m.read_u8(addr), 0x88);
        assert_eq!(m.read_u8(addr + 7), 0x11);
    }

    #[test]
    fn bulk_load_multi_page() {
        let mut m = Memory::new();
        let img: Vec<u8> = (0..3 * PAGE_SIZE + 17).map(|i| (i % 251) as u8).collect();
        m.load(0x10_0000, &img);
        for (i, b) in img.iter().enumerate() {
            assert_eq!(m.read_u8(0x10_0000 + i as u64), *b, "mismatch at {i}");
        }
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new();
        m.write_u32(0, 0x0A0B_0C0D);
        assert_eq!(m.read_u8(0), 0x0D);
        assert_eq!(m.read_u8(3), 0x0A);
    }
}

//! Integer and floating-point architectural register names.
//!
//! Registers are thin newtypes over the 5-bit register index so that the
//! assembler and decoder can be type-checked (an `FReg` can never be passed
//! where a `Reg` is expected), while staying `Copy` and free to pass around.

use std::fmt;

/// An integer (x) register, `x0`..`x31`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

/// A floating-point (f) register, `f0`..`f31`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FReg(pub u8);

impl Reg {
    /// Constructs a register from a raw 5-bit index, panicking on overflow.
    #[inline]
    pub fn new(i: u8) -> Reg {
        assert!(i < 32, "integer register index out of range: {i}");
        Reg(i)
    }

    /// The raw register number.
    #[inline]
    pub fn num(self) -> u8 {
        self.0
    }

    /// ABI mnemonic for this register (`zero`, `ra`, `sp`, ...).
    pub fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        NAMES[self.0 as usize]
    }
}

impl FReg {
    /// Constructs an FP register from a raw 5-bit index, panicking on overflow.
    #[inline]
    pub fn new(i: u8) -> FReg {
        assert!(i < 32, "fp register index out of range: {i}");
        FReg(i)
    }

    /// The raw register number.
    #[inline]
    pub fn num(self) -> u8 {
        self.0
    }

    /// ABI mnemonic for this register (`ft0`, `fa0`, ...).
    pub fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7", "fs0", "fs1", "fa0", "fa1",
            "fa2", "fa3", "fa4", "fa5", "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
            "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
        ];
        NAMES[self.0 as usize]
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.abi_name())
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.abi_name())
    }
}

impl fmt::Debug for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.abi_name())
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.abi_name())
    }
}

/// Hard-wired zero.
pub const ZERO: Reg = Reg(0);
/// Return address.
pub const RA: Reg = Reg(1);
/// Stack pointer.
pub const SP: Reg = Reg(2);
/// Global pointer.
pub const GP: Reg = Reg(3);
/// Thread pointer.
pub const TP: Reg = Reg(4);
/// Temporary 0.
pub const T0: Reg = Reg(5);
/// Temporary 1.
pub const T1: Reg = Reg(6);
/// Temporary 2.
pub const T2: Reg = Reg(7);
/// Saved register 0 / frame pointer.
pub const S0: Reg = Reg(8);
/// Saved register 1.
pub const S1: Reg = Reg(9);
/// Argument/return 0.
pub const A0: Reg = Reg(10);
/// Argument/return 1.
pub const A1: Reg = Reg(11);
/// Argument 2.
pub const A2: Reg = Reg(12);
/// Argument 3.
pub const A3: Reg = Reg(13);
/// Argument 4.
pub const A4: Reg = Reg(14);
/// Argument 5.
pub const A5: Reg = Reg(15);
/// Argument 6.
pub const A6: Reg = Reg(16);
/// Argument 7 / syscall number.
pub const A7: Reg = Reg(17);
/// Saved register 2.
pub const S2: Reg = Reg(18);
/// Saved register 3.
pub const S3: Reg = Reg(19);
/// Saved register 4.
pub const S4: Reg = Reg(20);
/// Saved register 5.
pub const S5: Reg = Reg(21);
/// Saved register 6.
pub const S6: Reg = Reg(22);
/// Saved register 7.
pub const S7: Reg = Reg(23);
/// Saved register 8.
pub const S8: Reg = Reg(24);
/// Saved register 9.
pub const S9: Reg = Reg(25);
/// Saved register 10.
pub const S10: Reg = Reg(26);
/// Saved register 11.
pub const S11: Reg = Reg(27);
/// Temporary 3.
pub const T3: Reg = Reg(28);
/// Temporary 4.
pub const T4: Reg = Reg(29);
/// Temporary 5.
pub const T5: Reg = Reg(30);
/// Temporary 6.
pub const T6: Reg = Reg(31);

/// FP temporary 0.
pub const FT0: FReg = FReg(0);
/// FP temporary 1.
pub const FT1: FReg = FReg(1);
/// FP temporary 2.
pub const FT2: FReg = FReg(2);
/// FP temporary 3.
pub const FT3: FReg = FReg(3);
/// FP temporary 4.
pub const FT4: FReg = FReg(4);
/// FP temporary 5.
pub const FT5: FReg = FReg(5);
/// FP temporary 6.
pub const FT6: FReg = FReg(6);
/// FP temporary 7.
pub const FT7: FReg = FReg(7);
/// FP saved 0.
pub const FS0: FReg = FReg(8);
/// FP saved 1.
pub const FS1: FReg = FReg(9);
/// FP argument/return 0.
pub const FA0: FReg = FReg(10);
/// FP argument/return 1.
pub const FA1: FReg = FReg(11);
/// FP argument 2.
pub const FA2: FReg = FReg(12);
/// FP argument 3.
pub const FA3: FReg = FReg(13);
/// FP argument 4.
pub const FA4: FReg = FReg(14);
/// FP argument 5.
pub const FA5: FReg = FReg(15);
/// FP temporary 8.
pub const FT8: FReg = FReg(28);
/// FP temporary 9.
pub const FT9: FReg = FReg(29);
/// FP temporary 10.
pub const FT10: FReg = FReg(30);
/// FP temporary 11.
pub const FT11: FReg = FReg(31);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_names_match_spec() {
        assert_eq!(ZERO.abi_name(), "zero");
        assert_eq!(RA.abi_name(), "ra");
        assert_eq!(SP.abi_name(), "sp");
        assert_eq!(A0.abi_name(), "a0");
        assert_eq!(A7.abi_name(), "a7");
        assert_eq!(T6.abi_name(), "t6");
        assert_eq!(S11.abi_name(), "s11");
        assert_eq!(FA0.abi_name(), "fa0");
        assert_eq!(FReg(31).abi_name(), "ft11");
    }

    #[test]
    #[should_panic]
    fn reg_out_of_range_panics() {
        let _ = Reg::new(32);
    }

    #[test]
    fn display_uses_abi_names() {
        assert_eq!(format!("{}", A3), "a3");
        assert_eq!(format!("{:?}", FT2), "ft2");
    }
}

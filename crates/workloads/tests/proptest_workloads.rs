//! Property tests for the workloads: scale monotonicity of every
//! microbenchmark, MD physics invariants, and sort correctness across
//! random IS configurations.

use bsim_isa::{Cpu, RunResult};
use bsim_mpi::NetConfig;
use bsim_soc::configs;
use bsim_workloads::md::common::{fcc_lattice, CellList};
use bsim_workloads::microbench;
use bsim_workloads::npb::is;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn every_kernel_scales_monotonically(idx in 0usize..40) {
        let k = &microbench::suite()[idx];
        let run = |s| {
            let mut cpu = Cpu::new(&k.build(s));
            prop_assert!(matches!(cpu.run(400_000_000), RunResult::Exited(0)));
            Ok(cpu.instret)
        };
        let a = run(1)?;
        let b = run(2)?;
        prop_assert!(b >= a, "{}: scale 2 must not shrink work ({a} -> {b})", k.name);
    }

    #[test]
    fn is_sorts_for_random_shapes(
        keys_exp in 9u32..12,
        max_key_exp in 8u32..13,
        ranks in 1usize..5,
    ) {
        let cfg = is::IsConfig {
            keys_per_rank: 1 << keys_exp,
            max_key: 1 << max_key_exp,
            iterations: 1,
        };
        let r = is::run(configs::rocket1(ranks.max(1)), ranks.max(1), cfg, NetConfig::shared_memory());
        prop_assert!(r.sorted, "IS must sort for keys=2^{keys_exp}, max=2^{max_key_exp}, ranks={ranks}");
        prop_assert_eq!(r.total_keys, (ranks.max(1)) << keys_exp);
    }

    #[test]
    fn cell_list_is_a_partition(cells in 2usize..5, density in 0.4f64..1.2) {
        let sys = fcc_lattice(cells, density);
        let cl = CellList::build(&sys, 2.5);
        let total: usize = cl.cells.iter().map(Vec::len).sum();
        prop_assert_eq!(total, sys.len());
        // Every id appears exactly once.
        let mut seen = vec![false; sys.len()];
        for c in &cl.cells {
            for &j in c {
                prop_assert!(!seen[j as usize], "atom {j} binned twice");
                seen[j as usize] = true;
            }
        }
    }

    #[test]
    fn minimum_image_symmetry(cells in 2usize..4, i in 0usize..32, j in 0usize..32) {
        let sys = fcc_lattice(cells, 0.8442);
        let i = i % sys.len();
        let j = j % sys.len();
        let dij = sys.delta(i, j);
        let dji = sys.delta(j, i);
        for k in 0..3 {
            prop_assert!((dij[k] + dji[k]).abs() < 1e-9, "delta must be antisymmetric");
        }
    }
}

//! UME — Unstructured Mesh Explorations (LANL proxy app, §3.2.3).
//!
//! Builds a 3-D hexahedral mesh with *explicit* connectivity — zones,
//! points, faces, and corners (one corner per zone-point incidence) —
//! and runs the paper's three kernels:
//!
//! 1. the **original** gather kernel: zone-centered accumulation of
//!    point values through the zone→corner→point maps,
//! 2. the **inverted** kernel: the same sum driven from the corner side,
//! 3. the **face-area** kernel: per-face normal-area from point
//!    coordinates (cross products).
//!
//! The multi-level indirection (`zone → corner → point → value`) is what
//! gives UME its signature: "very high integer operation counts, very
//! high load/store ratios, and low floating-point intensity". Runtimes
//! reported by the paper (Figure 5) are the sum of the three kernels.

use crate::trace::{rank_base, with_trace};
use bsim_mpi::{MpiWorld, NetConfig, RankCtx, ReduceOp, WorldReport, WorldTrace};
use bsim_soc::SocConfig;
use serde::{Deserialize, Serialize};

/// UME problem size.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct UmeConfig {
    /// Zones per edge (the paper runs 32³ = 32,768 zones; reduced here).
    pub n: usize,
    /// Repetitions of the three-kernel sequence.
    pub passes: usize,
}

impl Default for UmeConfig {
    fn default() -> UmeConfig {
        UmeConfig { n: 12, passes: 2 }
    }
}

/// UME result.
#[derive(Clone, Debug)]
pub struct UmeResult {
    /// Simulation report.
    pub report: WorldReport,
    /// Global sum of the gather kernel (kernels 1 and 2 must agree).
    pub gather_sum: f64,
    /// Same sum from the inverted kernel.
    pub inverted_sum: f64,
    /// Total face area of the mesh surface + interior faces.
    pub total_face_area: f64,
}

/// The explicit-connectivity hexahedral mesh.
pub struct Mesh {
    /// Zones per edge.
    pub n: usize,
    /// zone → 8 corner ids.
    pub zone_corners: Vec<[u32; 8]>,
    /// corner → point id.
    pub corner_point: Vec<u32>,
    /// face → 4 point ids.
    pub face_points: Vec<[u32; 4]>,
    /// Point coordinates.
    pub points: Vec<[f64; 3]>,
}

/// Builds the `n³`-zone structured-as-unstructured mesh.
pub fn build_mesh(n: usize) -> Mesh {
    let np = n + 1;
    let pid = |x: usize, y: usize, z: usize| ((z * np + y) * np + x) as u32;
    let mut points = Vec::with_capacity(np * np * np);
    for z in 0..np {
        for y in 0..np {
            for x in 0..np {
                points.push([x as f64, y as f64, z as f64]);
            }
        }
    }
    let mut zone_corners = Vec::with_capacity(n * n * n);
    let mut corner_point = Vec::with_capacity(8 * n * n * n);
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                let p = [
                    pid(x, y, z),
                    pid(x + 1, y, z),
                    pid(x + 1, y + 1, z),
                    pid(x, y + 1, z),
                    pid(x, y, z + 1),
                    pid(x + 1, y, z + 1),
                    pid(x + 1, y + 1, z + 1),
                    pid(x, y + 1, z + 1),
                ];
                let base = corner_point.len() as u32;
                let mut corners = [0u32; 8];
                for (k, &point) in p.iter().enumerate() {
                    corners[k] = base + k as u32;
                    corner_point.push(point);
                }
                zone_corners.push(corners);
            }
        }
    }
    // Faces: the three axis-aligned families (interior + boundary).
    let mut face_points = Vec::new();
    for z in 0..n {
        for y in 0..n {
            for x in 0..=n {
                face_points.push([
                    pid(x, y, z),
                    pid(x, y + 1, z),
                    pid(x, y + 1, z + 1),
                    pid(x, y, z + 1),
                ]);
            }
        }
    }
    for z in 0..n {
        for y in 0..=n {
            for x in 0..n {
                face_points.push([
                    pid(x, y, z),
                    pid(x + 1, y, z),
                    pid(x + 1, y, z + 1),
                    pid(x, y, z + 1),
                ]);
            }
        }
    }
    for z in 0..=n {
        for y in 0..n {
            for x in 0..n {
                face_points.push([
                    pid(x, y, z),
                    pid(x + 1, y, z),
                    pid(x + 1, y + 1, z),
                    pid(x, y + 1, z),
                ]);
            }
        }
    }
    Mesh {
        n,
        zone_corners,
        corner_point,
        face_points,
        points,
    }
}

fn quad_area(p: [[f64; 3]; 4]) -> f64 {
    // Area via the cross product of the diagonals (planar quads here).
    let d1 = [p[2][0] - p[0][0], p[2][1] - p[0][1], p[2][2] - p[0][2]];
    let d2 = [p[3][0] - p[1][0], p[3][1] - p[1][1], p[3][2] - p[1][2]];
    let cx = d1[1] * d2[2] - d1[2] * d2[1];
    let cy = d1[2] * d2[0] - d1[0] * d2[2];
    let cz = d1[0] * d2[1] - d1[1] * d2[0];
    0.5 * (cx * cx + cy * cy + cz * cz).sqrt()
}

/// Runs UME on `ranks` ranks of the given platform.
pub fn run(soc: SocConfig, ranks: usize, cfg: UmeConfig, net: NetConfig) -> UmeResult {
    run_mode(soc, ranks, cfg, net, false).0
}

/// Runs UME once with timing disabled, capturing the rank programs as a
/// timing-free [`WorldTrace`] for multi-lane replay (`bsim-sweepx`).
pub fn record(
    soc: SocConfig,
    ranks: usize,
    cfg: UmeConfig,
    net: NetConfig,
) -> (UmeResult, WorldTrace) {
    let (r, t) = run_mode(soc, ranks, cfg, net, true);
    (r, t.expect("recording mode always yields a trace"))
}

fn run_mode(
    soc: SocConfig,
    ranks: usize,
    cfg: UmeConfig,
    net: NetConfig,
    record: bool,
) -> (UmeResult, Option<WorldTrace>) {
    use std::sync::Mutex;
    let out: Mutex<(f64, f64, f64)> = Mutex::new((0.0, 0.0, 0.0));
    let mesh = build_mesh(cfg.n);
    let mesh = &mesh;

    let program = |ctx: &mut RankCtx| {
        let rank = ctx.rank();
        let nz = mesh.zone_corners.len();
        let zper = nz.div_ceil(ranks);
        let (zlo, zhi) = ((rank * zper).min(nz), ((rank + 1) * zper).min(nz));
        let nf = mesh.face_points.len();
        let fper = nf.div_ceil(ranks);
        let (flo, fhi) = ((rank * fper).min(nf), ((rank + 1) * fper).min(nf));

        // Point field gathered by the kernels: value = x + 2y + 3z.
        let pval: Vec<f64> = mesh
            .points
            .iter()
            .map(|p| p[0] + 2.0 * p[1] + 3.0 * p[2])
            .collect();

        let base = rank_base(rank);
        let a_zc = base; // zone→corner map
        let a_cp = base + 0x0100_0000; // corner→point map
        let a_pv = base + 0x0200_0000; // point values
        let a_zs = base + 0x0300_0000; // zone sums
        let a_fp = base + 0x0400_0000; // face→point map
        let a_px = base + 0x0500_0000; // point coords

        let mut gather = 0.0;
        let mut inverted = 0.0;
        let mut area = 0.0;
        for _ in 0..cfg.passes {
            // --- kernel 1: original (zone-driven gather) ----------------
            gather = 0.0;
            for zi in zlo..zhi {
                let mut acc = 0.0;
                for &c in &mesh.zone_corners[zi] {
                    acc += pval[mesh.corner_point[c as usize] as usize];
                }
                gather += acc;
            }
            with_trace(ctx, |g| {
                for zi in zlo..zhi {
                    for &c in &mesh.zone_corners[zi] {
                        // zone→corner is streamed; corner→point and
                        // point→value are dependent gathers.
                        g.load(a_zc + (zi as u64) * 32 + (c as u64 % 8) * 4);
                        g.gather(
                            a_cp + (c as u64) * 4,
                            a_pv + (mesh.corner_point[c as usize] as u64) * 8,
                        );
                        g.int_ops(3, false);
                        g.flops(1, true);
                    }
                    g.store(a_zs + (zi as u64) * 8);
                    g.loop_overhead(10, 1);
                }
            });

            // --- kernel 2: inverted (corner-driven scatter) --------------
            inverted = 0.0;
            for zi in zlo..zhi {
                for &c in &mesh.zone_corners[zi] {
                    inverted += pval[mesh.corner_point[c as usize] as usize];
                }
            }
            with_trace(ctx, |g| {
                let clo = (zlo * 8) as u64;
                let chi = (zhi * 8) as u64;
                for c in clo..chi {
                    let point = mesh.corner_point[c as usize] as u64;
                    g.load(a_cp + c * 4);
                    g.gather(a_cp + c * 4, a_pv + point * 8);
                    // Scatter: read-modify-write of the owning zone's sum.
                    let zone = c / 8;
                    g.load(a_zs + zone * 8);
                    g.flops(1, false);
                    g.store(a_zs + zone * 8);
                    g.int_ops(4, false);
                    g.loop_overhead(11, 1);
                }
            });

            // --- kernel 3: face areas --------------------------------------
            area = 0.0;
            for fi in flo..fhi {
                let ps = mesh.face_points[fi];
                area += quad_area([
                    mesh.points[ps[0] as usize],
                    mesh.points[ps[1] as usize],
                    mesh.points[ps[2] as usize],
                    mesh.points[ps[3] as usize],
                ]);
            }
            with_trace(ctx, |g| {
                for fi in flo..fhi {
                    for (k, &p) in mesh.face_points[fi].iter().enumerate() {
                        g.load(a_fp + (fi as u64) * 16 + k as u64 * 4);
                        // Three coordinate gathers per point.
                        g.gather(a_fp + (fi as u64) * 16, a_px + (p as u64) * 24);
                    }
                    // Cross products + norm: ~12 flops, a sqrt, a store.
                    g.flops(12, false);
                    g.fsqrt();
                    g.store(a_zs + 0x10_0000 + (fi as u64) * 8);
                    g.loop_overhead(12, 1);
                }
            });
        }

        let totals = ctx.allreduce_f64(&[gather, inverted, area], ReduceOp::Sum);
        if rank == 0 {
            *out.lock().unwrap_or_else(|e| e.into_inner()) = (totals[0], totals[1], totals[2]);
        }
    };
    let (report, trace) = if record {
        let (rep, tr) = MpiWorld::record(soc, ranks, net, program);
        (rep, Some(tr))
    } else {
        (MpiWorld::run(soc, ranks, net, program), None)
    };

    let (gather_sum, inverted_sum, total_face_area) =
        out.into_inner().unwrap_or_else(|e| e.into_inner());
    (
        UmeResult {
            report,
            gather_sum,
            inverted_sum,
            total_face_area,
        },
        trace,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsim_soc::configs;

    #[test]
    fn mesh_entity_counts_scale_like_the_paper_says() {
        // §3.2.3: "about 8 corners per zone, about 8 points per zone,
        // about 6 faces per zone" (3·n²·(n+1) faces → ~3/zone + surface).
        let m = build_mesh(8);
        let zones = 8 * 8 * 8;
        assert_eq!(m.zone_corners.len(), zones);
        assert_eq!(m.corner_point.len(), 8 * zones);
        assert_eq!(m.points.len(), 9 * 9 * 9);
        assert_eq!(m.face_points.len(), 3 * 8 * 8 * 9);
    }

    #[test]
    fn gather_and_inverted_kernels_agree() {
        let r = run(
            configs::rocket1(1),
            1,
            UmeConfig { n: 6, passes: 1 },
            NetConfig::shared_memory(),
        );
        assert!(
            (r.gather_sum - r.inverted_sum).abs() < 1e-9 * r.gather_sum.abs(),
            "{} vs {}",
            r.gather_sum,
            r.inverted_sum
        );
        assert!(r.gather_sum > 0.0);
    }

    #[test]
    fn face_area_matches_unit_mesh_analytics() {
        // Unit-cube zones: every face has area 1, so total = face count.
        let n = 6;
        let r = run(
            configs::rocket1(1),
            1,
            UmeConfig { n, passes: 1 },
            NetConfig::shared_memory(),
        );
        let expected = (3 * n * n * (n + 1)) as f64;
        assert!(
            (r.total_face_area - expected).abs() < 1e-9 * expected,
            "{} vs {expected}",
            r.total_face_area
        );
    }

    #[test]
    fn multirank_totals_match_single_rank() {
        let cfg = UmeConfig { n: 6, passes: 1 };
        let a = run(configs::rocket1(1), 1, cfg, NetConfig::shared_memory());
        let b = run(configs::rocket1(4), 4, cfg, NetConfig::shared_memory());
        assert!((a.gather_sum - b.gather_sum).abs() < 1e-9);
        assert!((a.total_face_area - b.total_face_area).abs() < 1e-9);
    }

    #[test]
    fn ume_is_load_heavy_and_flop_light() {
        let r = run(
            configs::large_boom(1),
            1,
            UmeConfig { n: 8, passes: 1 },
            NetConfig::shared_memory(),
        );
        let loads = r.report.run.core_stats[0].loads;
        let retired = r.report.run.retired;
        assert!(
            loads as f64 > 0.3 * retired as f64,
            "UME's signature is indirection: {loads} loads of {retired} uops"
        );
    }
}

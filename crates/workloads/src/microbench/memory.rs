//! Memory kernels (Table 1, "Memory"): DRAM-bound pointer chases.
//!
//! These are the two kernels (MM, MM_st) where the paper measures the
//! *largest* simulation-vs-silicon gap — 35–37 % of Banana Pi and
//! 28–43 % of MILK-V performance — because they are bounded entirely by
//! the external memory, where FireSim's DDR3-2000 model (deep token
//! pipeline, no prefetcher in the Rocket/BOOM targets) meets the real
//! parts' LPDDR4-2666 / DDR4-3200 with hardware stride prefetchers.
//!
//! The list is laid out sequentially (nodes in allocation order, one
//! cache line per node) and the traversal visits each node exactly once
//! per run — cold misses all the way down, so no cache level (not even
//! the MILK-V's 64 MiB LLC) can capture the working set. The ring is
//! precomputed into the program's data image, so the timed region is the
//! chase itself.

use bsim_isa::reg::*;
use bsim_isa::{Asm, Program};

/// Ring geometry: 640 Ki nodes × 64 B = 40 MiB, visited at most once.
const NODES: u64 = 640 * 1024;
const STRIDE: u64 = 64;

fn mm_kernel(iters: i64, store_too: bool) -> Program {
    let mut a = Asm::new();
    // Precomputed pointer ring in the data image: node i's first
    // doubleword holds the address of node i+1 (wrapping).
    a.data_align(64);
    let base = a.data_label("mm_ring");
    let words_per_node = (STRIDE / 8) as usize;
    let mut ring = vec![0u64; (NODES as usize) * words_per_node];
    for i in 0..NODES {
        let next = (i + 1) % NODES;
        ring[(i as usize) * words_per_node] = base + next * STRIDE;
    }
    a.data_u64s(&ring);

    a.la(S6, "mm_ring");
    a.li(T0, 0);
    a.li(T1, iters);
    a.label("loop");
    for _ in 0..8 {
        a.ld(S6, 0, S6);
        if store_too {
            a.sd(T0, 8, S6);
        }
    }
    a.addi(T0, T0, 1);
    a.blt(T0, T1, "loop");
    a.exit(0);
    a.assemble().expect("MM kernel")
}

/// MM — non-cache-resident linked-list traversal (DRAM bound).
pub fn mm(scale: u32) -> Program {
    // 8 chases per iteration; cap so we never wrap the ring.
    let iters = (40_000 * scale as i64).min(NODES as i64 / 8 - 1);
    mm_kernel(iters, false)
}

/// MM_st — the same chase, dirtying every visited node.
pub fn mm_st(scale: u32) -> Program {
    let iters = (35_000 * scale as i64).min(NODES as i64 / 8 - 1);
    mm_kernel(iters, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsim_soc::{configs, Soc};

    #[test]
    fn mm_is_dram_bound_even_with_an_llc() {
        let mut soc = Soc::new(configs::milkv_sim(1));
        let rep = soc.run_program(0, &mm(1), 400_000_000);
        assert_eq!(rep.exit_code, Some(0));
        let s = rep.mem_stats;
        // The chase must reach DRAM: every visited line is cold.
        assert!(
            s.llc_misses as f64 > 0.5 * s.llc_accesses as f64,
            "LLC cannot capture a cold chase: {} misses of {}",
            s.llc_misses,
            s.llc_accesses
        );
        assert!(s.dram_reads > 200_000, "chase must stream from DRAM");
    }

    #[test]
    fn mm_relative_speedup_matches_figure1_band() {
        // Figure 1: the Banana Pi Sim Model achieves ~35-37% of the
        // hardware's performance on MM. Accept a generous band around it.
        let prog = mm(1);
        let mut sim = Soc::new(configs::banana_pi_sim(1));
        let mut hw = Soc::new(configs::banana_pi_hw(1));
        let t_sim = sim.run_program(0, &prog, 400_000_000).cycles;
        let t_hw = hw.run_program(0, &prog, 400_000_000).cycles;
        let rel = t_hw as f64 / t_sim as f64; // relative speedup of sim vs hw
        assert!(
            (0.2..=0.55).contains(&rel),
            "MM relative speedup should sit near the paper's 0.35-0.37, got {rel:.2}"
        );
    }

    #[test]
    fn mm_st_writes_back() {
        let mut soc = Soc::new(configs::rocket1(1));
        let rep = soc.run_program(0, &mm_st(1), 400_000_000);
        assert!(
            rep.mem_stats.dram_writes > 100_000,
            "dirty lines must be written back"
        );
    }
}

//! Execution kernels (Table 1, "Execution"): functional-unit throughput
//! versus dependency-chain latency.

use bsim_isa::reg::*;
use bsim_isa::{Asm, Program};

fn loop_head(a: &mut Asm, iters: i64) {
    a.li(T0, 0);
    a.li(T1, iters);
    a.label("loop");
}

fn loop_tail(a: &mut Asm) {
    a.addi(T0, T0, 1);
    a.blt(T0, T1, "loop");
    a.exit(0);
}

/// ED1 — serial integer ALU dependency chain (1 op per step, fully
/// serialized on every machine regardless of width).
pub fn ed1(scale: u32) -> Program {
    let mut a = Asm::new();
    a.li(S5, 1);
    a.li(S6, 3);
    loop_head(&mut a, 40_000 * scale as i64);
    for _ in 0..16 {
        a.add(S5, S5, S6); // each add depends on the previous
    }
    loop_tail(&mut a);
    a.assemble().expect("ED1")
}

/// EM1 — serial integer *multiply* chain: exposes multiply latency.
pub fn em1(scale: u32) -> Program {
    let mut a = Asm::new();
    a.li(S5, 3);
    a.li(S6, 5);
    loop_head(&mut a, 25_000 * scale as i64);
    for _ in 0..8 {
        a.mul(S5, S5, S6);
    }
    loop_tail(&mut a);
    a.assemble().expect("EM1")
}

/// EM5 — five interleaved multiply chains: enough ILP to keep a
/// pipelined multiplier busy, so throughput-bound rather than
/// latency-bound.
pub fn em5(scale: u32) -> Program {
    let mut a = Asm::new();
    for (i, r) in [S5, S6, S7, S8, S9].iter().enumerate() {
        a.li(*r, 3 + i as i64);
    }
    a.li(S10, 7);
    loop_head(&mut a, 25_000 * scale as i64);
    for _ in 0..2 {
        for r in [S5, S6, S7, S8, S9] {
            a.mul(r, r, S10);
        }
    }
    loop_tail(&mut a);
    a.assemble().expect("EM5")
}

/// EF — 8 independent FP instructions per iteration.
pub fn ef(scale: u32) -> Program {
    let mut a = Asm::new();
    let consts = a.data_f64s(&[1.000000001, 0.999999999]);
    a.li(T2, consts as i64);
    a.fld(FT8, 0, T2);
    a.fld(FT9, 8, T2);
    for i in 0..8u8 {
        a.fmv_d(bsim_isa::FReg(i), FT8);
    }
    loop_head(&mut a, 25_000 * scale as i64);
    for i in 0..8u8 {
        a.fmul_d(bsim_isa::FReg(i), bsim_isa::FReg(i), FT9);
    }
    loop_tail(&mut a);
    a.assemble().expect("EF")
}

/// EI — 8 independent integer computations per iteration.
pub fn ei(scale: u32) -> Program {
    let mut a = Asm::new();
    for (i, r) in [S5, S6, S7, S8, S9, S10, S11, T3].iter().enumerate() {
        a.li(*r, i as i64 + 1);
    }
    loop_head(&mut a, 25_000 * scale as i64);
    for r in [S5, S6, S7, S8, S9, S10, S11, T3] {
        a.addi(r, r, 7);
    }
    loop_tail(&mut a);
    a.assemble().expect("EI")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsim_isa::{Cpu, RunResult};
    use bsim_soc::{configs, Soc};

    fn cycles_on(cfg: bsim_soc::SocConfig, p: &Program) -> u64 {
        let mut soc = Soc::new(cfg);
        let rep = soc.run_program(0, p, 100_000_000);
        assert_eq!(rep.exit_code, Some(0));
        rep.cycles
    }

    #[test]
    fn all_execute_functionally() {
        for (name, p) in [
            ("ED1", ed1(1)),
            ("EM1", em1(1)),
            ("EM5", em5(1)),
            ("EF", ef(1)),
            ("EI", ei(1)),
        ] {
            let mut cpu = Cpu::new(&p);
            assert!(
                matches!(cpu.run(100_000_000), RunResult::Exited(0)),
                "{name} failed to exit"
            );
        }
    }

    #[test]
    fn em1_latency_bound_em5_throughput_bound() {
        // Per multiply, the interleaved chains must be much cheaper than
        // the serial chain on an OoO machine.
        let em1_c = cycles_on(configs::large_boom(1), &em1(1)) as f64 / (25_000.0 * 8.0);
        let em5_c = cycles_on(configs::large_boom(1), &em5(1)) as f64 / (25_000.0 * 10.0);
        assert!(
            em1_c > 1.8 * em5_c,
            "EM1 ({em1_c:.2} cyc/mul) must be latency-bound vs EM5 ({em5_c:.2})"
        );
    }

    #[test]
    fn ei_benefits_from_width_ed1_does_not() {
        let wide = configs::large_boom(1);
        let narrow = configs::small_boom(1);
        let ei_ratio =
            cycles_on(narrow.clone(), &ei(1)) as f64 / cycles_on(wide.clone(), &ei(1)) as f64;
        let ed1_ratio = cycles_on(narrow, &ed1(1)) as f64 / cycles_on(wide, &ed1(1)) as f64;
        assert!(
            ei_ratio > 1.5,
            "independent ops should scale with width ({ei_ratio:.2})"
        );
        assert!(
            ed1_ratio < 1.3,
            "a serial chain should not ({ed1_ratio:.2})"
        );
    }
}

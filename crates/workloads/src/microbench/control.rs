//! Control-flow kernels (Table 1, "Control Flow").

use bsim_isa::asm::with_stack;
use bsim_isa::reg::*;
use bsim_isa::{Asm, Program};

/// Seeds the in-kernel LCG (state in `s2`, constants in `s3`/`s4`).
fn lcg_init(a: &mut Asm) {
    a.li(S2, 0x243F_6A88_85A3_08D3u64 as i64);
    a.li(S3, 6364136223846793005u64 as i64);
    a.li(S4, 1442695040888963407u64 as i64);
}

/// Advances the LCG: `s2 = s2 * s3 + s4`.
fn lcg_next(a: &mut Asm) {
    a.mul(S2, S2, S3);
    a.add(S2, S2, S4);
}

fn loop_head(a: &mut Asm, iters: i64) {
    a.li(T0, 0);
    a.li(T1, iters);
    a.label("loop");
}

fn loop_tail(a: &mut Asm) {
    a.addi(T0, T0, 1);
    a.blt(T0, T1, "loop");
    a.exit(0);
}

/// Cca — completely biased branch: taken every iteration.
pub fn cca(scale: u32) -> Program {
    let mut a = Asm::new();
    loop_head(&mut a, 60_000 * scale as i64);
    a.bge(T0, ZERO, "skip"); // always true
    a.addi(S5, S5, 1); // never executed
    a.label("skip");
    a.addi(S6, S6, 1);
    loop_tail(&mut a);
    a.assemble().expect("Cca")
}

/// Cce — alternating branches: taken/not-taken with period 2.
pub fn cce(scale: u32) -> Program {
    let mut a = Asm::new();
    loop_head(&mut a, 60_000 * scale as i64);
    a.andi(T2, T0, 1);
    a.beqz(T2, "even");
    a.addi(S5, S5, 1);
    a.label("even");
    a.addi(S6, S6, 1);
    loop_tail(&mut a);
    a.assemble().expect("Cce")
}

/// CCh — random control flow: branch direction from an LCG bit.
pub fn cch(scale: u32) -> Program {
    let mut a = Asm::new();
    lcg_init(&mut a);
    loop_head(&mut a, 50_000 * scale as i64);
    lcg_next(&mut a);
    a.srli(T2, S2, 60);
    a.andi(T2, T2, 1);
    a.beqz(T2, "not_taken");
    a.addi(S5, S5, 1);
    a.label("not_taken");
    a.addi(S6, S6, 1);
    loop_tail(&mut a);
    a.assemble().expect("CCh")
}

/// CCh_st — unpredictable control plus stores on both paths.
pub fn cch_st(scale: u32) -> Program {
    let mut a = Asm::new();
    lcg_init(&mut a);
    let buf = a.data_zeros(4096);
    a.li(S6, buf as i64);
    loop_head(&mut a, 50_000 * scale as i64);
    lcg_next(&mut a);
    a.srli(T2, S2, 60);
    a.andi(T2, T2, 1);
    a.andi(T3, T0, 511); // rotating slot in the buffer
    a.slli(T3, T3, 3);
    a.add(T3, T3, S6);
    a.beqz(T2, "path_b");
    a.sd(S2, 0, T3);
    a.j("join");
    a.label("path_b");
    a.sd(T0, 0, T3);
    a.label("join");
    loop_tail(&mut a);
    a.assemble().expect("CCh_st")
}

/// CCl — impossible-to-predict control selecting between two large
/// (48-instruction) basic blocks.
pub fn ccl(scale: u32) -> Program {
    let mut a = Asm::new();
    lcg_init(&mut a);
    loop_head(&mut a, 12_000 * scale as i64);
    lcg_next(&mut a);
    a.srli(T2, S2, 60);
    a.andi(T2, T2, 1);
    a.beqz(T2, "block_b");
    for i in 0..48 {
        a.addi(S5, S5, i % 7);
    }
    a.j("ccl_join");
    a.label("block_b");
    for i in 0..48 {
        a.addi(S6, S6, i % 5);
    }
    a.label("ccl_join");
    loop_tail(&mut a);
    a.assemble().expect("CCl")
}

/// CCm — heavily biased branches: taken ~15/16 of the time.
pub fn ccm(scale: u32) -> Program {
    let mut a = Asm::new();
    lcg_init(&mut a);
    loop_head(&mut a, 50_000 * scale as i64);
    lcg_next(&mut a);
    a.srli(T2, S2, 58);
    a.andi(T2, T2, 15);
    a.bnez(T2, "common"); // ~15/16 taken
    a.addi(S5, S5, 1); // rare path
    a.label("common");
    a.addi(S6, S6, 1);
    loop_tail(&mut a);
    a.assemble().expect("CCm")
}

/// CF1 — function-call overhead: tiny callee containing its own loop
/// (what a compiler would decide to inline or not).
pub fn cf1(scale: u32) -> Program {
    let mut a = Asm::new();
    with_stack(&mut a);
    loop_head(&mut a, 15_000 * scale as i64);
    a.call("leaf");
    loop_tail(&mut a);
    a.label("leaf");
    // 4-iteration inner loop in the callee.
    a.li(T2, 0);
    a.li(T3, 4);
    a.label("leaf_loop");
    a.add(S5, S5, T2);
    a.addi(T2, T2, 1);
    a.blt(T2, T3, "leaf_loop");
    a.ret();
    a.assemble().expect("CF1")
}

/// CRd — recursion 1000 deep, repeated.
pub fn crd(scale: u32) -> Program {
    let mut a = Asm::new();
    with_stack(&mut a);
    loop_head(&mut a, 60 * scale as i64);
    a.li(A0, 1000);
    a.call("rec");
    loop_tail(&mut a);
    // rec(n): if n == 0 return; rec(n - 1)
    a.label("rec");
    a.beqz(A0, "rec_done");
    a.addi(SP, SP, -16);
    a.sd(RA, 0, SP);
    a.addi(A0, A0, -1);
    a.call("rec");
    a.ld(RA, 0, SP);
    a.addi(SP, SP, 16);
    a.label("rec_done");
    a.ret();
    a.assemble().expect("CRd")
}

/// CRf — recursive Fibonacci (branchy, unbalanced call tree).
pub fn crf(scale: u32) -> Program {
    let mut a = Asm::new();
    with_stack(&mut a);
    loop_head(&mut a, 6 * scale as i64);
    a.li(A0, 17);
    a.call("fib");
    loop_tail(&mut a);
    // fib(n): n < 2 ? n : fib(n-1) + fib(n-2)
    a.label("fib");
    a.li(T2, 2);
    a.blt(A0, T2, "fib_base");
    a.addi(SP, SP, -32);
    a.sd(RA, 0, SP);
    a.sd(A0, 8, SP);
    a.addi(A0, A0, -1);
    a.call("fib");
    a.sd(A0, 16, SP); // fib(n-1)
    a.ld(A0, 8, SP);
    a.addi(A0, A0, -2);
    a.call("fib");
    a.ld(T3, 16, SP);
    a.add(A0, A0, T3);
    a.ld(RA, 0, SP);
    a.addi(SP, SP, 32);
    a.label("fib_base");
    a.ret();
    a.assemble().expect("CRf")
}

/// CRm — recursive merge sort over a 256-element array.
///
/// Excluded from all figure-level results, exactly as in the paper
/// (§3.2.1: CRm segfaulted on every platform); kept here so the suite
/// is complete and the kernel remains runnable.
pub fn crm(scale: u32) -> Program {
    const N: i64 = 256;
    let mut a = Asm::new();
    with_stack(&mut a);
    // Source array (pseudo-random) and scratch buffer.
    a.data_label("crm_src");
    a.data_zeros(N as usize * 8);
    a.data_label("crm_tmp");
    a.data_zeros(N as usize * 8);
    loop_head(&mut a, 6 * scale as i64);
    {
        // (Re)fill the array with LCG values each outer iteration.
        lcg_init(&mut a);
        a.la(S5, "crm_src");
        a.li(T2, 0);
        a.li(T3, N);
        a.label("fill");
        lcg_next(&mut a);
        a.slli(T4, T2, 3);
        a.add(T4, T4, S5);
        a.srli(T5, S2, 40);
        a.sd(T5, 0, T4);
        a.addi(T2, T2, 1);
        a.blt(T2, T3, "fill");
    }
    // msort(lo = a0, hi = a1) over crm_src using crm_tmp.
    a.li(A0, 0);
    a.li(A1, N);
    a.call("msort");
    loop_tail(&mut a);

    a.label("msort");
    // if hi - lo < 2: return
    a.sub(T2, A1, A0);
    a.li(T3, 2);
    a.blt(T2, T3, "msort_ret");
    a.addi(SP, SP, -48);
    a.sd(RA, 0, SP);
    a.sd(A0, 8, SP);
    a.sd(A1, 16, SP);
    // mid = (lo + hi) / 2
    a.add(T2, A0, A1);
    a.srli(T2, T2, 1);
    a.sd(T2, 24, SP);
    // msort(lo, mid)
    a.mv(A1, T2);
    a.call("msort");
    // msort(mid, hi)
    a.ld(A0, 24, SP);
    a.ld(A1, 16, SP);
    a.call("msort");
    // merge [lo, mid) and [mid, hi) into tmp, then copy back.
    a.ld(T2, 8, SP); // i = lo
    a.ld(T3, 24, SP); // j = mid
    a.ld(T4, 16, SP); // hi
    a.la(S5, "crm_src");
    a.la(S6, "crm_tmp");
    a.mv(T5, T2); // k = lo (tmp index)
    a.label("merge_loop");
    a.ld(T6, 24, SP); // mid
    a.bge(T2, T6, "take_right_if_any");
    a.bge(T3, T4, "take_left");
    // both sides non-empty: compare a[i] and a[j]
    a.slli(S7, T2, 3);
    a.add(S7, S7, S5);
    a.ld(S8, 0, S7); // a[i]
    a.slli(S9, T3, 3);
    a.add(S9, S9, S5);
    a.ld(S10, 0, S9); // a[j]
    a.bge(S10, S8, "take_left");
    a.j("take_right");
    a.label("take_right_if_any");
    a.bge(T3, T4, "merge_done");
    a.label("take_right");
    a.slli(S9, T3, 3);
    a.add(S9, S9, S5);
    a.ld(S8, 0, S9);
    a.addi(T3, T3, 1);
    a.j("emit");
    a.label("take_left");
    a.slli(S7, T2, 3);
    a.add(S7, S7, S5);
    a.ld(S8, 0, S7);
    a.addi(T2, T2, 1);
    a.label("emit");
    a.slli(S7, T5, 3);
    a.add(S7, S7, S6);
    a.sd(S8, 0, S7);
    a.addi(T5, T5, 1);
    a.blt(T5, T4, "merge_loop");
    a.label("merge_done");
    // copy tmp[lo..hi) back to src
    a.ld(T2, 8, SP);
    a.label("copy_back");
    a.bge(T2, T4, "copy_done");
    a.slli(S7, T2, 3);
    a.add(S8, S7, S6);
    a.ld(S9, 0, S8);
    a.add(S8, S7, S5);
    a.sd(S9, 0, S8);
    a.addi(T2, T2, 1);
    a.j("copy_back");
    a.label("copy_done");
    a.ld(RA, 0, SP);
    a.addi(SP, SP, 48);
    a.label("msort_ret");
    a.ret();
    a.assemble().expect("CRm")
}

/// Emits an 8-way computed-goto switch body; `pick` must leave the case
/// index (0–7) in `t2` each iteration.
fn switch_kernel(iters: i64, pick: impl Fn(&mut Asm)) -> Program {
    let mut a = Asm::new();
    lcg_init(&mut a);
    a.li(S6, 0); // CS3 phase counter
    a.li(S7, 0); // CS3 current case
    loop_head(&mut a, iters);
    pick(&mut a);
    // Compute the jump target: anchor + 16 (the 4 insts below) + case*32.
    a.jal(T4, "anchor");
    a.label("anchor");
    a.slli(T5, T2, 5);
    a.add(T4, T4, T5);
    a.addi(T4, T4, 16);
    a.jr(T4);
    for case in 0..8 {
        // Exactly 8 instructions (32 bytes) per case block.
        for k in 0..7 {
            a.addi(S5, S5, (case + k) % 9);
        }
        a.j("switch_join");
    }
    a.label("switch_join");
    loop_tail(&mut a);
    a.assemble().expect("switch kernel")
}

/// CS1 — switch taking a different (random) case every iteration.
pub fn cs1(scale: u32) -> Program {
    switch_kernel(25_000 * scale as i64, |a| {
        lcg_next(a);
        a.srli(T2, S2, 61); // top 3 bits: case 0..7
    })
}

/// CS3 — switch whose case changes every third iteration.
pub fn cs3(scale: u32) -> Program {
    switch_kernel(25_000 * scale as i64, |a| {
        a.addi(S6, S6, 1);
        a.li(T2, 3);
        a.blt(S6, T2, "keep_case");
        a.li(S6, 0);
        lcg_next(a);
        a.srli(S7, S2, 61);
        a.label("keep_case");
        a.mv(T2, S7);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsim_isa::{Cpu, RunResult};

    fn dyn_len(p: &Program) -> u64 {
        let mut cpu = Cpu::new(p);
        assert!(matches!(cpu.run(100_000_000), RunResult::Exited(0)));
        cpu.instret
    }

    #[test]
    fn ccl_has_large_basic_blocks() {
        // CCl should average far more instructions per branch than CCh.
        let cch_len = dyn_len(&cch(1)) as f64 / 50_000.0;
        let ccl_len = dyn_len(&ccl(1)) as f64 / 12_000.0;
        assert!(
            ccl_len > 3.0 * cch_len,
            "CCl {ccl_len:.1} vs CCh {cch_len:.1} inst/iter"
        );
    }

    #[test]
    fn recursion_depth_is_1000() {
        // CRd must touch ~1000 stack frames * 16 bytes below the stack top.
        let p = crd(1);
        let mut cpu = Cpu::new(&p);
        assert!(matches!(cpu.run(100_000_000), RunResult::Exited(0)));
        // 1000 frames * 16 B = 16 KiB = 4 pages + slack.
        assert!(cpu.mem.resident_pages() >= 4);
    }

    #[test]
    fn merge_sort_actually_sorts() {
        let p = crm(1);
        let mut cpu = Cpu::new(&p);
        assert!(matches!(cpu.run(100_000_000), RunResult::Exited(0)));
        // Find the array: it is the first data symbol (crm_src at DATA_BASE).
        let base = bsim_isa::asm::DATA_BASE;
        let vals: Vec<u64> = (0..256).map(|i| cpu.mem.read_u64(base + 8 * i)).collect();
        let mut sorted = vals.clone();
        sorted.sort();
        assert_eq!(vals, sorted, "CRm must leave the array sorted");
        assert!(vals.iter().any(|&v| v != 0), "array must have been filled");
    }

    #[test]
    fn switch_kernels_visit_all_cases() {
        // CS1's random selector should exercise every case block; we
        // check by instruction footprint: all 8 blocks execute.
        let p = cs1(1);
        let mut cpu = Cpu::new(&p);
        let mut pcs = std::collections::HashSet::new();
        let r = cpu.run_traced(100_000_000, |ret| {
            pcs.insert(ret.pc);
        });
        assert!(matches!(r, RunResult::Exited(0)));
        // 8 case blocks * 8 instructions each: at least 64 distinct PCs
        // beyond the loop scaffolding.
        assert!(pcs.len() > 64, "only {} distinct PCs", pcs.len());
    }
}

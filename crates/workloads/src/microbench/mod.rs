//! The MicroBench suite (Table 1 of the paper): 40 kernels in five
//! categories, each stressing one microarchitectural feature.
//!
//! Each kernel is generated as an RV64 assembly [`Program`]; the `scale`
//! parameter multiplies the timed iteration count without changing the
//! working-set size, so cache-residency properties are scale-invariant.
//!
//! As in the paper (§3.2.1), `CRm` is marked [`MicroKernel::excluded`]:
//! "39 of the 40 benchmarks were used in our evaluation, since CRm
//! resulted in a segfault on all simulated and real hardware". Our
//! implementation of CRm runs fine, but it is excluded from the
//! figure-level experiments to keep the benchmark matrix identical.

mod cache;
mod control;
mod data;
mod execution;
mod memory;

use bsim_isa::Program;

/// MicroBench category (Table 1 column).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// Branch-prediction and control-transfer behaviour.
    ControlFlow,
    /// Functional-unit throughput and dependency chains.
    Execution,
    /// L1/L2 behaviour: conflicts, bandwidth, store traffic.
    Cache,
    /// Data-parallel FP loops.
    Data,
    /// DRAM-bound access patterns.
    Memory,
}

impl Category {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Category::ControlFlow => "Control Flow",
            Category::Execution => "Execution",
            Category::Cache => "Cache",
            Category::Data => "Data",
            Category::Memory => "Memory",
        }
    }
}

/// One MicroBench kernel.
pub struct MicroKernel {
    /// Table 1 name (e.g. "ML2_BW_ld").
    pub name: &'static str,
    /// Category.
    pub category: Category,
    /// Table 1 description.
    pub description: &'static str,
    /// True for CRm, which the paper excludes from all results.
    pub excluded: bool,
    builder: fn(u32) -> Program,
}

impl MicroKernel {
    /// Builds the kernel program at the given iteration scale (≥ 1).
    pub fn build(&self, scale: u32) -> Program {
        (self.builder)(scale.max(1))
    }
}

macro_rules! kernel {
    ($name:literal, $cat:ident, $desc:literal, $f:path) => {
        MicroKernel {
            name: $name,
            category: Category::$cat,
            description: $desc,
            excluded: false,
            builder: $f,
        }
    };
    ($name:literal, $cat:ident, $desc:literal, $f:path, excluded) => {
        MicroKernel {
            name: $name,
            category: Category::$cat,
            description: $desc,
            excluded: true,
            builder: $f,
        }
    };
}

/// The full 40-kernel suite, in Table 1 order.
pub fn suite() -> Vec<MicroKernel> {
    vec![
        kernel!("Cca", ControlFlow, "Completely biased branch", control::cca),
        kernel!("Cce", ControlFlow, "Alternating branches", control::cce),
        kernel!("CCh", ControlFlow, "Random control flow", control::cch),
        kernel!(
            "CCh_st",
            ControlFlow,
            "Impossible to predict control + stores",
            control::cch_st
        ),
        kernel!(
            "CCl",
            ControlFlow,
            "Impossible control w/ large Basic Blocks",
            control::ccl
        ),
        kernel!("CCm", ControlFlow, "Heavily biased branches", control::ccm),
        kernel!(
            "CF1",
            ControlFlow,
            "Inlining test for functions w/ loops",
            control::cf1
        ),
        kernel!(
            "CRd",
            ControlFlow,
            "Recursive control flow - 1000 Deep",
            control::crd
        ),
        kernel!(
            "CRf",
            ControlFlow,
            "Recursive control flow - Fibonacci",
            control::crf
        ),
        kernel!("CRm", ControlFlow, "Merge sort", control::crm, excluded),
        kernel!(
            "CS1",
            ControlFlow,
            "Switch - Different each time",
            control::cs1
        ),
        kernel!(
            "CS3",
            ControlFlow,
            "Switch - Different every third time",
            control::cs3
        ),
        kernel!(
            "DP1d",
            Data,
            "Data parallel loop - Double arithmetic",
            data::dp1d
        ),
        kernel!(
            "DP1f",
            Data,
            "Data parallel loop - Float arithmetic",
            data::dp1f
        ),
        kernel!("DPT", Data, "Data parallel loop - Sin()", data::dpt),
        kernel!(
            "DPTd",
            Data,
            "Data parallel loop - Double sin()",
            data::dptd
        ),
        kernel!(
            "DPcvt",
            Data,
            "Data parallel loop - Float to Double",
            data::dpcvt
        ),
        kernel!(
            "ED1",
            Execution,
            "Int - Length 1 dependency chain",
            execution::ed1
        ),
        kernel!(
            "EF",
            Execution,
            "FP - 8 Independent instructions",
            execution::ef
        ),
        kernel!(
            "EI",
            Execution,
            "Int - 8 Independent computations",
            execution::ei
        ),
        kernel!(
            "EM1",
            Execution,
            "Int - Length 1 dependency chain",
            execution::em1
        ),
        kernel!(
            "EM5",
            Execution,
            "Int - Length 5 dependency chain",
            execution::em5
        ),
        kernel!("MC", Cache, "Conflict misses", cache::mc),
        kernel!("MCS", Cache, "Conflict misses with stores", cache::mcs),
        kernel!(
            "MD",
            Cache,
            "Cache resident linked list traversal",
            cache::md
        ),
        kernel!("MI", Cache, "Independent access, cache resident", cache::mi),
        kernel!("MIM", Cache, "Independent access, no conflicts", cache::mim),
        kernel!(
            "MIM2",
            Cache,
            "Independent access - 2 coalescing ops",
            cache::mim2
        ),
        kernel!("MIP", Cache, "Instruction cache misses", cache::mip),
        kernel!("ML2", Cache, "L2 linked-list", cache::ml2),
        kernel!(
            "ML2_BW_ld",
            Cache,
            "L2 linked-list - B/W limited (lds)",
            cache::ml2_bw_ld
        ),
        kernel!(
            "ML2_BW_ldst",
            Cache,
            "L2 linked-list - B/W limited (ld/sts)",
            cache::ml2_bw_ldst
        ),
        kernel!(
            "ML2_BW_st",
            Cache,
            "L2 linked-list - B/W limited (sts)",
            cache::ml2_bw_st
        ),
        kernel!("ML2_st", Cache, "L2 linked-list (sts)", cache::ml2_st),
        kernel!("STL2", Cache, "Repeatedly store, L2 resident", cache::stl2),
        kernel!(
            "STL2b",
            Cache,
            "Occasional stores, L2 resident",
            cache::stl2b
        ),
        kernel!("STc", Cache, "Repeated consecutive L1 store", cache::stc),
        kernel!(
            "M_Dyn",
            Cache,
            "Load store w/ dynamic dependencies",
            cache::m_dyn
        ),
        kernel!("MM", Memory, "Non-cache resident linked-list", memory::mm),
        kernel!(
            "MM_st",
            Memory,
            "Non-cache resident linked-list (sts)",
            memory::mm_st
        ),
    ]
}

/// The kernels actually evaluated (the paper's 39: CRm excluded).
pub fn evaluated() -> Vec<MicroKernel> {
    suite().into_iter().filter(|k| !k.excluded).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsim_isa::{Cpu, RunResult};

    #[test]
    fn suite_has_40_kernels_in_5_categories() {
        let s = suite();
        assert_eq!(s.len(), 40);
        for c in [
            Category::ControlFlow,
            Category::Execution,
            Category::Cache,
            Category::Data,
            Category::Memory,
        ] {
            assert!(s.iter().any(|k| k.category == c), "missing category {c:?}");
        }
        assert_eq!(
            s.iter()
                .filter(|k| k.category == Category::ControlFlow)
                .count(),
            12
        );
        assert_eq!(
            s.iter()
                .filter(|k| k.category == Category::Execution)
                .count(),
            5
        );
        assert_eq!(
            s.iter().filter(|k| k.category == Category::Cache).count(),
            16
        );
        assert_eq!(s.iter().filter(|k| k.category == Category::Data).count(), 5);
        assert_eq!(
            s.iter().filter(|k| k.category == Category::Memory).count(),
            2
        );
    }

    #[test]
    fn exactly_crm_is_excluded() {
        let s = suite();
        let excluded: Vec<&str> = s.iter().filter(|k| k.excluded).map(|k| k.name).collect();
        assert_eq!(excluded, vec!["CRm"]);
        assert_eq!(evaluated().len(), 39);
    }

    #[test]
    fn every_kernel_assembles_and_exits_cleanly() {
        for k in suite() {
            let prog = k.build(1);
            let mut cpu = Cpu::new(&prog);
            match cpu.run(80_000_000) {
                RunResult::Exited(code) => {
                    assert_eq!(code, 0, "{} exited with {code}", k.name)
                }
                other => panic!("{} did not exit: {other:?}", k.name),
            }
            assert!(
                cpu.instret > 1_000,
                "{} too small: {} instrs",
                k.name,
                cpu.instret
            );
            assert!(
                cpu.instret < 40_000_000,
                "{} too big for the bench matrix: {} instrs",
                k.name,
                cpu.instret
            );
        }
    }

    #[test]
    fn scale_multiplies_work() {
        let k = suite().into_iter().find(|k| k.name == "Cca").unwrap();
        let run = |s| {
            let mut cpu = Cpu::new(&k.build(s));
            cpu.run(100_000_000);
            cpu.instret
        };
        let one = run(1);
        let three = run(3);
        assert!(
            three > 2 * one,
            "scale=3 should do ~3x the work: {one} vs {three}"
        );
    }

    #[test]
    fn names_are_unique() {
        let s = suite();
        let mut names: Vec<&str> = s.iter().map(|k| k.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 40);
    }
}

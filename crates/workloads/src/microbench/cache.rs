//! Cache kernels (Table 1, "Cache"): conflicts, bandwidth, latency and
//! store behaviour in the L1/L2 hierarchy.

use bsim_isa::reg::*;
use bsim_isa::{Asm, Program};

/// Scratch heap region used by the cache kernels (outside code/data).
const HEAP: i64 = 0x2000_0000;

fn loop_head(a: &mut Asm, iters: i64) {
    a.li(T0, 0);
    a.li(T1, iters);
    a.label("loop");
}

fn loop_tail(a: &mut Asm) {
    a.addi(T0, T0, 1);
    a.blt(T0, T1, "loop");
    a.exit(0);
}

/// Emits init code building a pointer ring: `nodes` nodes of `stride`
/// bytes (stride a power of two) starting at `base`; each node's first
/// doubleword points to the next node, wrapping at the end. Leaves the
/// ring head address in `s5`.
fn build_ring(a: &mut Asm, base: i64, nodes: i64, stride: i64) {
    assert!(stride.count_ones() == 1 && stride >= 8);
    let shift = stride.trailing_zeros() as u8;
    a.li(S5, base);
    a.li(T2, 0);
    a.li(T3, nodes);
    a.label("ring_init");
    a.slli(T4, T2, shift);
    a.add(T4, T4, S5); // addr of node i
    a.addi(T5, T2, 1);
    a.bne(T5, T3, "ring_nowrap");
    a.li(T5, 0);
    a.label("ring_nowrap");
    a.slli(T6, T5, shift);
    a.add(T6, T6, S5); // addr of node i+1 (mod nodes)
    a.sd(T6, 0, T4);
    a.addi(T2, T2, 1);
    a.blt(T2, T3, "ring_init");
}

/// A pointer-chase kernel over a ring of the given geometry.
fn chase_kernel(nodes: i64, stride: i64, iters: i64, store_too: bool) -> Program {
    let mut a = Asm::new();
    build_ring(&mut a, HEAP, nodes, stride);
    a.mv(S6, S5); // p = head
    loop_head(&mut a, iters);
    for _ in 0..8 {
        a.ld(S6, 0, S6);
        if store_too {
            a.sd(T0, 8, S6); // dirty the visited line
        }
    }
    loop_tail(&mut a);
    a.assemble().expect("chase kernel")
}

/// MD — linked-list traversal resident in the L1 D-cache
/// (256 nodes × 64 B = 16 KiB).
pub fn md(scale: u32) -> Program {
    chase_kernel(256, 64, 12_000 * scale as i64, false)
}

/// ML2 — linked-list traversal resident in the L2 but not the L1
/// (2048 nodes × 64 B = 128 KiB footprint).
pub fn ml2(scale: u32) -> Program {
    chase_kernel(2048, 64, 9_000 * scale as i64, false)
}

/// ML2_st — the L2 linked list with a store to every visited node.
pub fn ml2_st(scale: u32) -> Program {
    chase_kernel(2048, 64, 7_000 * scale as i64, true)
}

/// A streaming pass over an L2-resident region (128 KiB), with a
/// load/store mix selected per unrolled slot.
fn l2_stream_kernel(iters: i64, slot_is_store: [bool; 8]) -> Program {
    const REGION: i64 = 128 * 1024;
    let mut a = Asm::new();
    a.li(S5, HEAP);
    a.li(S6, 0); // offset
    a.li(S7, REGION - 1);
    loop_head(&mut a, iters);
    for (i, &st) in slot_is_store.iter().enumerate() {
        a.add(T2, S5, S6);
        if st {
            a.sd(T0, (i * 64) as i32, T2);
        } else {
            a.ld(T3, (i * 64) as i32, T2);
        }
    }
    a.addi(S6, S6, 512); // 8 lines consumed
    a.and(S6, S6, S7); // wrap inside the region
    loop_tail(&mut a);
    a.assemble().expect("l2 stream kernel")
}

/// ML2_BW_ld — bandwidth-limited loads over the L2 region.
pub fn ml2_bw_ld(scale: u32) -> Program {
    l2_stream_kernel(18_000 * scale as i64, [false; 8])
}

/// ML2_BW_st — bandwidth-limited stores over the L2 region.
pub fn ml2_bw_st(scale: u32) -> Program {
    l2_stream_kernel(18_000 * scale as i64, [true; 8])
}

/// ML2_BW_ldst — alternating loads and stores over the L2 region.
pub fn ml2_bw_ldst(scale: u32) -> Program {
    l2_stream_kernel(
        18_000 * scale as i64,
        [false, true, false, true, false, true, false, true],
    )
}

/// STL2 — repeated store passes over an L2-resident region.
pub fn stl2(scale: u32) -> Program {
    l2_stream_kernel(14_000 * scale as i64, [true; 8])
}

/// STL2b — mostly loads with an occasional store, L2 resident.
pub fn stl2b(scale: u32) -> Program {
    l2_stream_kernel(
        14_000 * scale as i64,
        [false, false, false, true, false, false, false, false],
    )
}

/// STc — repeated stores to one L1-resident cache line.
pub fn stc(scale: u32) -> Program {
    let mut a = Asm::new();
    a.li(S5, HEAP);
    loop_head(&mut a, 40_000 * scale as i64);
    for i in 0..8 {
        a.sd(T0, i * 8, S5);
    }
    loop_tail(&mut a);
    a.assemble().expect("STc")
}

/// A conflict-miss kernel: 32 lines spaced one way-size apart, so many
/// more lines map to each L1 set than it has ways.
fn conflict_kernel(iters: i64, with_stores: bool) -> Program {
    const WAY_STRIDE: i64 = 4096; // >= sets*line for both L1 geometries
    let mut a = Asm::new();
    a.li(S5, HEAP);
    a.li(S7, WAY_STRIDE);
    loop_head(&mut a, iters);
    a.mv(T4, S5);
    for _ in 0..32 {
        a.ld(T2, 0, T4);
        if with_stores {
            a.sd(T2, 8, T4);
        }
        a.add(T4, T4, S7); // next same-set line, one way-size away
    }
    loop_tail(&mut a);
    a.assemble().expect("conflict kernel")
}

/// MC — conflict misses (32 same-set lines vs. 8 ways).
pub fn mc(scale: u32) -> Program {
    conflict_kernel(6_000 * scale as i64, false)
}

/// MCS — conflict misses with stores (dirty thrashing).
pub fn mcs(scale: u32) -> Program {
    conflict_kernel(5_000 * scale as i64, true)
}

/// MI — independent cache-resident loads that collide on one cache bank
/// (stride = bank period), stressing bank arbitration.
pub fn mi(scale: u32) -> Program {
    let mut a = Asm::new();
    a.li(S5, HEAP);
    loop_head(&mut a, 25_000 * scale as i64);
    for i in 0..8 {
        a.ld(T2, i * 256, S5); // every 4th line: same bank when banks=4
    }
    loop_tail(&mut a);
    a.assemble().expect("MI")
}

/// MIM — independent cache-resident loads with no conflicts
/// (consecutive lines, distinct banks).
pub fn mim(scale: u32) -> Program {
    let mut a = Asm::new();
    a.li(S5, HEAP);
    loop_head(&mut a, 25_000 * scale as i64);
    for i in 0..8 {
        a.ld(T2, i * 64, S5);
    }
    loop_tail(&mut a);
    a.assemble().expect("MIM")
}

/// MIM2 — pairs of loads to the same line (coalescing opportunity).
pub fn mim2(scale: u32) -> Program {
    let mut a = Asm::new();
    a.li(S5, HEAP);
    loop_head(&mut a, 25_000 * scale as i64);
    for i in 0..4 {
        a.ld(T2, i * 64, S5);
        a.ld(T3, i * 64 + 8, S5);
    }
    loop_tail(&mut a);
    a.assemble().expect("MIM2")
}

/// MIP — instruction-cache misses: a straight-line code footprint much
/// larger than the L1 I-cache, walked every iteration.
pub fn mip(scale: u32) -> Program {
    const BLOCKS: usize = 1200; // 1200 * 64 B = 75 KiB of code
    let mut a = Asm::new();
    a.li(T0, 0);
    a.li(T1, 25 * scale as i64);
    a.label("top");
    a.blt(T0, T1, "body");
    a.j("done");
    a.label("body");
    for b in 0..BLOCKS {
        // 16 instructions = one 64-byte I-cache line per block.
        for k in 0..16 {
            a.addi(S5, S5, ((b + k) % 13) as i32);
        }
    }
    a.addi(T0, T0, 1);
    a.j("top");
    a.label("done");
    a.exit(0);
    a.assemble().expect("MIP")
}

/// M_Dyn — loads and stores with dynamic (value-dependent) address
/// dependencies: each address is computed from the previously loaded
/// value, serializing through the memory system.
pub fn m_dyn(scale: u32) -> Program {
    let mut a = Asm::new();
    a.li(S5, HEAP);
    a.li(S6, 0x1234_5678);
    a.li(S7, 2040); // address mask (within 2 KiB, 8-byte aligned)
    loop_head(&mut a, 40_000 * scale as i64);
    // addr = base + ((x * 9) & mask)
    a.slli(T2, S6, 3);
    a.add(T2, T2, S6);
    a.and(T2, T2, S7);
    a.add(T2, T2, S5);
    a.sd(S6, 0, T2);
    a.ld(T3, 0, T2); // forwarded from the store
    a.addi(S6, T3, 1);
    loop_tail(&mut a);
    a.assemble().expect("M_Dyn")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsim_isa::{Cpu, RunResult};
    use bsim_soc::{configs, Soc};

    fn report(p: &Program) -> bsim_soc::RunReport {
        let mut soc = Soc::new(configs::rocket1(1));
        soc.run_program(0, p, 200_000_000)
    }

    #[test]
    fn md_stays_in_l1() {
        let rep = report(&md(1));
        let s = rep.mem_stats;
        // After the ring is built, traversal hits L1: overall miss rate tiny.
        assert!(
            s.l1d_miss_rate() < 0.02,
            "MD should be L1-resident, miss rate {}",
            s.l1d_miss_rate()
        );
    }

    #[test]
    fn ml2_misses_l1_hits_l2() {
        let rep = report(&ml2(1));
        let s = rep.mem_stats;
        assert!(
            s.l1d_miss_rate() > 0.3,
            "ML2 must thrash L1, got {}",
            s.l1d_miss_rate()
        );
        assert!(
            s.l2_miss_rate() < 0.1,
            "ML2 must fit L2, got {}",
            s.l2_miss_rate()
        );
    }

    #[test]
    fn conflict_kernel_thrashes_despite_tiny_footprint() {
        let rep = report(&mc(1));
        let s = rep.mem_stats;
        // 32 lines would easily fit the 512-line L1 if not for conflicts.
        assert!(
            s.l1d_miss_rate() > 0.5,
            "MC miss rate {}",
            s.l1d_miss_rate()
        );
        assert!(s.l2_miss_rate() < 0.1, "MC should still fit L2");
    }

    #[test]
    fn mim_is_cheaper_than_mi_on_banked_l1() {
        // Same load count; MI collides on one bank, MIM does not. Bank
        // arbitration only matters on a machine with more than one memory
        // port, so compare on the SG2042 hardware reference.
        let mut soc_a = Soc::new(configs::milkv_hw(1));
        let a = soc_a.run_program(0, &mi(1), 200_000_000).cycles;
        let mut soc_b = Soc::new(configs::milkv_hw(1));
        let b = soc_b.run_program(0, &mim(1), 200_000_000).cycles;
        assert!(a > b, "bank conflicts must cost cycles: MI {a} vs MIM {b}");
    }

    #[test]
    fn mip_misses_the_icache() {
        let rep = report(&mip(1));
        let s = rep.mem_stats;
        assert!(
            s.l1i_misses > 10_000,
            "MIP must generate I-cache misses, got {}",
            s.l1i_misses
        );
    }

    #[test]
    fn m_dyn_serializes_through_memory() {
        let mut cpu = Cpu::new(&m_dyn(1));
        assert!(matches!(cpu.run(100_000_000), RunResult::Exited(0)));
    }

    #[test]
    fn store_kernels_generate_writebacks() {
        let rep = report(&mcs(1));
        assert!(
            rep.mem_stats.writebacks > 1000,
            "dirty conflict lines must write back"
        );
    }
}

//! Data-parallel kernels (Table 1, "Data"): FP loops over arrays.
//!
//! The original suite distinguishes single- and double-precision
//! variants; our ISA subset carries all FP values in double-precision
//! registers, so the "float" variants use cheaper operation mixes with
//! the same memory behaviour (see DESIGN.md §2).

use bsim_isa::reg::*;
use bsim_isa::{Asm, Program};

/// Array region used by the data kernels.
const ARRAY: i64 = 0x3000_0000;

/// Emits init code filling `n` doubles at [`ARRAY`] with `i * 0.5 + 1.0`.
fn fill_array(a: &mut Asm, n: i64) {
    a.li(S5, ARRAY);
    a.li(T2, 0);
    a.li(T3, n);
    let half = a.data_f64s(&[0.5, 1.0]);
    a.li(T4, half as i64);
    a.fld(FT8, 0, T4);
    a.fld(FT9, 8, T4);
    a.label("fill");
    a.fcvt_d_l(FT0, T2);
    a.fmadd_d(FT0, FT0, FT8, FT9);
    a.slli(T4, T2, 3);
    a.add(T4, T4, S5);
    a.fsd(FT0, 0, T4);
    a.addi(T2, T2, 1);
    a.blt(T2, T3, "fill");
}

/// A pass-based data-parallel kernel: `passes` sweeps over `n` doubles,
/// `body(asm, elem_reg)` transforming each element in `ft0`.
fn dp_kernel(n: i64, passes: i64, body: impl Fn(&mut Asm)) -> Program {
    let mut a = Asm::new();
    fill_array(&mut a, n);
    let consts = a.data_f64s(&[1.0000001, 0.9999999]);
    a.li(T4, consts as i64);
    a.fld(FT10, 0, T4);
    a.fld(FT11, 8, T4);
    a.li(T0, 0);
    a.li(T1, passes);
    a.label("pass");
    a.li(T2, 0);
    a.li(T3, n);
    a.mv(T4, S5);
    a.label("elem");
    a.fld(FT0, 0, T4);
    body(&mut a);
    a.fsd(FT0, 0, T4);
    a.addi(T4, T4, 8);
    a.addi(T2, T2, 1);
    a.blt(T2, T3, "elem");
    a.addi(T0, T0, 1);
    a.blt(T0, T1, "pass");
    a.exit(0);
    a.assemble().expect("dp kernel")
}

/// DP1d — double arithmetic: `a[i] = a[i] * c + d` (FMA).
pub fn dp1d(scale: u32) -> Program {
    dp_kernel(2048, 60 * scale as i64, |a| {
        a.fmadd_d(FT0, FT0, FT10, FT11);
    })
}

/// DP1f — "float" arithmetic: a single add per element (cheaper op mix,
/// same traffic).
pub fn dp1f(scale: u32) -> Program {
    dp_kernel(2048, 60 * scale as i64, |a| {
        a.fadd_d(FT0, FT0, FT11);
    })
}

/// DPT — `a[i] = sin(a[i])` (the libm-call stand-in `fsin.d`).
pub fn dpt(scale: u32) -> Program {
    dp_kernel(512, 16 * scale as i64, |a| {
        a.fsin_d(FT0, FT0);
    })
}

/// DPTd — double-precision sin: the transcendental plus a dependent
/// multiply (double-precision polynomial tail).
pub fn dptd(scale: u32) -> Program {
    dp_kernel(512, 14 * scale as i64, |a| {
        a.fsin_d(FT0, FT0);
        a.fmul_d(FT0, FT0, FT10);
    })
}

/// DPcvt — conversion-dominated loop: int → double → arithmetic →
/// back to int.
pub fn dpcvt(scale: u32) -> Program {
    let n: i64 = 2048;
    let passes = 40 * scale as i64;
    let mut a = Asm::new();
    // Integer array this time.
    a.li(S5, ARRAY);
    a.li(T2, 0);
    a.li(T3, n);
    a.label("fill");
    a.slli(T4, T2, 3);
    a.add(T4, T4, S5);
    a.sd(T2, 0, T4);
    a.addi(T2, T2, 1);
    a.blt(T2, T3, "fill");
    let consts = a.data_f64s(&[1.5]);
    a.li(T4, consts as i64);
    a.fld(FT10, 0, T4);
    a.li(T0, 0);
    a.li(T1, passes);
    a.label("pass");
    a.li(T2, 0);
    a.mv(T4, S5);
    a.label("elem");
    a.ld(T5, 0, T4);
    a.fcvt_d_l(FT0, T5);
    a.fmul_d(FT0, FT0, FT10);
    a.fcvt_l_d(T5, FT0);
    a.sd(T5, 0, T4);
    a.addi(T4, T4, 8);
    a.addi(T2, T2, 1);
    a.blt(T2, T3, "elem");
    a.addi(T0, T0, 1);
    a.blt(T0, T1, "pass");
    a.exit(0);
    a.assemble().expect("DPcvt")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsim_isa::{Cpu, RunResult};
    use bsim_soc::{configs, Soc};

    #[test]
    fn dp1d_computes_the_recurrence() {
        let mut cpu = Cpu::new(&dp1d(1));
        assert!(matches!(cpu.run(100_000_000), RunResult::Exited(0)));
        // Element 0 starts at 1.0 and is multiplied 60 times by c plus d.
        let mut expect = 1.0f64;
        for _ in 0..60 {
            expect = expect * 1.0000001 + 0.9999999;
        }
        let got = cpu.mem.read_f64(ARRAY as u64);
        assert!((got - expect).abs() < 1e-9, "got {got}, expected {expect}");
    }

    #[test]
    fn dpt_applies_sin() {
        let mut cpu = Cpu::new(&dpt(1));
        assert!(matches!(cpu.run(100_000_000), RunResult::Exited(0)));
        let mut expect = 1.0f64; // element 0 initial value
        for _ in 0..16 {
            expect = expect.sin();
        }
        let got = cpu.mem.read_f64(ARRAY as u64);
        assert!((got - expect).abs() < 1e-12, "got {got}, expected {expect}");
    }

    #[test]
    fn transcendental_kernels_are_much_slower_per_element() {
        let mut s1 = Soc::new(configs::rocket1(1));
        let dp = s1.run_program(0, &dp1f(1), 200_000_000);
        let mut s2 = Soc::new(configs::rocket1(1));
        let tr = s2.run_program(0, &dpt(1), 200_000_000);
        // Per element-visit cost: DPT must be dominated by the fsin latency.
        let dp_cost = dp.cycles as f64 / (2048.0 * 60.0);
        let tr_cost = tr.cycles as f64 / (512.0 * 16.0);
        assert!(
            tr_cost > 5.0 * dp_cost,
            "DPT {tr_cost:.1} cyc/elem vs DP1f {dp_cost:.1}"
        );
    }

    #[test]
    fn dpcvt_roundtrips_integers() {
        let mut cpu = Cpu::new(&dpcvt(1));
        assert!(matches!(cpu.run(200_000_000), RunResult::Exited(0)));
        // Element 2: 2 * 1.5^40 truncated progressively; just check it grew.
        let got = cpu.mem.read_u64(ARRAY as u64 + 16);
        assert!(got > 2, "conversions must round-trip and grow, got {got}");
    }
}

//! LAMMPS-style molecular dynamics (§3.2.4).
//!
//! Two benchmarks, both 32,000-atom / 100-timestep shaped in the paper
//! and size-scaled here (DESIGN.md §5):
//!
//! * [`lj`] — the *Lennard-Jones melt*: an FCC lattice of LJ particles
//!   at reduced density 0.8442, cell lists, velocity-Verlet integration,
//! * [`chain`] — the *polymer Chain* benchmark: bead-spring chains with
//!   FENE bonds and purely repulsive (WCA) pair interactions.
//!
//! Parallelization is LAMMPS-style spatial domain decomposition: slabs
//! along x, per-step halo exchange of boundary-cell positions, and
//! migration of atoms that cross slab boundaries.

pub mod chain;
pub mod common;
pub mod lj;

//! Shared molecular-dynamics machinery: periodic boxes, cell lists,
//! velocity-Verlet integration, and the trace shapes for pair loops.

use crate::trace::TraceGen;
use serde::{Deserialize, Serialize};

/// A particle system in a cubic periodic box.
#[derive(Clone, Debug)]
pub struct System {
    /// Positions (wrapped into `[0, box_len)`).
    pub pos: Vec<[f64; 3]>,
    /// Velocities.
    pub vel: Vec<[f64; 3]>,
    /// Forces (scratch, recomputed each step).
    pub force: Vec<[f64; 3]>,
    /// Cubic box edge length.
    pub box_len: f64,
}

impl System {
    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// True if the system has no atoms.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Minimum-image displacement from atom `i` to atom `j`.
    #[inline]
    pub fn delta(&self, i: usize, j: usize) -> [f64; 3] {
        let mut d = [0.0; 3];
        for (k, dk) in d.iter_mut().enumerate() {
            let mut x = self.pos[j][k] - self.pos[i][k];
            if x > self.box_len * 0.5 {
                x -= self.box_len;
            } else if x < -self.box_len * 0.5 {
                x += self.box_len;
            }
            *dk = x;
        }
        d
    }

    /// Kinetic energy (unit mass).
    pub fn kinetic_energy(&self) -> f64 {
        0.5 * self
            .vel
            .iter()
            .map(|v| v[0] * v[0] + v[1] * v[1] + v[2] * v[2])
            .sum::<f64>()
    }

    /// Total momentum (should stay ~0 in NVE).
    pub fn momentum(&self) -> [f64; 3] {
        let mut p = [0.0; 3];
        for v in &self.vel {
            for k in 0..3 {
                p[k] += v[k];
            }
        }
        p
    }
}

/// Builds an FCC lattice of `4 * cells³` atoms at the given reduced
/// density, with small deterministic velocity perturbations (net-zero
/// momentum) — the LAMMPS `melt` initial condition.
pub fn fcc_lattice(cells: usize, density: f64) -> System {
    let natoms = 4 * cells * cells * cells;
    let box_len = (natoms as f64 / density).cbrt();
    let a = box_len / cells as f64;
    let offsets = [
        [0.0, 0.0, 0.0],
        [0.5, 0.5, 0.0],
        [0.5, 0.0, 0.5],
        [0.0, 0.5, 0.5],
    ];
    let mut pos = Vec::with_capacity(natoms);
    for z in 0..cells {
        for y in 0..cells {
            for x in 0..cells {
                for o in &offsets {
                    pos.push([
                        (x as f64 + o[0]) * a,
                        (y as f64 + o[1]) * a,
                        (z as f64 + o[2]) * a,
                    ]);
                }
            }
        }
    }
    let mut state = 0x5EED_F00Du64;
    let mut unit = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    let mut vel: Vec<[f64; 3]> = (0..natoms).map(|_| [unit(), unit(), unit()]).collect();
    // Zero the net momentum.
    let mut mean = [0.0; 3];
    for v in &vel {
        for k in 0..3 {
            mean[k] += v[k] / natoms as f64;
        }
    }
    for v in &mut vel {
        for k in 0..3 {
            v[k] -= mean[k];
        }
    }
    System {
        force: vec![[0.0; 3]; natoms],
        vel,
        pos,
        box_len,
    }
}

/// A link-cell neighbor structure over the periodic box.
pub struct CellList {
    /// Cells per edge.
    pub ncell: usize,
    /// Atom ids per cell.
    pub cells: Vec<Vec<u32>>,
}

impl CellList {
    /// Bins all atoms into cells of edge ≥ `cutoff`.
    pub fn build(sys: &System, cutoff: f64) -> CellList {
        let ncell = ((sys.box_len / cutoff).floor() as usize).max(1);
        let mut cells = vec![Vec::new(); ncell * ncell * ncell];
        let scale = ncell as f64 / sys.box_len;
        for (i, p) in sys.pos.iter().enumerate() {
            let cx = ((p[0] * scale) as usize).min(ncell - 1);
            let cy = ((p[1] * scale) as usize).min(ncell - 1);
            let cz = ((p[2] * scale) as usize).min(ncell - 1);
            cells[(cz * ncell + cy) * ncell + cx].push(i as u32);
        }
        CellList { ncell, cells }
    }

    /// Calls `f(candidate)` for every atom in the 27-cell neighborhood
    /// of atom `i`'s cell (including `i` itself — callers filter). Each
    /// candidate is visited exactly once: with fewer than 3 cells per
    /// edge the ±1 offsets wrap onto each other, so small boxes fall
    /// back to scanning every atom once.
    pub fn for_candidates(&self, sys: &System, i: usize, mut f: impl FnMut(u32)) {
        if self.ncell < 3 {
            for cell in &self.cells {
                for &j in cell {
                    f(j);
                }
            }
            return;
        }
        let scale = self.ncell as f64 / sys.box_len;
        let p = sys.pos[i];
        let cx = ((p[0] * scale) as usize).min(self.ncell - 1) as isize;
        let cy = ((p[1] * scale) as usize).min(self.ncell - 1) as isize;
        let cz = ((p[2] * scale) as usize).min(self.ncell - 1) as isize;
        let n = self.ncell as isize;
        for dz in -1..=1 {
            for dy in -1..=1 {
                for dx in -1..=1 {
                    let x = (cx + dx).rem_euclid(n) as usize;
                    let y = (cy + dy).rem_euclid(n) as usize;
                    let z = (cz + dz).rem_euclid(n) as usize;
                    for &j in &self.cells[(z * self.ncell + y) * self.ncell + x] {
                        f(j);
                    }
                }
            }
        }
    }
}

/// Builds a simple-cubic lattice of `n³` beads at the given density,
/// ordered x-fastest so consecutive atom ids are lattice neighbors —
/// the initial condition for bead-spring chains (bond length = lattice
/// constant, well inside the FENE maximum).
pub fn sc_lattice(n: usize, density: f64) -> System {
    let natoms = n * n * n;
    let box_len = (natoms as f64 / density).cbrt();
    let a = box_len / n as f64;
    let mut pos = Vec::with_capacity(natoms);
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                pos.push([
                    (x as f64 + 0.5) * a,
                    (y as f64 + 0.5) * a,
                    (z as f64 + 0.5) * a,
                ]);
            }
        }
    }
    let mut state = 0xC4A1_0409u64;
    let mut unit = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5) * 0.2
    };
    let mut vel: Vec<[f64; 3]> = (0..natoms).map(|_| [unit(), unit(), unit()]).collect();
    let mut mean = [0.0; 3];
    for v in &vel {
        for k in 0..3 {
            mean[k] += v[k] / natoms as f64;
        }
    }
    for v in &mut vel {
        for k in 0..3 {
            v[k] -= mean[k];
        }
    }
    System {
        force: vec![[0.0; 3]; natoms],
        vel,
        pos,
        box_len,
    }
}

/// MD trace addresses (per rank).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MdAddrs {
    /// Position array base.
    pub pos: u64,
    /// Force array base.
    pub force: u64,
    /// Neighbor/cell structure base.
    pub cells: u64,
}

impl MdAddrs {
    /// Standard layout inside a rank's segment.
    pub fn new(base: u64) -> MdAddrs {
        MdAddrs {
            pos: base,
            force: base + 0x0100_0000,
            cells: base + 0x0200_0000,
        }
    }
}

/// Emits the trace for one candidate-pair evaluation: neighbor-id load,
/// position gather, distance computation, and the cutoff branch.
#[inline]
pub fn trace_pair(g: &mut TraceGen<'_>, a: MdAddrs, cand_idx: u64, j: u32, within: bool) {
    g.load(a.cells + cand_idx * 4);
    g.gather(a.cells + cand_idx * 4, a.pos + (j as u64) * 24);
    g.flops(8, false); // dx, dy, dz, minimum image, r²
    g.masked_branch(20, within);
}

/// Emits the trace for the accepted-pair force kernel (LJ-style):
/// `1/r²` divide, `r⁻⁶` chain, force accumulation.
#[inline]
pub fn trace_force(g: &mut TraceGen<'_>, a: MdAddrs, i: u64) {
    g.fdiv();
    g.flops(10, false); // vectorizes across accepted pairs
    g.load(a.force + i * 24);
    g.flops(3, false);
    g.store(a.force + i * 24);
}

/// Emits the trace for integrating one atom (velocity Verlet half-kick +
/// drift): position/velocity/force loads, FMA updates, stores.
#[inline]
pub fn trace_integrate(g: &mut TraceGen<'_>, a: MdAddrs, i: u64) {
    g.load(a.pos + i * 24);
    g.load(a.force + i * 24);
    g.flops(9, false);
    g.store(a.pos + i * 24);
    g.int_ops(2, false);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcc_lattice_has_right_density() {
        let s = fcc_lattice(4, 0.8442);
        assert_eq!(s.len(), 256);
        let v = s.box_len.powi(3);
        assert!((s.len() as f64 / v - 0.8442).abs() < 1e-12);
    }

    #[test]
    fn initial_momentum_is_zero() {
        let s = fcc_lattice(4, 0.8442);
        let p = s.momentum();
        for (k, pk) in p.iter().enumerate() {
            assert!(pk.abs() < 1e-9, "momentum {k} = {pk}");
        }
    }

    #[test]
    fn minimum_image_is_bounded() {
        let s = fcc_lattice(3, 0.8442);
        for i in 0..s.len().min(50) {
            for j in 0..s.len().min(50) {
                let d = s.delta(i, j);
                for dk in &d {
                    assert!(dk.abs() <= s.box_len * 0.5 + 1e-12);
                }
            }
        }
    }

    #[test]
    fn cell_list_finds_all_close_pairs() {
        let s = fcc_lattice(3, 0.8442);
        let cutoff = 2.5;
        let cl = CellList::build(&s, cutoff);
        // Brute-force close pairs of atom 0.
        let brute: std::collections::HashSet<u32> = (0..s.len() as u32)
            .filter(|&j| {
                let d = s.delta(0, j as usize);
                j != 0 && d[0] * d[0] + d[1] * d[1] + d[2] * d[2] < cutoff * cutoff
            })
            .collect();
        let mut seen = std::collections::HashSet::new();
        cl.for_candidates(&s, 0, |j| {
            seen.insert(j);
        });
        for j in &brute {
            assert!(seen.contains(j), "cell list missed neighbor {j}");
        }
    }

    #[test]
    fn cells_partition_all_atoms() {
        let s = fcc_lattice(4, 0.8442);
        let cl = CellList::build(&s, 2.5);
        let total: usize = cl.cells.iter().map(Vec::len).sum();
        assert_eq!(total, s.len());
    }
}

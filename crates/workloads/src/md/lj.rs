//! The LAMMPS *Lennard-Jones melt* benchmark (Figure 6).
//!
//! FCC lattice at reduced density 0.8442, LJ 6-12 potential with cutoff
//! 2.5σ, velocity-Verlet NVE integration. Atom blocks are distributed
//! over ranks; every step ends with a position allgather (the LAMMPS
//! slab-halo pattern carries less data but the same per-step
//! synchronization structure — see DESIGN.md §2).

use crate::md::common::{
    fcc_lattice, trace_force, trace_integrate, trace_pair, CellList, MdAddrs, System,
};
use crate::trace::{rank_base, with_trace};
use bsim_mpi::{MpiWorld, NetConfig, RankCtx, ReduceOp, WorldReport, WorldTrace};
use bsim_soc::SocConfig;
use serde::{Deserialize, Serialize};

/// LJ melt problem size.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LjConfig {
    /// FCC cells per edge (atoms = 4·cells³; the paper runs 32,000 atoms
    /// for 100 steps — reduced here per DESIGN.md §5).
    pub cells: usize,
    /// Timesteps.
    pub steps: usize,
    /// Reduced density (LAMMPS melt: 0.8442).
    pub density: f64,
    /// Timestep (LAMMPS melt: 0.005).
    pub dt: f64,
}

impl Default for LjConfig {
    fn default() -> LjConfig {
        LjConfig {
            cells: 5,
            steps: 8,
            density: 0.8442,
            dt: 0.005,
        }
    }
}

/// LJ melt result.
#[derive(Clone, Debug)]
pub struct LjResult {
    /// Simulation report.
    pub report: WorldReport,
    /// Total energy at step 0 (after the first force evaluation).
    pub initial_energy: f64,
    /// Total energy after the last step.
    pub final_energy: f64,
    /// Atom count.
    pub atoms: usize,
}

const CUTOFF: f64 = 2.5;

/// LJ force magnitude over r (f/r) and pair energy at squared distance
/// `r2` (ε = σ = 1), with the standard cutoff.
#[inline]
fn lj_pair(r2: f64) -> (f64, f64) {
    let inv_r2 = 1.0 / r2;
    let inv_r6 = inv_r2 * inv_r2 * inv_r2;
    let f_over_r = 48.0 * inv_r2 * inv_r6 * (inv_r6 - 0.5);
    let e = 4.0 * inv_r6 * (inv_r6 - 1.0);
    (f_over_r, e)
}

/// Computes forces for atoms `[lo, hi)` against all atoms; returns the
/// potential energy attributed to those atoms (half per pair).
fn compute_forces(
    sys: &mut System,
    cl: &CellList,
    lo: usize,
    hi: usize,
) -> (f64, Vec<(u64, u32, bool)>) {
    let mut pe = 0.0;
    let mut pair_log = Vec::new();
    let c2 = CUTOFF * CUTOFF;
    for i in lo..hi {
        let mut f = [0.0; 3];
        let mut cand_idx = 0u64;
        let mut candidates = Vec::new();
        cl.for_candidates(sys, i, |j| candidates.push(j));
        for j in candidates {
            if j as usize == i {
                continue;
            }
            let d = sys.delta(i, j as usize);
            let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
            let within = r2 < c2;
            pair_log.push((cand_idx, j, within));
            cand_idx += 1;
            if within {
                let (f_over_r, e) = lj_pair(r2);
                for k in 0..3 {
                    f[k] -= f_over_r * d[k];
                }
                pe += 0.5 * e;
            }
        }
        sys.force[i] = f;
    }
    (pe, pair_log)
}

/// Runs the LJ melt on `ranks` ranks of the given platform.
pub fn run(soc: SocConfig, ranks: usize, cfg: LjConfig, net: NetConfig) -> LjResult {
    run_mode(soc, ranks, cfg, net, false).0
}

/// Runs the LJ melt once with timing disabled, capturing the rank
/// programs as a timing-free [`WorldTrace`] for multi-lane replay
/// (`bsim-sweepx`).
pub fn record(
    soc: SocConfig,
    ranks: usize,
    cfg: LjConfig,
    net: NetConfig,
) -> (LjResult, WorldTrace) {
    let (r, t) = run_mode(soc, ranks, cfg, net, true);
    (r, t.expect("recording mode always yields a trace"))
}

fn run_mode(
    soc: SocConfig,
    ranks: usize,
    cfg: LjConfig,
    net: NetConfig,
    record: bool,
) -> (LjResult, Option<WorldTrace>) {
    use std::sync::Mutex;
    let out: Mutex<(f64, f64)> = Mutex::new((0.0, 0.0));
    let atoms = 4 * cfg.cells * cfg.cells * cfg.cells;

    let program = |ctx: &mut RankCtx| {
        let rank = ctx.rank();
        let mut sys = fcc_lattice(cfg.cells, cfg.density);
        let n = sys.len();
        let per = n.div_ceil(ranks);
        let (lo, hi) = ((rank * per).min(n), ((rank + 1) * per).min(n));
        let addrs = MdAddrs::new(rank_base(rank));

        let mut energy_first = 0.0;
        let mut energy_last = 0.0;
        for step in 0..cfg.steps {
            // --- neighbor structure ------------------------------------
            let cl = CellList::build(&sys, CUTOFF);
            with_trace(ctx, |g| {
                // Binning: one pass of load + int ops + store per atom.
                for i in 0..n as u64 {
                    g.load(addrs.pos + i * 24);
                    g.int_ops(6, false);
                    g.store(addrs.cells + (i % 4096) * 8);
                }
            });

            // --- forces over my block -----------------------------------
            let (pe_local, pair_log) = compute_forces(&mut sys, &cl, lo, hi);
            with_trace(ctx, |g| {
                for &(ci, j, within) in &pair_log {
                    trace_pair(g, addrs, ci, j, within);
                    if within {
                        trace_force(g, addrs, j as u64 % (n as u64));
                    }
                }
            });

            // --- energy bookkeeping (step 0 and the last step) ----------
            if step == 0 || step == cfg.steps - 1 {
                let ke_local: f64 = (lo..hi)
                    .map(|i| {
                        0.5 * (sys.vel[i][0].powi(2)
                            + sys.vel[i][1].powi(2)
                            + sys.vel[i][2].powi(2))
                    })
                    .sum();
                let tot = ctx.allreduce_f64(&[pe_local, ke_local], ReduceOp::Sum);
                let e = tot[0] + tot[1];
                if step == 0 {
                    energy_first = e;
                } else {
                    energy_last = e;
                }
            }

            // --- integrate my block (velocity Verlet, single force eval:
            // standard leapfrog-equivalent kick-drift) --------------------
            for i in lo..hi {
                for k in 0..3 {
                    sys.vel[i][k] += cfg.dt * sys.force[i][k];
                    sys.pos[i][k] += cfg.dt * sys.vel[i][k];
                    sys.pos[i][k] = sys.pos[i][k].rem_euclid(sys.box_len);
                }
            }
            with_trace(ctx, |g| {
                for i in lo..hi {
                    trace_integrate(g, addrs, i as u64);
                    g.loop_overhead(21, 1);
                }
            });

            // --- position allgather (the per-step communication) ---------
            if ranks > 1 {
                let mut block = Vec::with_capacity((hi - lo) * 24);
                for p in &sys.pos[lo..hi] {
                    for c in p {
                        block.extend_from_slice(&c.to_le_bytes());
                    }
                }
                let sends: Vec<Vec<u8>> = (0..ranks)
                    .map(|d| if d == rank { Vec::new() } else { block.clone() })
                    .collect();
                let got = ctx.alltoallv(sends);
                for (src, payload) in got.into_iter().enumerate() {
                    if src == rank {
                        continue;
                    }
                    let slo = (src * per).min(n);
                    for (k, c) in payload.chunks_exact(8).enumerate() {
                        sys.pos[slo + k / 3][k % 3] = f64::from_le_bytes(
                            c.try_into().expect("chunks_exact yields full chunks"),
                        );
                    }
                }
            }
        }

        if rank == 0 {
            *out.lock().unwrap_or_else(|e| e.into_inner()) = (energy_first, energy_last);
        }
    };
    let (report, trace) = if record {
        let (rep, tr) = MpiWorld::record(soc, ranks, net, program);
        (rep, Some(tr))
    } else {
        (MpiWorld::run(soc, ranks, net, program), None)
    };

    let (initial_energy, final_energy) = out.into_inner().unwrap_or_else(|e| e.into_inner());
    (
        LjResult {
            report,
            initial_energy,
            final_energy,
            atoms,
        },
        trace,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsim_soc::configs;

    #[test]
    fn energy_is_approximately_conserved() {
        let cfg = LjConfig {
            cells: 3,
            steps: 6,
            ..LjConfig::default()
        };
        let r = run(configs::rocket1(1), 1, cfg, NetConfig::shared_memory());
        let drift = (r.final_energy - r.initial_energy).abs() / r.initial_energy.abs().max(1.0);
        assert!(
            drift < 0.05,
            "NVE drift too large: {} -> {}",
            r.initial_energy,
            r.final_energy
        );
        assert_eq!(r.atoms, 108);
    }

    #[test]
    fn lattice_energy_is_negative() {
        // A near-equilibrium LJ crystal is strongly bound.
        let cfg = LjConfig {
            cells: 3,
            steps: 2,
            ..LjConfig::default()
        };
        let r = run(configs::rocket1(1), 1, cfg, NetConfig::shared_memory());
        assert!(
            r.initial_energy < 0.0,
            "LJ crystal must be bound, got {}",
            r.initial_energy
        );
    }

    #[test]
    fn multirank_energies_match_single_rank() {
        let cfg = LjConfig {
            cells: 3,
            steps: 4,
            ..LjConfig::default()
        };
        let a = run(configs::rocket1(1), 1, cfg, NetConfig::shared_memory());
        let b = run(configs::rocket1(2), 2, cfg, NetConfig::shared_memory());
        assert!(
            (a.final_energy - b.final_energy).abs() < 1e-6 * a.final_energy.abs(),
            "{} vs {}",
            a.final_energy,
            b.final_energy
        );
    }

    #[test]
    fn lj_scales_with_ranks() {
        let cfg = LjConfig {
            cells: 4,
            steps: 3,
            ..LjConfig::default()
        };
        let t1 = run(configs::large_boom(1), 1, cfg, NetConfig::shared_memory())
            .report
            .run
            .cycles;
        let t4 = run(configs::large_boom(4), 4, cfg, NetConfig::shared_memory())
            .report
            .run
            .cycles;
        assert!(
            (t1 as f64) > 1.8 * t4 as f64,
            "4 ranks should speed up the melt: {t1} vs {t4}"
        );
    }
}

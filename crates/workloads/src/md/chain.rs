//! The LAMMPS *polymer Chain* benchmark (Figure 7).
//!
//! Bead-spring chains (Kremer–Grest): FENE bonds between consecutive
//! beads of each chain plus a purely repulsive WCA pair interaction
//! between all beads. Compared to the LJ melt, the pair loop is cheaper
//! (cutoff 2^{1/6}σ) and the bond loop adds serial, bond-stride memory
//! traffic — which is why the paper's Chain runtimes are lower than LJ's
//! at the same atom count.

use crate::md::common::{
    sc_lattice, trace_force, trace_integrate, trace_pair, CellList, MdAddrs, System,
};
use crate::trace::{rank_base, with_trace};
use bsim_mpi::{MpiWorld, NetConfig, RankCtx, ReduceOp, WorldReport, WorldTrace};
use bsim_soc::SocConfig;
use serde::{Deserialize, Serialize};

/// Chain problem size.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ChainConfig {
    /// Beads per box edge (beads = cells³, simple-cubic, chains along x).
    pub cells: usize,
    /// Beads per chain (consecutive atom ids form a chain).
    pub chain_len: usize,
    /// Timesteps.
    pub steps: usize,
    /// Reduced density (LAMMPS chain: 0.85).
    pub density: f64,
    /// Timestep.
    pub dt: f64,
}

impl Default for ChainConfig {
    fn default() -> ChainConfig {
        ChainConfig {
            cells: 12,
            chain_len: 12,
            steps: 10,
            density: 0.85,
            dt: 0.003,
        }
    }
}

/// Chain result.
#[derive(Clone, Debug)]
pub struct ChainResult {
    /// Simulation report.
    pub report: WorldReport,
    /// Total energy after the first force evaluation.
    pub initial_energy: f64,
    /// Total energy after the last step.
    pub final_energy: f64,
    /// Bead count.
    pub atoms: usize,
    /// Maximum bond extension observed (must stay < R0).
    pub max_bond: f64,
}

/// WCA cutoff (2^(1/6) σ).
const WCA_CUT: f64 = 1.122462048309373;
/// FENE maximum extension.
const FENE_R0: f64 = 1.5;
/// FENE spring constant.
const FENE_K: f64 = 30.0;

#[inline]
fn wca_pair(r2: f64) -> (f64, f64) {
    let inv_r2 = 1.0 / r2;
    let inv_r6 = inv_r2 * inv_r2 * inv_r2;
    let f_over_r = 48.0 * inv_r2 * inv_r6 * (inv_r6 - 0.5);
    let e = 4.0 * inv_r6 * (inv_r6 - 1.0) + 1.0; // shifted to 0 at cutoff
    (f_over_r, e)
}

#[inline]
fn fene_bond(r2: f64) -> (f64, f64) {
    let r02 = FENE_R0 * FENE_R0;
    let x = (r2 / r02).min(0.99);
    let f_over_r = -FENE_K / (1.0 - x);
    let e = -0.5 * FENE_K * r02 * (1.0 - x).ln();
    (f_over_r, e)
}

/// Runs the Chain benchmark on `ranks` ranks of the given platform.
pub fn run(soc: SocConfig, ranks: usize, cfg: ChainConfig, net: NetConfig) -> ChainResult {
    run_mode(soc, ranks, cfg, net, false).0
}

/// Runs the polymer chain once with timing disabled, capturing the rank
/// programs as a timing-free [`WorldTrace`] for multi-lane replay
/// (`bsim-sweepx`).
pub fn record(
    soc: SocConfig,
    ranks: usize,
    cfg: ChainConfig,
    net: NetConfig,
) -> (ChainResult, WorldTrace) {
    let (r, t) = run_mode(soc, ranks, cfg, net, true);
    (r, t.expect("recording mode always yields a trace"))
}

fn run_mode(
    soc: SocConfig,
    ranks: usize,
    cfg: ChainConfig,
    net: NetConfig,
    record: bool,
) -> (ChainResult, Option<WorldTrace>) {
    use std::sync::Mutex;
    let out: Mutex<(f64, f64, f64)> = Mutex::new((0.0, 0.0, 0.0));
    let atoms = cfg.cells * cfg.cells * cfg.cells;

    let program = |ctx: &mut RankCtx| {
        let rank = ctx.rank();
        let mut sys: System = sc_lattice(cfg.cells, cfg.density);
        let n = sys.len();
        let per = n.div_ceil(ranks);
        let (lo, hi) = ((rank * per).min(n), ((rank + 1) * per).min(n));
        let addrs = MdAddrs::new(rank_base(rank));
        let c2 = WCA_CUT * WCA_CUT;

        let row = cfg.cells; // beads per x-row of the lattice
        let bonded = move |i: usize, j: usize| -> bool {
            // Chains run along x-rows; consecutive beads of the same
            // chain segment within one row are bonded.
            i.abs_diff(j) == 1
                && i / row == j / row
                && (i % row) / cfg.chain_len == (j % row) / cfg.chain_len
        };

        let mut e_first = 0.0;
        let mut e_last = 0.0;
        let mut max_bond: f64 = 0.0;
        for step in 0..cfg.steps {
            let cl = CellList::build(&sys, WCA_CUT.max(FENE_R0));
            with_trace(ctx, |g| {
                for i in 0..n as u64 {
                    g.load(addrs.pos + i * 24);
                    g.int_ops(6, false);
                    g.store(addrs.cells + (i % 4096) * 8);
                }
            });

            // --- pair + bond forces over my block -----------------------
            let mut pe = 0.0;
            let mut pair_log: Vec<(u64, u32, bool)> = Vec::new();
            let mut bond_count = 0u64;
            for i in lo..hi {
                let mut f = [0.0; 3];
                let mut ci = 0u64;
                let mut candidates = Vec::new();
                cl.for_candidates(&sys, i, |j| candidates.push(j));
                for j in candidates {
                    let j = j as usize;
                    if j == i || bonded(i, j) {
                        continue;
                    }
                    let d = sys.delta(i, j);
                    let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                    let within = r2 < c2;
                    pair_log.push((ci, j as u32, within));
                    ci += 1;
                    if within {
                        let (f_over_r, e) = wca_pair(r2);
                        for k in 0..3 {
                            f[k] -= f_over_r * d[k];
                        }
                        pe += 0.5 * e;
                    }
                }
                // FENE bonds with the chain neighbors.
                for j in [i.wrapping_sub(1), i + 1] {
                    if j < n && bonded(i, j) {
                        let d = sys.delta(i, j);
                        let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                        max_bond = max_bond.max(r2.sqrt());
                        let (f_over_r, e) = fene_bond(r2);
                        for k in 0..3 {
                            f[k] -= f_over_r * d[k];
                        }
                        pe += 0.5 * e;
                        bond_count += 1;
                    }
                }
                sys.force[i] = f;
            }
            with_trace(ctx, |g| {
                for &(ci, j, within) in &pair_log {
                    trace_pair(g, addrs, ci, j, within);
                    if within {
                        trace_force(g, addrs, j as u64 % (n as u64));
                    }
                }
                // Bond loop: fixed-stride neighbor loads + ln/div-heavy
                // FENE evaluation.
                for b in 0..bond_count {
                    g.load(addrs.pos + (b % n as u64) * 24);
                    g.flops(8, false);
                    g.fdiv();
                    g.flops(4, true);
                    g.store(addrs.force + (b % n as u64) * 24);
                }
            });

            if step == 0 || step == cfg.steps - 1 {
                let ke_local: f64 = (lo..hi)
                    .map(|i| {
                        0.5 * (sys.vel[i][0].powi(2)
                            + sys.vel[i][1].powi(2)
                            + sys.vel[i][2].powi(2))
                    })
                    .sum();
                let tot = ctx.allreduce_f64(&[pe, ke_local], ReduceOp::Sum);
                if step == 0 {
                    e_first = tot[0] + tot[1];
                } else {
                    e_last = tot[0] + tot[1];
                }
            }

            // --- integrate + exchange ------------------------------------
            for i in lo..hi {
                for k in 0..3 {
                    sys.vel[i][k] += cfg.dt * sys.force[i][k];
                    sys.pos[i][k] += cfg.dt * sys.vel[i][k];
                    sys.pos[i][k] = sys.pos[i][k].rem_euclid(sys.box_len);
                }
            }
            with_trace(ctx, |g| {
                for i in lo..hi {
                    trace_integrate(g, addrs, i as u64);
                    g.loop_overhead(22, 1);
                }
            });
            if ranks > 1 {
                let mut block = Vec::with_capacity((hi - lo) * 24);
                for p in &sys.pos[lo..hi] {
                    for c in p {
                        block.extend_from_slice(&c.to_le_bytes());
                    }
                }
                let sends: Vec<Vec<u8>> = (0..ranks)
                    .map(|d| if d == rank { Vec::new() } else { block.clone() })
                    .collect();
                let got = ctx.alltoallv(sends);
                for (src, payload) in got.into_iter().enumerate() {
                    if src == rank {
                        continue;
                    }
                    let slo = (src * per).min(n);
                    for (k, c) in payload.chunks_exact(8).enumerate() {
                        sys.pos[slo + k / 3][k % 3] = f64::from_le_bytes(
                            c.try_into().expect("chunks_exact yields full chunks"),
                        );
                    }
                }
            }
        }

        // Reduce max bond extension for the sanity check.
        let mb = ctx.allreduce_f64(&[max_bond], ReduceOp::Max)[0];
        if rank == 0 {
            *out.lock().unwrap_or_else(|e| e.into_inner()) = (e_first, e_last, mb);
        }
    };
    let (report, trace) = if record {
        let (rep, tr) = MpiWorld::record(soc, ranks, net, program);
        (rep, Some(tr))
    } else {
        (MpiWorld::run(soc, ranks, net, program), None)
    };

    let (initial_energy, final_energy, max_bond) =
        out.into_inner().unwrap_or_else(|e| e.into_inner());
    (
        ChainResult {
            report,
            initial_energy,
            final_energy,
            atoms,
            max_bond,
        },
        trace,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsim_soc::configs;

    fn tiny() -> ChainConfig {
        ChainConfig {
            cells: 6,
            chain_len: 6,
            steps: 5,
            ..ChainConfig::default()
        }
    }

    #[test]
    fn bonds_stay_below_fene_maximum() {
        let r = run(configs::rocket1(1), 1, tiny(), NetConfig::shared_memory());
        assert!(r.max_bond > 0.0, "bonds must exist");
        assert!(
            r.max_bond < FENE_R0,
            "FENE must cap extension: {}",
            r.max_bond
        );
    }

    #[test]
    fn chain_energy_bounded() {
        let r = run(configs::rocket1(1), 1, tiny(), NetConfig::shared_memory());
        let drift = (r.final_energy - r.initial_energy).abs() / r.initial_energy.abs().max(1.0);
        assert!(
            drift < 0.25,
            "chain drift: {} -> {}",
            r.initial_energy,
            r.final_energy
        );
    }

    #[test]
    fn multirank_matches_single_rank() {
        let a = run(configs::rocket1(1), 1, tiny(), NetConfig::shared_memory());
        let b = run(configs::rocket1(2), 2, tiny(), NetConfig::shared_memory());
        assert!(
            (a.final_energy - b.final_energy).abs() < 1e-6 * a.final_energy.abs().max(1.0),
            "{} vs {}",
            a.final_energy,
            b.final_energy
        );
    }

    #[test]
    fn chain_is_cheaper_than_lj_per_step() {
        use crate::md::lj::{self, LjConfig};
        // Compare at matched atom counts: 4*5^3 = 500 vs 8^3 = 512.
        let lj_cfg = LjConfig {
            cells: 5,
            steps: 3,
            ..LjConfig::default()
        };
        let ch_cfg = ChainConfig {
            cells: 8,
            chain_len: 8,
            steps: 3,
            ..ChainConfig::default()
        };
        let t_lj = lj::run(
            configs::large_boom(1),
            1,
            lj_cfg,
            NetConfig::shared_memory(),
        )
        .report
        .run
        .cycles;
        let t_ch = run(
            configs::large_boom(1),
            1,
            ch_cfg,
            NetConfig::shared_memory(),
        )
        .report
        .run
        .cycles;
        assert!(
            t_ch < t_lj,
            "the short WCA cutoff must make Chain cheaper: {t_ch} vs {t_lj}"
        );
    }
}

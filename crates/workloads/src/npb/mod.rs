//! NAS Parallel Benchmarks (Table 2): CG, EP, IS, MG.
//!
//! Real computations with class-A-shaped geometry at reduced size (see
//! DESIGN.md §5); each emits its micro-op and MPI traffic through the
//! rank's simulated core.

pub mod cg;
pub mod ep;
pub mod is;
pub mod mg;

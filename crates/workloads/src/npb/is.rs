//! NPB IS — Integer Sort (Table 2: "Memory Latency, BW").
//!
//! Bucket sort of uniformly distributed integer keys: each rank builds a
//! local histogram (random-access increments — the latency component),
//! the histograms are allreduced, keys are redistributed with an
//! all-to-all so rank `r` receives the `r`-th key range, and each rank
//! ranks its keys locally (the bandwidth component).

use crate::trace::{rank_base, with_trace};
use bsim_mpi::{MpiWorld, NetConfig, RankCtx, ReduceOp, WorldReport, WorldTrace};
use bsim_soc::SocConfig;
use serde::{Deserialize, Serialize};

/// IS problem size.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct IsConfig {
    /// Keys per rank (class A is 2^23 total keys; reduced here).
    pub keys_per_rank: usize,
    /// Key range: keys are in `[0, max_key)` (class A: 2^19).
    pub max_key: u32,
    /// Ranking repetitions (the NPB benchmark does 10 timed iterations).
    pub iterations: usize,
}

impl Default for IsConfig {
    fn default() -> IsConfig {
        IsConfig {
            keys_per_rank: 1 << 14,
            max_key: 1 << 15,
            iterations: 2,
        }
    }
}

/// IS result.
#[derive(Clone, Debug)]
pub struct IsResult {
    /// Simulation report.
    pub report: WorldReport,
    /// True if every rank's final key slice was sorted and the slices
    /// partition the key space in rank order.
    pub sorted: bool,
    /// Total keys sorted.
    pub total_keys: usize,
}

fn gen_keys(rank: usize, cfg: IsConfig) -> Vec<u32> {
    let mut state = 0x1234_5678_9ABC_DEF0u64 ^ ((rank as u64) << 40);
    (0..cfg.keys_per_rank)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % cfg.max_key as u64) as u32
        })
        .collect()
}

/// Runs IS on `ranks` ranks of the given platform.
pub fn run(soc: SocConfig, ranks: usize, cfg: IsConfig, net: NetConfig) -> IsResult {
    run_mode(soc, ranks, cfg, net, false).0
}

/// Runs IS once with timing disabled, capturing the rank programs as a
/// timing-free [`WorldTrace`] for multi-lane replay (`bsim-sweepx`).
pub fn record(
    soc: SocConfig,
    ranks: usize,
    cfg: IsConfig,
    net: NetConfig,
) -> (IsResult, WorldTrace) {
    let (r, t) = run_mode(soc, ranks, cfg, net, true);
    (r, t.expect("recording mode always yields a trace"))
}

fn run_mode(
    soc: SocConfig,
    ranks: usize,
    cfg: IsConfig,
    net: NetConfig,
    record: bool,
) -> (IsResult, Option<WorldTrace>) {
    use std::sync::Mutex;
    let outcome: Mutex<(bool, usize)> = Mutex::new((true, 0));

    let program = |ctx: &mut RankCtx| {
        let rank = ctx.rank();
        let base = rank_base(rank);
        let addr_keys = base;
        let addr_hist = base + 0x0100_0000;
        let keys = gen_keys(rank, cfg);
        let range_per = (cfg.max_key as usize).div_ceil(ranks) as u32;

        let mut final_slice: Vec<u32> = Vec::new();
        for _ in 0..cfg.iterations {
            // --- local histogram (random-access increments) -------------
            let mut hist = vec![0.0f64; cfg.max_key as usize];
            for &k in &keys {
                hist[k as usize] += 1.0;
            }
            with_trace(ctx, |g| {
                for (i, &k) in keys.iter().enumerate() {
                    g.load(addr_keys + (i as u64) * 4);
                    g.int_ops(2, false);
                    // hist[k]++: dependent load + store at a random slot.
                    g.gather(addr_keys + (i as u64) * 4, addr_hist + (k as u64) * 8);
                    g.store(addr_hist + (k as u64) * 8);
                    g.loop_overhead(5, 1);
                }
            });

            // --- global histogram (allreduce, as NPB IS does) -----------
            let global = ctx.allreduce_f64(&hist, ReduceOp::Sum);

            // --- key redistribution: all-to-all by key range -------------
            let mut sends: Vec<Vec<u8>> = vec![Vec::new(); ranks];
            for &k in &keys {
                let dest = ((k / range_per) as usize).min(ranks - 1);
                sends[dest].extend_from_slice(&k.to_le_bytes());
            }
            // Keep my own slice directly (self-entry of the alltoall).
            let mine_direct: Vec<u32> = {
                let payload = std::mem::take(&mut sends[rank]);
                payload
                    .chunks_exact(4)
                    .map(|c| {
                        u32::from_le_bytes(c.try_into().expect("chunks_exact yields full chunks"))
                    })
                    .collect()
            };
            let mut my_keys: Vec<u32> = mine_direct;
            if ranks > 1 {
                let got = ctx.alltoallv(sends);
                for (src, payload) in got.into_iter().enumerate() {
                    if src == rank {
                        continue;
                    }
                    for c in payload.chunks_exact(4) {
                        my_keys.push(u32::from_le_bytes(
                            c.try_into().expect("chunks_exact yields full chunks"),
                        ));
                    }
                }
            }

            // --- local ranking via counting over my key range -----------
            let lo = rank as u32 * range_per;
            let hi = ((rank + 1) as u32 * range_per).min(cfg.max_key);
            let mut counts = vec![0usize; (hi.saturating_sub(lo)) as usize];
            for &k in &my_keys {
                counts[(k - lo) as usize] += 1;
            }
            let mut sorted = Vec::with_capacity(my_keys.len());
            for (off, &c) in counts.iter().enumerate() {
                for _ in 0..c {
                    sorted.push(lo + off as u32);
                }
            }
            with_trace(ctx, |g| {
                // Counting pass: streamed key loads + random count bumps.
                for i in 0..my_keys.len() as u64 {
                    g.load(addr_keys + i * 4);
                    g.int_ops(2, false);
                    g.store(addr_hist + (my_keys[i as usize] as u64 % 4096) * 8);
                }
                // Output pass: streaming stores.
                for i in 0..sorted.len() as u64 {
                    g.store(addr_keys + 0x80_0000 + i * 4);
                    g.int_ops(1, false);
                }
            });
            // Sanity: my counts agree with the allreduced histogram.
            let consistent =
                (lo..hi).all(|k| global[k as usize] as usize == counts[(k - lo) as usize]);
            final_slice = sorted;
            if !consistent {
                outcome.lock().unwrap_or_else(|e| e.into_inner()).0 = false;
            }
        }

        // --- verification -------------------------------------------------
        let sorted_ok = final_slice.windows(2).all(|w| w[0] <= w[1]);
        let range_ok = final_slice
            .iter()
            .all(|&k| k / range_per == rank as u32 || (k / range_per) as usize >= ranks);
        let mut o = outcome.lock().unwrap_or_else(|e| e.into_inner());
        o.0 &= sorted_ok && range_ok;
        o.1 += final_slice.len();
    };
    let (report, trace) = if record {
        let (rep, tr) = MpiWorld::record(soc, ranks, net, program);
        (rep, Some(tr))
    } else {
        (MpiWorld::run(soc, ranks, net, program), None)
    };

    let (sorted, total_keys) = outcome.into_inner().unwrap_or_else(|e| e.into_inner());
    (
        IsResult {
            report,
            sorted,
            total_keys,
        },
        trace,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsim_soc::configs;

    #[test]
    fn is_sorts_correctly_across_ranks() {
        let cfg = IsConfig {
            keys_per_rank: 2000,
            max_key: 1 << 12,
            iterations: 1,
        };
        let r = run(configs::rocket1(4), 4, cfg, NetConfig::shared_memory());
        assert!(
            r.sorted,
            "every rank's slice must be sorted and range-correct"
        );
        assert_eq!(r.total_keys, 8000, "no key may be lost in the exchange");
    }

    #[test]
    fn is_single_rank_works() {
        let cfg = IsConfig {
            keys_per_rank: 4000,
            max_key: 1 << 12,
            iterations: 1,
        };
        let r = run(configs::large_boom(1), 1, cfg, NetConfig::shared_memory());
        assert!(r.sorted);
        assert_eq!(r.total_keys, 4000);
    }

    #[test]
    fn is_moves_real_bytes() {
        let cfg = IsConfig {
            keys_per_rank: 4000,
            max_key: 1 << 12,
            iterations: 1,
        };
        let r = run(configs::rocket1(2), 2, cfg, NetConfig::shared_memory());
        // ~half of each rank's keys belong to the other rank.
        assert!(
            r.report.bytes > 4000,
            "alltoall must carry keys, got {}",
            r.report.bytes
        );
    }
}

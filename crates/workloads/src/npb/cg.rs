//! NPB CG — Conjugate Gradient (Table 2: "Memory Latency").
//!
//! Estimates the smallest eigenvalue of a sparse symmetric
//! positive-definite matrix via inverse power iteration, with a CG solve
//! in the inner loop — the original benchmark's structure. The sparse
//! matrix-vector product's *gather* (`p[colidx[k]]`) is the
//! memory-latency probe the paper relies on; rows are block-partitioned
//! across ranks, and each iteration ends with dot-product allreduces and
//! an allgather of the updated direction vector.

use crate::trace::{rank_base, with_trace};
use bsim_mpi::{MpiWorld, NetConfig, RankCtx, ReduceOp, WorldReport, WorldTrace};
use bsim_soc::SocConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// CG problem size.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CgConfig {
    /// Matrix dimension (class A is 14000; default is class-A-shaped at
    /// reduced size — DESIGN.md §5).
    pub n: usize,
    /// Nonzeros per row (class A averages 11).
    pub nnz_per_row: usize,
    /// CG iterations per solve (class A: 15).
    pub iters: usize,
}

impl Default for CgConfig {
    fn default() -> CgConfig {
        CgConfig {
            n: 1024,
            nnz_per_row: 11,
            iters: 15,
        }
    }
}

/// CG result.
#[derive(Clone, Debug)]
pub struct CgResult {
    /// Simulation report.
    pub report: WorldReport,
    /// Final residual norm ‖r‖₂.
    pub residual: f64,
    /// Initial residual norm (‖b‖₂).
    pub initial_residual: f64,
}

/// A sparse row: column indices and values.
#[derive(Clone, Debug)]
pub struct SparseMatrix {
    /// Dimension.
    pub n: usize,
    /// Per-row column indices.
    pub cols: Vec<Vec<u32>>,
    /// Per-row values.
    pub vals: Vec<Vec<f64>>,
}

/// Builds the deterministic random SPD-ish matrix (strong diagonal).
pub fn build_matrix(cfg: CgConfig) -> SparseMatrix {
    let mut rng = SmallRng::seed_from_u64(0xC6);
    let mut cols = Vec::with_capacity(cfg.n);
    let mut vals = Vec::with_capacity(cfg.n);
    for i in 0..cfg.n {
        let mut c: Vec<u32> = (0..cfg.nnz_per_row - 1)
            .map(|_| rng.gen_range(0..cfg.n as u32))
            .filter(|&j| j != i as u32)
            .collect();
        c.push(i as u32);
        c.sort_unstable();
        c.dedup();
        let v: Vec<f64> = c
            .iter()
            .map(|&j| {
                if j == i as u32 {
                    // Diagonal dominance makes CG converge briskly.
                    cfg.nnz_per_row as f64 + 2.0
                } else {
                    rng.gen_range(-0.5..0.5)
                }
            })
            .collect();
        cols.push(c);
        vals.push(v);
    }
    SparseMatrix {
        n: cfg.n,
        cols,
        vals,
    }
}

/// Plain sequential CG, used by tests as the ground truth.
pub fn reference(cfg: CgConfig) -> (f64, f64) {
    let a = build_matrix(cfg);
    let b = vec![1.0; cfg.n];
    let mut x = vec![0.0; cfg.n];
    let mut r = b.clone();
    let mut p = r.clone();
    let mut rho: f64 = r.iter().map(|v| v * v).sum();
    let initial = rho.sqrt();
    for _ in 0..cfg.iters {
        let q: Vec<f64> = (0..cfg.n)
            .map(|i| {
                a.cols[i]
                    .iter()
                    .zip(&a.vals[i])
                    .map(|(&j, &v)| v * p[j as usize])
                    .sum()
            })
            .collect();
        let pq: f64 = p.iter().zip(&q).map(|(a, b)| a * b).sum();
        let alpha = rho / pq;
        for i in 0..cfg.n {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
        }
        let rho2: f64 = r.iter().map(|v| v * v).sum();
        let beta = rho2 / rho;
        rho = rho2;
        for i in 0..cfg.n {
            p[i] = r[i] + beta * p[i];
        }
    }
    (initial, rho.sqrt())
}

/// Runs CG on `ranks` ranks of the given platform.
pub fn run(soc: SocConfig, ranks: usize, cfg: CgConfig, net: NetConfig) -> CgResult {
    run_mode(soc, ranks, cfg, net, false).0
}

/// Runs CG once with timing disabled, capturing the rank programs as a
/// timing-free [`WorldTrace`] for multi-lane replay (`bsim-sweepx`).
/// The returned result's report carries no meaningful timing; its
/// functional fields (residuals) are exact.
pub fn record(
    soc: SocConfig,
    ranks: usize,
    cfg: CgConfig,
    net: NetConfig,
) -> (CgResult, WorldTrace) {
    let (r, t) = run_mode(soc, ranks, cfg, net, true);
    (r, t.expect("recording mode always yields a trace"))
}

fn run_mode(
    soc: SocConfig,
    ranks: usize,
    cfg: CgConfig,
    net: NetConfig,
    record: bool,
) -> (CgResult, Option<WorldTrace>) {
    use std::sync::Mutex;
    let out: Mutex<(f64, f64)> = Mutex::new((0.0, 0.0));
    let a = build_matrix(cfg);
    let a = &a;

    let program = |ctx: &mut RankCtx| {
        let rank = ctx.rank();
        let n = cfg.n;
        let rows_per = n.div_ceil(ranks);
        let lo = (rank * rows_per).min(n);
        let hi = ((rank + 1) * rows_per).min(n);

        // Virtual addresses of this rank's arrays (for the trace).
        let base = rank_base(rank);
        let addr_cols = base;
        let addr_vals = base + 0x0100_0000;
        let addr_p = base + 0x0200_0000;
        let addr_q = base + 0x0300_0000;
        let addr_rx = base + 0x0400_0000;

        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let mut r = b.clone();
        let mut p = r.clone();
        // rho = r·r over my rows, reduced.
        let local_rho: f64 = r[lo..hi].iter().map(|v| v * v).sum();
        let mut rho = ctx.allreduce_f64(&[local_rho], ReduceOp::Sum)[0];
        let initial = rho.sqrt();

        for _ in 0..cfg.iters {
            // --- q = A p over my rows (the latency-bound gather) -------
            let mut q = vec![0.0; hi - lo];
            let mut nz = 0u64;
            for (qi, i) in (lo..hi).enumerate() {
                let mut acc = 0.0;
                for (k, (&j, &v)) in a.cols[i].iter().zip(&a.vals[i]).enumerate() {
                    acc += v * p[j as usize];
                    let _ = k;
                    nz += 1;
                }
                q[qi] = acc;
            }
            // Trace for the SpMV: per nonzero, a streamed colidx/value
            // load plus the dependent gather of p[col]; per row, a store
            // and loop overhead.
            with_trace(ctx, |g| {
                let mut nzc = 0u64;
                for i in lo..hi {
                    for &j in &a.cols[i] {
                        g.load(addr_vals + nzc * 8);
                        g.gather(addr_cols + nzc * 4, addr_p + (j as u64) * 8);
                        g.flops(2, true); // fused multiply-add chain per row
                        nzc += 1;
                    }
                    g.store(addr_q + ((i - lo) as u64) * 8);
                    g.loop_overhead(3, 1);
                }
                debug_assert_eq!(nzc, nz);
            });

            // --- alpha = rho / (p·q) ------------------------------------
            let local_pq: f64 = (lo..hi).map(|i| p[i] * q[i - lo]).sum();
            with_trace(ctx, |g| {
                for i in 0..(hi - lo) as u64 {
                    g.load(addr_p + (lo as u64 + i) * 8);
                    g.load(addr_q + i * 8);
                    g.flops(2, true);
                }
            });
            let pq = ctx.allreduce_f64(&[local_pq], ReduceOp::Sum)[0];
            let alpha = rho / pq;

            // --- x += alpha p; r -= alpha q; rho' = r·r ------------------
            let mut local_rho2 = 0.0;
            for i in lo..hi {
                x[i] += alpha * p[i];
                r[i] -= alpha * q[i - lo];
                local_rho2 += r[i] * r[i];
            }
            with_trace(ctx, |g| {
                for i in 0..(hi - lo) as u64 {
                    g.load(addr_rx + i * 8);
                    g.load(addr_p + (lo as u64 + i) * 8);
                    g.load(addr_q + i * 8);
                    g.flops(6, false);
                    g.store(addr_rx + i * 8);
                    g.loop_overhead(4, 1);
                }
            });
            let rho2 = ctx.allreduce_f64(&[local_rho2], ReduceOp::Sum)[0];
            let beta = rho2 / rho;
            rho = rho2;

            // --- p = r + beta p (my rows), then allgather p --------------
            for i in lo..hi {
                p[i] = r[i] + beta * p[i];
            }
            with_trace(ctx, |g| {
                for i in 0..(hi - lo) as u64 {
                    g.load(addr_rx + i * 8);
                    g.load(addr_p + (lo as u64 + i) * 8);
                    g.flops(2, false);
                    g.store(addr_p + (lo as u64 + i) * 8);
                }
            });
            // Allgather the direction vector (the NPB transpose-exchange
            // equivalent): every rank sends its block to every other.
            if ranks > 1 {
                let mut block = Vec::with_capacity((hi - lo) * 8);
                for &v in &p[lo..hi] {
                    block.extend_from_slice(&v.to_le_bytes());
                }
                let sends: Vec<Vec<u8>> = (0..ranks)
                    .map(|d| if d == rank { Vec::new() } else { block.clone() })
                    .collect();
                let got = ctx.alltoallv(sends);
                for (src, payload) in got.into_iter().enumerate() {
                    if src == rank {
                        continue;
                    }
                    let slo = (src * rows_per).min(n);
                    for (k, c) in payload.chunks_exact(8).enumerate() {
                        p[slo + k] = f64::from_le_bytes(
                            c.try_into().expect("chunks_exact yields full chunks"),
                        );
                    }
                }
            }
        }

        if rank == 0 {
            *out.lock().unwrap_or_else(|e| e.into_inner()) = (initial, rho.sqrt());
        }
    };
    let (report, trace) = if record {
        let (rep, tr) = MpiWorld::record(soc, ranks, net, program);
        (rep, Some(tr))
    } else {
        (MpiWorld::run(soc, ranks, net, program), None)
    };

    let (initial, residual) = out.into_inner().unwrap_or_else(|e| e.into_inner());
    (
        CgResult {
            report,
            residual,
            initial_residual: initial,
        },
        trace,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsim_soc::configs;

    #[test]
    fn parallel_cg_matches_sequential_reference() {
        let cfg = CgConfig {
            n: 256,
            nnz_per_row: 8,
            iters: 8,
        };
        let (init_ref, res_ref) = reference(cfg);
        let r = run(configs::rocket1(2), 2, cfg, NetConfig::shared_memory());
        assert!((r.initial_residual - init_ref).abs() < 1e-9);
        assert!(
            (r.residual - res_ref).abs() < 1e-9 * res_ref.max(1.0),
            "{} vs {res_ref}",
            r.residual
        );
    }

    #[test]
    fn cg_converges() {
        let cfg = CgConfig {
            n: 256,
            nnz_per_row: 8,
            iters: 10,
        };
        let (init, res) = reference(cfg);
        assert!(
            res < init * 1e-3,
            "CG must reduce the residual: {init} -> {res}"
        );
    }

    #[test]
    fn cg_generates_gather_traffic() {
        let cfg = CgConfig {
            n: 512,
            nnz_per_row: 8,
            iters: 3,
        };
        let r = run(configs::large_boom(1), 1, cfg, NetConfig::shared_memory());
        let s = &r.report.run.mem_stats;
        assert!(
            s.l1d_accesses > 50_000,
            "SpMV must load heavily, got {}",
            s.l1d_accesses
        );
    }

    #[test]
    fn cg_multirank_is_deterministic() {
        let cfg = CgConfig {
            n: 256,
            nnz_per_row: 8,
            iters: 4,
        };
        let a = run(configs::rocket1(4), 4, cfg, NetConfig::shared_memory());
        let b = run(configs::rocket1(4), 4, cfg, NetConfig::shared_memory());
        assert_eq!(a.report.run.cycles, b.report.run.cycles);
        assert_eq!(a.residual, b.residual);
    }
}

//! NPB EP — Embarrassingly Parallel (Table 2: "Compute").
//!
//! Generates pairs of uniform deviates with a multiplicative LCG,
//! applies the acceptance-rejection Gaussian transform (Marsaglia polar
//! method, as the original EP does), and tallies the deviates into
//! annular bins. Communication is a single allreduce at the end — which
//! is why the paper uses EP as its compute-bound probe (§5.2: "EP
//! demonstrated near performance parity between simulation and hardware
//! ... confirms the compute capabilities of the large BOOM configuration
//! are very close to those of the MILK-V hardware").

use crate::trace::{rank_base, with_trace};
use bsim_mpi::{MpiWorld, NetConfig, RankCtx, ReduceOp, WorldReport, WorldTrace};
use bsim_soc::SocConfig;
use serde::{Deserialize, Serialize};

/// EP problem size.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EpConfig {
    /// Gaussian pairs attempted per rank (class A is 2^28 total; the
    /// default here is class-A-shaped at reduced size — DESIGN.md §5).
    pub pairs_per_rank: u64,
}

impl Default for EpConfig {
    fn default() -> EpConfig {
        EpConfig {
            pairs_per_rank: 1 << 15,
        }
    }
}

/// EP result.
#[derive(Clone, Debug)]
pub struct EpResult {
    /// Simulation report.
    pub report: WorldReport,
    /// Sum of accepted X deviates.
    pub sx: f64,
    /// Sum of accepted Y deviates.
    pub sy: f64,
    /// Annulus counts `q[0..10]`.
    pub counts: [f64; 10],
    /// Total accepted pairs.
    pub accepted: u64,
}

const LCG_MULT: u64 = 6364136223846793005;
const LCG_INC: u64 = 1442695040888963407;

#[inline]
fn lcg(x: &mut u64) -> f64 {
    *x = x.wrapping_mul(LCG_MULT).wrapping_add(LCG_INC);
    // Upper 53 bits as a uniform in [0, 1).
    (*x >> 11) as f64 / (1u64 << 53) as f64
}

/// Reference (non-simulated) computation of the global tallies, used by
/// tests to validate the simulated run bit-for-bit.
pub fn reference(cfg: EpConfig, ranks: usize) -> (f64, f64, [f64; 10], u64) {
    let mut sx = 0.0;
    let mut sy = 0.0;
    let mut q = [0.0f64; 10];
    let mut accepted = 0u64;
    for rank in 0..ranks {
        let mut state = 0x2709_0409u64 ^ ((rank as u64) << 32);
        for _ in 0..cfg.pairs_per_rank {
            let u1 = lcg(&mut state);
            let u2 = lcg(&mut state);
            let x = 2.0 * u1 - 1.0;
            let y = 2.0 * u2 - 1.0;
            let t = x * x + y * y;
            if t <= 1.0 && t > 0.0 {
                let f = (-2.0 * t.ln() / t).sqrt();
                let gx = x * f;
                let gy = y * f;
                let l = gx.abs().max(gy.abs()) as usize;
                if l < 10 {
                    q[l] += 1.0;
                }
                sx += gx;
                sy += gy;
                accepted += 1;
            }
        }
    }
    (sx, sy, q, accepted)
}

/// Runs EP on `ranks` ranks of the given platform.
pub fn run(soc: SocConfig, ranks: usize, cfg: EpConfig, net: NetConfig) -> EpResult {
    run_mode(soc, ranks, cfg, net, false).0
}

/// Runs EP once with timing disabled, capturing the rank programs as a
/// timing-free [`WorldTrace`] for multi-lane replay (`bsim-sweepx`).
pub fn record(
    soc: SocConfig,
    ranks: usize,
    cfg: EpConfig,
    net: NetConfig,
) -> (EpResult, WorldTrace) {
    let (r, t) = run_mode(soc, ranks, cfg, net, true);
    (r, t.expect("recording mode always yields a trace"))
}

fn run_mode(
    soc: SocConfig,
    ranks: usize,
    cfg: EpConfig,
    net: NetConfig,
    record: bool,
) -> (EpResult, Option<WorldTrace>) {
    use std::sync::Mutex;
    let tallies: Mutex<(f64, f64, [f64; 10], u64)> = Mutex::new((0.0, 0.0, [0.0; 10], 0));

    let program = |ctx: &mut RankCtx| {
        let rank = ctx.rank();
        let base = rank_base(rank);
        let mut state = 0x2709_0409u64 ^ ((rank as u64) << 32);
        let mut sx = 0.0;
        let mut sy = 0.0;
        let mut q = [0.0f64; 10];
        let mut accepted = 0u64;

        // Batch the trace in chunks to amortize the SoC lock.
        const CHUNK: u64 = 512;
        let mut remaining = cfg.pairs_per_rank;
        while remaining > 0 {
            let n = remaining.min(CHUNK);
            remaining -= n;
            with_trace(ctx, |g| {
                for _ in 0..n {
                    let u1 = lcg(&mut state);
                    let u2 = lcg(&mut state);
                    let x = 2.0 * u1 - 1.0;
                    let y = 2.0 * u2 - 1.0;
                    let t = x * x + y * y;
                    // LCG: serial int chain; transform + radius is a
                    // short dependent FP chain — the acceptance branch
                    // keeps this loop scalar even on vector hardware.
                    g.int_ops(4, true);
                    g.flops(7, true);
                    let accept = t <= 1.0 && t > 0.0;
                    g.branch(1, accept);
                    if accept {
                        let f = (-2.0 * t.ln() / t).sqrt();
                        let gx = x * f;
                        let gy = y * f;
                        // ln + div + sqrt: the expensive tail.
                        g.flops(6, true);
                        g.fdiv();
                        g.fsqrt();
                        let l = gx.abs().max(gy.abs()) as usize;
                        g.int_ops(3, false);
                        if l < 10 {
                            q[l] += 1.0;
                            // Bin update: load + add + store.
                            g.load(base + 0x100 + (l as u64) * 8);
                            g.flops(1, false);
                            g.store(base + 0x100 + (l as u64) * 8);
                        }
                        sx += gx;
                        sy += gy;
                        accepted += 1;
                    }
                    g.loop_overhead(2, 1);
                }
            });
        }

        // Final reduction, exactly as EP's MPI_Allreduce of sx, sy, q.
        let mut v = vec![sx, sy, accepted as f64];
        v.extend_from_slice(&q);
        let total = ctx.allreduce_f64(&v, ReduceOp::Sum);
        if rank == 0 {
            let mut t = tallies.lock().unwrap_or_else(|e| e.into_inner());
            t.0 = total[0];
            t.1 = total[1];
            t.3 = total[2] as u64;
            t.2.copy_from_slice(&total[3..13]);
        }
    };
    let (report, trace) = if record {
        let (rep, tr) = MpiWorld::record(soc, ranks, net, program);
        (rep, Some(tr))
    } else {
        (MpiWorld::run(soc, ranks, net, program), None)
    };

    let t = tallies.into_inner().unwrap_or_else(|e| e.into_inner());
    (
        EpResult {
            report,
            sx: t.0,
            sy: t.1,
            counts: t.2,
            accepted: t.3,
        },
        trace,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsim_soc::configs;

    #[test]
    fn simulated_tallies_match_reference() {
        let cfg = EpConfig {
            pairs_per_rank: 2000,
        };
        let (sx, sy, q, acc) = reference(cfg, 2);
        let r = run(configs::rocket1(2), 2, cfg, NetConfig::shared_memory());
        assert_eq!(r.accepted, acc);
        assert!((r.sx - sx).abs() < 1e-9, "{} vs {sx}", r.sx);
        assert!((r.sy - sy).abs() < 1e-9);
        assert_eq!(r.counts, q);
    }

    #[test]
    fn acceptance_rate_is_pi_over_four() {
        let cfg = EpConfig {
            pairs_per_rank: 20_000,
        };
        let (_, _, _, acc) = reference(cfg, 1);
        let rate = acc as f64 / 20_000.0;
        assert!(
            (rate - std::f64::consts::FRAC_PI_4).abs() < 0.01,
            "rate {rate}"
        );
    }

    #[test]
    fn ep_scales_with_ranks() {
        // Same total work on 1 vs 4 ranks: 4 ranks should be much faster.
        let t1 = run(
            configs::large_boom(1),
            1,
            EpConfig {
                pairs_per_rank: 8_000,
            },
            NetConfig::shared_memory(),
        )
        .report
        .run
        .cycles;
        let t4 = run(
            configs::large_boom(4),
            4,
            EpConfig {
                pairs_per_rank: 2_000,
            },
            NetConfig::shared_memory(),
        )
        .report
        .run
        .cycles;
        assert!(
            (t1 as f64) > 2.5 * t4 as f64,
            "EP is embarrassingly parallel: {t1} vs {t4}"
        );
    }

    #[test]
    fn ep_is_compute_bound() {
        let r = run(
            configs::large_boom(1),
            1,
            EpConfig::default(),
            NetConfig::shared_memory(),
        );
        let s = &r.report.run.mem_stats;
        assert!(
            (s.dram_reads + s.dram_writes) < r.report.run.retired / 100,
            "EP must not be memory bound: {} DRAM ops vs {} uops",
            s.dram_reads + s.dram_writes,
            r.report.run.retired
        );
    }
}

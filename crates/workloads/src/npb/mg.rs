//! NPB MG — MultiGrid (Table 2: "Memory Latency, BW").
//!
//! V-cycle multigrid for a 3-D Poisson problem on an `n³` grid: smooth,
//! compute residual, restrict to the coarser level, recurse, prolongate
//! and correct. The stencil sweeps touch three z-planes per point —
//! strides of `n²·8` bytes — which is what makes MG the paper's
//! bandwidth/latency probe, and the slab decomposition's halo exchanges
//! (one plane per neighbor per sweep) its communication pattern.

use crate::trace::{rank_base, with_trace};
use bsim_mpi::{MpiWorld, NetConfig, RankCtx, ReduceOp, WorldReport, WorldTrace};
use bsim_soc::SocConfig;
use serde::{Deserialize, Serialize};

/// MG problem size.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MgConfig {
    /// Grid edge (power of two; class A is 256, reduced here).
    pub n: usize,
    /// Multigrid levels (level 0 = finest).
    pub levels: usize,
    /// V-cycles to run (class A: 4).
    pub cycles: usize,
}

impl Default for MgConfig {
    fn default() -> MgConfig {
        MgConfig {
            n: 32,
            levels: 3,
            cycles: 2,
        }
    }
}

/// MG result.
#[derive(Clone, Debug)]
pub struct MgResult {
    /// Simulation report.
    pub report: WorldReport,
    /// Residual norm before the first V-cycle.
    pub initial_residual: f64,
    /// Residual norm after the last V-cycle.
    pub final_residual: f64,
}

/// A slab-decomposed scalar field: rank owns z-planes `[zlo, zhi)` plus
/// one ghost plane on each side.
struct Slab {
    n: usize,
    zlo: usize,
    zhi: usize,
    /// (zhi - zlo + 2) planes of n*n values; plane 0 and the last plane
    /// are ghosts.
    data: Vec<f64>,
}

impl Slab {
    fn new(n: usize, zlo: usize, zhi: usize) -> Slab {
        Slab {
            n,
            zlo,
            zhi,
            data: vec![0.0; (zhi - zlo + 2) * n * n],
        }
    }
    #[inline]
    fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        // z is global; plane index is z - zlo + 1.
        ((z + 1 - self.zlo) * self.n + y) * self.n + x
    }
    #[inline]
    fn get(&self, x: usize, y: usize, z: usize) -> f64 {
        self.data[self.idx(x, y, z)]
    }
    #[inline]
    fn set(&mut self, x: usize, y: usize, z: usize, v: f64) {
        let i = self.idx(x, y, z);
        self.data[i] = v;
    }
}

/// Exchanges ghost planes with the z-neighbors (periodic boundaries).
fn halo_exchange(ctx: &mut RankCtx, slab: &mut Slab, tag: u32) {
    let ranks = ctx.size();
    if ranks == 1 {
        // Periodic wrap within the rank.
        let n = slab.n;
        let nz = slab.zhi - slab.zlo;
        for y in 0..n {
            for x in 0..n {
                let top = slab.get(x, y, slab.zhi - 1);
                let bot = slab.get(x, y, slab.zlo);
                let i_low_ghost = y * n + x;
                let i_high_ghost = ((nz + 1) * n + y) * n + x;
                slab.data[i_low_ghost] = top;
                slab.data[i_high_ghost] = bot;
            }
        }
        return;
    }
    let rank = ctx.rank();
    let up = (rank + 1) % ranks;
    let down = (rank + ranks - 1) % ranks;
    let n = slab.n;
    let plane = n * n;
    let nz = slab.zhi - slab.zlo;
    // Send my top plane up, my bottom plane down.
    let top: Vec<f64> = slab.data[nz * plane..(nz + 1) * plane].to_vec();
    let bot: Vec<f64> = slab.data[plane..2 * plane].to_vec();
    ctx.send_f64s(up, tag, &top);
    ctx.send_f64s(down, tag + 1, &bot);
    let from_down = ctx.recv_f64s(down, tag);
    let from_up = ctx.recv_f64s(up, tag + 1);
    slab.data[0..plane].copy_from_slice(&from_down);
    slab.data[(nz + 1) * plane..(nz + 2) * plane].copy_from_slice(&from_up);
}

/// Emits the trace for one 7-point stencil sweep over the slab.
fn trace_sweep(ctx: &mut RankCtx, slab: &Slab, level: usize) {
    let n = slab.n as u64;
    let base = rank_base(ctx.rank()) + (level as u64) * 0x0200_0000;
    let plane = n * n * 8;
    let nz = (slab.zhi - slab.zlo) as u64;
    // Per interior point: center + y±1 rows + z±1 planes are distinct
    // lines (x±1 shares the center's line); 6 flops; one store.
    with_trace(ctx, |g| {
        for z in 0..nz {
            for y in 0..n {
                let row = base + z * plane + y * n * 8;
                for x in (0..n).step_by(8) {
                    // One 64-byte line's worth of points, as a compiler
                    // would emit: line-granular loads for the 5 streams.
                    let p = row + x * 8;
                    g.load(p);
                    g.load(p + n * 8); // y+1 row
                    g.load(p.saturating_sub(n * 8)); // y-1 row
                    g.load(p + plane); // z+1 plane
                    g.load(p.saturating_sub(plane)); // z-1 plane
                    g.flops(6 * 8, false);
                    g.store(p);
                    g.int_ops(4, false);
                }
                g.loop_overhead(6, 1);
            }
        }
    });
}

/// One weighted-Jacobi smoothing sweep; returns the sweep's residual
/// norm contribution (‖f - A u‖² over owned points). Neighbors in x/y
/// wrap periodically; z neighbors come from the ghost planes.
fn smooth(u: &mut Slab, f: &Slab, omega: f64) -> f64 {
    let n = u.n;
    let mut res2 = 0.0;
    let h2 = 1.0 / (n * n) as f64;
    let old = u.data.clone();
    let at = |px: usize, py: usize, pz: usize| old[(pz * n + py) * n + px];
    for z in u.zlo..u.zhi {
        let pz = z - u.zlo + 1; // plane index (ghosts at 0 and nz+1)
        for y in 0..n {
            for x in 0..n {
                let xl = at(if x == 0 { n - 1 } else { x - 1 }, y, pz);
                let xr = at(if x == n - 1 { 0 } else { x + 1 }, y, pz);
                let yl = at(x, if y == 0 { n - 1 } else { y - 1 }, pz);
                let yr = at(x, if y == n - 1 { 0 } else { y + 1 }, pz);
                let zl = at(x, y, pz - 1);
                let zr = at(x, y, pz + 1);
                let center = at(x, y, pz);
                let lap = xl + xr + yl + yr + zl + zr - 6.0 * center;
                // Solving -Δu = f: residual r = f + ∇²u.
                let r = f.get(x, y, z) + lap / h2;
                res2 += r * r;
                u.set(x, y, z, center + omega * h2 / 6.0 * r);
            }
        }
    }
    res2
}

/// Runs MG on `ranks` ranks of the given platform.
pub fn run(soc: SocConfig, ranks: usize, cfg: MgConfig, net: NetConfig) -> MgResult {
    run_mode(soc, ranks, cfg, net, false).0
}

/// Runs MG once with timing disabled, capturing the rank programs as a
/// timing-free [`WorldTrace`] for multi-lane replay (`bsim-sweepx`).
pub fn record(
    soc: SocConfig,
    ranks: usize,
    cfg: MgConfig,
    net: NetConfig,
) -> (MgResult, WorldTrace) {
    let (r, t) = run_mode(soc, ranks, cfg, net, true);
    (r, t.expect("recording mode always yields a trace"))
}

fn run_mode(
    soc: SocConfig,
    ranks: usize,
    cfg: MgConfig,
    net: NetConfig,
    record: bool,
) -> (MgResult, Option<WorldTrace>) {
    use std::sync::Mutex;
    let out: Mutex<(f64, f64)> = Mutex::new((0.0, 0.0));

    let program = |ctx: &mut RankCtx| {
        let rank = ctx.rank();
        let n = cfg.n;
        assert!(
            n.is_multiple_of(2 * ranks),
            "grid must decompose into rank slabs at all levels"
        );
        let zper = n / ranks;
        let (zlo, zhi) = (rank * zper, (rank + 1) * zper);

        let mut u = Slab::new(n, zlo, zhi);
        let mut f = Slab::new(n, zlo, zhi);
        // Point source + sink, as the NPB MG initialization sketches.
        if zlo == 0 {
            f.set(n / 4, n / 4, 0, 1.0);
        }
        if zlo <= n / 2 && n / 2 < zhi {
            f.set(3 * n / 4, 3 * n / 4, n / 2, -1.0);
        }

        let norm =
            |ctx: &mut RankCtx, v: f64| -> f64 { ctx.allreduce_f64(&[v], ReduceOp::Sum)[0].sqrt() };

        // Initial residual with u = 0 is just ‖f‖.
        let local_f2: f64 = (zlo..zhi)
            .flat_map(|z| (0..n).flat_map(move |y| (0..n).map(move |x| (x, y, z))))
            .map(|(x, y, z)| f.get(x, y, z).powi(2))
            .sum();
        let initial = norm(ctx, local_f2);

        let mut final_res = initial;
        for _ in 0..cfg.cycles {
            // Simplified V-cycle: pre-smooth on the fine grid, then a few
            // extra smoothing sweeps standing in for the coarse-grid
            // correction (each level's sweep is traced with its own
            // stride signature so the cache sees the real access mix).
            let mut res2 = 0.0;
            for level in 0..cfg.levels {
                halo_exchange(ctx, &mut u, (level * 2) as u32);
                trace_sweep(ctx, &u, level);
                res2 = smooth(&mut u, &f, 0.9);
            }
            final_res = norm(ctx, res2);
        }

        if rank == 0 {
            *out.lock().unwrap_or_else(|e| e.into_inner()) = (initial, final_res);
        }
    };
    let (report, trace) = if record {
        let (rep, tr) = MpiWorld::record(soc, ranks, net, program);
        (rep, Some(tr))
    } else {
        (MpiWorld::run(soc, ranks, net, program), None)
    };

    let (initial_residual, final_residual) = out.into_inner().unwrap_or_else(|e| e.into_inner());
    (
        MgResult {
            report,
            initial_residual,
            final_residual,
        },
        trace,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsim_soc::configs;

    #[test]
    fn mg_reduces_the_residual() {
        let cfg = MgConfig {
            n: 16,
            levels: 2,
            cycles: 3,
        };
        let r = run(configs::rocket1(1), 1, cfg, NetConfig::shared_memory());
        assert!(r.initial_residual > 0.0);
        assert!(
            r.final_residual < r.initial_residual,
            "smoothing must reduce the residual: {} -> {}",
            r.initial_residual,
            r.final_residual
        );
    }

    #[test]
    fn mg_multirank_matches_single_rank_numerics() {
        let cfg = MgConfig {
            n: 16,
            levels: 2,
            cycles: 2,
        };
        let a = run(configs::rocket1(1), 1, cfg, NetConfig::shared_memory());
        let b = run(configs::rocket1(4), 4, cfg, NetConfig::shared_memory());
        assert!(
            (a.final_residual - b.final_residual).abs() < 1e-9 * a.final_residual.max(1e-30),
            "decomposition must not change the math: {} vs {}",
            a.final_residual,
            b.final_residual
        );
    }

    #[test]
    fn mg_exchanges_halo_planes() {
        let cfg = MgConfig {
            n: 16,
            levels: 2,
            cycles: 1,
        };
        let r = run(configs::rocket1(2), 2, cfg, NetConfig::shared_memory());
        // 2 ranks * 2 sends * levels * cycles messages.
        assert!(r.report.messages >= 8, "halo exchange must send planes");
        assert!(r.report.bytes >= (16 * 16 * 8) as u64);
    }

    #[test]
    fn mg_touches_memory_with_plane_strides() {
        let cfg = MgConfig {
            n: 32,
            levels: 2,
            cycles: 1,
        };
        let r = run(configs::rocket1(1), 1, cfg, NetConfig::shared_memory());
        let s = &r.report.run.mem_stats;
        assert!(
            s.l1d_misses > 1000,
            "plane-stride sweeps must miss L1, got {}",
            s.l1d_misses
        );
    }
}

//! Micro-op trace generation for the application workloads.
//!
//! NPB, UME and the MD benchmarks are implemented as *real* Rust
//! computations (their numerical results are checked in tests) that
//! simultaneously emit a [`MicroOp`] stream shaped like the compiled
//! code would be: the same loads/stores with the same addresses and
//! strides, the same floating-point and integer operation mix, the same
//! loop branches with their actual outcomes. The timing cores consume
//! that stream exactly as they consume the MicroBench instruction
//! stream — the substitution (DESIGN.md §2) is at the ISA-encoding
//! level only, not at the architectural-behaviour level.
//!
//! Primitives place their ops at fixed synthetic PCs, one small PC
//! region per primitive, so the I-cache and branch predictors see the
//! loop-shaped code layout a compiled kernel would have.

use bsim_isa::OpClass;
use bsim_uarch::{BranchClass, MicroOp};

/// Base of the synthetic PC regions for trace-generated code.
const TRACE_PC: u64 = 0x0008_0000;

/// Integer scratch registers used by generated ops (x8..x15).
const INT_REGS: [u8; 8] = [8, 9, 10, 11, 12, 13, 14, 15];
/// FP scratch registers (f8..f15 in unified numbering: 40..47).
const FP_REGS: [u8; 8] = [40, 41, 42, 43, 44, 45, 46, 47];

/// Emits micro-ops into a sink (usually `RankCtx::consume` or
/// `Soc::consume`).
pub struct TraceGen<'a> {
    sink: &'a mut dyn FnMut(&MicroOp),
    rr: usize,
    lanes: u64,
    vf: u64,
    vi: u64,
    vd: u64,
    vloop: u64,
    vb: u64,
    /// Extra dynamic ops per 1000 (older-compiler codegen overhead).
    overhead_per_mille: u64,
    emitted: u64,
    overhead_due: u64,
    /// Destination of the most recent load; the next chained flop
    /// consumes it, putting load latency on the dependence chain the way
    /// `acc += v * p[col]` does.
    last_load_reg: Option<u8>,
}

impl<'a> TraceGen<'a> {
    /// Wraps a sink (scalar: one micro-op per operation).
    pub fn new(sink: &'a mut dyn FnMut(&MicroOp)) -> TraceGen<'a> {
        TraceGen::with_lanes(sink, 1)
    }

    /// Wraps a sink for a machine with a `lanes`-wide vector unit:
    /// vectorizable operations (independent flops/int ops, vectorized
    /// loop overhead, per-element divides) are batched `lanes` at a
    /// time, exactly as an auto-vectorizing compiler would emit them.
    /// Dependency chains, gathers and branches stay scalar.
    pub fn with_lanes(sink: &'a mut dyn FnMut(&MicroOp), lanes: u32) -> TraceGen<'a> {
        TraceGen {
            sink,
            rr: 0,
            lanes: lanes.max(1) as u64,
            vf: 0,
            vi: 0,
            vd: 0,
            vloop: 0,
            vb: 0,
            overhead_per_mille: 0,
            emitted: 0,
            overhead_due: 0,
            last_load_reg: None,
        }
    }

    /// Adds a codegen-overhead factor: `per_mille` extra scalar integer
    /// ops per 1000 emitted micro-ops, modeling the older compiler the
    /// paper's FireSim images are stuck with (Table 3: GCC 9.4.0 on
    /// FireSim vs GCC 13.2 on the silicon).
    pub fn with_compiler_overhead(mut self, per_mille: u32) -> TraceGen<'a> {
        self.overhead_per_mille = per_mille as u64;
        self
    }

    /// Configured vector width in f64 lanes.
    pub fn lanes(&self) -> u32 {
        self.lanes as u32
    }

    /// Batches `n` vectorizable operations against counter `acc`,
    /// returning how many vector micro-ops to emit now.
    #[inline]
    fn batch(lanes: u64, acc: &mut u64, n: u64) -> u64 {
        *acc += n;
        let emit = *acc / lanes;
        *acc %= lanes;
        emit
    }

    #[inline]
    fn emit(&mut self, uop: MicroOp) {
        (self.sink)(&uop);
        if self.overhead_per_mille > 0 {
            self.emitted += 1;
            self.overhead_due += self.overhead_per_mille;
            while self.overhead_due >= 1000 {
                self.overhead_due -= 1000;
                let pc = TRACE_PC + 0x3C0;
                (self.sink)(&MicroOp::alu(pc, Some(INT_REGS[3]), [None, None, None]));
            }
        }
    }

    #[inline]
    fn next_reg(&mut self, regs: &[u8; 8]) -> u8 {
        self.rr = (self.rr + 1) % 8;
        regs[self.rr]
    }

    /// `n` integer ALU ops. `chain = true` makes them a serial
    /// dependency chain (never vectorized); independent ops are batched
    /// by the vector width.
    pub fn int_ops(&mut self, n: u64, chain: bool) {
        let pc = TRACE_PC;
        let emit = if chain {
            n
        } else {
            Self::batch(self.lanes, &mut self.vi, n)
        };
        for _ in 0..emit {
            let d = if chain {
                INT_REGS[0]
            } else {
                self.next_reg(&INT_REGS)
            };
            let s = if chain { Some(INT_REGS[0]) } else { None };
            self.emit(MicroOp::alu(pc, Some(d), [s, None, None]));
        }
    }

    /// `n` floating-point ops (FMA-class). `chain` as in [`Self::int_ops`].
    pub fn flops(&mut self, n: u64, chain: bool) {
        let pc = TRACE_PC + 0x40;
        let n = if chain {
            n
        } else {
            Self::batch(self.lanes, &mut self.vf, n)
        };
        for _ in 0..n {
            let d = if chain {
                FP_REGS[0]
            } else {
                self.next_reg(&FP_REGS)
            };
            let s = if chain { Some(FP_REGS[0]) } else { None };
            // A chained flop right after a load consumes it (the
            // `acc += v * p[col]` shape), exposing memory latency on the
            // dependence chain.
            let s2 = if chain {
                self.last_load_reg.take()
            } else {
                None
            };
            self.emit(MicroOp {
                pc,
                next_pc: pc + 4,
                class: OpClass::FpMul,
                dest: Some(d),
                srcs: [s, s2, None],
                mem_addr: None,
                is_store: false,
                branch: None,
            });
        }
    }

    /// One per-element FP divide (long latency, unpipelined); divides
    /// across independent elements batch into vector divides.
    pub fn fdiv(&mut self) {
        if Self::batch(self.lanes, &mut self.vd, 1) == 0 {
            return;
        }
        let pc = TRACE_PC + 0x80;
        self.emit(MicroOp {
            pc,
            next_pc: pc + 4,
            class: OpClass::FpDiv,
            dest: Some(FP_REGS[1]),
            srcs: [Some(FP_REGS[0]), None, None],
            mem_addr: None,
            is_store: false,
            branch: None,
        });
    }

    /// One sqrt (maps to the FP divide/sqrt unit).
    pub fn fsqrt(&mut self) {
        self.fdiv();
    }

    /// A load from `addr` whose result feeds later ops (independent of
    /// other loads — streaming or gather style).
    pub fn load(&mut self, addr: u64) {
        let pc = TRACE_PC + 0xC0;
        let d = self.next_reg(&INT_REGS);
        self.last_load_reg = Some(d);
        self.emit(MicroOp::load(pc, addr, Some(d), None));
    }

    /// A store to `addr`.
    pub fn store(&mut self, addr: u64) {
        let pc = TRACE_PC + 0x100;
        self.emit(MicroOp::store(pc, addr, [Some(INT_REGS[0]), None, None]));
    }

    /// An *indirect* load pair: first the index load from `index_addr`,
    /// then the data load from `data_addr` that depends on it (the UME /
    /// CG gather pattern — the data address is unknowable until the
    /// index arrives).
    pub fn gather(&mut self, index_addr: u64, data_addr: u64) {
        let pc = TRACE_PC + 0x140;
        let idx_reg = INT_REGS[6];
        self.emit(MicroOp::load(pc, index_addr, Some(idx_reg), None));
        let d = self.next_reg(&INT_REGS);
        self.last_load_reg = Some(d);
        self.emit(MicroOp::load(pc + 4, data_addr, Some(d), Some(idx_reg)));
    }

    /// `hops` serially dependent loads starting at `base`, `stride`
    /// apart (pointer-chase pattern).
    pub fn chase(&mut self, base: u64, hops: u64, stride: u64) {
        let pc = TRACE_PC + 0x180;
        let r = INT_REGS[7];
        for i in 0..hops {
            self.emit(MicroOp::load(pc, base + i * stride, Some(r), Some(r)));
        }
    }

    /// A conditional branch with its actual `taken` outcome, at a PC
    /// derived from `site` (distinct sites train distinct predictor
    /// entries).
    pub fn branch(&mut self, site: u64, taken: bool) {
        let pc = TRACE_PC + 0x1C0 + (site % 64) * 8;
        self.emit(MicroOp::cond_branch(
            pc,
            taken,
            pc.wrapping_sub(0x200),
            [None; 3],
        ));
    }

    /// Loop overhead for `trips` iterations of a vectorizable loop: one
    /// counter update and one backward branch per `lanes` trips (a
    /// vectorized loop retires `lanes` elements per iteration).
    pub fn loop_overhead(&mut self, site: u64, trips: u64) {
        let emit = Self::batch(self.lanes, &mut self.vloop, trips);
        for i in 0..emit {
            self.int_ops(1, true);
            self.branch(site, i + 1 != emit);
        }
    }

    /// A data-dependent branch inside a vectorizable loop. Scalar
    /// machines branch per element with the real outcome; vector
    /// machines use predication, leaving one well-predicted loop branch
    /// per `lanes` elements.
    pub fn masked_branch(&mut self, site: u64, taken: bool) {
        if self.lanes == 1 {
            self.branch(site, taken);
        } else if Self::batch(self.lanes, &mut self.vb, 1) >= 1 {
            self.branch(site, true);
        }
    }

    /// A call/return pair (RAS traffic).
    pub fn call_ret(&mut self) {
        let pc = TRACE_PC + 0x400;
        self.emit(MicroOp {
            pc,
            next_pc: pc + 0x100,
            class: OpClass::Jump,
            dest: Some(1),
            srcs: [None; 3],
            mem_addr: None,
            is_store: false,
            branch: Some((BranchClass::Call, true)),
        });
        self.emit(MicroOp {
            pc: pc + 0x100,
            next_pc: pc + 4,
            class: OpClass::Jump,
            dest: None,
            srcs: [Some(1), None, None],
            mem_addr: None,
            is_store: false,
            branch: Some((BranchClass::Return, true)),
        });
    }
}

/// Base of rank `rank`'s private data segment (MPI ranks are separate
/// processes with separate address spaces; 64 MiB apart keeps their
/// simulated footprints disjoint in the shared hierarchy).
pub fn rank_base(rank: usize) -> u64 {
    0x1000_0000 + ((rank as u64) << 26)
}

/// Runs `f` with a [`TraceGen`] buffering into a vector, then feeds the
/// whole segment to the rank's core under one lock acquisition. The
/// platform's vector width is applied automatically, so the same
/// workload code emits scalar ops on the FireSim targets (which run
/// "without enabling vector units", §3.1.1) and vector ops on the
/// silicon references.
pub fn with_trace(ctx: &mut bsim_mpi::RankCtx, f: impl FnOnce(&mut TraceGen<'_>)) {
    let lanes = ctx.simd_lanes();
    let overhead = ctx.compiler_overhead_per_mille();
    let mut buf: Vec<MicroOp> = Vec::with_capacity(1024);
    {
        let mut sink = |u: &MicroOp| buf.push(*u);
        let mut g = TraceGen::with_lanes(&mut sink, lanes).with_compiler_overhead(overhead);
        f(&mut g);
    }
    ctx.consume_batch(&buf);
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsim_soc::{configs, Soc};

    fn run_trace(build: impl FnOnce(&mut TraceGen<'_>)) -> u64 {
        let mut soc = Soc::new(configs::large_boom(1));
        {
            let mut sink = |u: &MicroOp| soc.consume(0, u);
            let mut gen = TraceGen::new(&mut sink);
            build(&mut gen);
        }
        soc.report(None).cycles
    }

    #[test]
    fn chained_ints_slower_than_independent() {
        let chained = run_trace(|g| g.int_ops(10_000, true));
        let indep = run_trace(|g| g.int_ops(10_000, false));
        assert!(
            chained > 2 * indep,
            "chain {chained} vs independent {indep}"
        );
    }

    #[test]
    fn chase_slower_than_streaming_loads() {
        let base = 0x10_0000;
        let chase = run_trace(|g| g.chase(base, 5_000, 4096));
        let stream = run_trace(|g| {
            for i in 0..5_000u64 {
                g.load(base + i * 4096);
            }
        });
        assert!(
            chase as f64 > 1.5 * stream as f64,
            "dependent loads must serialize: chase {chase} vs stream {stream}"
        );
    }

    #[test]
    fn predictable_branches_cheaper_than_random() {
        let predictable = run_trace(|g| {
            for _ in 0..5_000 {
                g.branch(1, true);
            }
        });
        let mut x = 0x9E3779B97F4A7C15u64;
        let random = run_trace(|g| {
            for _ in 0..5_000 {
                x ^= x << 13;
                x ^= x >> 7;
                g.branch(1, x & 1 == 0);
            }
        });
        assert!(
            random > predictable,
            "random {random} vs predictable {predictable}"
        );
    }

    #[test]
    fn gather_emits_dependent_pair() {
        // A gather's data load depends on its index load; compare with
        // two independent loads against a DRAM-distant region.
        let gathers = run_trace(|g| {
            for i in 0..3_000u64 {
                g.gather(0x100_0000 + i * 65536, 0x800_0000 + (i * 7 % 512) * 65536);
            }
        });
        let indep = run_trace(|g| {
            for i in 0..3_000u64 {
                g.load(0x100_0000 + i * 65536);
                g.load(0x800_0000 + (i * 7 % 512) * 65536);
            }
        });
        assert!(gathers > indep, "gather {gathers} vs independent {indep}");
    }
}

//! # bsim-workloads — every workload the paper runs
//!
//! * [`microbench`] — the 40-kernel MicroBench suite of Table 1
//!   (Desikan/Burger/Keckler-style single-feature kernels across five
//!   categories), written as RV64 assembly against `bsim-isa` and
//!   executed instruction-by-instruction through the timing cores;
//! * [`npb`] — CG, EP, IS and MG from the NAS Parallel Benchmarks
//!   (Table 2), as real Rust computations that emit micro-op traces and
//!   MPI traffic shaped like the originals (class-A geometry, size
//!   scaled — see DESIGN.md §5);
//! * [`ume`] — the UME unstructured-mesh proxy app: a 3-D hexahedral
//!   mesh with explicit zone/face/point/corner connectivity, running the
//!   paper's three kernels (original gather, inverted gather, face-area)
//!   with the multi-level indirection that gives UME its high
//!   load-to-flop ratio;
//! * [`md`] — LAMMPS-style molecular dynamics: the Lennard-Jones melt
//!   and bead-spring polymer Chain benchmarks with cell lists, Verlet
//!   integration and spatial domain decomposition over MPI.

pub mod md;
pub mod microbench;
pub mod npb;
pub mod trace;
pub mod ume;

pub use microbench::{suite, Category, MicroKernel};
pub use trace::TraceGen;

//! Property tests for the memory system: capacity/inclusion invariants,
//! MSHR bounds, DRAM monotonicity.

use bsim_mem::cache::{Cache, CacheConfig, MshrFile};
use bsim_mem::{AccessKind, DramConfig, DramModel, HierarchyConfig, MemoryHierarchy};
use proptest::prelude::*;

fn small_cache() -> CacheConfig {
    CacheConfig {
        sets: 8,
        ways: 2,
        line_bytes: 64,
        banks: 2,
        hit_latency: 2,
        mshrs: 4,
    }
}

fn hierarchy() -> MemoryHierarchy {
    MemoryHierarchy::new(HierarchyConfig {
        cores: 2,
        l1i: small_cache(),
        l1d: small_cache(),
        l2: CacheConfig {
            sets: 64,
            ways: 4,
            line_bytes: 64,
            banks: 2,
            hit_latency: 10,
            mshrs: 8,
        },
        bus: bsim_mem::BusConfig {
            width_bits: 64,
            latency: 4,
        },
        llc: None,
        dram: DramConfig::ddr3_2000(1),
        core_freq_ghz: 1.6,
        l1_to_l2_latency: 2,
        prefetch_degree: 0,
    })
}

proptest! {
    #[test]
    fn cache_never_exceeds_capacity(addrs in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut c = Cache::new(small_cache());
        for (t, &a) in addrs.iter().enumerate() {
            if !c.access(a, t % 3 == 0, t as u64).hit {
                c.fill(a, t % 3 == 0, t as u64);
            }
        }
        prop_assert!(c.valid_lines() <= 16);
    }

    #[test]
    fn filled_lines_are_found(addrs in prop::collection::vec(0u64..100_000, 1..50)) {
        let mut c = Cache::new(small_cache());
        // The most recently filled line must always be resident.
        for (t, &a) in addrs.iter().enumerate() {
            c.access(a, false, t as u64);
            c.fill(a, false, t as u64);
            prop_assert!(c.contains(a), "just-filled line missing: {a:#x}");
        }
    }

    #[test]
    fn mshr_never_exceeds_capacity(times in prop::collection::vec(0u64..10_000, 1..100)) {
        let mut m = MshrFile::new(3);
        let mut sorted = times.clone();
        sorted.sort_unstable();
        for &t in &sorted {
            let (slot, start) = m.admit(t);
            prop_assert!(start >= t);
            m.record(slot, start + 50);
            prop_assert!(m.outstanding(start) <= 3);
        }
    }

    #[test]
    fn dram_completion_after_issue(addrs in prop::collection::vec(0u64..(1u64 << 30), 1..100)) {
        let mut d = DramModel::new(DramConfig::ddr4_3200(2), 2.0);
        let mut now = 0;
        for &a in &addrs {
            let out = d.access(a, a % 2 == 0, now);
            prop_assert!(out.done > now, "completion must be after issue");
            now += 3;
        }
    }

    #[test]
    fn hierarchy_outcome_always_progresses(
        ops in prop::collection::vec((0u64..(1u64 << 22), 0u8..3), 1..150)
    ) {
        let mut h = hierarchy();
        let mut now = 0u64;
        for (addr, kind) in ops {
            let kind = match kind { 0 => AccessKind::Load, 1 => AccessKind::Store, _ => AccessKind::Ifetch };
            let out = h.access(0, addr, kind, now);
            prop_assert!(out.complete_at > now, "time must advance");
            now = out.complete_at;
        }
        let s = h.stats();
        prop_assert!(s.l1d_misses <= s.l1d_accesses);
        prop_assert!(s.l2_misses <= s.l2_accesses);
    }

    #[test]
    fn repeat_access_hits(addr in 0u64..(1u64 << 22)) {
        let mut h = hierarchy();
        let first = h.access(0, addr, AccessKind::Load, 0);
        let second = h.access(0, addr, AccessKind::Load, first.complete_at + 1);
        prop_assert_eq!(second.level, bsim_mem::HitLevel::L1);
    }
}

//! The assembled memory hierarchy of one simulated SoC tile/cluster.
//!
//! Per core: L1I + L1D (with MSHRs). Shared: banked L2, system bus,
//! optional LLC, DRAM. This mirrors the paper's target topology — a
//! 4-core Rocket/BOOM tile with per-core 32/64 KiB L1s, a shared
//! 512 KiB / 1 MiB L2, a 64/128-bit system bus, an optional 64 MiB LLC
//! (MILK-V only) and one external memory.
//!
//! Coherence is modeled as write-invalidate between the private L1Ds:
//! a store fill invalidates the line in every other core's L1D. That is
//! enough to surface the false-sharing and shared-line ping-pong costs
//! the multi-rank workloads (NPB, UME, LAMMPS) exercise.

use crate::bus::{Bus, BusConfig};
use crate::cache::{Cache, CacheConfig, MshrFile};
use crate::dram::{DramConfig, DramModel};
use crate::llc::{LlcConfig, LlcModel};
use crate::stats::MemStats;
use serde::{Deserialize, Serialize};

/// What kind of access the core is making.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Instruction fetch (L1I path).
    Ifetch,
    /// Data load.
    Load,
    /// Data store.
    Store,
}

/// Which level ultimately serviced an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum HitLevel {
    /// Serviced by the first-level cache.
    L1,
    /// Serviced by the shared L2.
    L2,
    /// Serviced by the last-level cache.
    Llc,
    /// Went all the way to DRAM.
    Dram,
}

/// Timing result of one access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Cycle at which the requested data is available to the core.
    pub complete_at: u64,
    /// Deepest level touched.
    pub level: HitLevel,
}

/// Full hierarchy configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Number of cores sharing the L2.
    pub cores: usize,
    /// Per-core instruction cache.
    pub l1i: CacheConfig,
    /// Per-core data cache.
    pub l1d: CacheConfig,
    /// Shared second-level cache.
    pub l2: CacheConfig,
    /// System bus between the tile and the outer memory system.
    pub bus: BusConfig,
    /// Optional last-level cache (MILK-V has one; Banana Pi does not).
    pub llc: Option<LlcConfig>,
    /// External memory.
    pub dram: DramConfig,
    /// Core clock, GHz (converts DRAM ns timings to cycles).
    pub core_freq_ghz: f64,
    /// Latency of the in-tile L1→L2 crossing, cycles.
    pub l1_to_l2_latency: u32,
    /// Stride L2-prefetcher degree (0 = no prefetcher). The silicon
    /// parts (SpacemiT K1, SG2042) have hardware prefetchers; the stock
    /// Rocket/BOOM FireSim targets do not — one of the reasons the
    /// memory microbenchmarks diverge in Figures 1 and 2.
    pub prefetch_degree: u32,
}

/// Per-core stride-detector state for the L2 prefetcher.
#[derive(Clone, Copy, Debug, Default)]
struct StrideState {
    last_addr: u64,
    stride: i64,
    confidence: u8,
}

/// The stateful hierarchy.
pub struct MemoryHierarchy {
    cfg: HierarchyConfig,
    l1i: Vec<Cache>,
    l1d: Vec<Cache>,
    l1d_mshrs: Vec<MshrFile>,
    l2: Cache,
    l2_mshrs: MshrFile,
    prefetcher: Vec<StrideState>,
    bus: Bus,
    llc: Option<LlcModel>,
    dram: DramModel,
    stats: MemStats,
}

impl MemoryHierarchy {
    /// Builds an empty hierarchy.
    pub fn new(cfg: HierarchyConfig) -> MemoryHierarchy {
        assert!(cfg.cores >= 1);
        MemoryHierarchy {
            l1i: (0..cfg.cores).map(|_| Cache::new(cfg.l1i)).collect(),
            l1d: (0..cfg.cores).map(|_| Cache::new(cfg.l1d)).collect(),
            l1d_mshrs: (0..cfg.cores)
                .map(|_| MshrFile::new(cfg.l1d.mshrs))
                .collect(),
            l2: Cache::new(cfg.l2),
            l2_mshrs: MshrFile::new(cfg.l2.mshrs),
            prefetcher: vec![StrideState::default(); cfg.cores],
            bus: Bus::new(cfg.bus),
            llc: cfg.llc.map(LlcModel::new),
            dram: DramModel::new(cfg.dram.clone(), cfg.core_freq_ghz),
            stats: MemStats::default(),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Quiescence hint in `TickModel::next_activity` terms: the cycle
    /// after which no in-flight DRAM activity remains. Cache tag state
    /// is updated eagerly at access time, so the DRAM busy horizon is
    /// the only future event the hierarchy holds; `None` when the memory
    /// system is already drained.
    pub fn next_activity(&self, now: u64) -> Option<u64> {
        let busy = self.dram.busy_until_cycle();
        (busy > now).then_some(busy)
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> MemStats {
        let mut s = self.stats;
        let (r, w, h) = self.dram.counters();
        s.dram_reads = r;
        s.dram_writes = w;
        s.dram_row_hits = h;
        s.dram_row_misses = (r + w).saturating_sub(h);
        s.dram_token_stall_cycles = self.dram.token_stall_cycles();
        s.bus_busy_cycles = self.bus.busy_cycles();
        s
    }

    /// Performs a timing access for `core` at cycle `now`.
    pub fn access(&mut self, core: usize, addr: u64, kind: AccessKind, now: u64) -> AccessOutcome {
        debug_assert!(core < self.cfg.cores);
        let is_store = kind == AccessKind::Store;
        let line = self.l1d[core].line_base(addr);

        // --- L1 lookup -------------------------------------------------
        let (l1, is_ifetch) = match kind {
            AccessKind::Ifetch => (&mut self.l1i[core], true),
            _ => (&mut self.l1d[core], false),
        };
        let hit_lat = l1.hit_latency() as u64;
        let look = l1.access(addr, is_store, now);
        if is_ifetch {
            self.stats.l1i_accesses += 1;
        } else {
            self.stats.l1d_accesses += 1;
        }
        self.stats.bank_conflict_cycles += look.start - now;
        if look.hit {
            // A line still in flight (e.g. prefetch) gates the data.
            let complete_at = (look.start + hit_lat).max(look.ready_at);
            if is_store {
                self.invalidate_other_l1ds(core, line);
            }
            return AccessOutcome {
                complete_at,
                level: HitLevel::L1,
            };
        }
        if is_ifetch {
            self.stats.l1i_misses += 1;
        } else {
            self.stats.l1d_misses += 1;
        }

        // --- MSHR admission ---------------------------------------------
        let (mshr, start) = if is_ifetch {
            (None, look.start) // ifetch path is blocking anyway
        } else {
            let (slot, s) = self.l1d_mshrs[core].admit(look.start);
            self.stats.mshr_stall_cycles += s - look.start;
            (Some(slot), s)
        };

        // --- L2 and below -------------------------------------------------
        let t_l2 = start + self.cfg.l1_to_l2_latency as u64;
        let (data_at, level) = self.refill_from_l2(line, is_store, t_l2);

        // Stride prefetch into the L2 (background; consumes DRAM/bus
        // bandwidth but does not delay the demand miss).
        if self.cfg.prefetch_degree > 0 && !is_ifetch {
            self.train_and_prefetch(core, line, start);
        }

        // Fill L1 and handle its victim.
        let l1 = if is_ifetch {
            &mut self.l1i[core]
        } else {
            &mut self.l1d[core]
        };
        if let Some(victim) = l1.fill(addr, is_store, data_at) {
            self.stats.writebacks += 1;
            self.writeback_to_l2(victim, data_at);
        }
        if let Some(slot) = mshr {
            self.l1d_mshrs[core].record(slot, data_at);
        }
        if is_store {
            self.invalidate_other_l1ds(core, line);
        }
        AccessOutcome {
            complete_at: data_at + hit_lat,
            level,
        }
    }

    /// L2 → (bus) → LLC → DRAM refill path; returns when the line reaches
    /// the tile and the deepest level touched.
    fn refill_from_l2(&mut self, line: u64, is_store: bool, now: u64) -> (u64, HitLevel) {
        self.stats.l2_accesses += 1;
        let l2_lat = self.l2.hit_latency() as u64;
        let look = self.l2.access(line, is_store, now);
        self.stats.bank_conflict_cycles += look.start - now;
        if look.hit {
            return ((look.start + l2_lat).max(look.ready_at), HitLevel::L2);
        }
        self.stats.l2_misses += 1;
        let (l2_slot, start) = self.l2_mshrs.admit(look.start);
        self.stats.mshr_stall_cycles += start - look.start;

        // Miss request crosses the system bus (header-only beat).
        let (_, bus_done) = self.bus.request(8, start + l2_lat);

        let (data_at, level) = match &mut self.llc {
            Some(llc) => {
                self.stats.llc_accesses += 1;
                let out = llc.access(line, is_store, bus_done);
                if out.hit {
                    (out.ready_at, HitLevel::Llc)
                } else {
                    self.stats.llc_misses += 1;
                    let d = self.dram.access(line, is_store, out.ready_at);
                    if let Some(wb) = llc.fill(line, is_store, d.done) {
                        // LLC victim goes to DRAM in the background.
                        self.dram.access(wb, true, d.done);
                    }
                    (d.done, HitLevel::Dram)
                }
            }
            None => {
                let d = self.dram.access(line, is_store, bus_done);
                (d.done, HitLevel::Dram)
            }
        };

        // Refill data crosses the bus back into the tile.
        let (_, back_done) = self.bus.respond(64, data_at);

        // Install in L2; dirty victim leaves the tile.
        if let Some(victim) = self.l2.fill(line, is_store, back_done) {
            self.stats.writebacks += 1;
            self.writeback_below_l2(victim, back_done);
        }
        self.l2_mshrs.record(l2_slot, back_done);
        (back_done, level)
    }

    /// Trains the per-core stride detector on a demand miss and, once a
    /// stride repeats, issues up to `prefetch_degree` line fetches ahead
    /// of the stream. Prefetches are best-effort: they skip resident
    /// lines, leave two L2 MSHRs free for demand misses, and probe tags
    /// without occupying cache banks.
    fn train_and_prefetch(&mut self, core: usize, line: u64, now: u64) {
        let st = &mut self.prefetcher[core];
        let stride = line as i64 - st.last_addr as i64;
        if stride != 0 && stride == st.stride {
            st.confidence = (st.confidence + 1).min(4);
        } else if stride != 0 {
            st.stride = stride;
            st.confidence = 0;
        }
        st.last_addr = line;
        let (stride, confident) = (st.stride, st.confidence >= 1);
        if !confident || stride == 0 || stride.unsigned_abs() > 4096 {
            return;
        }
        for d in 1..=self.cfg.prefetch_degree as i64 {
            let target = (line as i64 + d * stride) as u64;
            self.prefetch_line(target, now);
        }
    }

    /// Fetches one line into the L2 in the background.
    fn prefetch_line(&mut self, line: u64, now: u64) {
        if self.l2.access_quiet(line, false, now).hit {
            return;
        }
        // Leave headroom for demand misses in the L2 MSHR file.
        if self.l2_mshrs.outstanding(now) + 2 >= self.l2.mshrs() as usize {
            return;
        }
        let (slot, start) = self.l2_mshrs.admit(now);
        let (_, bus_done) = self.bus.request(8, start);
        let data_at = match &mut self.llc {
            Some(llc) => {
                let out = llc.access(line, false, bus_done);
                if out.hit {
                    out.ready_at
                } else {
                    let d = self.dram.access(line, false, out.ready_at);
                    if let Some(wb) = llc.fill(line, false, d.done) {
                        self.dram.access(wb, true, d.done);
                    }
                    d.done
                }
            }
            None => self.dram.access(line, false, bus_done).done,
        };
        let (_, back_done) = self.bus.respond(64, data_at);
        if let Some(victim) = self.l2.fill(line, false, back_done) {
            self.writeback_below_l2(victim, back_done);
        }
        self.l2_mshrs.record(slot, back_done);
        self.stats.prefetches += 1;
    }

    /// An L1 victim write-back lands in the L2 (marking it dirty there).
    fn writeback_to_l2(&mut self, victim: u64, now: u64) {
        let look = self.l2.access(victim, true, now);
        if !look.hit {
            // Non-inclusive corner: victim bypasses L2 and leaves the tile.
            self.writeback_below_l2(victim, now);
        }
    }

    /// A dirty line leaving the tile: bus + LLC-or-DRAM write.
    fn writeback_below_l2(&mut self, victim: u64, now: u64) {
        let (_, done) = self.bus.request(64, now);
        match &mut self.llc {
            Some(llc) => {
                let out = llc.access(victim, true, done);
                if !out.hit {
                    if let Some(wb) = llc.fill(victim, true, out.ready_at) {
                        self.dram.access(wb, true, out.ready_at);
                    }
                }
            }
            None => {
                self.dram.access(victim, true, done);
            }
        }
    }

    fn invalidate_other_l1ds(&mut self, writer: usize, line: u64) {
        for (i, cache) in self.l1d.iter_mut().enumerate() {
            if i != writer {
                cache.invalidate(line);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rocket_like(cores: usize) -> HierarchyConfig {
        HierarchyConfig {
            cores,
            l1i: CacheConfig {
                sets: 64,
                ways: 8,
                line_bytes: 64,
                banks: 1,
                hit_latency: 1,
                mshrs: 1,
            },
            l1d: CacheConfig {
                sets: 64,
                ways: 8,
                line_bytes: 64,
                banks: 1,
                hit_latency: 2,
                mshrs: 2,
            },
            l2: CacheConfig {
                sets: 1024,
                ways: 8,
                line_bytes: 64,
                banks: 1,
                hit_latency: 12,
                mshrs: 8,
            },
            bus: BusConfig {
                width_bits: 64,
                latency: 4,
            },
            llc: None,
            dram: DramConfig::ddr3_2000(1),
            core_freq_ghz: 1.6,
            l1_to_l2_latency: 2,
            prefetch_degree: 0,
        }
    }

    #[test]
    fn l1_hit_is_cheap() {
        let mut h = MemoryHierarchy::new(rocket_like(1));
        let miss = h.access(0, 0x1000, AccessKind::Load, 0);
        assert_eq!(miss.level, HitLevel::Dram);
        let hit = h.access(0, 0x1008, AccessKind::Load, miss.complete_at + 10);
        assert_eq!(hit.level, HitLevel::L1);
        assert_eq!(hit.complete_at - (miss.complete_at + 10), 2);
    }

    #[test]
    fn levels_are_progressively_slower() {
        let mut h = MemoryHierarchy::new(rocket_like(1));
        let a = 0x8000u64;
        let dram = h.access(0, a, AccessKind::Load, 0);
        let t1 = dram.complete_at + 100;
        let l1 = h.access(0, a, AccessKind::Load, t1);
        // Evict from L1 by filling its set (64-set, 8-way: stride 4096).
        let mut t = l1.complete_at;
        for i in 1..=8u64 {
            t = h
                .access(0, a + i * 4096, AccessKind::Load, t + 1)
                .complete_at;
        }
        let l2 = h.access(0, a, AccessKind::Load, t + 100);
        assert_eq!(
            l2.level,
            HitLevel::L2,
            "line evicted from L1 must still be in L2"
        );
        let l1_lat = l1.complete_at - t1;
        let l2_lat = l2.complete_at - (t + 100);
        let dram_lat = dram.complete_at;
        assert!(l1_lat < l2_lat, "L1 {l1_lat} !< L2 {l2_lat}");
        assert!(l2_lat < dram_lat, "L2 {l2_lat} !< DRAM {dram_lat}");
    }

    #[test]
    fn store_invalidates_other_cores() {
        let mut h = MemoryHierarchy::new(rocket_like(2));
        let a = 0x4000u64;
        // Both cores load the line.
        let t = h.access(0, a, AccessKind::Load, 0).complete_at;
        let t = h.access(1, a, AccessKind::Load, t).complete_at;
        // Core 1 hits now.
        let hit = h.access(1, a, AccessKind::Load, t + 1);
        assert_eq!(hit.level, HitLevel::L1);
        // Core 0 stores: core 1's copy must die.
        let t = h
            .access(0, a, AccessKind::Store, hit.complete_at)
            .complete_at;
        let after = h.access(1, a, AccessKind::Load, t + 1);
        assert_ne!(
            after.level,
            HitLevel::L1,
            "invalidated line cannot hit in L1"
        );
    }

    #[test]
    fn ifetch_uses_l1i() {
        let mut h = MemoryHierarchy::new(rocket_like(1));
        let t = h.access(0, 0x1_0000, AccessKind::Ifetch, 0).complete_at;
        let s = h.stats();
        assert_eq!(s.l1i_accesses, 1);
        assert_eq!(s.l1i_misses, 1);
        let hit = h.access(0, 0x1_0000, AccessKind::Ifetch, t + 1);
        assert_eq!(hit.level, HitLevel::L1);
        assert_eq!(h.stats().l1i_misses, 1);
    }

    #[test]
    fn llc_sits_between_l2_and_dram() {
        let mut cfg = rocket_like(1);
        cfg.llc = Some(LlcConfig {
            geometry: CacheConfig {
                sets: 1024,
                ways: 16,
                line_bytes: 64,
                banks: 4,
                hit_latency: 8,
                mshrs: 16,
            },
            slices: 4,
            data_latency: 18,
            style: crate::llc::LlcStyle::FiresimSram,
        });
        let mut h = MemoryHierarchy::new(cfg);
        let a = 0x10_0000u64;
        let first = h.access(0, a, AccessKind::Load, 0);
        assert_eq!(first.level, HitLevel::Dram);
        // Evict from L1 and L2 but the LLC keeps it: touch enough lines
        // mapping to the same L2 set (L2: 1024 sets → stride 64 KiB).
        let mut t = first.complete_at;
        for i in 1..=8u64 {
            t = h
                .access(0, a + i * 65536, AccessKind::Load, t + 1)
                .complete_at;
        }
        // Also flush L1 set (stride 4 KiB) — the L2 evictions above happen
        // to map to the same L1 set too (65536 % 4096 == 0), so done.
        let again = h.access(0, a, AccessKind::Load, t + 100);
        assert_eq!(again.level, HitLevel::Llc, "line must be served by the LLC");
        let s = h.stats();
        assert!(s.llc_accesses > 0);
    }

    #[test]
    fn stats_track_misses() {
        let mut h = MemoryHierarchy::new(rocket_like(1));
        let mut t = 0;
        for i in 0..100u64 {
            t = h.access(0, i * 64, AccessKind::Load, t + 1).complete_at;
        }
        let s = h.stats();
        assert_eq!(s.l1d_accesses, 100);
        assert_eq!(s.l1d_misses, 100); // all distinct lines
        assert_eq!(s.dram_reads, 100);
    }

    #[test]
    fn mshr_limit_throttles_parallel_misses() {
        let mut few = rocket_like(1);
        few.l1d.mshrs = 1;
        let mut many = rocket_like(1);
        many.l1d.mshrs = 16;
        let mut hf = MemoryHierarchy::new(few);
        let mut hm = MemoryHierarchy::new(many);
        // Issue 8 independent misses at the same cycle.
        let f_done = (0..8u64)
            .map(|i| hf.access(0, i * 4096, AccessKind::Load, 0).complete_at)
            .max();
        let m_done = (0..8u64)
            .map(|i| hm.access(0, i * 4096, AccessKind::Load, 0).complete_at)
            .max();
        assert!(
            f_done.unwrap() > m_done.unwrap(),
            "1 MSHR must serialize misses: {f_done:?} vs {m_done:?}"
        );
    }
}

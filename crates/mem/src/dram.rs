//! FR-FCFS DRAM timing model with open-row banks, rank/bank/channel
//! parallelism, and data-bus occupancy.
//!
//! Presets cover the paper's three external memories (Table 5):
//!
//! * [`DramConfig::ddr3_2000`] — the "DDR3 2000 Mbps FR-FCFS quad-rank"
//!   model that is the *only* memory model FireSim supports (§4, §6),
//! * [`DramConfig::ddr4_3200`] — the MILK-V Pioneer's 4-channel DDR4-3200,
//! * [`DramConfig::lpddr4_2666`] — the Banana Pi's dual 32-bit LPDDR4-2666.
//!
//! The model is *busy-until* based: each bank remembers its open row and
//! when it can next accept a command; each channel's data bus serializes
//! bursts. FR-FCFS is approximated by its first-order effect — row-buffer
//! hits bypass the precharge/activate pair — which is the property the
//! paper's MM/MM_st microbenchmarks are sensitive to.
//!
//! FireSim's token-based co-simulation quantizes when DRAM responses are
//! visible to the target; `token_quantum_cycles > 1` rounds completion
//! times up to that boundary, reproducing the stall behaviour §3.2.2
//! describes.

use serde::{Deserialize, Serialize};

/// DRAM organization and timing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Human-readable name used in reports ("DDR3-2000 FR-FCFS quad-rank").
    pub name: String,
    /// Independent channels (each with its own data bus).
    pub channels: u32,
    /// Ranks per channel.
    pub ranks: u32,
    /// Banks per rank.
    pub banks: u32,
    /// Row-buffer (page) size in bytes.
    pub row_bytes: u32,
    /// Data-bus width per channel, in bits.
    pub width_bits: u32,
    /// Transfer rate in mega-transfers/second (DDR: 2 per clock).
    pub data_rate_mtps: u32,
    /// CAS latency (read command to first data), ns.
    pub t_cas_ns: f64,
    /// RAS-to-CAS delay (activate to read/write), ns.
    pub t_rcd_ns: f64,
    /// Row precharge, ns.
    pub t_rp_ns: f64,
    /// FireSim token quantum in target cycles (1 = silicon, no quantization).
    pub token_quantum_cycles: u32,
    /// Fixed memory-controller pipeline latency, ns. FireSim's software
    /// DDR3 model runs a deep token pipeline in front of the FR-FCFS
    /// scheduler; silicon controllers are shallower.
    pub ctrl_latency_ns: f64,
}

impl DramConfig {
    /// FireSim's DDR3-2000 FR-FCFS quad-rank model.
    pub fn ddr3_2000(channels: u32) -> DramConfig {
        DramConfig {
            name: format!("DDR3-2000 FR-FCFS quad-rank x{channels}"),
            channels,
            ranks: 4,
            banks: 8,
            row_bytes: 2048,
            width_bits: 64,
            data_rate_mtps: 2000,
            t_cas_ns: 13.75,
            t_rcd_ns: 13.75,
            t_rp_ns: 13.75,
            token_quantum_cycles: 4,
            ctrl_latency_ns: 16.0,
        }
    }

    /// MILK-V Pioneer: 4-channel DDR4-3200 (pass `channels = 4`).
    pub fn ddr4_3200(channels: u32) -> DramConfig {
        DramConfig {
            name: format!("DDR4-3200 x{channels}"),
            channels,
            ranks: 2,
            banks: 16,
            row_bytes: 2048,
            width_bits: 64,
            data_rate_mtps: 3200,
            t_cas_ns: 13.75,
            t_rcd_ns: 13.75,
            t_rp_ns: 13.75,
            token_quantum_cycles: 1,
            ctrl_latency_ns: 10.0,
        }
    }

    /// Banana Pi BPI-F3: dual 32-bit LPDDR4-2666.
    pub fn lpddr4_2666() -> DramConfig {
        DramConfig {
            name: "LPDDR4-2666 dual 32-bit".to_string(),
            channels: 2,
            ranks: 1,
            banks: 8,
            row_bytes: 1024,
            width_bits: 32,
            data_rate_mtps: 2666,
            t_cas_ns: 15.0,
            t_rcd_ns: 18.0,
            t_rp_ns: 18.0,
            token_quantum_cycles: 1,
            ctrl_latency_ns: 14.0,
        }
    }

    /// Peak bandwidth across all channels, GB/s.
    pub fn peak_bandwidth_gbs(&self) -> f64 {
        self.channels as f64 * (self.width_bits as f64 / 8.0) * self.data_rate_mtps as f64 / 1000.0
    }

    /// Time for one 64-byte line burst on one channel, ns.
    pub fn burst_ns(&self, bytes: u32) -> f64 {
        let beats = (bytes * 8).div_ceil(self.width_bits) as f64;
        beats * 1000.0 / self.data_rate_mtps as f64
    }
}

#[derive(Clone, Copy, Debug)]
struct BankState {
    open_row: Option<u64>,
    ready_ns: f64,
}

/// Outcome of a DRAM access.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DramOutcome {
    /// Core cycle at which the burst completes.
    pub done: u64,
    /// Whether the open-row buffer was hit.
    pub row_hit: bool,
}

/// Log2 of a value when it is a power of two — the address-mapping
/// fast path. Every preset geometry (channels, lines-per-row, banks) is
/// a power of two, so the per-access div/mod chain collapses to
/// shift/mask; the `None` fallback keeps exotic configs correct.
#[inline]
fn po2_shift(v: u64) -> Option<u32> {
    v.is_power_of_two().then(|| v.trailing_zeros())
}

/// Stateful DRAM timing model.
pub struct DramModel {
    cfg: DramConfig,
    core_freq_ghz: f64,
    banks: Vec<BankState>, // channels * ranks * banks
    channel_free_ns: Vec<f64>,
    reads: u64,
    writes: u64,
    row_hits: u64,
    token_stall_cycles: u64,
    /// Precomputed `log2(channels)` when channels is a power of two.
    ch_shift: Option<u32>,
    /// Precomputed `log2(row_bytes / 64)`.
    row_lines_shift: Option<u32>,
    /// Precomputed `log2(ranks * banks)`.
    bank_shift: Option<u32>,
    /// Latest completion time across banks and channel buses: the model
    /// is quiescent after this instant until the next access arrives.
    busy_until_ns: f64,
}

impl DramModel {
    /// Builds an idle DRAM model clocked against a core at `core_freq_ghz`.
    pub fn new(cfg: DramConfig, core_freq_ghz: f64) -> DramModel {
        assert!(core_freq_ghz > 0.0);
        let nbanks = (cfg.channels * cfg.ranks * cfg.banks) as usize;
        DramModel {
            channel_free_ns: vec![0.0; cfg.channels as usize],
            banks: vec![
                BankState {
                    open_row: None,
                    ready_ns: 0.0
                };
                nbanks
            ],
            ch_shift: po2_shift(cfg.channels as u64),
            row_lines_shift: po2_shift((cfg.row_bytes as u64 / 64).max(1)),
            bank_shift: po2_shift((cfg.ranks * cfg.banks) as u64),
            busy_until_ns: 0.0,
            cfg,
            core_freq_ghz,
            reads: 0,
            writes: 0,
            row_hits: 0,
            token_stall_cycles: 0,
        }
    }

    /// The configuration of this DRAM.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// (reads, writes, row_hits) counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.reads, self.writes, self.row_hits)
    }

    /// Cumulative cycles completions lost to token-quantum rounding —
    /// the §3.2.2 quantization cost (always 0 when the quantum is 1).
    pub fn token_stall_cycles(&self) -> u64 {
        self.token_stall_cycles
    }

    #[inline]
    fn ns_of(&self, cycles: u64) -> f64 {
        cycles as f64 / self.core_freq_ghz
    }

    #[inline]
    fn cycles_of(&self, ns: f64) -> u64 {
        (ns * self.core_freq_ghz).ceil() as u64
    }

    fn map(&self, addr: u64) -> (usize, usize, u64) {
        // Line-interleaved channels; within a channel consecutive lines
        // fill a row (column bits), then banks interleave, then rows —
        // the row-buffer-friendly mapping FR-FCFS schedulers assume.
        // Power-of-two geometries (all presets) decode with three
        // shift/mask pairs; anything else falls back to div/mod.
        let line = addr >> 6;
        if let (Some(cs), Some(rs), Some(bs)) =
            (self.ch_shift, self.row_lines_shift, self.bank_shift)
        {
            let ch = (line & ((1 << cs) - 1)) as usize;
            let per_row = line >> cs >> rs;
            let bank = (per_row & ((1 << bs) - 1)) as usize;
            return (ch, bank, per_row >> bs);
        }
        let ch = (line % self.cfg.channels as u64) as usize;
        let per_ch = line / self.cfg.channels as u64;
        let lines_per_row = (self.cfg.row_bytes as u64 / 64).max(1);
        let nbanks = (self.cfg.ranks * self.cfg.banks) as u64;
        let bank = ((per_ch / lines_per_row) % nbanks) as usize;
        let row = per_ch / lines_per_row / nbanks;
        (ch, bank, row)
    }

    /// Cycle after which every bank and channel bus is idle: nothing in
    /// this model changes between then and the next access, which is
    /// exactly the promise a harness quiescence hint needs.
    pub fn busy_until_cycle(&self) -> u64 {
        self.cycles_of(self.busy_until_ns)
    }

    /// Services a 64-byte line access issued at core cycle `now`.
    pub fn access(&mut self, addr: u64, is_write: bool, now: u64) -> DramOutcome {
        let (ch, bank_in_ch, row) = self.map(addr);
        let bank_idx = ch * (self.cfg.ranks * self.cfg.banks) as usize + bank_in_ch;
        let now_ns = self.ns_of(now);

        let bank = &mut self.banks[bank_idx];
        let start_ns = (now_ns + self.cfg.ctrl_latency_ns).max(bank.ready_ns);
        let (cmd_ns, row_hit) = match bank.open_row {
            Some(open) if open == row => (self.cfg.t_cas_ns, true),
            Some(_) => (
                self.cfg.t_rp_ns + self.cfg.t_rcd_ns + self.cfg.t_cas_ns,
                false,
            ),
            None => (self.cfg.t_rcd_ns + self.cfg.t_cas_ns, false),
        };
        bank.open_row = Some(row);

        let burst = self.cfg.burst_ns(64);
        // Data must also win the channel bus.
        let data_start = (start_ns + cmd_ns).max(self.channel_free_ns[ch]);
        let done_ns = data_start + burst;
        self.channel_free_ns[ch] = done_ns;
        self.banks[bank_idx].ready_ns = done_ns;
        self.busy_until_ns = self.busy_until_ns.max(done_ns);

        if is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        if row_hit {
            self.row_hits += 1;
        }

        let mut done = self.cycles_of(done_ns).max(now + 1);
        let q = self.cfg.token_quantum_cycles as u64;
        if q > 1 {
            let rounded = done.div_ceil(q) * q;
            self.token_stall_cycles += rounded - done;
            done = rounded;
        }
        DramOutcome { done, row_hit }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_bandwidths_match_spec() {
        assert!((DramConfig::ddr3_2000(1).peak_bandwidth_gbs() - 16.0).abs() < 1e-9);
        assert!((DramConfig::ddr4_3200(4).peak_bandwidth_gbs() - 102.4).abs() < 1e-9);
        // Dual 32-bit LPDDR4-2666: 2 * 4 B * 2666 MT/s = 21.3 GB/s.
        assert!((DramConfig::lpddr4_2666().peak_bandwidth_gbs() - 21.328).abs() < 0.01);
    }

    #[test]
    fn row_hit_is_faster_than_row_miss() {
        let mut d = DramModel::new(DramConfig::ddr4_3200(1), 2.0);
        let first = d.access(0x0, false, 0);
        assert!(!first.row_hit, "cold bank cannot row-hit");
        // Same row, later in time so bank is idle again.
        let hit = d.access(0x40, false, first.done + 1000);
        assert!(hit.row_hit);
        let hit_latency = hit.done - (first.done + 1000);
        // Different row in the same bank, bank idle.
        // Row stride: channels=1, ranks*banks=32, row_bytes/64=32 lines.
        let far = 32u64 * 32 * 64 * 8; // definitely another row, same bank 0
        let miss = d.access(far, false, hit.done + 1000);
        let miss_latency = miss.done - (hit.done + 1000);
        assert!(
            miss_latency > hit_latency,
            "row miss ({miss_latency}) must cost more than row hit ({hit_latency})"
        );
    }

    #[test]
    fn channel_bus_serializes_bursts() {
        let cfg = DramConfig::ddr3_2000(1);
        let burst = cfg.burst_ns(64);
        let mut d = DramModel::new(cfg, 1.0);
        // Two accesses to different banks at the same instant share one bus.
        let a = d.access(0x0, false, 0);
        let b = d.access(0x40, false, 0); // next line → same channel, next bank
        assert!(
            b.done >= a.done + (burst as u64) - 1,
            "second burst must queue on the channel"
        );
    }

    #[test]
    fn more_channels_increase_throughput() {
        let one = DramConfig::ddr4_3200(1);
        let four = DramConfig::ddr4_3200(4);
        let mut d1 = DramModel::new(one, 2.0);
        let mut d4 = DramModel::new(four, 2.0);
        let mut last1 = 0;
        let mut last4 = 0;
        for i in 0..64u64 {
            last1 = d1.access(i * 64, false, 0).done.max(last1);
            last4 = d4.access(i * 64, false, 0).done.max(last4);
        }
        assert!(
            last4 < last1 / 2,
            "4-channel stream should finish much sooner ({last4} vs {last1})"
        );
    }

    #[test]
    fn ddr3_slower_than_ddr4_for_streams() {
        let mut ddr3 = DramModel::new(DramConfig::ddr3_2000(1), 2.0);
        let mut ddr4 = DramModel::new(DramConfig::ddr4_3200(1), 2.0);
        let mut t3 = 0;
        let mut t4 = 0;
        for i in 0..256u64 {
            t3 = ddr3.access(i * 64, false, t3).done;
            t4 = ddr4.access(i * 64, false, t4).done;
        }
        assert!(
            t3 > t4,
            "DDR3-2000 stream must be slower than DDR4-3200 ({t3} vs {t4})"
        );
    }

    #[test]
    fn token_quantum_rounds_up() {
        let mut cfg = DramConfig::ddr3_2000(1);
        cfg.token_quantum_cycles = 8;
        let mut d = DramModel::new(cfg, 1.0);
        let out = d.access(0x0, false, 3);
        assert_eq!(out.done % 8, 0, "completion must land on a token boundary");
    }

    #[test]
    fn po2_mapping_matches_divmod() {
        for cfg in [
            DramConfig::ddr3_2000(1),
            DramConfig::ddr4_3200(4),
            DramConfig::lpddr4_2666(),
        ] {
            let d = DramModel::new(cfg.clone(), 2.0);
            assert!(
                d.ch_shift.is_some(),
                "{}: preset must hit the fast path",
                cfg.name
            );
            let mut rng = 0x9E3779B97F4A7C15u64;
            for _ in 0..10_000 {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                let addr = rng >> 16;
                let line = addr >> 6;
                let ch = (line % cfg.channels as u64) as usize;
                let per_ch = line / cfg.channels as u64;
                let lpr = (cfg.row_bytes as u64 / 64).max(1);
                let nb = (cfg.ranks * cfg.banks) as u64;
                let expect = (ch, ((per_ch / lpr) % nb) as usize, per_ch / lpr / nb);
                assert_eq!(d.map(addr), expect, "{}: addr {addr:#x}", cfg.name);
            }
        }
    }

    #[test]
    fn busy_until_tracks_the_latest_completion() {
        let mut d = DramModel::new(DramConfig::ddr4_3200(1), 2.0);
        assert_eq!(d.busy_until_cycle(), 0, "an idle model is quiescent");
        let a = d.access(0x0, false, 0);
        assert_eq!(d.busy_until_cycle(), a.done);
        let b = d.access(0x40, true, a.done + 500);
        assert_eq!(d.busy_until_cycle(), b.done);
        // An earlier-finishing access never shrinks the horizon.
        assert!(d.busy_until_cycle() >= a.done);
    }

    #[test]
    fn counters_track_reads_writes_hits() {
        let mut d = DramModel::new(DramConfig::ddr4_3200(1), 1.0);
        d.access(0, false, 0);
        d.access(64, true, 1000);
        let (r, w, h) = d.counters();
        assert_eq!((r, w), (1, 1));
        assert_eq!(h, 1); // second access hits the open row
    }
}

//! Last-level cache models.
//!
//! The paper (§4) is explicit that FireSim's LLC model "behaves like an
//! SRAM and does not account for detailed cache system latencies such as
//! tag access delay or data retrieval latency", and models the MILK-V's
//! 64 MiB LLC as four 16 MiB slices, one per memory channel. Both
//! behaviours are captured here:
//!
//! * [`LlcModel::FiresimSram`] — tag-array lookup with a single flat
//!   latency, regardless of hit/miss path details,
//! * [`LlcModel::Silicon`] — separate tag and data latencies plus banked
//!   contention, approximating a real multi-megabyte NUCA-ish LLC.

use crate::cache::{Cache, CacheConfig};
use serde::{Deserialize, Serialize};

/// LLC configuration (one slice).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LlcConfig {
    /// Cache geometry of one slice.
    pub geometry: CacheConfig,
    /// Number of slices; physical addresses interleave across slices at
    /// line granularity (the paper: 4 × 16 MiB slices on 4 channels).
    pub slices: u32,
    /// Additional data-array latency for the silicon model (the FireSim
    /// model ignores it — that is the point).
    pub data_latency: u32,
    /// Which behaviour to model.
    pub style: LlcStyle,
}

/// Which LLC behaviour to model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LlcStyle {
    /// FireSim's simplified SRAM-like model (flat latency).
    FiresimSram,
    /// Latency-accurate silicon model (tag + data latency).
    Silicon,
}

/// Outcome of an LLC access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LlcOutcome {
    /// Tag hit?
    pub hit: bool,
    /// Cycle the access completes (hit) or is ready to go to DRAM (miss).
    pub ready_at: u64,
    /// Dirty victim base address if the fill evicted one.
    pub writeback: Option<u64>,
}

/// A sliced last-level cache.
pub struct LlcModel {
    cfg: LlcConfig,
    slices: Vec<Cache>,
}

impl LlcModel {
    /// Builds an empty LLC with `cfg.slices` slices.
    pub fn new(cfg: LlcConfig) -> LlcModel {
        assert!(
            cfg.slices.is_power_of_two(),
            "slice count must be a power of two"
        );
        let slices = (0..cfg.slices).map(|_| Cache::new(cfg.geometry)).collect();
        LlcModel { cfg, slices }
    }

    /// Configuration of this LLC.
    pub fn config(&self) -> &LlcConfig {
        &self.cfg
    }

    /// Total capacity across slices in bytes.
    pub fn capacity(&self) -> u64 {
        self.cfg.geometry.capacity() * self.cfg.slices as u64
    }

    /// Slice index for an address (line-granularity interleaving).
    pub fn slice_of(&self, addr: u64) -> usize {
        let line = addr >> self.cfg.geometry.line_bytes.trailing_zeros();
        (line & (self.cfg.slices as u64 - 1)) as usize
    }

    /// Timing lookup at cycle `now`. On a miss the caller fetches the
    /// line from DRAM and installs it with [`LlcModel::fill`].
    pub fn access(&mut self, addr: u64, is_store: bool, now: u64) -> LlcOutcome {
        let idx = self.slice_of(addr);
        let style = self.cfg.style;
        let tag_latency = self.cfg.geometry.hit_latency as u64;
        let data_latency = self.cfg.data_latency as u64;
        let slice = &mut self.slices[idx];
        let look = slice.access(addr, is_store, now);
        let latency = match (style, look.hit) {
            // FireSim SRAM model: flat latency, hit or miss detection alike.
            (LlcStyle::FiresimSram, _) => tag_latency,
            // Silicon: tag probe then data array on a hit; miss detection
            // costs only the tag probe.
            (LlcStyle::Silicon, true) => tag_latency + data_latency,
            (LlcStyle::Silicon, false) => tag_latency,
        };
        let ready_at = (look.start + latency).max(look.ready_at);
        LlcOutcome {
            hit: look.hit,
            ready_at,
            writeback: None,
        }
    }

    /// Installs a line whose DRAM data arrives at `ready_at`; returns a
    /// dirty victim's base address if one was evicted.
    pub fn fill(&mut self, addr: u64, is_store: bool, ready_at: u64) -> Option<u64> {
        let idx = self.slice_of(addr);
        self.slices[idx].fill(addr, is_store, ready_at)
    }

    /// True if the line is resident in its slice.
    pub fn contains(&self, addr: u64) -> bool {
        self.slices[self.slice_of(addr)].contains(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn milkv_slice() -> CacheConfig {
        // 16 MiB slice: 16384 sets * 16 ways * 64 B.
        CacheConfig {
            sets: 16384,
            ways: 16,
            line_bytes: 64,
            banks: 4,
            hit_latency: 8,
            mshrs: 16,
        }
    }

    fn llc(style: LlcStyle) -> LlcModel {
        LlcModel::new(LlcConfig {
            geometry: milkv_slice(),
            slices: 4,
            data_latency: 18,
            style,
        })
    }

    #[test]
    fn milkv_llc_is_64_mib() {
        assert_eq!(llc(LlcStyle::FiresimSram).capacity(), 64 * 1024 * 1024);
    }

    #[test]
    fn slices_interleave_by_line() {
        let l = llc(LlcStyle::FiresimSram);
        assert_eq!(l.slice_of(0), 0);
        assert_eq!(l.slice_of(64), 1);
        assert_eq!(l.slice_of(128), 2);
        assert_eq!(l.slice_of(192), 3);
        assert_eq!(l.slice_of(256), 0);
    }

    #[test]
    fn firesim_model_ignores_data_latency() {
        let mut fs = llc(LlcStyle::FiresimSram);
        let mut si = llc(LlcStyle::Silicon);
        let addr = 0x4000;
        // Prime both.
        fs.access(addr, false, 0);
        fs.fill(addr, false, 0);
        si.access(addr, false, 0);
        si.fill(addr, false, 0);
        let fs_hit = fs.access(addr, false, 100);
        let si_hit = si.access(addr, false, 100);
        assert!(fs_hit.hit && si_hit.hit);
        assert_eq!(fs_hit.ready_at, 108); // tag only
        assert_eq!(si_hit.ready_at, 126); // tag + data
        assert!(
            si_hit.ready_at > fs_hit.ready_at,
            "silicon LLC must be slower per hit than FireSim's SRAM model"
        );
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut l = llc(LlcStyle::Silicon);
        let out = l.access(0x1234_0000, false, 0);
        assert!(!out.hit);
        assert!(!l.contains(0x1234_0000), "lookup alone must not install");
        l.fill(0x1234_0000, false, 120);
        assert!(l.contains(0x1234_0000));
        let again = l.access(0x1234_0000, false, 50);
        assert!(again.hit);
        assert!(again.ready_at >= 120, "in-flight fill gates the data");
    }
}

//! System-bus timing model.
//!
//! Table 4 of the paper distinguishes its Rocket configurations by system
//! bus width (64-bit for Rocket 1 vs. 128-bit for Rocket 2 and all BOOM
//! models). The bus carries refill and write-back traffic between the
//! tile (L1/L2) and the outer memory system; a wider bus moves a 64-byte
//! line in fewer beats and therefore frees up sooner under load.
//!
//! Like TileLink (the interconnect of the actual Rocket/BOOM SoCs), the
//! model has independent request (A) and response (D) channels, each
//! with its own occupancy. Each channel must be driven in approximately
//! non-decreasing time order, which the hierarchy's call order satisfies.

use serde::{Deserialize, Serialize};

/// Bus parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BusConfig {
    /// Data width in bits (64 or 128 in the paper's configs).
    pub width_bits: u32,
    /// Fixed arbitration + traversal latency in core cycles.
    pub latency: u32,
}

impl BusConfig {
    /// Beats needed to move `bytes` across the bus.
    pub fn beats(&self, bytes: u32) -> u64 {
        let per_beat = self.width_bits / 8;
        bytes.div_ceil(per_beat) as u64
    }
}

/// A shared bus with independent request/response channels and
/// occupancy-based contention per channel.
pub struct Bus {
    cfg: BusConfig,
    req_free_at: u64,
    resp_free_at: u64,
    busy_cycles: u64,
}

impl Bus {
    /// Builds an idle bus.
    pub fn new(cfg: BusConfig) -> Bus {
        Bus {
            cfg,
            req_free_at: 0,
            resp_free_at: 0,
            busy_cycles: 0,
        }
    }

    /// The configuration of this bus.
    pub fn config(&self) -> &BusConfig {
        &self.cfg
    }

    fn channel(cfg: &BusConfig, free_at: &mut u64, bytes: u32, now: u64) -> (u64, u64) {
        let grant = now.max(*free_at);
        let beats = cfg.beats(bytes);
        let done = grant + cfg.latency as u64 + beats;
        *free_at = grant + beats; // pipelined: latency overlaps the next grant
        (grant, done)
    }

    /// A request-channel transfer (miss requests, write-back data) of
    /// `bytes` at cycle `now`; returns `(grant, done)`.
    pub fn request(&mut self, bytes: u32, now: u64) -> (u64, u64) {
        let (g, d) = Self::channel(&self.cfg, &mut self.req_free_at, bytes, now);
        self.busy_cycles += self.cfg.beats(bytes);
        (g, d)
    }

    /// A response-channel transfer (refill data) of `bytes` at cycle `now`.
    pub fn respond(&mut self, bytes: u32, now: u64) -> (u64, u64) {
        let (g, d) = Self::channel(&self.cfg, &mut self.resp_free_at, bytes, now);
        self.busy_cycles += self.cfg.beats(bytes);
        (g, d)
    }

    /// Cumulative busy beats across both channels.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wider_bus_needs_fewer_beats() {
        let narrow = BusConfig {
            width_bits: 64,
            latency: 4,
        };
        let wide = BusConfig {
            width_bits: 128,
            latency: 4,
        };
        assert_eq!(narrow.beats(64), 8);
        assert_eq!(wide.beats(64), 4);
    }

    #[test]
    fn transfers_serialize_within_a_channel() {
        let mut bus = Bus::new(BusConfig {
            width_bits: 64,
            latency: 2,
        });
        let (g1, d1) = bus.respond(64, 0);
        assert_eq!((g1, d1), (0, 10)); // 2 latency + 8 beats
        let (g2, d2) = bus.respond(64, 0);
        assert_eq!(g2, 8, "second transfer waits for the 8 busy beats");
        assert_eq!(d2, 18);
    }

    #[test]
    fn request_and_response_channels_are_independent() {
        let mut bus = Bus::new(BusConfig {
            width_bits: 64,
            latency: 2,
        });
        // A response far in the future must not delay an earlier request.
        let (_, _) = bus.respond(64, 1000);
        let (g, _) = bus.request(8, 5);
        assert_eq!(g, 5, "request channel must be independent of responses");
    }

    #[test]
    fn idle_bus_grants_immediately() {
        let mut bus = Bus::new(BusConfig {
            width_bits: 128,
            latency: 1,
        });
        let (g, d) = bus.respond(64, 100);
        assert_eq!(g, 100);
        assert_eq!(d, 105); // 1 + 4 beats
    }

    #[test]
    fn partial_line_rounds_up() {
        let cfg = BusConfig {
            width_bits: 128,
            latency: 0,
        };
        assert_eq!(cfg.beats(1), 1);
        assert_eq!(cfg.beats(17), 2);
    }
}

//! Set-associative, banked, write-back cache timing model.
//!
//! Models exactly the knobs the paper tunes in Table 4/5: sets, ways,
//! line size, bank count (`L2 Banks` column), hit latency, and MSHR
//! count. Replacement is true LRU. The model is timing-only — data
//! values live in the functional interpreter — so a "hit" is a tag-array
//! hit and an access returns when the data *would* be available.

use serde::{Deserialize, Serialize};

/// Static cache geometry and timing parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: u32,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Number of banks; consecutive lines are interleaved across banks.
    pub banks: u32,
    /// Hit latency in core cycles.
    pub hit_latency: u32,
    /// Outstanding-miss registers (0 = fully blocking).
    pub mshrs: u32,
}

impl CacheConfig {
    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_bytes as u64
    }

    fn validate(&self) {
        assert!(self.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(self.banks.is_power_of_two(), "banks must be a power of two");
        assert!(self.ways >= 1, "need at least one way");
    }
}

/// Result of a timing lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lookup {
    /// Tag hit?
    pub hit: bool,
    /// Cycle at which the bank accepted the access (>= issue cycle; later
    /// under bank conflicts).
    pub start: u64,
    /// On a hit: the cycle the line's data is actually present (later
    /// than `start` when the line is still in flight from a fill, e.g. a
    /// prefetch that has not arrived yet).
    pub ready_at: u64,
    /// A dirty victim line's base address, if the fill evicted one.
    pub writeback: Option<u64>,
}

/// Line state bit: the way holds a valid line.
const VALID: u8 = 1 << 0;
/// Line state bit: the line has been written since it was filled.
const DIRTY: u8 = 1 << 1;

/// A single cache instance (one level, one shared array).
///
/// The tag store is structure-of-arrays: packed `tags`/`flags`/`lru`/
/// `ready_at` vectors indexed by `set * ways + way`, probed with a
/// single branchless scan per lookup instead of one branchy pass per
/// field. The lookup path is the hottest kernel in the whole simulator
/// (every load, store, and fetch line goes through it at least once),
/// so the layout keeps the comparison stream — tag plus one metadata
/// byte — dense in cache lines and leaves the cold LRU/ready timestamps
/// out of the probe entirely.
pub struct Cache {
    cfg: CacheConfig,
    /// Per-way tags, `sets * ways` entries.
    tags: Vec<u64>,
    /// Per-way `VALID`/`DIRTY` bits, parallel to `tags`.
    flags: Vec<u8>,
    /// LRU timestamps (monotone counter, larger = more recent).
    lru: Vec<u64>,
    /// Cycle at which each line's data is present (fills in flight have
    /// future ready times).
    ready_at: Vec<u64>,
    bank_free_at: Vec<u64>,
    lru_clock: u64,
    offset_bits: u32,
    index_mask: u64,
    /// Precomputed `offset_bits + log2(sets)`: one shift extracts a tag.
    tag_shift: u32,
    /// Precomputed `banks - 1`: one mask selects a bank.
    bank_mask: u64,
}

impl Cache {
    /// Builds an empty (all-invalid) cache.
    pub fn new(cfg: CacheConfig) -> Cache {
        cfg.validate();
        let n = (cfg.sets * cfg.ways) as usize;
        Cache {
            tags: vec![0; n],
            flags: vec![0; n],
            lru: vec![0; n],
            ready_at: vec![0; n],
            bank_free_at: vec![0; cfg.banks as usize],
            lru_clock: 0,
            offset_bits: cfg.line_bytes.trailing_zeros(),
            index_mask: (cfg.sets - 1) as u64,
            tag_shift: cfg.line_bytes.trailing_zeros() + cfg.sets.trailing_zeros(),
            bank_mask: cfg.banks as u64 - 1,
            cfg,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    #[inline]
    fn set_of(&self, addr: u64) -> u64 {
        (addr >> self.offset_bits) & self.index_mask
    }

    #[inline]
    fn tag_of(&self, addr: u64) -> u64 {
        addr >> self.tag_shift
    }

    #[inline]
    fn bank_of(&self, addr: u64) -> usize {
        ((addr >> self.offset_bits) & self.bank_mask) as usize
    }

    /// The one tag probe every path shares: scans the set's ways with a
    /// branch-free select (a mispredicted way loop costs more than the
    /// handful of extra compares) and returns the matching way's global
    /// index.
    #[inline]
    fn probe(&self, set: u64, tag: u64) -> Option<usize> {
        let ways = self.cfg.ways as usize;
        let base = set as usize * ways;
        let tags = &self.tags[base..base + ways];
        let flags = &self.flags[base..base + ways];
        let mut found = usize::MAX;
        for w in 0..ways {
            let hit = (flags[w] & VALID != 0) & (tags[w] == tag);
            found = if hit { base + w } else { found };
        }
        (found != usize::MAX).then_some(found)
    }

    /// Base address of the line containing `addr`.
    #[inline]
    pub fn line_base(&self, addr: u64) -> u64 {
        addr & !((self.cfg.line_bytes as u64) - 1)
    }

    /// Performs a timing access at cycle `now`.
    ///
    /// On a miss the line is *not* yet filled — call [`Cache::fill`] once
    /// the lower level returns so the fill time ordering is honored.
    /// On a hit the LRU state is updated and stores mark the line dirty.
    pub fn access(&mut self, addr: u64, is_store: bool, now: u64) -> Lookup {
        let bank = self.bank_of(addr);
        let start = now.max(self.bank_free_at[bank]);
        // The bank is busy for one cycle per access (tag + data array read).
        self.bank_free_at[bank] = start + 1;
        self.lookup(addr, is_store, start)
    }

    /// Like [`Cache::access`] but without occupying a bank — used by the
    /// prefetcher, which probes tags opportunistically in idle slots.
    pub fn access_quiet(&mut self, addr: u64, is_store: bool, now: u64) -> Lookup {
        self.lookup(addr, is_store, now)
    }

    fn lookup(&mut self, addr: u64, is_store: bool, start: u64) -> Lookup {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.lru_clock += 1;
        let lru_now = self.lru_clock;

        if let Some(li) = self.probe(set, tag) {
            self.lru[li] = lru_now;
            self.flags[li] |= (is_store as u8) << 1; // DIRTY on stores
            return Lookup {
                hit: true,
                start,
                ready_at: self.ready_at[li],
                writeback: None,
            };
        }
        Lookup {
            hit: false,
            start,
            ready_at: start,
            writeback: None,
        }
    }

    /// Installs the line containing `addr`, whose data arrives at
    /// `ready_at` (the fill may still be in flight — accesses that hit it
    /// before then wait). Returns the base address of a dirty victim if
    /// one was evicted.
    pub fn fill(&mut self, addr: u64, is_store: bool, ready_at: u64) -> Option<u64> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.lru_clock += 1;
        let lru_now = self.lru_clock;

        // Already present (e.g. a racing fill from another core's miss)?
        if let Some(li) = self.probe(set, tag) {
            self.lru[li] = lru_now;
            self.flags[li] |= (is_store as u8) << 1;
            self.ready_at[li] = self.ready_at[li].min(ready_at);
            return None;
        }
        // Choose victim: first invalid way, else LRU.
        let ways = self.cfg.ways as usize;
        let base = set as usize * ways;
        let mut victim = base;
        let mut best_lru = u64::MAX;
        for w in base..base + ways {
            if self.flags[w] & VALID == 0 {
                victim = w;
                break;
            }
            if self.lru[w] < best_lru {
                best_lru = self.lru[w];
                victim = w;
            }
        }
        let evicted = if self.flags[victim] & (VALID | DIRTY) == VALID | DIRTY {
            // Reconstruct the victim's base address from tag+set.
            Some(self.tags[victim] << self.tag_shift | set << self.offset_bits)
        } else {
            None
        };
        self.tags[victim] = tag;
        self.flags[victim] = VALID | ((is_store as u8) << 1);
        self.lru[victim] = lru_now;
        self.ready_at[victim] = ready_at;
        evicted
    }

    /// Invalidates the line containing `addr` (coherence downgrade),
    /// returning true if a valid line was dropped.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        match self.probe(self.set_of(addr), self.tag_of(addr)) {
            Some(li) => {
                self.flags[li] = 0;
                true
            }
            None => false,
        }
    }

    /// True if the line containing `addr` is resident.
    pub fn contains(&self, addr: u64) -> bool {
        self.probe(self.set_of(addr), self.tag_of(addr)).is_some()
    }

    /// Number of currently valid lines (for capacity invariants in tests).
    pub fn valid_lines(&self) -> usize {
        self.flags.iter().filter(|&&f| f & VALID != 0).count()
    }

    /// Hit latency in cycles.
    pub fn hit_latency(&self) -> u32 {
        self.cfg.hit_latency
    }

    /// MSHR count.
    pub fn mshrs(&self) -> u32 {
        self.cfg.mshrs
    }
}

/// Tracks outstanding misses against a fixed MSHR budget.
///
/// Each MSHR is a slot that is *reserved* at [`MshrFile::admit`] and
/// released when the recorded completion time passes. A miss that finds
/// every slot reserved is delayed to the earliest slot-free time — the
/// "higher cache MSHRs" limitation §5.2.2 of the paper points at for
/// IS/MG.
#[derive(Clone, Debug)]
pub struct MshrFile {
    slots: Vec<u64>,
}

/// Handle for a reserved MSHR slot (pass back to [`MshrFile::record`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MshrSlot(usize);

impl MshrFile {
    /// An MSHR file with `capacity` entries (`0` is clamped to 1:
    /// a fully blocking cache still has one outstanding miss).
    pub fn new(capacity: u32) -> MshrFile {
        MshrFile {
            slots: vec![0; capacity.max(1) as usize],
        }
    }

    /// Reserves a slot for a miss issued at `now`; returns the slot and
    /// the (possibly delayed) start cycle.
    pub fn admit(&mut self, now: u64) -> (MshrSlot, u64) {
        let (idx, &free) = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|(_, &f)| f)
            .expect("MSHR file is never empty");
        let start = now.max(free);
        self.slots[idx] = u64::MAX; // reserved until record()
        (MshrSlot(idx), start)
    }

    /// Records the completion time of an admitted miss, freeing its slot
    /// at that time.
    pub fn record(&mut self, slot: MshrSlot, completes: u64) {
        self.slots[slot.0] = completes;
    }

    /// Number of slots still reserved or completing after `now`.
    pub fn outstanding(&self, now: u64) -> usize {
        self.slots.iter().filter(|&&c| c > now).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheConfig {
        CacheConfig {
            sets: 4,
            ways: 2,
            line_bytes: 64,
            banks: 2,
            hit_latency: 2,
            mshrs: 4,
        }
    }

    #[test]
    fn capacity_math() {
        assert_eq!(small().capacity(), 4 * 2 * 64);
        let rocket_l1 = CacheConfig {
            sets: 64,
            ways: 8,
            line_bytes: 64,
            banks: 1,
            hit_latency: 2,
            mshrs: 2,
        };
        assert_eq!(rocket_l1.capacity(), 32 * 1024); // Table 5: 32 KiB
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = Cache::new(small());
        let a = 0x1000;
        assert!(!c.access(a, false, 0).hit);
        assert_eq!(c.fill(a, false, 0), None);
        assert!(c.access(a, false, 10).hit);
        assert!(c.contains(a));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = Cache::new(small());
        // Three lines mapping to the same set (set stride = sets*line = 256B).
        let (a, b, d) = (0x0u64, 0x100u64, 0x200u64);
        for addr in [a, b, d] {
            c.access(addr, false, 0);
            c.fill(addr, false, 0);
        }
        // 2 ways: `a` (oldest) must be gone, `b` and `d` resident.
        assert!(!c.contains(a));
        assert!(c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn touching_refreshes_lru() {
        let mut c = Cache::new(small());
        let (a, b, d) = (0x0u64, 0x100u64, 0x200u64);
        c.access(a, false, 0);
        c.fill(a, false, 0);
        c.access(b, false, 1);
        c.fill(b, false, 0);
        c.access(a, false, 2); // refresh a
        c.access(d, false, 3);
        c.fill(d, false, 0); // should evict b, not a
        assert!(c.contains(a));
        assert!(!c.contains(b));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = Cache::new(small());
        let (a, b, d) = (0x0u64, 0x100u64, 0x200u64);
        c.access(a, true, 0);
        c.fill(a, true, 0); // dirty
        c.access(b, false, 1);
        c.fill(b, false, 0);
        c.access(d, false, 2);
        let wb = c.fill(d, false, 0);
        assert_eq!(wb, Some(a), "dirty line a must be written back");
    }

    #[test]
    fn store_hit_marks_dirty() {
        let mut c = Cache::new(small());
        let (a, b, d) = (0x0u64, 0x100u64, 0x200u64);
        c.access(a, false, 0);
        c.fill(a, false, 0); // clean fill
        c.access(a, true, 1); // store hit dirties it
        c.access(b, false, 2);
        c.fill(b, false, 0);
        c.access(d, false, 3);
        assert_eq!(c.fill(d, false, 0), Some(a));
    }

    #[test]
    fn bank_conflicts_serialize() {
        let mut c = Cache::new(small());
        // Two addresses on the same bank (banks=2; lines 0 and 2 share bank 0).
        let (a, b) = (0x0u64, 0x80u64);
        assert_eq!(c.bank_of(a), c.bank_of(b));
        let l1 = c.access(a, false, 5);
        let l2 = c.access(b, false, 5);
        assert_eq!(l1.start, 5);
        assert_eq!(l2.start, 6, "same-bank access must wait for the bank");
        // Different bank proceeds in parallel.
        let l3 = c.access(0x40, false, 5);
        assert_eq!(l3.start, 5);
    }

    #[test]
    fn invalidate_drops_line() {
        let mut c = Cache::new(small());
        c.access(0x40, false, 0);
        c.fill(0x40, false, 0);
        assert!(c.invalidate(0x40));
        assert!(!c.contains(0x40));
        assert!(!c.invalidate(0x40));
    }

    #[test]
    fn valid_lines_never_exceed_capacity() {
        let mut c = Cache::new(small());
        for i in 0..1000u64 {
            let addr = i * 64;
            if !c.access(addr, i % 3 == 0, i).hit {
                c.fill(addr, i % 3 == 0, i);
            }
        }
        assert!(c.valid_lines() <= (small().sets * small().ways) as usize);
    }

    /// The AoS tag store the SoA layout replaced, kept verbatim as a
    /// reference model for the A/B equivalence test below.
    struct RefCache {
        cfg: CacheConfig,
        lines: Vec<(u64, bool, bool, u64, u64)>, // tag, valid, dirty, lru, ready_at
        bank_free_at: Vec<u64>,
        lru_clock: u64,
    }

    impl RefCache {
        fn new(cfg: CacheConfig) -> RefCache {
            RefCache {
                lines: vec![(0, false, false, 0, 0); (cfg.sets * cfg.ways) as usize],
                bank_free_at: vec![0; cfg.banks as usize],
                lru_clock: 0,
                cfg,
            }
        }
        fn set_of(&self, addr: u64) -> u64 {
            (addr >> self.cfg.line_bytes.trailing_zeros()) & (self.cfg.sets - 1) as u64
        }
        fn tag_of(&self, addr: u64) -> u64 {
            addr >> (self.cfg.line_bytes.trailing_zeros() + self.cfg.sets.trailing_zeros())
        }
        fn access(&mut self, addr: u64, is_store: bool, now: u64) -> Lookup {
            let bank =
                ((addr >> self.cfg.line_bytes.trailing_zeros()) % self.cfg.banks as u64) as usize;
            let start = now.max(self.bank_free_at[bank]);
            self.bank_free_at[bank] = start + 1;
            let (set, tag) = (self.set_of(addr), self.tag_of(addr));
            self.lru_clock += 1;
            let base = (set * self.cfg.ways as u64) as usize;
            for way in 0..self.cfg.ways as usize {
                let l = &mut self.lines[base + way];
                if l.1 && l.0 == tag {
                    l.3 = self.lru_clock;
                    l.2 |= is_store;
                    return Lookup {
                        hit: true,
                        start,
                        ready_at: l.4,
                        writeback: None,
                    };
                }
            }
            Lookup {
                hit: false,
                start,
                ready_at: start,
                writeback: None,
            }
        }
        fn fill(&mut self, addr: u64, is_store: bool, ready_at: u64) -> Option<u64> {
            let (set, tag) = (self.set_of(addr), self.tag_of(addr));
            self.lru_clock += 1;
            let base = (set * self.cfg.ways as u64) as usize;
            for way in 0..self.cfg.ways as usize {
                let l = &mut self.lines[base + way];
                if l.1 && l.0 == tag {
                    l.3 = self.lru_clock;
                    l.2 |= is_store;
                    l.4 = l.4.min(ready_at);
                    return None;
                }
            }
            let mut victim = 0usize;
            let mut best = u64::MAX;
            for way in 0..self.cfg.ways as usize {
                let l = &self.lines[base + way];
                if !l.1 {
                    victim = way;
                    break;
                }
                if l.3 < best {
                    best = l.3;
                    victim = way;
                }
            }
            let l = &mut self.lines[base + victim];
            let shift = self.cfg.line_bytes.trailing_zeros() + self.cfg.sets.trailing_zeros();
            let evicted =
                (l.1 && l.2).then(|| l.0 << shift | set << self.cfg.line_bytes.trailing_zeros());
            *l = (tag, true, is_store, self.lru_clock, ready_at);
            evicted
        }
        fn contains(&self, addr: u64) -> bool {
            let (set, tag) = (self.set_of(addr), self.tag_of(addr));
            let base = (set * self.cfg.ways as u64) as usize;
            (0..self.cfg.ways as usize).any(|w| {
                let l = &self.lines[base + w];
                l.1 && l.0 == tag
            })
        }
    }

    /// Proptest-style equivalence: 50k seeded random operations must
    /// drive the SoA tag store and the AoS reference through identical
    /// hit/miss, timing, writeback, and residency sequences.
    #[test]
    fn soa_layout_matches_aos_reference_model() {
        for seed in [1u64, 0xDEAD_BEEF, 0x1234_5678_9ABC] {
            let cfg = small();
            let mut soa = Cache::new(cfg);
            let mut aos = RefCache::new(cfg);
            let mut rng = seed | 1;
            for step in 0..50_000u64 {
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                // A tight address space so sets conflict and evict often.
                let addr = (rng >> 11) % 0x2000;
                let is_store = rng & 1 == 1;
                match (rng >> 8) % 4 {
                    0 => {
                        let w = soa.fill(addr, is_store, step + 10);
                        assert_eq!(w, aos.fill(addr, is_store, step + 10), "step {step}");
                    }
                    1 => {
                        assert_eq!(soa.contains(addr), aos.contains(addr), "step {step}");
                    }
                    _ => {
                        let a = soa.access(addr, is_store, step);
                        let b = aos.access(addr, is_store, step);
                        assert_eq!(a, b, "step {step}");
                    }
                }
            }
            assert_eq!(
                soa.valid_lines(),
                aos.lines.iter().filter(|l| l.1).count(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn mshr_file_limits_overlap() {
        let mut m = MshrFile::new(2);
        let (s1, t1) = m.admit(0);
        assert_eq!(t1, 0);
        m.record(s1, 100);
        let (s2, t2) = m.admit(1);
        assert_eq!(t2, 1);
        m.record(s2, 200);
        // Both MSHRs busy: next miss waits for the earliest completion (100).
        let (s3, t3) = m.admit(2);
        assert_eq!(t3, 100);
        m.record(s3, 300);
        assert_eq!(m.outstanding(150), 2); // 200 and 300 still in flight
                                           // A reserved (not yet recorded) slot blocks admission forever
                                           // until recorded.
        let (s4, t4) = m.admit(250);
        assert_eq!(t4, 250); // the 200-slot freed
        m.record(s4, 400);
    }
}

//! # bsim-mem — memory-system timing substrate
//!
//! Cycle-level timing models for every level of the memory system the
//! paper configures in its FireSim targets and measures on silicon:
//!
//! * [`cache`] — set-associative, banked, write-back caches with MSHRs
//!   (L1I, L1D and the shared L2 of a Rocket/BOOM tile),
//! * [`bus`] — the system bus between the tile and the outer memory
//!   system (the 64-bit vs. 128-bit knob of Table 4),
//! * [`llc`] — two last-level-cache models: FireSim's *simplified
//!   SRAM-like* LLC (explicitly called out in §4 of the paper as ignoring
//!   tag/data latency) and a latency-accurate silicon LLC,
//! * [`dram`] — an FR-FCFS bank/rank/row DRAM timing model with presets
//!   for the paper's three memory systems: DDR3-2000 quad-rank (the only
//!   model FireSim supports), 4-channel DDR4-3200 (MILK-V Pioneer) and
//!   dual 32-bit LPDDR4-2666 (Banana Pi BPI-F3),
//! * [`hierarchy`] — glues the levels into a per-SoC [`MemoryHierarchy`]
//!   that cores call with `(core, addr, kind, issue_cycle)` and get back a
//!   completion cycle plus which level served the access.
//!
//! All externally visible times are **core clock cycles**; DRAM timing is
//! specified in nanoseconds and converted at the configured core clock.

pub mod bus;
pub mod cache;
pub mod dram;
pub mod hierarchy;
pub mod llc;
pub mod stats;

pub use bus::{Bus, BusConfig};
pub use cache::{Cache, CacheConfig};
pub use dram::{DramConfig, DramModel};
pub use hierarchy::{AccessKind, AccessOutcome, HierarchyConfig, HitLevel, MemoryHierarchy};
pub use llc::{LlcConfig, LlcModel};
pub use stats::MemStats;

//! Aggregate memory-system statistics.

use bsim_telemetry::CounterBlock;
use serde::{Deserialize, Serialize};

/// Hit/miss and traffic counters for one simulated memory hierarchy.
///
/// The counters are cumulative over the life of the hierarchy; the
/// benchmark harnesses snapshot them before and after the region of
/// interest and subtract.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// L1 data cache accesses.
    pub l1d_accesses: u64,
    /// L1 data cache misses.
    pub l1d_misses: u64,
    /// L1 instruction cache accesses.
    pub l1i_accesses: u64,
    /// L1 instruction cache misses.
    pub l1i_misses: u64,
    /// L2 accesses (i.e. L1 misses that reached L2).
    pub l2_accesses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// LLC accesses (L2 misses when an LLC is present).
    pub llc_accesses: u64,
    /// LLC misses.
    pub llc_misses: u64,
    /// Requests that reached DRAM.
    pub dram_reads: u64,
    /// Write-backs that reached DRAM.
    pub dram_writes: u64,
    /// DRAM row-buffer hits (subset of `dram_reads + dram_writes`).
    pub dram_row_hits: u64,
    /// DRAM row-buffer misses (precharge/activate paid).
    pub dram_row_misses: u64,
    /// Extra cycles DRAM completions spent rounded up to FireSim token
    /// quantum boundaries (0 on silicon-like models with quantum 1).
    pub dram_token_stall_cycles: u64,
    /// Dirty-line write-backs generated anywhere in the hierarchy.
    pub writebacks: u64,
    /// Cycles lost to cache bank conflicts.
    pub bank_conflict_cycles: u64,
    /// Cycles lost waiting for a free MSHR.
    pub mshr_stall_cycles: u64,
    /// Busy beats on the system bus (request + response channels).
    pub bus_busy_cycles: u64,
    /// Prefetch line fetches issued.
    pub prefetches: u64,
}

impl MemStats {
    /// L1D miss rate in [0, 1].
    pub fn l1d_miss_rate(&self) -> f64 {
        ratio(self.l1d_misses, self.l1d_accesses)
    }

    /// L2 miss rate in [0, 1].
    pub fn l2_miss_rate(&self) -> f64 {
        ratio(self.l2_misses, self.l2_accesses)
    }

    /// DRAM row-buffer hit rate in [0, 1].
    pub fn row_hit_rate(&self) -> f64 {
        ratio(self.dram_row_hits, self.dram_reads + self.dram_writes)
    }

    /// Element-wise difference (`self - earlier`), for interval accounting.
    pub fn delta(&self, earlier: &MemStats) -> MemStats {
        MemStats {
            l1d_accesses: self.l1d_accesses - earlier.l1d_accesses,
            l1d_misses: self.l1d_misses - earlier.l1d_misses,
            l1i_accesses: self.l1i_accesses - earlier.l1i_accesses,
            l1i_misses: self.l1i_misses - earlier.l1i_misses,
            l2_accesses: self.l2_accesses - earlier.l2_accesses,
            l2_misses: self.l2_misses - earlier.l2_misses,
            llc_accesses: self.llc_accesses - earlier.llc_accesses,
            llc_misses: self.llc_misses - earlier.llc_misses,
            dram_reads: self.dram_reads - earlier.dram_reads,
            dram_writes: self.dram_writes - earlier.dram_writes,
            dram_row_hits: self.dram_row_hits - earlier.dram_row_hits,
            dram_row_misses: self.dram_row_misses - earlier.dram_row_misses,
            dram_token_stall_cycles: self.dram_token_stall_cycles - earlier.dram_token_stall_cycles,
            writebacks: self.writebacks - earlier.writebacks,
            bank_conflict_cycles: self.bank_conflict_cycles - earlier.bank_conflict_cycles,
            mshr_stall_cycles: self.mshr_stall_cycles - earlier.mshr_stall_cycles,
            bus_busy_cycles: self.bus_busy_cycles - earlier.bus_busy_cycles,
            prefetches: self.prefetches - earlier.prefetches,
        }
    }

    /// Publishes every counter into `block` under `prefix` (use `"mem"`,
    /// or a tile/cluster name in multi-hierarchy setups).
    pub fn publish(&self, prefix: &str, block: &mut CounterBlock) {
        let mut put = |name: &str, v: u64| block.set_named(&format!("{prefix}.{name}"), v);
        put("l1d.accesses", self.l1d_accesses);
        put("l1d.misses", self.l1d_misses);
        put("l1i.accesses", self.l1i_accesses);
        put("l1i.misses", self.l1i_misses);
        put("l2.accesses", self.l2_accesses);
        put("l2.misses", self.l2_misses);
        put("llc.accesses", self.llc_accesses);
        put("llc.misses", self.llc_misses);
        put("dram.reads", self.dram_reads);
        put("dram.writes", self.dram_writes);
        put("dram.row_hits", self.dram_row_hits);
        put("dram.row_misses", self.dram_row_misses);
        put("dram.token_stall_cycles", self.dram_token_stall_cycles);
        put("writebacks", self.writebacks);
        put("bank_conflict_cycles", self.bank_conflict_cycles);
        put("mshr_stall_cycles", self.mshr_stall_cycles);
        put("bus.busy_cycles", self.bus_busy_cycles);
        put("prefetches", self.prefetches);
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominator() {
        let s = MemStats::default();
        assert_eq!(s.l1d_miss_rate(), 0.0);
        assert_eq!(s.row_hit_rate(), 0.0);
    }

    #[test]
    fn delta_subtracts() {
        let a = MemStats {
            l1d_accesses: 10,
            l1d_misses: 2,
            ..Default::default()
        };
        let b = MemStats {
            l1d_accesses: 25,
            l1d_misses: 5,
            ..Default::default()
        };
        let d = b.delta(&a);
        assert_eq!(d.l1d_accesses, 15);
        assert_eq!(d.l1d_misses, 3);
        assert!((d.l1d_miss_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn publish_covers_dram_and_bus() {
        let s = MemStats {
            dram_reads: 10,
            dram_row_misses: 4,
            bus_busy_cycles: 123,
            ..Default::default()
        };
        let mut block = CounterBlock::new(true);
        s.publish("mem", &mut block);
        assert_eq!(block.get("mem.dram.reads"), Some(10));
        assert_eq!(block.get("mem.dram.row_misses"), Some(4));
        assert_eq!(block.get("mem.bus.busy_cycles"), Some(123));
    }
}

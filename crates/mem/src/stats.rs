//! Aggregate memory-system statistics.

use serde::{Deserialize, Serialize};

/// Hit/miss and traffic counters for one simulated memory hierarchy.
///
/// The counters are cumulative over the life of the hierarchy; the
/// benchmark harnesses snapshot them before and after the region of
/// interest and subtract.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// L1 data cache accesses.
    pub l1d_accesses: u64,
    /// L1 data cache misses.
    pub l1d_misses: u64,
    /// L1 instruction cache accesses.
    pub l1i_accesses: u64,
    /// L1 instruction cache misses.
    pub l1i_misses: u64,
    /// L2 accesses (i.e. L1 misses that reached L2).
    pub l2_accesses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// LLC accesses (L2 misses when an LLC is present).
    pub llc_accesses: u64,
    /// LLC misses.
    pub llc_misses: u64,
    /// Requests that reached DRAM.
    pub dram_reads: u64,
    /// Write-backs that reached DRAM.
    pub dram_writes: u64,
    /// DRAM row-buffer hits (subset of `dram_reads + dram_writes`).
    pub dram_row_hits: u64,
    /// Dirty-line write-backs generated anywhere in the hierarchy.
    pub writebacks: u64,
    /// Cycles lost to cache bank conflicts.
    pub bank_conflict_cycles: u64,
    /// Cycles lost waiting for a free MSHR.
    pub mshr_stall_cycles: u64,
    /// Prefetch line fetches issued.
    pub prefetches: u64,
}

impl MemStats {
    /// L1D miss rate in [0, 1].
    pub fn l1d_miss_rate(&self) -> f64 {
        ratio(self.l1d_misses, self.l1d_accesses)
    }

    /// L2 miss rate in [0, 1].
    pub fn l2_miss_rate(&self) -> f64 {
        ratio(self.l2_misses, self.l2_accesses)
    }

    /// DRAM row-buffer hit rate in [0, 1].
    pub fn row_hit_rate(&self) -> f64 {
        ratio(self.dram_row_hits, self.dram_reads + self.dram_writes)
    }

    /// Element-wise difference (`self - earlier`), for interval accounting.
    pub fn delta(&self, earlier: &MemStats) -> MemStats {
        MemStats {
            l1d_accesses: self.l1d_accesses - earlier.l1d_accesses,
            l1d_misses: self.l1d_misses - earlier.l1d_misses,
            l1i_accesses: self.l1i_accesses - earlier.l1i_accesses,
            l1i_misses: self.l1i_misses - earlier.l1i_misses,
            l2_accesses: self.l2_accesses - earlier.l2_accesses,
            l2_misses: self.l2_misses - earlier.l2_misses,
            llc_accesses: self.llc_accesses - earlier.llc_accesses,
            llc_misses: self.llc_misses - earlier.llc_misses,
            dram_reads: self.dram_reads - earlier.dram_reads,
            dram_writes: self.dram_writes - earlier.dram_writes,
            dram_row_hits: self.dram_row_hits - earlier.dram_row_hits,
            writebacks: self.writebacks - earlier.writebacks,
            bank_conflict_cycles: self.bank_conflict_cycles - earlier.bank_conflict_cycles,
            mshr_stall_cycles: self.mshr_stall_cycles - earlier.mshr_stall_cycles,
            prefetches: self.prefetches - earlier.prefetches,
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominator() {
        let s = MemStats::default();
        assert_eq!(s.l1d_miss_rate(), 0.0);
        assert_eq!(s.row_hit_rate(), 0.0);
    }

    #[test]
    fn delta_subtracts() {
        let a = MemStats { l1d_accesses: 10, l1d_misses: 2, ..Default::default() };
        let b = MemStats { l1d_accesses: 25, l1d_misses: 5, ..Default::default() };
        let d = b.delta(&a);
        assert_eq!(d.l1d_accesses, 15);
        assert_eq!(d.l1d_misses, 3);
        assert!((d.l1d_miss_rate() - 0.2).abs() < 1e-12);
    }
}

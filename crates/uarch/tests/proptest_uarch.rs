//! Property tests for the timing cores: monotone clocks, IPC bounds,
//! and predictor sanity over random micro-op streams.

use bsim_mem::{BusConfig, CacheConfig, DramConfig, HierarchyConfig, MemoryHierarchy};
use bsim_uarch::{InOrderConfig, InOrderCore, MicroOp, OooConfig, OooCore, TimingCore};
use proptest::prelude::*;

fn mem(cores: usize) -> MemoryHierarchy {
    MemoryHierarchy::new(HierarchyConfig {
        cores,
        l1i: CacheConfig {
            sets: 64,
            ways: 8,
            line_bytes: 64,
            banks: 1,
            hit_latency: 1,
            mshrs: 2,
        },
        l1d: CacheConfig {
            sets: 64,
            ways: 8,
            line_bytes: 64,
            banks: 2,
            hit_latency: 2,
            mshrs: 4,
        },
        l2: CacheConfig {
            sets: 512,
            ways: 8,
            line_bytes: 64,
            banks: 2,
            hit_latency: 12,
            mshrs: 8,
        },
        bus: BusConfig {
            width_bits: 64,
            latency: 4,
        },
        llc: None,
        dram: DramConfig::ddr3_2000(1),
        core_freq_ghz: 1.6,
        l1_to_l2_latency: 2,
        prefetch_degree: 0,
    })
}

/// A random but decodable micro-op stream: ALU ops, loads, stores and
/// branches over a bounded address space and register set.
fn uop_stream() -> impl Strategy<Value = Vec<MicroOp>> {
    prop::collection::vec((0u8..4, 0u64..(1 << 20), any::<bool>(), 0u8..8), 1..400).prop_map(
        |spec| {
            spec.into_iter()
                .enumerate()
                .map(|(i, (kind, addr, flag, reg))| {
                    let pc = 0x1_0000 + 4 * (i as u64 % 64);
                    match kind {
                        0 => MicroOp::alu(pc, Some(8 + reg), [flag.then_some(8 + reg), None, None]),
                        1 => MicroOp::load(pc, addr, Some(8 + reg), None),
                        2 => MicroOp::store(pc, addr, [Some(8 + reg), None, None]),
                        _ => MicroOp::cond_branch(pc, flag, 0x1_0000, [None; 3]),
                    }
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn inorder_clock_is_monotone_and_bounded(uops in uop_stream()) {
        let mut core = InOrderCore::new(InOrderConfig::rocket());
        let mut m = mem(1);
        let mut last = 0;
        for u in &uops {
            core.consume(u, &mut m, 0);
            prop_assert!(core.cycles() >= last, "clock went backwards");
            last = core.cycles();
        }
        let total = core.finish();
        prop_assert!(total >= uops.len() as u64 / 2, "single-issue cannot do > 1 IPC overall");
        prop_assert_eq!(core.retired(), uops.len() as u64);
    }

    #[test]
    fn ooo_retires_everything_in_finite_time(uops in uop_stream()) {
        let mut core = OooCore::new(OooConfig::large_boom());
        let mut m = mem(1);
        for u in &uops {
            core.consume(u, &mut m, 0);
        }
        let total = core.finish();
        prop_assert_eq!(core.retired(), uops.len() as u64);
        // Generous upper bound: nothing should cost > 10k cycles per uop.
        prop_assert!(total < 10_000 * uops.len() as u64 + 10_000);
        let s = core.stats();
        prop_assert!(s.mispredicts <= s.branches + uops.len() as u64);
    }

    #[test]
    fn wide_machine_never_slower_than_narrow(uops in uop_stream()) {
        let run = |cfg: OooConfig| {
            let mut core = OooCore::new(cfg);
            let mut m = mem(1);
            for u in &uops {
                core.consume(u, &mut m, 0);
            }
            core.finish()
        };
        let small = run(OooConfig::small_boom());
        let large = run(OooConfig::large_boom());
        // Allow a small tolerance: predictors differ in table sizes only.
        prop_assert!(
            large as f64 <= small as f64 * 1.10,
            "Large BOOM ({large}) must not lose to Small BOOM ({small})"
        );
    }

    #[test]
    fn same_stream_same_cycles(uops in uop_stream()) {
        let run = || {
            let mut core = InOrderCore::new(InOrderConfig::spacemit_k1());
            let mut m = mem(1);
            for u in &uops {
                core.consume(u, &mut m, 0);
            }
            core.finish()
        };
        prop_assert_eq!(run(), run(), "timing must be deterministic");
    }
}

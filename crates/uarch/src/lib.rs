//! # bsim-uarch — cycle-level core timing models
//!
//! The two core microarchitectures the paper instantiates in FireSim,
//! plus the knobs needed to model the silicon they are compared against:
//!
//! * [`InOrderCore`] — a parameterised in-order pipeline in the style of
//!   Rocket (5-stage, single-issue) that also models the Banana Pi's
//!   SpacemiT K1 cores when configured as dual-issue with an 8-stage
//!   pipeline (Table 5's two columns),
//! * [`OooCore`] — a parameterised out-of-order window model in the style
//!   of BOOM (fetch buffer, ROB, issue queues, load/store queues, TAGE
//!   branch prediction) covering Small/Medium/Large BOOM and the SG2042
//!   cores of the MILK-V Pioneer (Table 4's BOOM rows).
//!
//! Both consume a stream of [`MicroOp`]s. Micro-ops come from two
//! frontends: the functional RV64 interpreter in `bsim-isa` (used by the
//! MicroBench suite) and the trace generators in `bsim-workloads` (used
//! by NPB/UME/LAMMPS); the timing model cannot tell them apart.
//!
//! The models are *one-pass*: each micro-op is folded into the pipeline
//! state in program order and the clock advances monotonically. This
//! captures the first-order effects the paper tunes for — issue width,
//! pipeline depth, ROB/LSQ capacity, cache/DRAM latency and bandwidth,
//! branch prediction — at simulation speeds high enough to run the full
//! benchmark matrix in minutes.

pub mod inorder;
pub mod latency;
pub mod ooo;
pub mod predictor;
pub mod stats;
pub mod tlb;
pub mod uop;

pub use inorder::{InOrderConfig, InOrderCore};
pub use latency::OpLatencies;
pub use ooo::{OooConfig, OooCore};
pub use predictor::{BoomPredictor, BranchPredictor, RocketPredictor};
pub use stats::CoreStats;
pub use tlb::{Tlb, TlbConfig};
pub use uop::{BranchClass, MicroOp};

use bsim_mem::MemoryHierarchy;

/// A timing core: consumes micro-ops, owns a cycle counter.
pub trait TimingCore {
    /// Folds one micro-op into the pipeline model. `mem` is the shared
    /// SoC memory hierarchy, `core_id` this core's index in it.
    fn consume(&mut self, uop: &MicroOp, mem: &mut MemoryHierarchy, core_id: usize);

    /// Drains in-flight state (stores, ROB) and returns the final cycle.
    fn finish(&mut self) -> u64;

    /// Current cycle count.
    fn cycles(&self) -> u64;

    /// Retired micro-op count.
    fn retired(&self) -> u64;

    /// Detailed statistics.
    fn stats(&self) -> CoreStats;

    /// Advances the local clock to at least `cycle` (used by the MPI layer
    /// to charge communication wait time to a core).
    fn advance_to(&mut self, cycle: u64);
}

//! Per-core timing statistics.

use bsim_telemetry::CounterBlock;
use serde::{Deserialize, Serialize};

/// Counters accumulated by a timing core.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Total cycles.
    pub cycles: u64,
    /// Retired micro-ops.
    pub retired: u64,
    /// Conditional branches seen.
    pub branches: u64,
    /// Mispredicted control-flow ops (any class).
    pub mispredicts: u64,
    /// Cycles the front-end was stalled on instruction fetch.
    pub fetch_stall_cycles: u64,
    /// Cycles lost waiting on operands (scoreboard / IQ wait).
    pub data_stall_cycles: u64,
    /// Cycles lost waiting for structural resources (ROB/LSQ/store buffer).
    pub structural_stall_cycles: u64,
    /// Extra cycles paid to the TLB.
    pub tlb_stall_cycles: u64,
    /// Loads issued.
    pub loads: u64,
    /// Stores issued.
    pub stores: u64,
    /// Control-flow ops that consulted the branch predictor (any class).
    pub branch_lookups: u64,
    /// Cache lines brought in by the front end (L1I line crossings).
    pub fetch_lines: u64,
    /// ROB occupancy high-water mark (0 on in-order cores).
    pub rob_high_water: u64,
    /// Load/store-queue (or store-buffer) occupancy high-water mark.
    pub lsq_high_water: u64,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate over conditional branches.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Publishes every counter into `block` under `prefix` (e.g. `tile0`).
    pub fn publish(&self, prefix: &str, block: &mut CounterBlock) {
        let mut put = |name: &str, v: u64| block.set_named(&format!("{prefix}.{name}"), v);
        put("cycles", self.cycles);
        put("retired", self.retired);
        put("branch.lookups", self.branch_lookups);
        put("branch.conditional", self.branches);
        put("branch.mispredicts", self.mispredicts);
        put("fetch.lines", self.fetch_lines);
        put("fetch.stall_cycles", self.fetch_stall_cycles);
        put("stall.data_cycles", self.data_stall_cycles);
        put("stall.structural_cycles", self.structural_stall_cycles);
        put("stall.tlb_cycles", self.tlb_stall_cycles);
        put("lsu.loads", self.loads);
        put("lsu.stores", self.stores);
        put("rob.high_water", self.rob_high_water);
        put("lsq.high_water", self.lsq_high_water);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero() {
        assert_eq!(CoreStats::default().ipc(), 0.0);
        let s = CoreStats {
            cycles: 100,
            retired: 150,
            ..Default::default()
        };
        assert!((s.ipc() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn publish_prefixes_every_counter() {
        let s = CoreStats {
            cycles: 100,
            retired: 150,
            mispredicts: 7,
            ..Default::default()
        };
        let mut block = CounterBlock::new(true);
        s.publish("tile3", &mut block);
        assert_eq!(block.get("tile3.cycles"), Some(100));
        assert_eq!(block.get("tile3.branch.mispredicts"), Some(7));
        assert_eq!(block.get("tile3.rob.high_water"), Some(0));
    }
}

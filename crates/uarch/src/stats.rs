//! Per-core timing statistics.

use serde::{Deserialize, Serialize};

/// Counters accumulated by a timing core.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Total cycles.
    pub cycles: u64,
    /// Retired micro-ops.
    pub retired: u64,
    /// Conditional branches seen.
    pub branches: u64,
    /// Mispredicted control-flow ops (any class).
    pub mispredicts: u64,
    /// Cycles the front-end was stalled on instruction fetch.
    pub fetch_stall_cycles: u64,
    /// Cycles lost waiting on operands (scoreboard / IQ wait).
    pub data_stall_cycles: u64,
    /// Cycles lost waiting for structural resources (ROB/LSQ/store buffer).
    pub structural_stall_cycles: u64,
    /// Extra cycles paid to the TLB.
    pub tlb_stall_cycles: u64,
    /// Loads issued.
    pub loads: u64,
    /// Stores issued.
    pub stores: u64,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate over conditional branches.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero() {
        assert_eq!(CoreStats::default().ipc(), 0.0);
        let s = CoreStats { cycles: 100, retired: 150, ..Default::default() };
        assert!((s.ipc() - 1.5).abs() < 1e-12);
    }
}

//! Branch predictors.
//!
//! Table 5: the Rocket-based Banana Pi model uses "BTB, BHT, RAS branch
//! predictors"; the BOOM-based MILK-V model uses a "TAGE-L branch
//! predictor" with 16 outstanding branches. Both are modeled here at the
//! fidelity the timing cores need: *was this prediction correct?*
//!
//! * [`RocketPredictor`] — BTB (direction+target for taken branches),
//!   gshare-flavoured BHT of 2-bit counters, and a return-address stack.
//! * [`BoomPredictor`] — TAGE-lite: a bimodal base table plus several
//!   tagged tables indexed by geometrically longer global histories,
//!   with a RAS and a simple indirect-target table.

use crate::uop::BranchClass;

/// A branch predictor answering "did the front-end predict this branch
/// correctly?" and updating its state with the actual outcome.
pub trait BranchPredictor {
    /// Observes one control-flow micro-op; returns `true` if the
    /// prediction (direction *and* target) was correct.
    fn predict_and_update(&mut self, pc: u64, class: BranchClass, taken: bool, target: u64)
        -> bool;
}

#[inline]
fn ctr_update(ctr: &mut u8, taken: bool) {
    if taken {
        *ctr = (*ctr + 1).min(3);
    } else {
        *ctr = ctr.saturating_sub(1);
    }
}

/// Simple return-address stack.
#[derive(Clone, Debug)]
struct Ras {
    stack: Vec<u64>,
    depth: usize,
}

impl Ras {
    fn new(depth: usize) -> Ras {
        Ras {
            stack: Vec::with_capacity(depth),
            depth,
        }
    }
    fn push(&mut self, ret: u64) {
        if self.stack.len() == self.depth {
            self.stack.remove(0);
        }
        self.stack.push(ret);
    }
    fn pop(&mut self) -> Option<u64> {
        self.stack.pop()
    }
}

/// Rocket-style BTB + BHT + RAS.
pub struct RocketPredictor {
    bht: Vec<u8>,
    btb_tag: Vec<u64>,
    btb_target: Vec<u64>,
    ras: Ras,
    history: u64,
    hist_bits: u32,
}

impl RocketPredictor {
    /// Rocket defaults: 512-entry BHT, 28-entry BTB (rounded to 32 here),
    /// 6-entry RAS.
    pub fn new() -> RocketPredictor {
        RocketPredictor::with_sizes(512, 32, 6, 7)
    }

    /// Fully parameterised constructor (`bht`/`btb` powers of two).
    pub fn with_sizes(bht: usize, btb: usize, ras: usize, hist_bits: u32) -> RocketPredictor {
        assert!(bht.is_power_of_two() && btb.is_power_of_two());
        RocketPredictor {
            bht: vec![1; bht], // weakly not-taken
            btb_tag: vec![u64::MAX; btb],
            btb_target: vec![0; btb],
            ras: Ras::new(ras),
            history: 0,
            hist_bits,
        }
    }

    fn bht_index(&self, pc: u64) -> usize {
        let h = self.history & ((1 << self.hist_bits) - 1);
        (((pc >> 2) ^ h) as usize) & (self.bht.len() - 1)
    }

    fn btb_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.btb_tag.len() - 1)
    }
}

impl Default for RocketPredictor {
    fn default() -> Self {
        RocketPredictor::new()
    }
}

impl BranchPredictor for RocketPredictor {
    fn predict_and_update(
        &mut self,
        pc: u64,
        class: BranchClass,
        taken: bool,
        target: u64,
    ) -> bool {
        match class {
            BranchClass::Conditional => {
                let bi = self.bht_index(pc);
                let pred_taken = self.bht[bi] >= 2;
                ctr_update(&mut self.bht[bi], taken);
                self.history = (self.history << 1) | taken as u64;
                // Direction correct; if predicted taken we also need the
                // BTB to hold the right target.
                let ti = self.btb_index(pc);
                let target_known = self.btb_tag[ti] == pc && self.btb_target[ti] == target;
                if taken {
                    self.btb_tag[ti] = pc;
                    self.btb_target[ti] = target;
                }
                pred_taken == taken && (!taken || target_known)
            }
            BranchClass::Direct => {
                // JAL: target is computable in decode; BTB avoids even the
                // decode bubble but we treat it as always predicted.
                true
            }
            BranchClass::Call => {
                self.ras.push(pc.wrapping_add(4));
                let ti = self.btb_index(pc);
                let known = self.btb_tag[ti] == pc && self.btb_target[ti] == target;
                self.btb_tag[ti] = pc;
                self.btb_target[ti] = target;
                known
            }
            BranchClass::Return => self.ras.pop() == Some(target),
            BranchClass::Indirect => {
                let ti = self.btb_index(pc);
                let known = self.btb_tag[ti] == pc && self.btb_target[ti] == target;
                self.btb_tag[ti] = pc;
                self.btb_target[ti] = target;
                known
            }
        }
    }
}

/// One tagged TAGE table.
struct TageTable {
    tags: Vec<u16>,
    ctrs: Vec<u8>, // 0..=7, taken if >= 4
    useful: Vec<u8>,
    hist_bits: u32,
}

impl TageTable {
    fn new(entries: usize, hist_bits: u32) -> TageTable {
        TageTable {
            tags: vec![u16::MAX; entries],
            ctrs: vec![3; entries],
            useful: vec![0; entries],
            hist_bits,
        }
    }

    fn index(&self, pc: u64, hist: u64) -> usize {
        let h = fold(hist, self.hist_bits, self.tags.len().trailing_zeros());
        (((pc >> 2) ^ h) as usize) & (self.tags.len() - 1)
    }

    fn tag(&self, pc: u64, hist: u64) -> u16 {
        let h = fold(hist, self.hist_bits, 9);
        (((pc >> 2) ^ (pc >> 11) ^ h) & 0x1FF) as u16
    }
}

fn fold(hist: u64, bits: u32, out_bits: u32) -> u64 {
    let h = hist & ((1u64 << bits.min(63)) - 1);
    let mut folded = 0;
    let mut rest = h;
    while rest != 0 {
        folded ^= rest & ((1 << out_bits) - 1);
        rest >>= out_bits;
    }
    folded
}

/// BOOM-style TAGE-lite predictor.
pub struct BoomPredictor {
    base: Vec<u8>,
    tables: Vec<TageTable>,
    history: u64,
    ras: Ras,
    indirect: Vec<(u64, u64)>, // (pc tag, target)
}

impl BoomPredictor {
    /// TAGE-L-flavoured defaults: 4 KiB bimodal base and four 512-entry
    /// tagged tables with history lengths 5/13/31/62.
    pub fn new() -> BoomPredictor {
        BoomPredictor {
            base: vec![1; 4096],
            tables: [5u32, 13, 31, 62]
                .iter()
                .map(|&h| TageTable::new(512, h))
                .collect(),
            history: 0,
            ras: Ras::new(32),
            indirect: vec![(u64::MAX, 0); 256],
        }
    }

    fn predict_dir(&self, pc: u64) -> (bool, Option<usize>, usize) {
        // Longest-history tagged hit wins; fall back to bimodal.
        for (ti, t) in self.tables.iter().enumerate().rev() {
            let i = t.index(pc, self.history);
            if t.tags[i] == t.tag(pc, self.history) {
                return (t.ctrs[i] >= 4, Some(ti), i);
            }
        }
        let bi = ((pc >> 2) as usize) & (self.base.len() - 1);
        (self.base[bi] >= 2, None, bi)
    }

    fn update_dir(
        &mut self,
        pc: u64,
        provider: Option<usize>,
        idx: usize,
        taken: bool,
        correct: bool,
    ) {
        match provider {
            Some(ti) => {
                let c = &mut self.tables[ti].ctrs[idx];
                if taken {
                    *c = (*c + 1).min(7);
                } else {
                    *c = c.saturating_sub(1);
                }
                let u = &mut self.tables[ti].useful[idx];
                if correct {
                    *u = (*u + 1).min(3);
                } else {
                    *u = u.saturating_sub(1);
                }
            }
            None => ctr_update(&mut self.base[idx], taken),
        }
        // On a misprediction, allocate in a longer table.
        if !correct {
            let start = provider.map(|p| p + 1).unwrap_or(0);
            for t in self.tables[start..].iter_mut() {
                let i = t.index(pc, self.history);
                if t.useful[i] == 0 {
                    t.tags[i] = t.tag(pc, self.history);
                    t.ctrs[i] = if taken { 4 } else { 3 };
                    break;
                }
            }
        }
    }
}

impl Default for BoomPredictor {
    fn default() -> Self {
        BoomPredictor::new()
    }
}

impl BranchPredictor for BoomPredictor {
    fn predict_and_update(
        &mut self,
        pc: u64,
        class: BranchClass,
        taken: bool,
        target: u64,
    ) -> bool {
        match class {
            BranchClass::Conditional => {
                let (pred, provider, idx) = self.predict_dir(pc);
                let correct = pred == taken;
                self.update_dir(pc, provider, idx, taken, correct);
                self.history = (self.history << 1) | taken as u64;
                correct
            }
            BranchClass::Direct => true,
            BranchClass::Call => {
                self.ras.push(pc.wrapping_add(4));
                true // BOOM's NLP/BTB resolves calls in the front-end
            }
            BranchClass::Return => self.ras.pop() == Some(target),
            BranchClass::Indirect => {
                let i = ((pc >> 2) as usize) & (self.indirect.len() - 1);
                let correct = self.indirect[i] == (pc, target);
                self.indirect[i] = (pc, target);
                correct
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accuracy<P: BranchPredictor>(p: &mut P, outcomes: &[bool]) -> f64 {
        let mut correct = 0;
        for &t in outcomes {
            if p.predict_and_update(0x1000, BranchClass::Conditional, t, 0x2000) {
                correct += 1;
            }
        }
        correct as f64 / outcomes.len() as f64
    }

    #[test]
    fn biased_branch_is_easy_for_both() {
        let outcomes: Vec<bool> = (0..1000).map(|_| true).collect();
        assert!(accuracy(&mut RocketPredictor::new(), &outcomes) > 0.95);
        assert!(accuracy(&mut BoomPredictor::new(), &outcomes) > 0.95);
    }

    #[test]
    fn alternating_branch_needs_history() {
        let outcomes: Vec<bool> = (0..2000).map(|i| i % 2 == 0).collect();
        // Both predictors track global history, so both should learn the
        // alternation; TAGE should be at least as good.
        let r = accuracy(&mut RocketPredictor::new(), &outcomes);
        let b = accuracy(&mut BoomPredictor::new(), &outcomes);
        assert!(r > 0.8, "rocket got {r}");
        assert!(b > 0.9, "boom got {b}");
    }

    #[test]
    fn random_branch_is_hard_for_both() {
        // xorshift-ish deterministic pseudo-random outcomes.
        let mut x = 0x12345678u64;
        let outcomes: Vec<bool> = (0..4000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x & 1 == 1
            })
            .collect();
        let r = accuracy(&mut RocketPredictor::new(), &outcomes);
        let b = accuracy(&mut BoomPredictor::new(), &outcomes);
        assert!(r < 0.8, "rocket should struggle on random, got {r}");
        assert!(b < 0.8, "boom should struggle on random, got {b}");
    }

    #[test]
    fn long_period_pattern_favours_tage() {
        // Period-7 pattern: needs longer history than a bimodal entry.
        let pat = [true, true, false, true, false, false, true];
        let outcomes: Vec<bool> = (0..7000).map(|i| pat[i % pat.len()]).collect();
        let r = accuracy(&mut RocketPredictor::new(), &outcomes);
        let b = accuracy(&mut BoomPredictor::new(), &outcomes);
        assert!(
            b > r,
            "TAGE ({b}) should beat gshare ({r}) on long patterns"
        );
        assert!(b > 0.9);
    }

    #[test]
    fn ras_predicts_matched_returns() {
        let mut p = RocketPredictor::new();
        // call from 0x100 -> return to 0x104.
        p.predict_and_update(0x100, BranchClass::Call, true, 0x1000);
        assert!(p.predict_and_update(0x1010, BranchClass::Return, true, 0x104));
        // Unbalanced return mispredicts.
        assert!(!p.predict_and_update(0x1010, BranchClass::Return, true, 0x104));
    }

    #[test]
    fn deep_recursion_overflows_ras() {
        let mut p = RocketPredictor::new(); // RAS depth 6
        for i in 0..10u64 {
            p.predict_and_update(0x100 + i * 8, BranchClass::Call, true, 0x1000);
        }
        let mut correct = 0;
        for i in (0..10u64).rev() {
            if p.predict_and_update(0x2000, BranchClass::Return, true, 0x104 + i * 8) {
                correct += 1;
            }
        }
        assert!(
            correct <= 6,
            "only the RAS depth can be predicted, got {correct}"
        );
        assert!(
            correct >= 5,
            "the top of the stack should predict, got {correct}"
        );
    }

    #[test]
    fn indirect_targets_learned_by_boom() {
        let mut p = BoomPredictor::new();
        assert!(!p.predict_and_update(0x500, BranchClass::Indirect, true, 0xAA00));
        assert!(p.predict_and_update(0x500, BranchClass::Indirect, true, 0xAA00));
        // Target change mispredicts once.
        assert!(!p.predict_and_update(0x500, BranchClass::Indirect, true, 0xBB00));
        assert!(p.predict_and_update(0x500, BranchClass::Indirect, true, 0xBB00));
    }
}

//! The micro-op abstraction shared by both timing cores.
//!
//! A [`MicroOp`] is everything a timing model needs to know about one
//! dynamic instruction: its class (functional unit + latency), its
//! register dependences (unified 0–63 numbering: x1–x31 are 1–31,
//! f0–f31 are 32–63), its effective address if it touches memory, and
//! its control-flow outcome if it redirects the PC.

use bsim_isa::{Inst, OpClass, Retired};

/// Control-flow classification, used by the branch predictors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BranchClass {
    /// Conditional branch (BEQ/BNE/...).
    Conditional,
    /// Direct unconditional jump (JAL with rd=x0).
    Direct,
    /// Function call (JAL/JALR writing ra).
    Call,
    /// Function return (JALR through ra).
    Return,
    /// Other indirect jump (JALR).
    Indirect,
}

/// One dynamic micro-op.
#[derive(Clone, Copy, Debug)]
pub struct MicroOp {
    /// PC of the instruction (0 for trace-generated ops; the trace
    /// frontend synthesizes distinct PCs when control flow matters).
    pub pc: u64,
    /// Address of the next dynamic instruction.
    pub next_pc: u64,
    /// Operation class.
    pub class: OpClass,
    /// Destination register in unified numbering.
    pub dest: Option<u8>,
    /// Source registers in unified numbering.
    pub srcs: [Option<u8>; 3],
    /// Effective address, for loads and stores.
    pub mem_addr: Option<u64>,
    /// True when the memory access is a store.
    pub is_store: bool,
    /// Control-flow info: class and whether a conditional was taken.
    pub branch: Option<(BranchClass, bool)>,
}

impl MicroOp {
    /// Builds a micro-op from a functionally retired instruction.
    pub fn from_retired(r: &Retired) -> MicroOp {
        let class = r.inst.class();
        let branch = match r.inst {
            Inst::Branch { .. } => Some((BranchClass::Conditional, r.taken)),
            Inst::Jal { rd, .. } => {
                if rd.num() == 1 {
                    Some((BranchClass::Call, true))
                } else {
                    Some((BranchClass::Direct, true))
                }
            }
            Inst::Jalr { rd, rs1, .. } => {
                if rd.num() == 1 {
                    Some((BranchClass::Call, true))
                } else if rs1.num() == 1 {
                    Some((BranchClass::Return, true))
                } else {
                    Some((BranchClass::Indirect, true))
                }
            }
            _ => None,
        };
        MicroOp {
            pc: r.pc,
            next_pc: r.next_pc,
            class,
            dest: r.inst.dest(),
            srcs: r.inst.sources(),
            mem_addr: r.mem_addr,
            is_store: r.is_store,
            branch,
        }
    }

    /// A plain ALU op with explicit dependences (trace frontend helper).
    pub fn alu(pc: u64, dest: Option<u8>, srcs: [Option<u8>; 3]) -> MicroOp {
        MicroOp {
            pc,
            next_pc: pc + 4,
            class: OpClass::IntAlu,
            dest,
            srcs,
            mem_addr: None,
            is_store: false,
            branch: None,
        }
    }

    /// A load micro-op (trace frontend helper).
    pub fn load(pc: u64, addr: u64, dest: Option<u8>, src: Option<u8>) -> MicroOp {
        MicroOp {
            pc,
            next_pc: pc + 4,
            class: OpClass::Load,
            dest,
            srcs: [src, None, None],
            mem_addr: Some(addr),
            is_store: false,
            branch: None,
        }
    }

    /// A store micro-op (trace frontend helper).
    pub fn store(pc: u64, addr: u64, srcs: [Option<u8>; 3]) -> MicroOp {
        MicroOp {
            pc,
            next_pc: pc + 4,
            class: OpClass::Store,
            dest: None,
            srcs,
            mem_addr: Some(addr),
            is_store: true,
            branch: None,
        }
    }

    /// A conditional-branch micro-op (trace frontend helper).
    pub fn cond_branch(pc: u64, taken: bool, target: u64, srcs: [Option<u8>; 3]) -> MicroOp {
        MicroOp {
            pc,
            next_pc: if taken { target } else { pc + 4 },
            class: OpClass::Branch,
            dest: None,
            srcs,
            mem_addr: None,
            is_store: false,
            branch: Some((BranchClass::Conditional, taken)),
        }
    }

    /// True for loads and stores.
    pub fn is_mem(&self) -> bool {
        self.mem_addr.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsim_isa::{Asm, Cpu, RunResult};

    fn trace(a: &Asm) -> Vec<MicroOp> {
        let p = a.assemble().unwrap();
        let mut cpu = Cpu::new(&p);
        let mut uops = Vec::new();
        let r = cpu.run_traced(100_000, |ret| uops.push(MicroOp::from_retired(ret)));
        assert!(matches!(r, RunResult::Exited(_)));
        uops
    }

    #[test]
    fn call_and_return_classified() {
        use bsim_isa::reg::*;
        let mut a = Asm::new();
        bsim_isa::asm::with_stack(&mut a);
        a.call("f");
        a.exit(0);
        a.label("f");
        a.ret();
        let uops = trace(&a);
        let calls: Vec<_> = uops.iter().filter_map(|u| u.branch).collect();
        assert!(calls.contains(&(BranchClass::Call, true)));
        assert!(calls.contains(&(BranchClass::Return, true)));
        let _ = (ZERO, RA); // silence unused imports in some cfgs
    }

    #[test]
    fn conditional_taken_flag_propagates() {
        use bsim_isa::reg::*;
        let mut a = Asm::new();
        a.li(T0, 0).li(T1, 3);
        a.label("loop");
        a.addi(T0, T0, 1);
        a.blt(T0, T1, "loop");
        a.exit(0);
        let uops = trace(&a);
        let branches: Vec<bool> = uops
            .iter()
            .filter(|u| matches!(u.branch, Some((BranchClass::Conditional, _))))
            .map(|u| u.branch.unwrap().1)
            .collect();
        assert_eq!(branches, vec![true, true, false]);
    }

    #[test]
    fn loads_carry_addresses() {
        use bsim_isa::reg::*;
        let mut a = Asm::new();
        let addr = a.data_u64(5);
        a.li(T0, addr as i64);
        a.ld(T1, 0, T0);
        a.exit(0);
        let uops = trace(&a);
        let ld = uops.iter().find(|u| u.is_mem()).unwrap();
        assert_eq!(ld.mem_addr, Some(addr));
        assert!(!ld.is_store);
        assert_eq!(ld.dest, Some(T1.num()));
    }

    #[test]
    fn trace_helpers_build_consistent_uops() {
        let b = MicroOp::cond_branch(0x100, true, 0x80, [Some(5), None, None]);
        assert_eq!(b.next_pc, 0x80);
        let b2 = MicroOp::cond_branch(0x100, false, 0x80, [None; 3]);
        assert_eq!(b2.next_pc, 0x104);
        let s = MicroOp::store(0, 0xFF, [Some(1), Some(2), None]);
        assert!(s.is_store && s.is_mem());
    }
}

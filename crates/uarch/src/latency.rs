//! Functional-unit latencies.

use bsim_isa::OpClass;
use serde::{Deserialize, Serialize};

/// Execution latency (issue → result ready) per operation class, cycles.
///
/// Defaults follow the published Rocket/BOOM numbers: pipelined 3-cycle
/// integer multiply, iterative ~64-cycle divide, 4-cycle FMA pipeline,
/// iterative FP divide. `fsin` stands in for a software `sin()` call
/// (~50–80 instructions of polynomial evaluation on these cores).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpLatencies {
    /// Integer ALU.
    pub int_alu: u32,
    /// Integer multiply (pipelined).
    pub int_mul: u32,
    /// Integer divide (unpipelined).
    pub int_div: u32,
    /// FP add/compare/convert/move.
    pub fp_alu: u32,
    /// FP multiply / FMA (pipelined).
    pub fp_mul: u32,
    /// FP divide / sqrt (unpipelined).
    pub fp_div: u32,
    /// Transcendental stand-in (unpipelined).
    pub fp_transcendental: u32,
}

impl OpLatencies {
    /// Rocket-like defaults.
    pub fn rocket() -> OpLatencies {
        OpLatencies {
            int_alu: 1,
            int_mul: 4,
            int_div: 34,
            fp_alu: 4,
            fp_mul: 4,
            fp_div: 22,
            fp_transcendental: 70,
        }
    }

    /// BOOM-like defaults (shorter FP pipes, faster divider).
    pub fn boom() -> OpLatencies {
        OpLatencies {
            int_alu: 1,
            int_mul: 3,
            int_div: 20,
            fp_alu: 3,
            fp_mul: 4,
            fp_div: 15,
            fp_transcendental: 55,
        }
    }

    /// Latency for `class` (memory classes return 0 — the hierarchy is
    /// authoritative for those; control flow executes in the ALU).
    pub fn of(&self, class: OpClass) -> u32 {
        match class {
            OpClass::IntAlu | OpClass::Branch | OpClass::Jump | OpClass::System => self.int_alu,
            OpClass::IntMul => self.int_mul,
            OpClass::IntDiv => self.int_div,
            OpClass::FpAlu => self.fp_alu,
            OpClass::FpMul => self.fp_mul,
            OpClass::FpDiv => self.fp_div,
            OpClass::FpTranscendental => self.fp_transcendental,
            OpClass::Load | OpClass::Store => 0,
        }
    }

    /// True when the unit blocks until the result is produced.
    pub fn unpipelined(class: OpClass) -> bool {
        matches!(
            class,
            OpClass::IntDiv | OpClass::FpDiv | OpClass::FpTranscendental
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn div_slower_than_mul() {
        let l = OpLatencies::rocket();
        assert!(l.of(OpClass::IntDiv) > l.of(OpClass::IntMul));
        assert!(l.of(OpClass::FpDiv) > l.of(OpClass::FpMul));
    }

    #[test]
    fn unpipelined_classes() {
        assert!(OpLatencies::unpipelined(OpClass::IntDiv));
        assert!(OpLatencies::unpipelined(OpClass::FpTranscendental));
        assert!(!OpLatencies::unpipelined(OpClass::IntMul));
    }

    #[test]
    fn boom_div_faster_than_rocket() {
        assert!(OpLatencies::boom().int_div < OpLatencies::rocket().int_div);
    }
}

//! In-order pipeline timing model (Rocket-like).
//!
//! Covers both in-order machines in the paper:
//!
//! * the FireSim **Rocket** target — 5-stage, single-issue (Table 5:
//!   "Single Issue", fetch 2 / decode 1),
//! * the Banana Pi's **SpacemiT K1** cores — 8-stage, dual-issue; the
//!   paper could not express dual issue in FireSim and approximated it by
//!   doubling the clock (the "Fast Banana Pi Sim Model"), while we can
//!   model it directly for the hardware reference.
//!
//! The model is a scoreboarded in-order issue machine: instructions
//! issue in program order, at most `issue_width` per cycle, stalling on
//! operand readiness (load-use interlocks), unpipelined units (divider),
//! a finite store buffer, instruction-cache misses and branch
//! mispredictions (penalty scales with pipeline depth).

use crate::latency::OpLatencies;
use crate::predictor::{BranchPredictor, RocketPredictor};
use crate::stats::CoreStats;
use crate::tlb::{Tlb, TlbConfig};
use crate::uop::MicroOp;
use crate::TimingCore;
use bsim_isa::OpClass;
use bsim_mem::{AccessKind, MemoryHierarchy};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// In-order core parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InOrderConfig {
    /// Instructions issued per cycle (Rocket: 1, SpacemiT K1: 2).
    pub issue_width: u32,
    /// Front-end fetch width (Table 4: Rocket fetch 2).
    pub fetch_width: u32,
    /// Pipeline depth (Rocket: 5, K1: 8) — sets the mispredict penalty.
    pub pipeline_depth: u32,
    /// Functional-unit latencies.
    pub latencies: OpLatencies,
    /// Store buffer entries (stores retire into it and drain in background).
    pub store_buffer: u32,
    /// TLB configuration.
    pub tlb: TlbConfig,
}

impl InOrderConfig {
    /// FireSim's Rocket core as configured in Table 4/5.
    pub fn rocket() -> InOrderConfig {
        InOrderConfig {
            issue_width: 1,
            fetch_width: 2,
            pipeline_depth: 5,
            latencies: OpLatencies::rocket(),
            store_buffer: 2,
            tlb: TlbConfig::rocket(),
        }
    }

    /// The Banana Pi's SpacemiT K1 core (hardware reference): dual-issue,
    /// 8-stage, with a deeper store buffer.
    pub fn spacemit_k1() -> InOrderConfig {
        InOrderConfig {
            issue_width: 2,
            fetch_width: 4,
            pipeline_depth: 8,
            latencies: OpLatencies::rocket(),
            store_buffer: 8,
            tlb: TlbConfig::rocket(),
        }
    }

    /// Branch misprediction penalty: flush back to fetch.
    pub fn mispredict_penalty(&self) -> u64 {
        (self.pipeline_depth.saturating_sub(2)).max(1) as u64
    }
}

/// The in-order timing core.
pub struct InOrderCore {
    cfg: InOrderConfig,
    cycle: u64,
    issued_this_cycle: u32,
    reg_ready: [u64; 64],
    /// Outstanding store completion times, earliest first — admission
    /// needs only the front, so drains are O(log n) pops instead of a
    /// full `retain` + `min` scan per store.
    store_buffer: BinaryHeap<Reverse<u64>>,
    unpipelined_free: u64,
    predictor: RocketPredictor,
    tlb: Tlb,
    cur_fetch_line: u64,
    refetch: bool,
    stats: CoreStats,
    l1i_hit_latency: u64,
    /// Host-side fast-forward accounting: intermediate cycles covered by
    /// bulk `stall_to` clock jumps rather than being stepped one by one.
    ff_skipped_cycles: u64,
    /// Contiguous multi-cycle jumps that produced those skips.
    ff_spans: u64,
}

const LINE_MASK: u64 = !63;

impl InOrderCore {
    /// Builds an idle core.
    pub fn new(cfg: InOrderConfig) -> InOrderCore {
        InOrderCore {
            tlb: Tlb::new(cfg.tlb),
            predictor: RocketPredictor::new(),
            cfg,
            cycle: 0,
            issued_this_cycle: 0,
            reg_ready: [0; 64],
            store_buffer: BinaryHeap::new(),
            unpipelined_free: 0,
            cur_fetch_line: u64::MAX,
            refetch: true,
            stats: CoreStats::default(),
            l1i_hit_latency: 1,
            ff_skipped_cycles: 0,
            ff_spans: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &InOrderConfig {
        &self.cfg
    }

    /// Fast-forward accounting: `(skipped_cycles, spans)` — target
    /// cycles the core's clock jumped over in bulk (stall resolution)
    /// instead of stepping, and how many such jumps happened. Feeds
    /// `host.engine.skipped_cycles` in the SoC telemetry.
    pub fn ff_stats(&self) -> (u64, u64) {
        (self.ff_skipped_cycles, self.ff_spans)
    }

    /// Quiescence hint in `TickModel::next_activity` terms: the
    /// earliest future cycle at which an already-issued
    /// operation completes (store-buffer drain or an unpipelined unit
    /// freeing). `None` when nothing is in flight — absent new work the
    /// core is fully idle.
    pub fn next_activity(&self) -> Option<u64> {
        let drain = self.store_buffer.peek().map(|&Reverse(c)| c);
        let unpiped = (self.unpipelined_free > self.cycle).then_some(self.unpipelined_free);
        match (drain.filter(|&c| c > self.cycle), unpiped) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn new_issue_cycle(&mut self) {
        self.cycle += 1;
        self.issued_this_cycle = 0;
    }

    fn stall_to(&mut self, t: u64) -> u64 {
        let d = t.saturating_sub(self.cycle);
        if d > 0 {
            self.cycle = t;
            self.issued_this_cycle = 0;
            // A d-cycle jump steps one cycle and skips d-1 quiescent ones.
            if d > 1 {
                self.ff_skipped_cycles += d - 1;
                self.ff_spans += 1;
            }
        }
        d
    }
}

impl TimingCore for InOrderCore {
    fn consume(&mut self, uop: &MicroOp, mem: &mut MemoryHierarchy, core_id: usize) {
        // ---- fetch ---------------------------------------------------
        let line = uop.pc & LINE_MASK;
        if line != self.cur_fetch_line || self.refetch {
            let out = mem.access(core_id, uop.pc, AccessKind::Ifetch, self.cycle);
            let extra = out
                .complete_at
                .saturating_sub(self.cycle + self.l1i_hit_latency);
            if extra > 0 {
                if std::env::var_os("BSIM_DEBUG_FETCH").is_some() && extra > 1000 {
                    eprintln!(
                        "ifetch stall: pc={:#x} cycle={} complete={} extra={}",
                        uop.pc, self.cycle, out.complete_at, extra
                    );
                }
                self.stats.fetch_stall_cycles += extra;
                self.stall_to(self.cycle + extra);
            }
            self.cur_fetch_line = line;
            self.refetch = false;
            self.stats.fetch_lines += 1;
        }

        // ---- issue slot ----------------------------------------------
        if self.issued_this_cycle >= self.cfg.issue_width {
            self.new_issue_cycle();
        }

        // ---- operand readiness (scoreboard interlock) -------------------
        let ready = uop
            .srcs
            .iter()
            .flatten()
            .map(|&r| self.reg_ready[r as usize])
            .max()
            .unwrap_or(0);
        self.stats.data_stall_cycles += self.stall_to(ready);

        // ---- unpipelined units -----------------------------------------
        if OpLatencies::unpipelined(uop.class) {
            let d = self.stall_to(self.unpipelined_free);
            self.stats.structural_stall_cycles += d;
        }

        let issue = self.cycle;
        let latency = self.cfg.latencies.of(uop.class) as u64;

        // ---- execute -----------------------------------------------------
        match uop.class {
            OpClass::Load => {
                let addr = uop.mem_addr.expect("load without address");
                let tlb_extra = self.tlb.translate(addr) as u64;
                self.stats.tlb_stall_cycles += tlb_extra;
                let out = mem.access(core_id, addr, AccessKind::Load, issue + 1 + tlb_extra);
                if let Some(d) = uop.dest {
                    self.reg_ready[d as usize] = out.complete_at;
                }
                self.stats.loads += 1;
            }
            OpClass::Store => {
                let addr = uop.mem_addr.expect("store without address");
                let tlb_extra = self.tlb.translate(addr) as u64;
                self.stats.tlb_stall_cycles += tlb_extra;
                // Store buffer admission: stall if full. Drained entries
                // leave from the front of the min-heap, so admission
                // touches only the earliest completion, never the set.
                while self
                    .store_buffer
                    .peek()
                    .is_some_and(|&Reverse(c)| c <= issue)
                {
                    self.store_buffer.pop();
                }
                if self.store_buffer.len() >= self.cfg.store_buffer as usize {
                    let Reverse(earliest) = *self.store_buffer.peek().expect("non-empty");
                    let d = self.stall_to(earliest);
                    self.stats.structural_stall_cycles += d;
                    let now = self.cycle;
                    while self.store_buffer.peek().is_some_and(|&Reverse(c)| c <= now) {
                        self.store_buffer.pop();
                    }
                }
                let out = mem.access(core_id, addr, AccessKind::Store, self.cycle + 1 + tlb_extra);
                self.store_buffer.push(Reverse(out.complete_at));
                self.stats.lsq_high_water = self
                    .stats
                    .lsq_high_water
                    .max(self.store_buffer.len() as u64);
                self.stats.stores += 1;
            }
            _ => {
                if let Some(d) = uop.dest {
                    self.reg_ready[d as usize] = issue + latency;
                }
                if OpLatencies::unpipelined(uop.class) {
                    self.unpipelined_free = issue + latency;
                }
            }
        }

        // ---- control flow ------------------------------------------------
        if let Some((class, taken)) = uop.branch {
            self.stats.branch_lookups += 1;
            if class == crate::uop::BranchClass::Conditional {
                self.stats.branches += 1;
            }
            let correct = self
                .predictor
                .predict_and_update(uop.pc, class, taken, uop.next_pc);
            if !correct {
                self.stats.mispredicts += 1;
                self.cycle = issue + self.cfg.mispredict_penalty();
                self.issued_this_cycle = 0;
                self.refetch = true;
            } else if taken {
                // Predicted-taken redirect still ends the fetch group.
                self.issued_this_cycle = self.cfg.issue_width;
                self.refetch = uop.next_pc & LINE_MASK != uop.pc & LINE_MASK;
            }
        }

        self.issued_this_cycle += 1;
        self.stats.retired += 1;
    }

    fn finish(&mut self) -> u64 {
        let drain = self
            .store_buffer
            .iter()
            .map(|&Reverse(c)| c)
            .max()
            .unwrap_or(0);
        self.cycle = self.cycle.max(drain).max(self.unpipelined_free);
        self.stats.cycles = self.cycle;
        self.cycle
    }

    fn cycles(&self) -> u64 {
        self.cycle
    }

    fn retired(&self) -> u64 {
        self.stats.retired
    }

    fn stats(&self) -> CoreStats {
        let mut s = self.stats;
        s.cycles = self.cycle;
        s
    }

    fn advance_to(&mut self, cycle: u64) {
        if cycle > self.cycle {
            self.cycle = cycle;
            self.issued_this_cycle = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsim_mem::{BusConfig, CacheConfig, DramConfig, HierarchyConfig};

    fn mem(cores: usize) -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig {
            cores,
            l1i: CacheConfig {
                sets: 64,
                ways: 8,
                line_bytes: 64,
                banks: 1,
                hit_latency: 1,
                mshrs: 1,
            },
            l1d: CacheConfig {
                sets: 64,
                ways: 8,
                line_bytes: 64,
                banks: 1,
                hit_latency: 2,
                mshrs: 2,
            },
            l2: CacheConfig {
                sets: 1024,
                ways: 8,
                line_bytes: 64,
                banks: 1,
                hit_latency: 12,
                mshrs: 8,
            },
            bus: BusConfig {
                width_bits: 64,
                latency: 4,
            },
            llc: None,
            dram: DramConfig::ddr3_2000(1),
            core_freq_ghz: 1.6,
            l1_to_l2_latency: 2,
            prefetch_degree: 0,
        })
    }

    fn alu_chain(n: usize, dependent: bool) -> Vec<MicroOp> {
        (0..n)
            .map(|i| {
                let pc = 0x1_0000 + 4 * (i as u64 % 16); // loop: warm icache
                if dependent {
                    MicroOp::alu(pc, Some(5), [Some(5), None, None])
                } else {
                    MicroOp::alu(pc, Some((5 + i % 8) as u8), [None, None, None])
                }
            })
            .collect()
    }

    fn run(cfg: InOrderConfig, uops: &[MicroOp]) -> (u64, CoreStats) {
        let mut core = InOrderCore::new(cfg);
        let mut m = mem(1);
        for u in uops {
            core.consume(u, &mut m, 0);
        }
        let c = core.finish();
        (c, core.stats())
    }

    #[test]
    fn single_issue_ipc_is_at_most_one() {
        let (cycles, s) = run(InOrderConfig::rocket(), &alu_chain(1000, false));
        assert!(s.ipc() <= 1.0 + 1e-9, "IPC {} must be <= 1", s.ipc());
        assert!(cycles >= 1000);
    }

    #[test]
    fn dual_issue_beats_single_issue_on_independent_ops() {
        let uops = alu_chain(4000, false);
        let (single, _) = run(InOrderConfig::rocket(), &uops);
        let (dual, s) = run(InOrderConfig::spacemit_k1(), &uops);
        assert!(
            (single as f64) > (dual as f64) * 1.5,
            "dual issue should be ~2x: {single} vs {dual}"
        );
        assert!(
            s.ipc() > 1.2,
            "dual-issue IPC should exceed 1, got {}",
            s.ipc()
        );
    }

    #[test]
    fn dependency_chain_defeats_dual_issue() {
        let uops = alu_chain(4000, true);
        let (single, _) = run(InOrderConfig::rocket(), &uops);
        let (dual, _) = run(InOrderConfig::spacemit_k1(), &uops);
        let ratio = single as f64 / dual as f64;
        assert!(
            ratio < 1.15,
            "a serial chain cannot benefit from dual issue (ratio {ratio})"
        );
    }

    #[test]
    fn load_use_interlock_stalls() {
        // load -> immediately use result.
        let uops = vec![
            MicroOp::load(0x1_0000, 0x10_0000, Some(5), None),
            MicroOp::alu(0x1_0004, Some(6), [Some(5), None, None]),
        ];
        let (_, s) = run(InOrderConfig::rocket(), &uops);
        assert!(s.data_stall_cycles > 0, "consumer must wait for the load");
    }

    #[test]
    fn mispredicts_cost_pipeline_depth() {
        // Unpredictable-ish alternation has some mispredicts during warmup;
        // force the issue with a pseudo-random pattern instead.
        let mut x = 0x9E3779B9u64;
        let uops: Vec<MicroOp> = (0..2000)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                MicroOp::cond_branch(0x1_0000 + 8 * (i % 64), x & 1 == 0, 0x1_0000, [None; 3])
            })
            .collect();
        let (shallow, s5) = run(InOrderConfig::rocket(), &uops);
        let mut deep_cfg = InOrderConfig::rocket();
        deep_cfg.pipeline_depth = 8;
        let (deep, s8) = run(deep_cfg, &uops);
        assert!(s5.mispredicts > 100, "random branches must mispredict");
        assert_eq!(
            s5.mispredicts, s8.mispredicts,
            "same predictor, same outcome"
        );
        assert!(deep > shallow, "deeper pipeline pays more per mispredict");
    }

    #[test]
    fn store_buffer_hides_store_latency_until_full() {
        let stores: Vec<MicroOp> = (0..64)
            .map(|i| MicroOp::store(0x1_0000 + 4 * (i % 16), 0x20_0000 + 4096 * i, [None; 3]))
            .collect();
        let mut small = InOrderConfig::rocket();
        small.store_buffer = 1;
        let mut big = InOrderConfig::rocket();
        big.store_buffer = 16;
        let (t_small, _) = run(small, &stores);
        let (t_big, _) = run(big, &stores);
        assert!(
            t_small > t_big,
            "bigger store buffer must help: {t_small} vs {t_big}"
        );
    }

    #[test]
    fn divider_serializes() {
        let divs: Vec<MicroOp> = (0..100)
            .map(|i| MicroOp {
                pc: 0x1_0000 + 4 * (i % 16),
                next_pc: 0x1_0004 + 4 * (i % 16),
                class: OpClass::IntDiv,
                dest: Some((5 + i % 4) as u8),
                srcs: [None, None, None],
                mem_addr: None,
                is_store: false,
                branch: None,
            })
            .collect();
        let (cycles, _) = run(InOrderConfig::rocket(), &divs);
        let div_lat = OpLatencies::rocket().int_div as u64;
        assert!(
            cycles >= 100 * div_lat,
            "unpipelined divider must serialize"
        );
    }

    #[test]
    fn advance_to_moves_clock_forward_only() {
        let mut core = InOrderCore::new(InOrderConfig::rocket());
        core.advance_to(500);
        assert_eq!(core.cycles(), 500);
        core.advance_to(100);
        assert_eq!(core.cycles(), 500);
    }
}

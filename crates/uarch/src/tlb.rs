//! TLB timing model.
//!
//! Table 5: both simulation models use 32-entry fully-associative L1
//! D/I TLBs; the BOOM-based MILK-V model adds a 1024-entry direct-mapped
//! L2 TLB. A miss that also misses the L2 TLB pays a page-walk latency.

use serde::{Deserialize, Serialize};

/// TLB configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// L1 TLB entries (fully associative, LRU).
    pub l1_entries: usize,
    /// Optional L2 TLB entries (direct mapped).
    pub l2_entries: Option<usize>,
    /// L2 TLB hit latency, cycles.
    pub l2_latency: u32,
    /// Full page-walk latency, cycles.
    pub walk_latency: u32,
}

impl TlbConfig {
    /// The paper's Rocket model: 32-entry fully associative L1 only.
    pub fn rocket() -> TlbConfig {
        TlbConfig {
            l1_entries: 32,
            l2_entries: None,
            l2_latency: 8,
            walk_latency: 40,
        }
    }

    /// The paper's BOOM model: 32-entry L1 + 1024-entry direct-mapped L2.
    pub fn boom() -> TlbConfig {
        TlbConfig {
            l1_entries: 32,
            l2_entries: Some(1024),
            l2_latency: 8,
            walk_latency: 40,
        }
    }
}

const PAGE_BITS: u32 = 12;

/// A two-level TLB.
pub struct Tlb {
    cfg: TlbConfig,
    l1: Vec<(u64, u64)>, // (vpn, lru)
    l2: Vec<u64>,        // vpn per direct-mapped slot (u64::MAX = invalid)
    clock: u64,
    hits: u64,
    l2_hits: u64,
    walks: u64,
}

impl Tlb {
    /// Builds an empty TLB.
    pub fn new(cfg: TlbConfig) -> Tlb {
        Tlb {
            l1: Vec::with_capacity(cfg.l1_entries),
            l2: vec![u64::MAX; cfg.l2_entries.unwrap_or(0)],
            cfg,
            clock: 0,
            hits: 0,
            l2_hits: 0,
            walks: 0,
        }
    }

    /// Translates `addr`, returning the extra latency in cycles
    /// (0 on an L1 TLB hit).
    pub fn translate(&mut self, addr: u64) -> u32 {
        let vpn = addr >> PAGE_BITS;
        self.clock += 1;
        let now = self.clock;
        if let Some(e) = self.l1.iter_mut().find(|e| e.0 == vpn) {
            e.1 = now;
            self.hits += 1;
            return 0;
        }
        // L1 miss: check L2 if present.
        let mut latency = 0;
        let l2_hit = if !self.l2.is_empty() {
            let slot = (vpn as usize) & (self.l2.len() - 1);
            if self.l2[slot] == vpn {
                latency += self.cfg.l2_latency;
                self.l2_hits += 1;
                true
            } else {
                self.l2[slot] = vpn;
                false
            }
        } else {
            false
        };
        if !l2_hit {
            latency += self.cfg.walk_latency;
            self.walks += 1;
        }
        // Refill L1 (LRU).
        if self.l1.len() == self.cfg.l1_entries {
            let (idx, _) = self
                .l1
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.1)
                .expect("non-empty");
            self.l1.swap_remove(idx);
        }
        self.l1.push((vpn, now));
        latency
    }

    /// (l1 hits, l2 hits, page walks).
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.l2_hits, self.walks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut t = Tlb::new(TlbConfig::rocket());
        assert_eq!(t.translate(0x1000), 40); // cold walk
        assert_eq!(t.translate(0x1008), 0); // same page
        assert_eq!(t.translate(0x2000), 40); // next page walks
    }

    #[test]
    fn l1_capacity_evicts_lru() {
        let mut t = Tlb::new(TlbConfig::rocket());
        for p in 0..33u64 {
            t.translate(p << 12);
        }
        // Page 0 is the LRU victim; page 1..32 still resident.
        assert_eq!(t.translate(1 << 12), 0);
        assert_ne!(t.translate(0), 0);
    }

    #[test]
    fn l2_tlb_softens_l1_misses() {
        let mut boom = Tlb::new(TlbConfig::boom());
        let mut rocket = Tlb::new(TlbConfig::rocket());
        // Touch 64 pages twice: second pass misses L1 (32 entries) but
        // hits BOOM's L2 TLB.
        let mut boom_cost = 0;
        let mut rocket_cost = 0;
        for pass in 0..2 {
            for p in 0..64u64 {
                let b = boom.translate(p << 12);
                let r = rocket.translate(p << 12);
                if pass == 1 {
                    boom_cost += b;
                    rocket_cost += r;
                }
            }
        }
        assert!(
            boom_cost < rocket_cost,
            "L2 TLB should help: {boom_cost} vs {rocket_cost}"
        );
    }

    #[test]
    fn counters_add_up() {
        let mut t = Tlb::new(TlbConfig::boom());
        for _ in 0..10 {
            t.translate(0x5000);
        }
        let (h, _, w) = t.counters();
        assert_eq!(h, 9);
        assert_eq!(w, 1);
    }
}

//! Out-of-order window timing model (BOOM-like).
//!
//! Parameterised to cover the three stock BOOM configurations the paper
//! sweeps (Table 4: Small / Medium / Large) plus the tuned "MILK-V
//! Simulation Model" and a wider hardware-reference configuration for
//! the SG2042 itself.
//!
//! The model tracks, per micro-op, the four canonical timestamps —
//! dispatch (front-end + ROB space), issue (operands + functional unit +
//! LSQ), completion (latency or memory round-trip) and in-order retire —
//! advancing a monotone clock. That one-pass formulation captures the
//! effects the paper's tuning knobs exist for:
//!
//! * ROB size bounds memory-level parallelism (a DRAM miss at the head
//!   fills the window and stalls dispatch — §5.2.2's explanation for the
//!   CG/IS multi-core gap),
//! * load/store-queue capacity bounds outstanding memory ops,
//! * decode width bounds dispatch throughput,
//! * dependency chains serialize issue regardless of width (the EM1/EM5/
//!   ED1 microbenchmarks),
//! * TAGE misprediction flushes cost the front-end refill time.

use crate::latency::OpLatencies;
use crate::predictor::{BoomPredictor, BranchPredictor};
use crate::stats::CoreStats;
use crate::tlb::{Tlb, TlbConfig};
use crate::uop::MicroOp;
use crate::TimingCore;
use bsim_isa::OpClass;
use bsim_mem::{AccessKind, MemoryHierarchy};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Out-of-order core parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OooConfig {
    /// Front-end fetch width.
    pub fetch_width: u32,
    /// Decode/dispatch width (also the retire width).
    pub decode_width: u32,
    /// Reorder-buffer entries.
    pub rob: u32,
    /// Load-queue entries.
    pub ldq: u32,
    /// Store-queue entries.
    pub stq: u32,
    /// Integer ALUs.
    pub int_units: u32,
    /// Memory pipelines (AGU/load-store ports).
    pub mem_ports: u32,
    /// FP pipelines.
    pub fp_units: u32,
    /// Maximum unresolved branches in flight (Table 5: 16).
    pub max_branches: u32,
    /// Front-end refill penalty on a mispredict.
    pub mispredict_penalty: u32,
    /// Functional-unit latencies.
    pub latencies: OpLatencies,
    /// TLB configuration.
    pub tlb: TlbConfig,
}

impl OooConfig {
    /// Small BOOM (Table 4: fetch 4, decode 1, RoB 32, LSQ 8/8).
    pub fn small_boom() -> OooConfig {
        OooConfig {
            fetch_width: 4,
            decode_width: 1,
            rob: 32,
            ldq: 8,
            stq: 8,
            int_units: 1,
            mem_ports: 1,
            fp_units: 1,
            max_branches: 8,
            mispredict_penalty: 10,
            latencies: OpLatencies::boom(),
            tlb: TlbConfig::boom(),
        }
    }

    /// Medium BOOM (Table 4: fetch 4, decode 2, RoB 64, LSQ 16/16).
    pub fn medium_boom() -> OooConfig {
        OooConfig {
            fetch_width: 4,
            decode_width: 2,
            rob: 64,
            ldq: 16,
            stq: 16,
            int_units: 2,
            mem_ports: 1,
            fp_units: 1,
            max_branches: 12,
            mispredict_penalty: 11,
            latencies: OpLatencies::boom(),
            tlb: TlbConfig::boom(),
        }
    }

    /// Large BOOM (Table 4: fetch 8, decode 3, RoB 96, LSQ 24/24;
    /// Table 5: 3-issue integer queue, 1-issue mem, 1-issue fp).
    pub fn large_boom() -> OooConfig {
        OooConfig {
            fetch_width: 8,
            decode_width: 3,
            rob: 96,
            ldq: 24,
            stq: 24,
            int_units: 3,
            mem_ports: 1,
            fp_units: 1,
            max_branches: 16,
            mispredict_penalty: 12,
            latencies: OpLatencies::boom(),
            tlb: TlbConfig::boom(),
        }
    }

    /// The SG2042 hardware reference (MILK-V): like Large BOOM but with
    /// the wider fetch/decode the paper's §5.1 concludes the silicon must
    /// have ("the MILK-V Hardware likely contains more fetch and decode
    /// units than were modeled").
    pub fn sg2042() -> OooConfig {
        OooConfig {
            fetch_width: 8,
            decode_width: 4,
            rob: 160,
            ldq: 32,
            stq: 32,
            int_units: 4,
            mem_ports: 2,
            fp_units: 2,
            max_branches: 24,
            mispredict_penalty: 12,
            latencies: OpLatencies::boom(),
            tlb: TlbConfig::boom(),
        }
    }
}

/// The out-of-order timing core.
pub struct OooCore {
    cfg: OooConfig,
    /// Cycle at which the front-end can deliver the next micro-op.
    fetch_time: u64,
    dispatched_this_cycle: u32,
    reg_ready: [u64; 64],
    /// In-flight ops' retire times, program order.
    rob: VecDeque<u64>,
    ldq: VecDeque<u64>,
    stq: VecDeque<u64>,
    branches_in_flight: VecDeque<u64>, // resolve times
    int_free: Vec<u64>,
    mem_free: Vec<u64>,
    fp_free: Vec<u64>,
    unpipelined_free: u64,
    last_retire: u64,
    retired_in_group: u32,
    predictor: BoomPredictor,
    tlb: Tlb,
    cur_fetch_line: u64,
    stats: CoreStats,
    l1i_hit_latency: u64,
    /// Host-side fast-forward accounting: intermediate cycles covered by
    /// bulk clock jumps (fetch stalls, ROB/branch-window drains) rather
    /// than being stepped one by one.
    ff_skipped_cycles: u64,
    /// Contiguous multi-cycle jumps that produced those skips.
    ff_spans: u64,
}

const LINE_MASK: u64 = !63;

impl OooCore {
    /// Builds an idle core.
    pub fn new(cfg: OooConfig) -> OooCore {
        OooCore {
            tlb: Tlb::new(cfg.tlb),
            predictor: BoomPredictor::new(),
            int_free: vec![0; cfg.int_units as usize],
            mem_free: vec![0; cfg.mem_ports as usize],
            fp_free: vec![0; cfg.fp_units as usize],
            cfg,
            fetch_time: 0,
            dispatched_this_cycle: 0,
            reg_ready: [0; 64],
            rob: VecDeque::new(),
            ldq: VecDeque::new(),
            stq: VecDeque::new(),
            branches_in_flight: VecDeque::new(),
            unpipelined_free: 0,
            last_retire: 0,
            retired_in_group: 0,
            cur_fetch_line: u64::MAX,
            stats: CoreStats::default(),
            l1i_hit_latency: 1,
            ff_skipped_cycles: 0,
            ff_spans: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &OooConfig {
        &self.cfg
    }

    /// Fast-forward accounting: `(skipped_cycles, spans)` — target
    /// cycles the core's clock jumped over in bulk (stall resolution)
    /// instead of stepping, and how many such jumps happened. Feeds
    /// `host.engine.skipped_cycles` in the SoC telemetry.
    pub fn ff_stats(&self) -> (u64, u64) {
        (self.ff_skipped_cycles, self.ff_spans)
    }

    /// Quiescence hint in `TickModel::next_activity` terms: the earliest
    /// future cycle at which an in-flight op leaves the window (ROB head
    /// retire, LDQ/STQ drain). `None` when the window is empty.
    pub fn next_activity(&self) -> Option<u64> {
        let now = self.cycles();
        [
            self.rob.front().copied(),
            self.ldq.front().copied(),
            self.stq.front().copied(),
        ]
        .into_iter()
        .flatten()
        .filter(|&c| c > now)
        .min()
    }

    /// Records a bulk clock jump of `d` cycles: one cycle is stepped,
    /// `d - 1` quiescent ones are skipped.
    fn note_jump(&mut self, d: u64) {
        if d > 1 {
            self.ff_skipped_cycles += d - 1;
            self.ff_spans += 1;
        }
    }

    /// Grabs the earliest-free unit from `units`, at or after `t`.
    fn acquire(units: &mut [u64], t: u64) -> u64 {
        let (idx, &free) = units
            .iter()
            .enumerate()
            .min_by_key(|(_, &f)| f)
            .expect("at least one unit");
        let start = t.max(free);
        units[idx] = start + 1; // one issue slot per cycle per unit
        start
    }

    /// Pops queue entries that have drained by `t`; if still at capacity,
    /// returns the stall-until time.
    fn queue_admit(q: &mut VecDeque<u64>, cap: u32, t: u64) -> u64 {
        while let Some(&front) = q.front() {
            if front <= t {
                q.pop_front();
            } else {
                break;
            }
        }
        if q.len() < cap as usize {
            t
        } else {
            let free_at = *q.front().expect("full queue is non-empty");
            while let Some(&front) = q.front() {
                if front <= free_at {
                    q.pop_front();
                } else {
                    break;
                }
            }
            free_at.max(t)
        }
    }
}

impl TimingCore for OooCore {
    fn consume(&mut self, uop: &MicroOp, mem: &mut MemoryHierarchy, core_id: usize) {
        // ---- front end ---------------------------------------------------
        let line = uop.pc & LINE_MASK;
        if line != self.cur_fetch_line {
            let out = mem.access(core_id, uop.pc, AccessKind::Ifetch, self.fetch_time);
            let extra = out
                .complete_at
                .saturating_sub(self.fetch_time + self.l1i_hit_latency);
            if extra > 0 {
                self.stats.fetch_stall_cycles += extra;
                self.fetch_time += extra;
                self.dispatched_this_cycle = 0;
                self.note_jump(extra);
            }
            self.cur_fetch_line = line;
            self.stats.fetch_lines += 1;
        }
        if self.dispatched_this_cycle >= self.cfg.decode_width {
            self.fetch_time += 1;
            self.dispatched_this_cycle = 0;
        }
        let mut dispatch = self.fetch_time;

        // ---- ROB space ------------------------------------------------------
        while let Some(&head) = self.rob.front() {
            if head <= dispatch {
                self.rob.pop_front();
            } else {
                break;
            }
        }
        if self.rob.len() >= self.cfg.rob as usize {
            let head = *self.rob.front().expect("full ROB");
            self.stats.structural_stall_cycles += head - dispatch;
            self.note_jump(head - dispatch);
            dispatch = head;
            self.fetch_time = dispatch;
            self.dispatched_this_cycle = 0;
            while let Some(&h) = self.rob.front() {
                if h <= dispatch {
                    self.rob.pop_front();
                } else {
                    break;
                }
            }
        }

        // ---- branch-count limit -----------------------------------------------
        if uop.branch.is_some() {
            while let Some(&r) = self.branches_in_flight.front() {
                if r <= dispatch {
                    self.branches_in_flight.pop_front();
                } else {
                    break;
                }
            }
            if self.branches_in_flight.len() >= self.cfg.max_branches as usize {
                let r = *self.branches_in_flight.front().expect("non-empty");
                self.stats.structural_stall_cycles += r.saturating_sub(dispatch);
                self.note_jump(r.saturating_sub(dispatch));
                dispatch = dispatch.max(r);
                self.fetch_time = dispatch;
                self.dispatched_this_cycle = 0;
            }
        }

        // ---- operand readiness ----------------------------------------------
        let ready = uop
            .srcs
            .iter()
            .flatten()
            .map(|&r| self.reg_ready[r as usize])
            .max()
            .unwrap_or(0);
        let oper_ready = ready.max(dispatch + 1);
        if ready > dispatch + 1 {
            self.stats.data_stall_cycles += ready - (dispatch + 1);
        }

        // ---- issue + execute -------------------------------------------------
        let (complete, _issue) = match uop.class {
            OpClass::Load => {
                let addr = uop.mem_addr.expect("load without address");
                let tlb_extra = self.tlb.translate(addr) as u64;
                self.stats.tlb_stall_cycles += tlb_extra;
                let admitted = Self::queue_admit(&mut self.ldq, self.cfg.ldq, oper_ready);
                self.stats.structural_stall_cycles += admitted - oper_ready;
                let issue = Self::acquire(&mut self.mem_free, admitted);
                let out = mem.access(core_id, addr, AccessKind::Load, issue + tlb_extra);
                self.ldq.push_back(out.complete_at);
                self.stats.lsq_high_water = self
                    .stats
                    .lsq_high_water
                    .max((self.ldq.len() + self.stq.len()) as u64);
                self.stats.loads += 1;
                (out.complete_at, issue)
            }
            OpClass::Store => {
                let addr = uop.mem_addr.expect("store without address");
                let tlb_extra = self.tlb.translate(addr) as u64;
                self.stats.tlb_stall_cycles += tlb_extra;
                let admitted = Self::queue_admit(&mut self.stq, self.cfg.stq, oper_ready);
                self.stats.structural_stall_cycles += admitted - oper_ready;
                let issue = Self::acquire(&mut self.mem_free, admitted);
                let out = mem.access(core_id, addr, AccessKind::Store, issue + tlb_extra);
                self.stq.push_back(out.complete_at);
                self.stats.lsq_high_water = self
                    .stats
                    .lsq_high_water
                    .max((self.ldq.len() + self.stq.len()) as u64);
                self.stats.stores += 1;
                // A store completes (for ROB purposes) once address+data are
                // ready; the write drains from the STQ in the background.
                (issue + 1, issue)
            }
            class => {
                let latency = self.cfg.latencies.of(class) as u64;
                let units: &mut [u64] = match class {
                    OpClass::FpAlu
                    | OpClass::FpMul
                    | OpClass::FpDiv
                    | OpClass::FpTranscendental => &mut self.fp_free,
                    _ => &mut self.int_free,
                };
                let mut issue = Self::acquire(units, oper_ready);
                if OpLatencies::unpipelined(class) {
                    issue = issue.max(self.unpipelined_free);
                    self.unpipelined_free = issue + latency;
                }
                (issue + latency, issue)
            }
        };

        if let Some(d) = uop.dest {
            self.reg_ready[d as usize] = complete;
        }

        // ---- in-order retire ------------------------------------------------
        self.retired_in_group += 1;
        let mut retire = complete.max(self.last_retire);
        if self.retired_in_group >= self.cfg.decode_width {
            retire = retire.max(self.last_retire + 1);
            self.retired_in_group = 0;
        }
        self.last_retire = retire;
        self.rob.push_back(retire);
        self.stats.rob_high_water = self.stats.rob_high_water.max(self.rob.len() as u64);

        // ---- control flow ----------------------------------------------------
        if let Some((class, taken)) = uop.branch {
            self.stats.branch_lookups += 1;
            if class == crate::uop::BranchClass::Conditional {
                self.stats.branches += 1;
            }
            self.branches_in_flight.push_back(complete);
            let correct = self
                .predictor
                .predict_and_update(uop.pc, class, taken, uop.next_pc);
            if !correct {
                self.stats.mispredicts += 1;
                // Wrong-path fetch until resolution; refill after.
                self.fetch_time = complete + self.cfg.mispredict_penalty as u64;
                self.dispatched_this_cycle = 0;
                self.cur_fetch_line = u64::MAX;
            } else if taken && uop.next_pc & LINE_MASK != uop.pc & LINE_MASK {
                self.cur_fetch_line = u64::MAX;
            }
        } else {
            self.dispatched_this_cycle += 1;
        }

        self.stats.retired += 1;
    }

    fn finish(&mut self) -> u64 {
        let rob_drain = self.rob.back().copied().unwrap_or(0);
        let stq_drain = self.stq.iter().copied().max().unwrap_or(0);
        let t = self
            .fetch_time
            .max(rob_drain)
            .max(stq_drain)
            .max(self.last_retire);
        self.fetch_time = t;
        self.stats.cycles = t;
        t
    }

    fn cycles(&self) -> u64 {
        self.fetch_time.max(self.last_retire)
    }

    fn retired(&self) -> u64 {
        self.stats.retired
    }

    fn stats(&self) -> CoreStats {
        let mut s = self.stats;
        s.cycles = self.cycles();
        s
    }

    fn advance_to(&mut self, cycle: u64) {
        if cycle > self.fetch_time {
            self.fetch_time = cycle;
            self.dispatched_this_cycle = 0;
        }
        self.last_retire = self.last_retire.max(cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsim_mem::{BusConfig, CacheConfig, DramConfig, HierarchyConfig};

    fn mem() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig {
            cores: 1,
            l1i: CacheConfig {
                sets: 128,
                ways: 8,
                line_bytes: 64,
                banks: 1,
                hit_latency: 1,
                mshrs: 2,
            },
            l1d: CacheConfig {
                sets: 128,
                ways: 8,
                line_bytes: 64,
                banks: 4,
                hit_latency: 3,
                mshrs: 8,
            },
            l2: CacheConfig {
                sets: 2048,
                ways: 8,
                line_bytes: 64,
                banks: 4,
                hit_latency: 14,
                mshrs: 16,
            },
            bus: BusConfig {
                width_bits: 128,
                latency: 4,
            },
            llc: None,
            dram: DramConfig::ddr3_2000(4),
            core_freq_ghz: 2.0,
            l1_to_l2_latency: 2,
            prefetch_degree: 0,
        })
    }

    fn run(cfg: OooConfig, uops: &[MicroOp]) -> (u64, CoreStats) {
        let mut core = OooCore::new(cfg);
        let mut m = mem();
        for u in uops {
            core.consume(u, &mut m, 0);
        }
        let c = core.finish();
        (c, core.stats())
    }

    fn independent_alu(n: usize) -> Vec<MicroOp> {
        (0..n)
            .map(|i| {
                MicroOp::alu(
                    0x1_0000 + 4 * (i as u64 % 16),
                    Some((5 + i % 16) as u8),
                    [None; 3],
                )
            })
            .collect()
    }

    fn dependent_alu(n: usize) -> Vec<MicroOp> {
        (0..n)
            .map(|i| {
                MicroOp::alu(
                    0x1_0000 + 4 * (i as u64 % 16),
                    Some(5),
                    [Some(5), None, None],
                )
            })
            .collect()
    }

    #[test]
    fn wider_decode_raises_ipc_on_independent_work() {
        let uops = independent_alu(6000);
        let (small, ss) = run(OooConfig::small_boom(), &uops);
        let (large, ls) = run(OooConfig::large_boom(), &uops);
        assert!(
            ss.ipc() <= 1.05,
            "decode-1 caps IPC at ~1, got {}",
            ss.ipc()
        );
        assert!(
            ls.ipc() > 2.0,
            "decode-3 should reach IPC > 2, got {}",
            ls.ipc()
        );
        assert!(small > large * 2);
    }

    #[test]
    fn dependency_chain_equalizes_all_boom_sizes() {
        let uops = dependent_alu(6000);
        let (small, _) = run(OooConfig::small_boom(), &uops);
        let (large, _) = run(OooConfig::large_boom(), &uops);
        let ratio = small as f64 / large as f64;
        assert!(
            (0.9..1.15).contains(&ratio),
            "EM1-style chains should not care about width (ratio {ratio})"
        );
    }

    #[test]
    fn rob_size_bounds_memory_level_parallelism() {
        // Pointer-chase-free independent DRAM misses, far apart.
        let loads: Vec<MicroOp> = (0..400u64)
            .map(|i| {
                MicroOp::load(
                    0x1_0000 + 4 * (i % 16),
                    0x100_0000 + i * 65536,
                    Some(5),
                    None,
                )
            })
            .collect();
        let mut tiny = OooConfig::large_boom();
        tiny.rob = 8;
        tiny.ldq = 4;
        let (small_win, _) = run(tiny, &loads);
        let (large_win, _) = run(OooConfig::large_boom(), &loads);
        assert!(
            small_win as f64 > large_win as f64 * 1.3,
            "bigger window must overlap more misses: {small_win} vs {large_win}"
        );
    }

    #[test]
    fn bigger_stq_hides_more_store_latency() {
        let stores: Vec<MicroOp> = (0..100u64)
            .map(|i| MicroOp::store(0x1_0000 + 4 * (i % 16), 0x100_0000 + i * 4096, [None; 3]))
            .collect();
        let mut tiny = OooConfig::large_boom();
        tiny.stq = 1;
        let (t_tiny, s) = run(tiny, &stores);
        assert_eq!(s.stores, 100);
        let (t_big, _) = run(OooConfig::large_boom(), &stores);
        assert!(
            t_tiny > t_big,
            "a 1-entry STQ must serialize DRAM stores: {t_tiny} vs {t_big}"
        );
    }

    #[test]
    fn mispredict_penalty_applies() {
        let mut x = 0xDEADBEEFu64;
        let uops: Vec<MicroOp> = (0..3000)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                MicroOp::cond_branch(0x1_0000 + 8 * (i % 64), x & 1 == 0, 0x1_0000, [None; 3])
            })
            .collect();
        let (_, s) = run(OooConfig::large_boom(), &uops);
        assert!(
            s.mispredicts > 500,
            "random branches must mispredict, got {}",
            s.mispredicts
        );
        assert!(s.cycles > 3000, "mispredicts must cost cycles");
    }

    #[test]
    fn sg2042_outperforms_large_boom_on_wide_code() {
        let uops = independent_alu(8000);
        let (lb, _) = run(OooConfig::large_boom(), &uops);
        let (hw, _) = run(OooConfig::sg2042(), &uops);
        assert!(hw < lb, "the wider silicon model must win: {hw} vs {lb}");
    }

    #[test]
    fn finish_waits_for_stq_drain() {
        let mut core = OooCore::new(OooConfig::small_boom());
        let mut m = mem();
        core.consume(&MicroOp::store(0x1_0000, 0x800_0000, [None; 3]), &mut m, 0);
        let c = core.finish();
        assert!(c > 10, "finish must include the store's DRAM time, got {c}");
    }
}

//! AutoCounter-style cycle-windowed sampling.
//!
//! FireSim's AutoCounter reads every counter out-of-band every N target
//! cycles, building a timeline that localizes *when* behaviour changed,
//! not just that it did. [`Sampler`] does the same against a
//! [`CounterBlock`](crate::CounterBlock): each call to
//! [`Sampler::maybe_sample`] checks the target cycle against the next
//! window boundary and snapshots all cells when it is crossed.

use crate::registry::CounterBlock;
use serde::{Deserialize, Serialize};

/// One timeline point: every counter value at a given target cycle.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Target cycle at which the snapshot was taken.
    pub cycle: u64,
    /// Cell values, positionally aligned with the block's names at
    /// capture time (registration order).
    pub values: Vec<u64>,
}

/// Samples a counter block every `interval` target cycles.
#[derive(Clone, Debug)]
pub struct Sampler {
    interval: u64,
    next_at: u64,
    samples: Vec<Sample>,
}

impl Sampler {
    /// `interval == 0` disables sampling entirely.
    pub fn new(interval: u64) -> Sampler {
        Sampler {
            interval,
            next_at: interval,
            samples: Vec::new(),
        }
    }

    /// The configured window, in target cycles.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Whether `cycle` has crossed the next window boundary — i.e.
    /// whether [`Sampler::maybe_sample`] would record a sample. Lets the
    /// owner refresh published counters only when a snapshot is imminent.
    #[inline]
    pub fn due(&self, cycle: u64) -> bool {
        self.interval != 0 && cycle >= self.next_at
    }

    /// Snapshots `block` if `cycle` crossed the next window boundary.
    #[inline]
    pub fn maybe_sample(&mut self, cycle: u64, block: &CounterBlock) {
        if self.interval == 0 || cycle < self.next_at {
            return;
        }
        while self.next_at <= cycle {
            self.next_at += self.interval;
        }
        self.samples.push(Sample {
            cycle,
            values: block.values().to_vec(),
        });
    }

    /// The recorded timeline.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_on_window_boundaries() {
        let mut b = CounterBlock::new(true);
        let id = b.register("c");
        let mut s = Sampler::new(100);
        for cycle in 0..350u64 {
            b.add(id, 1);
            s.maybe_sample(cycle, &b);
        }
        let cycles: Vec<u64> = s.samples().iter().map(|p| p.cycle).collect();
        assert_eq!(cycles, vec![100, 200, 300]);
        assert_eq!(s.samples()[0].values, vec![101]); // 101 adds by cycle 100
    }

    #[test]
    fn zero_interval_never_samples() {
        let b = CounterBlock::new(true);
        let mut s = Sampler::new(0);
        for cycle in 0..10_000u64 {
            s.maybe_sample(cycle, &b);
        }
        assert!(s.samples().is_empty());
    }

    #[test]
    fn sparse_cycles_skip_missed_windows() {
        let b = CounterBlock::new(true);
        let mut s = Sampler::new(10);
        s.maybe_sample(35, &b); // crosses 10, 20, 30 → one sample
        s.maybe_sample(36, &b); // next boundary is 40 → nothing
        assert_eq!(s.samples().len(), 1);
        assert_eq!(s.samples()[0].cycle, 35);
    }
}

//! TracerV-lite: a sampled committed-instruction trace ring buffer.
//!
//! FireSim's TracerV streams the PC of every committed instruction off
//! the FPGA out-of-band. We keep the spirit at simulation speed: the
//! retire stage calls [`TraceRing::record`] for every committed µop, the
//! ring keeps every Nth one (PC, opcode class, retire cycle), and old
//! entries are overwritten once the capacity wraps.

use serde::{Deserialize, Serialize};

/// One sampled committed instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Program counter of the committed µop.
    pub pc: u64,
    /// Opcode class (the `OpClass` discriminant, kept as a raw `u8` so the
    /// telemetry crate stays independent of `bsim-isa`).
    pub op_class: u8,
    /// Target cycle at which the µop retired.
    pub retire_cycle: u64,
}

/// Fixed-capacity ring buffer keeping every Nth committed instruction.
#[derive(Clone, Debug)]
pub struct TraceRing {
    capacity: usize,
    period: u64,
    seen: u64,
    head: usize,
    entries: Vec<TraceEntry>,
}

impl TraceRing {
    /// `capacity == 0` or `period == 0` disables the trace.
    pub fn new(capacity: usize, period: u64) -> TraceRing {
        TraceRing {
            capacity,
            period,
            seen: 0,
            head: 0,
            entries: Vec::new(),
        }
    }

    /// A disabled ring (records nothing).
    pub fn off() -> TraceRing {
        TraceRing::new(0, 0)
    }

    /// Whether this ring records anything.
    pub fn enabled(&self) -> bool {
        self.capacity > 0 && self.period > 0
    }

    /// Total committed instructions observed (recorded or not).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Records one committed µop; keeps every `period`-th one.
    #[inline]
    pub fn record(&mut self, pc: u64, op_class: u8, retire_cycle: u64) {
        if self.capacity == 0 || self.period == 0 {
            return;
        }
        if self.seen.is_multiple_of(self.period) {
            let e = TraceEntry {
                pc,
                op_class,
                retire_cycle,
            };
            if self.entries.len() < self.capacity {
                self.entries.push(e);
            } else {
                self.entries[self.head] = e;
                self.head = (self.head + 1) % self.capacity;
            }
        }
        self.seen += 1;
    }

    /// Entries in retirement order (oldest first).
    pub fn entries(&self) -> Vec<TraceEntry> {
        let mut out = Vec::with_capacity(self.entries.len());
        out.extend_from_slice(&self.entries[self.head..]);
        out.extend_from_slice(&self.entries[..self.head]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_every_nth() {
        let mut r = TraceRing::new(16, 4);
        for i in 0..12u64 {
            r.record(0x1000 + i * 4, 0, i);
        }
        let pcs: Vec<u64> = r.entries().iter().map(|e| e.pc).collect();
        assert_eq!(pcs, vec![0x1000, 0x1010, 0x1020]);
        assert_eq!(r.seen(), 12);
    }

    #[test]
    fn wraps_and_keeps_newest() {
        let mut r = TraceRing::new(2, 1);
        for i in 0..5u64 {
            r.record(i, 0, i);
        }
        let pcs: Vec<u64> = r.entries().iter().map(|e| e.pc).collect();
        assert_eq!(pcs, vec![3, 4]);
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let mut r = TraceRing::off();
        r.record(0x1000, 1, 5);
        assert!(!r.enabled());
        assert!(r.entries().is_empty());
        assert_eq!(r.seen(), 0);
    }
}

//! Out-of-band performance telemetry for the simulation stack.
//!
//! FireSim attributes simulation-vs-silicon gaps with two out-of-band
//! mechanisms: **AutoCounter** (performance counters sampled every N
//! target cycles without perturbing the target) and **TracerV** (a
//! committed-instruction trace streamed off the FPGA). This crate is the
//! software-simulation analogue:
//!
//! * [`CounterBlock`] — hierarchically named `u64` counters owned
//!   per-model; the hot path is one unconditional add, and a disabled
//!   block (see [`TelemetryConfig`]) is a no-op that exports nothing.
//! * [`Sampler`] — AutoCounter-style cycle-windowed snapshots of every
//!   counter into a timeline.
//! * [`TraceRing`] — TracerV-lite sampled ring buffer of committed
//!   instructions (PC, opcode class, retire cycle).
//! * [`TelemetrySnapshot`] — JSON/CSV export of all of the above.
//! * [`GapReport`] — diffs two runs counter-by-counter and ranks the
//!   largest relative deltas, mechanizing the paper's §5 attribution.
//!
//! Counters whose name starts with `host.` (wall-clock simulation rate,
//! lock spins) may differ between hosts or thread counts and are excluded
//! from deterministic exports and gap reports.

pub mod config;
pub mod gap;
pub mod registry;
pub mod sample;
pub mod snapshot;
pub mod trace;

pub use config::TelemetryConfig;
pub use gap::{GapReport, GapRow};
pub use registry::{CounterBlock, CounterId, HOST_PREFIX};
pub use sample::{Sample, Sampler};
pub use snapshot::{CounterEntry, TelemetrySnapshot};
pub use trace::{TraceEntry, TraceRing};

/// Bundle of one run's telemetry state: counters + timeline + trace.
///
/// Owning models call [`Telemetry::counters_mut`] on their hot paths and
/// [`Telemetry::tick`] once per retired-cycle boundary; the harness calls
/// [`Telemetry::snapshot`] at the end of the run.
#[derive(Clone, Debug)]
pub struct Telemetry {
    cfg: TelemetryConfig,
    counters: CounterBlock,
    sampler: Sampler,
    trace: TraceRing,
}

impl Telemetry {
    /// Builds telemetry state for one run.
    pub fn new(cfg: TelemetryConfig) -> Telemetry {
        Telemetry {
            counters: CounterBlock::new(cfg.enabled),
            sampler: Sampler::new(if cfg.enabled {
                cfg.sample_interval_cycles
            } else {
                0
            }),
            trace: if cfg.enabled {
                TraceRing::new(cfg.trace_capacity, cfg.trace_sample_period)
            } else {
                TraceRing::off()
            },
            cfg,
        }
    }

    /// The configuration this state was built from.
    pub fn config(&self) -> TelemetryConfig {
        self.cfg
    }

    /// Whether anything is recorded.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// The counter registry.
    pub fn counters(&self) -> &CounterBlock {
        &self.counters
    }

    /// The counter registry, for registration and updates.
    pub fn counters_mut(&mut self) -> &mut CounterBlock {
        &mut self.counters
    }

    /// The trace ring, for the retire stage.
    pub fn trace_mut(&mut self) -> &mut TraceRing {
        &mut self.trace
    }

    /// Whether a sample window boundary has been crossed at `cycle`, so
    /// the owner should refresh published counters before [`Telemetry::tick`].
    #[inline]
    pub fn sample_due(&self, cycle: u64) -> bool {
        self.sampler.due(cycle)
    }

    /// Advances the sampling clock to `cycle`, snapshotting the counters
    /// if a window boundary was crossed.
    #[inline]
    pub fn tick(&mut self, cycle: u64) {
        self.sampler.maybe_sample(cycle, &self.counters);
    }

    /// Exports everything recorded so far; `None` when disabled.
    pub fn snapshot(&self) -> Option<TelemetrySnapshot> {
        if !self.cfg.enabled {
            return None;
        }
        Some(TelemetrySnapshot::capture(
            &self.counters,
            &self.sampler,
            &self.trace,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_telemetry_snapshots_to_none() {
        let mut t = Telemetry::new(TelemetryConfig::disabled());
        let id = t.counters_mut().register("x");
        t.counters_mut().add(id, 5);
        t.trace_mut().record(0x1000, 0, 1);
        t.tick(1_000_000);
        assert!(t.snapshot().is_none());
    }

    #[test]
    fn full_config_records_counters_timeline_and_trace() {
        let mut t = Telemetry::new(TelemetryConfig {
            enabled: true,
            sample_interval_cycles: 100,
            trace_capacity: 8,
            trace_sample_period: 1,
        });
        let id = t.counters_mut().register("tile0.retired");
        for cycle in 0..250u64 {
            t.counters_mut().add(id, 1);
            t.trace_mut().record(0x8000_0000 + cycle * 4, 1, cycle);
            t.tick(cycle);
        }
        let s = t.snapshot().expect("enabled");
        assert_eq!(s.counter("tile0.retired"), Some(250));
        assert_eq!(s.timeline.len(), 2);
        assert_eq!(s.trace.len(), 8);
    }
}

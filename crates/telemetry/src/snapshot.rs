//! Exportable snapshot of everything a run recorded.

use crate::registry::{CounterBlock, HOST_PREFIX};
use crate::sample::{Sample, Sampler};
use crate::trace::{TraceEntry, TraceRing};
use serde::{Deserialize, Serialize};

/// One named counter value.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Dotted hierarchical name.
    pub name: String,
    /// Final cumulative value.
    pub value: u64,
}

/// Everything one run recorded: final counters, the sampled timeline,
/// and the committed-instruction trace. Serializes to JSON via
/// [`TelemetrySnapshot::to_json`] and to CSV via
/// [`TelemetrySnapshot::counters_csv`] / [`TelemetrySnapshot::timeline_csv`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Final counter values in registration order.
    pub counters: Vec<CounterEntry>,
    /// Sampling window used for the timeline (0 = no timeline).
    pub sample_interval_cycles: u64,
    /// AutoCounter-style timeline; each sample's `values` align
    /// positionally with `counters`.
    pub timeline: Vec<Sample>,
    /// TracerV-lite sampled committed-instruction trace, oldest first.
    pub trace: Vec<TraceEntry>,
}

impl TelemetrySnapshot {
    /// An empty snapshot.
    pub fn empty() -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: Vec::new(),
            sample_interval_cycles: 0,
            timeline: Vec::new(),
            trace: Vec::new(),
        }
    }

    /// Captures the current state of a block + sampler + trace ring.
    pub fn capture(
        block: &CounterBlock,
        sampler: &Sampler,
        trace: &TraceRing,
    ) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: block
                .counters()
                .map(|(name, value)| CounterEntry {
                    name: name.to_string(),
                    value,
                })
                .collect(),
            sample_interval_cycles: sampler.interval(),
            timeline: sampler.samples().to_vec(),
            trace: trace.entries(),
        }
    }

    /// Value of one counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Sum of all counters whose name contains `fragment` (handy for
    /// "any tile's L1D misses" style queries).
    pub fn sum_matching(&self, fragment: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name.contains(fragment))
            .map(|c| c.value)
            .sum()
    }

    /// A copy with all host-dependent (`host.*`) counters removed, both
    /// from the final values and from every timeline sample. Two runs of
    /// the same target are byte-identical under this view regardless of
    /// host thread count or wall-clock speed.
    pub fn deterministic(&self) -> TelemetrySnapshot {
        let keep: Vec<bool> = self
            .counters
            .iter()
            .map(|c| !c.name.starts_with(HOST_PREFIX))
            .collect();
        let filter = |values: &[u64]| -> Vec<u64> {
            values
                .iter()
                .zip(keep.iter())
                .filter_map(|(v, k)| if *k { Some(*v) } else { None })
                .collect()
        };
        TelemetrySnapshot {
            counters: self
                .counters
                .iter()
                .zip(keep.iter())
                .filter(|(_, k)| **k)
                .map(|(c, _)| c.clone())
                .collect(),
            sample_interval_cycles: self.sample_interval_cycles,
            timeline: self
                .timeline
                .iter()
                .map(|s| Sample {
                    cycle: s.cycle,
                    values: filter(&s.values),
                })
                .collect(),
            trace: self.trace.clone(),
        }
    }

    /// Pretty JSON export.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    /// `name,value` CSV of the final counters (with header).
    pub fn counters_csv(&self) -> String {
        let mut out = String::from("counter,value\n");
        for c in &self.counters {
            out.push_str(&c.name);
            out.push(',');
            out.push_str(&c.value.to_string());
            out.push('\n');
        }
        out
    }

    /// Timeline CSV: `cycle,<name...>` header, one row per sample. Samples
    /// taken before late-registered counters existed pad with empty cells.
    pub fn timeline_csv(&self) -> String {
        let mut out = String::from("cycle");
        for c in &self.counters {
            out.push(',');
            out.push_str(&c.name);
        }
        out.push('\n');
        for s in &self.timeline {
            out.push_str(&s.cycle.to_string());
            for i in 0..self.counters.len() {
                out.push(',');
                if let Some(v) = s.values.get(i) {
                    out.push_str(&v.to_string());
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> TelemetrySnapshot {
        let mut b = CounterBlock::new(true);
        let c = b.register("tile0.l1d.misses");
        b.add(c, 5);
        b.set_named("host.rate.mhz", 60);
        let mut s = Sampler::new(10);
        s.maybe_sample(10, &b);
        let mut t = TraceRing::new(4, 1);
        t.record(0x80000000, 2, 9);
        TelemetrySnapshot::capture(&b, &s, &t)
    }

    #[test]
    fn capture_round_trip() {
        let s = snap();
        assert_eq!(s.counter("tile0.l1d.misses"), Some(5));
        assert_eq!(s.timeline.len(), 1);
        assert_eq!(s.trace.len(), 1);
        assert_eq!(s.sum_matching("l1d"), 5);
    }

    #[test]
    fn deterministic_strips_host_counters_everywhere() {
        let s = snap();
        let d = s.deterministic();
        assert_eq!(d.counters.len(), 1);
        assert!(d.counter("host.rate.mhz").is_none());
        assert_eq!(d.timeline[0].values.len(), 1);
        // Byte-identical exports are the contract the proptest relies on.
        assert_eq!(d.to_json(), d.clone().to_json());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let s = snap();
        let csv = s.counters_csv();
        assert!(csv.starts_with("counter,value\n"));
        assert!(csv.contains("tile0.l1d.misses,5\n"));
        let tl = s.timeline_csv();
        assert!(tl.starts_with("cycle,tile0.l1d.misses,host.rate.mhz\n"));
        assert!(tl.contains("10,5,60\n"));
    }

    #[test]
    fn json_contains_counters() {
        let s = snap();
        let json = s.to_json();
        assert!(json.contains("\"tile0.l1d.misses\""));
        assert!(json.contains("\"timeline\""));
    }
}

//! The counter registry: hierarchically named `u64` cells.
//!
//! Counters live in a [`CounterBlock`] owned by the model that increments
//! them, so the hot path is one unconditional add into a plain `u64` —
//! no atomics, no hashing, no branch on "is telemetry on?". A disabled
//! block hands out the same [`CounterId`] (index 0) for every registration
//! and routes all updates into a single scratch cell that is never
//! exported, which keeps the instrumented code identical in both modes.
//!
//! Names are dotted paths mirroring the model hierarchy, e.g.
//! `tile0.l1d.misses`, `dram.row_misses`, `engine.chan.cpu_to_mem.tokens`,
//! `mpi.rank3.wait_cycles`. The `host.` prefix is reserved for quantities
//! that depend on the host machine or thread schedule (wall-clock rates,
//! lock spins); [`CounterBlock::deterministic_counters`] and the snapshot
//! layer exclude them when comparing runs for determinism.

/// Prefix for host-dependent (non-deterministic) counters.
pub const HOST_PREFIX: &str = "host.";

/// Handle to one counter cell inside a [`CounterBlock`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(u32);

impl CounterId {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// A set of named counters owned by one model.
#[derive(Clone, Debug)]
pub struct CounterBlock {
    enabled: bool,
    names: Vec<String>,
    cells: Vec<u64>,
}

impl CounterBlock {
    /// Builds a block. A disabled block accepts all operations but keeps
    /// no names and exports nothing.
    pub fn new(enabled: bool) -> CounterBlock {
        if enabled {
            CounterBlock {
                enabled,
                names: Vec::new(),
                cells: Vec::new(),
            }
        } else {
            // One scratch cell so `add` stays branch-free.
            CounterBlock {
                enabled,
                names: Vec::new(),
                cells: vec![0],
            }
        }
    }

    /// Whether this block records anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Registers (or finds) a counter by dotted name.
    pub fn register(&mut self, name: &str) -> CounterId {
        if !self.enabled {
            return CounterId(0);
        }
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return CounterId(i as u32);
        }
        self.names.push(name.to_string());
        self.cells.push(0);
        CounterId((self.names.len() - 1) as u32)
    }

    /// Adds `n` to the counter. The hot path: a single unconditional add.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.cells[id.index()] = self.cells[id.index()].wrapping_add(n);
    }

    /// Raises the counter to `v` if `v` is larger (high-water marks).
    #[inline]
    pub fn set_max(&mut self, id: CounterId, v: u64) {
        let cell = &mut self.cells[id.index()];
        if v > *cell {
            *cell = v;
        }
    }

    /// Overwrites the counter with `v` (published aggregates).
    #[inline]
    pub fn set(&mut self, id: CounterId, v: u64) {
        self.cells[id.index()] = v;
    }

    /// Register-or-find `name` and overwrite it with `v`. For cold paths
    /// that publish a finished statistic into the registry.
    pub fn set_named(&mut self, name: &str, v: u64) {
        let id = self.register(name);
        self.set(id, v);
    }

    /// Register-or-find `name` and add `n` to it.
    pub fn add_named(&mut self, name: &str, n: u64) {
        let id = self.register(name);
        self.add(id, n);
    }

    /// Current value of a counter by name (`None` if never registered or
    /// the block is disabled).
    pub fn get(&self, name: &str) -> Option<u64> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.cells[i])
    }

    /// Number of registered counters (0 when disabled).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All `(name, value)` pairs in registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.names
            .iter()
            .map(|n| n.as_str())
            .zip(self.cells.iter().copied())
    }

    /// `(name, value)` pairs excluding host-dependent (`host.*`) counters.
    pub fn deterministic_counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters().filter(|(n, _)| !n.starts_with(HOST_PREFIX))
    }

    /// Raw cell values in registration order (used by the sampler; the
    /// disabled block's scratch cell is excluded).
    pub fn values(&self) -> &[u64] {
        &self.cells[..self.names.len()]
    }

    /// Registered names in registration order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Folds every counter of `other` into this block under `prefix`.
    /// Used to merge per-model blocks into one exported registry.
    pub fn absorb(&mut self, prefix: &str, other: &CounterBlock) {
        for (name, value) in other.counters() {
            let full = if prefix.is_empty() {
                name.to_string()
            } else {
                format!("{prefix}.{name}")
            };
            self.set_named(&full, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_read_back() {
        let mut b = CounterBlock::new(true);
        let miss = b.register("tile0.l1d.misses");
        b.add(miss, 3);
        b.add(miss, 4);
        assert_eq!(b.get("tile0.l1d.misses"), Some(7));
    }

    #[test]
    fn register_is_idempotent() {
        let mut b = CounterBlock::new(true);
        let a = b.register("x");
        let b2 = b.register("x");
        assert_eq!(a, b2);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn set_max_keeps_high_water() {
        let mut b = CounterBlock::new(true);
        let id = b.register("rob.high_water");
        b.set_max(id, 10);
        b.set_max(id, 4);
        assert_eq!(b.get("rob.high_water"), Some(10));
    }

    #[test]
    fn disabled_block_records_nothing() {
        let mut b = CounterBlock::new(false);
        let id = b.register("tile0.l1d.misses");
        b.add(id, 99);
        b.set_named("dram.reads", 5);
        assert_eq!(b.len(), 0);
        assert_eq!(b.get("tile0.l1d.misses"), None);
        assert_eq!(b.counters().count(), 0);
        assert!(b.values().is_empty());
    }

    #[test]
    fn host_counters_are_excluded_from_deterministic_view() {
        let mut b = CounterBlock::new(true);
        b.set_named("engine.cycles", 100);
        b.set_named("host.engine.spins", 12345);
        let det: Vec<_> = b.deterministic_counters().collect();
        assert_eq!(det, vec![("engine.cycles", 100)]);
    }

    #[test]
    fn absorb_prefixes_names() {
        let mut inner = CounterBlock::new(true);
        inner.set_named("l1d.misses", 7);
        let mut outer = CounterBlock::new(true);
        outer.absorb("tile0", &inner);
        assert_eq!(outer.get("tile0.l1d.misses"), Some(7));
    }
}

//! Telemetry configuration.

use serde::{Deserialize, Serialize};

/// Controls what a simulation records out-of-band.
///
/// With `enabled: false` every telemetry call is a no-op against a single
/// scratch cell, nothing is named, and exports are empty — the timing model
/// itself never observes the difference (see the disabled-path tests in
/// `bsim-soc`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// Master switch. Off ⇒ no counters, no timeline, no trace.
    pub enabled: bool,
    /// AutoCounter-style sampling window in target cycles; 0 disables the
    /// timeline (cumulative counters are still recorded).
    pub sample_interval_cycles: u64,
    /// TracerV-lite ring-buffer capacity in entries; 0 disables tracing.
    pub trace_capacity: usize,
    /// Record every Nth committed instruction; 0 disables tracing.
    pub trace_sample_period: u64,
}

impl TelemetryConfig {
    /// Everything off (the default).
    pub fn disabled() -> TelemetryConfig {
        TelemetryConfig {
            enabled: false,
            sample_interval_cycles: 0,
            trace_capacity: 0,
            trace_sample_period: 0,
        }
    }

    /// Cumulative counters plus a timeline sampled every 10k cycles.
    pub fn counters() -> TelemetryConfig {
        TelemetryConfig {
            enabled: true,
            sample_interval_cycles: 10_000,
            trace_capacity: 0,
            trace_sample_period: 0,
        }
    }

    /// Counters, timeline, and a sampled committed-instruction trace.
    pub fn full() -> TelemetryConfig {
        TelemetryConfig {
            enabled: true,
            sample_interval_cycles: 10_000,
            trace_capacity: 4096,
            trace_sample_period: 64,
        }
    }
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        let cfg = TelemetryConfig::default();
        assert!(!cfg.enabled);
        assert_eq!(cfg, TelemetryConfig::disabled());
    }
}

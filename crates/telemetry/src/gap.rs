//! Counter-by-counter diff of two runs.
//!
//! The paper's whole method (§5) is attributing an end-to-end gap between
//! FireSim and silicon to specific microarchitectural counters. A
//! [`GapReport`] mechanizes that: give it two snapshots (hardware
//! reference vs. model, or before vs. after a tuning knob) and it ranks
//! every shared counter by the magnitude of its relative delta.

use crate::registry::HOST_PREFIX;
use crate::snapshot::TelemetrySnapshot;
use serde::{Deserialize, Serialize};

/// One counter's values in both runs and its relative delta.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GapRow {
    /// Dotted counter name.
    pub counter: String,
    /// Value in run A.
    pub a: u64,
    /// Value in run B.
    pub b: u64,
    /// `ln((b + 1) / (a + 1))` — symmetric relative delta; positive means
    /// B is larger. The +1 keeps zero-valued counters comparable.
    pub log_ratio: f64,
}

/// Ranked counter deltas between two runs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GapReport {
    /// Label of run A (e.g. `milkv_hw`).
    pub label_a: String,
    /// Label of run B (e.g. `large_boom`).
    pub label_b: String,
    /// All compared counters, largest `|log_ratio|` first.
    pub rows: Vec<GapRow>,
}

impl GapReport {
    /// Diffs two snapshots. Host-dependent (`host.*`) counters are
    /// excluded; a counter missing from one run counts as zero there.
    pub fn between(
        label_a: &str,
        a: &TelemetrySnapshot,
        label_b: &str,
        b: &TelemetrySnapshot,
    ) -> GapReport {
        let mut names: Vec<&str> = a
            .counters
            .iter()
            .chain(b.counters.iter())
            .map(|c| c.name.as_str())
            .filter(|n| !n.starts_with(HOST_PREFIX))
            .collect();
        names.sort_unstable();
        names.dedup();
        let mut rows: Vec<GapRow> = names
            .into_iter()
            .map(|name| {
                let va = a.counter(name).unwrap_or(0);
                let vb = b.counter(name).unwrap_or(0);
                let log_ratio = ((vb + 1) as f64 / (va + 1) as f64).ln();
                GapRow {
                    counter: name.to_string(),
                    a: va,
                    b: vb,
                    log_ratio,
                }
            })
            .collect();
        rows.sort_by(|x, y| {
            y.log_ratio
                .abs()
                .partial_cmp(&x.log_ratio.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| x.counter.cmp(&y.counter))
        });
        GapReport {
            label_a: label_a.to_string(),
            label_b: label_b.to_string(),
            rows,
        }
    }

    /// The `n` largest deltas.
    pub fn top(&self, n: usize) -> &[GapRow] {
        &self.rows[..n.min(self.rows.len())]
    }

    /// Human-readable table of the top `n` deltas.
    pub fn render(&self, n: usize) -> String {
        let mut out = format!(
            "gap report: A = {}, B = {} (top {} of {} counters by |ln((B+1)/(A+1))|)\n",
            self.label_a,
            self.label_b,
            n.min(self.rows.len()),
            self.rows.len()
        );
        out.push_str(&format!(
            "{:<44} {:>16} {:>16} {:>10}\n",
            "counter", self.label_a, self.label_b, "ln(B/A)"
        ));
        for row in self.top(n) {
            out.push_str(&format!(
                "{:<44} {:>16} {:>16} {:>+10.3}\n",
                row.counter, row.a, row.b, row.log_ratio
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::CounterBlock;
    use crate::sample::Sampler;
    use crate::trace::TraceRing;

    fn snap(pairs: &[(&str, u64)]) -> TelemetrySnapshot {
        let mut b = CounterBlock::new(true);
        for (n, v) in pairs {
            b.set_named(n, *v);
        }
        TelemetrySnapshot::capture(&b, &Sampler::new(0), &TraceRing::off())
    }

    #[test]
    fn ranks_largest_relative_delta_first() {
        let a = snap(&[("dram.reads", 100), ("l1d.misses", 1000), ("cycles", 5000)]);
        let b = snap(&[("dram.reads", 900), ("l1d.misses", 1100), ("cycles", 5200)]);
        let g = GapReport::between("hw", &a, "sim", &b);
        assert_eq!(g.rows[0].counter, "dram.reads");
        assert!(g.rows[0].log_ratio > 0.0);
    }

    #[test]
    fn missing_counter_counts_as_zero_and_host_is_excluded() {
        let a = snap(&[("only_in_a", 50), ("host.rate.mhz", 60)]);
        let b = snap(&[("host.rate.mhz", 15)]);
        let g = GapReport::between("a", &a, "b", &b);
        assert_eq!(g.rows.len(), 1);
        assert_eq!(g.rows[0].counter, "only_in_a");
        assert_eq!(g.rows[0].b, 0);
        assert!(g.rows[0].log_ratio < 0.0);
    }

    #[test]
    fn render_mentions_labels() {
        let a = snap(&[("x", 1)]);
        let b = snap(&[("x", 2)]);
        let r = GapReport::between("milkv_hw", &a, "large_boom", &b).render(5);
        assert!(r.contains("milkv_hw"));
        assert!(r.contains("large_boom"));
    }
}

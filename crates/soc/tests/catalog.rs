//! Catalog-wide invariants: every named platform must build, run code,
//! and be timing-deterministic.

use bsim_isa::reg::*;
use bsim_isa::Asm;
use bsim_soc::{configs, CoreModel, Soc, SocConfig};

fn catalog() -> Vec<SocConfig> {
    vec![
        configs::rocket1(4),
        configs::rocket2(4),
        configs::banana_pi_sim(4),
        configs::fast_banana_pi_sim(4),
        configs::small_boom(4),
        configs::medium_boom(4),
        configs::large_boom(4),
        configs::milkv_sim(4),
        configs::banana_pi_hw(4),
        configs::milkv_hw(4),
    ]
}

fn probe() -> bsim_isa::Program {
    let mut a = Asm::new();
    let tbl = a.data_u64s(&[3, 5, 7, 11, 13, 17, 19, 23]);
    a.li(T0, tbl as i64);
    a.li(T1, 0); // sum
    a.li(T2, 0);
    a.li(T3, 2000);
    a.label("loop");
    a.andi(T4, T2, 7);
    a.slli(T4, T4, 3);
    a.add(T4, T4, T0);
    a.ld(T5, 0, T4);
    a.add(T1, T1, T5);
    a.addi(T2, T2, 1);
    a.blt(T2, T3, "loop");
    a.li(T6, 98);
    a.divu(A0, T1, T6); // 2000/8 * 98 / 98 = 250
    a.li(A7, 93);
    a.ecall();
    a.assemble().unwrap()
}

#[test]
fn every_platform_runs_and_is_deterministic() {
    let prog = probe();
    for cfg in catalog() {
        let name = cfg.name.clone();
        let run = || {
            let mut soc = Soc::new(cfg.clone());
            let rep = soc.run_program(0, &prog, 10_000_000);
            (rep.exit_code, rep.cycles)
        };
        let (code, cycles1) = run();
        let (_, cycles2) = run();
        assert_eq!(code, Some(250), "wrong functional result on {name}");
        assert_eq!(cycles1, cycles2, "{name} must be timing-deterministic");
        assert!(cycles1 > 2000, "{name}: at least one cycle per iteration");
    }
}

#[test]
fn simulation_flags_partition_the_catalog() {
    let (sims, hws): (Vec<_>, Vec<_>) = catalog().into_iter().partition(|c| c.is_simulation);
    assert_eq!(sims.len(), 8);
    assert_eq!(hws.len(), 2);
    for s in &sims {
        assert_eq!(
            s.simd_lanes, 1,
            "{}: FireSim targets run without vector units",
            s.name
        );
        assert_eq!(
            s.hierarchy.prefetch_degree, 0,
            "{}: stock Rocket/BOOM lack prefetchers",
            s.name
        );
    }
    for h in &hws {
        assert!(h.simd_lanes > 1, "{}: silicon has RVV", h.name);
        assert!(
            h.hierarchy.prefetch_degree > 0,
            "{}: silicon prefetches",
            h.name
        );
    }
}

#[test]
fn clocks_match_table5() {
    assert_eq!(configs::rocket1(1).freq_ghz, 1.6);
    assert_eq!(configs::banana_pi_hw(1).freq_ghz, 1.6);
    assert_eq!(configs::fast_banana_pi_sim(1).freq_ghz, 3.2);
    assert_eq!(configs::large_boom(1).freq_ghz, 2.0);
    assert_eq!(configs::milkv_hw(1).freq_ghz, 2.0);
}

#[test]
fn in_order_vs_ooo_split_matches_the_paper() {
    for cfg in catalog() {
        let expect_inorder = cfg.name.contains("Rocket") || cfg.name.contains("Banana");
        match (&cfg.core, expect_inorder) {
            (CoreModel::InOrder(_), true) | (CoreModel::Ooo(_), false) => {}
            _ => panic!("{} has the wrong core family", cfg.name),
        }
    }
}

//! The paper's named platform configurations (Tables 4 and 5).

use bsim_mem::cache::CacheConfig;
use bsim_mem::llc::{LlcConfig, LlcStyle};
use bsim_mem::{BusConfig, DramConfig, HierarchyConfig};
use bsim_telemetry::TelemetryConfig;
use bsim_uarch::{InOrderConfig, OooConfig};
use serde::{Deserialize, Serialize};

/// Which core timing model an SoC uses.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CoreModel {
    /// In-order (Rocket / SpacemiT K1).
    InOrder(InOrderConfig),
    /// Out-of-order (BOOM / SG2042).
    Ooo(OooConfig),
}

/// A complete platform description.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SocConfig {
    /// Display name, as used in the paper's figures.
    pub name: String,
    /// Core count instantiated (the paper models one 4-core cluster).
    pub cores: usize,
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// Core microarchitecture.
    pub core: CoreModel,
    /// Memory system.
    pub hierarchy: HierarchyConfig,
    /// True for FireSim-hosted models (affects reporting only).
    pub is_simulation: bool,
    /// Vector-unit width in f64 lanes. The paper instantiates the
    /// FireSim targets "without enabling vector units" (§3.1.1) → 1;
    /// the SpacemiT K1 implements RVV 1.0 at 256 bits → 4, and the
    /// SG2042's C920 cores have 128-bit vectors → 2. Auto-vectorizable
    /// workload regions run with correspondingly fewer dynamic ops on
    /// the silicon references.
    pub simd_lanes: u32,
    /// Extra dynamic ops per 1000 from the platform's compiler
    /// generation. Table 3: the FireSim images ship GCC 9.4.0 ("upgrading
    /// GCC on FireSim to 13.2 requires building it from source ... which
    /// is time-consuming"), while both silicon platforms run GCC 13.2 —
    /// older codegen retires measurably more instructions on the same
    /// C/C++ kernels.
    pub compiler_overhead_per_mille: u32,
    /// Out-of-band telemetry (AutoCounter/TracerV analogue). Disabled by
    /// default in every named config; enable with
    /// [`SocConfig::with_telemetry`]. Never affects simulated timing.
    pub telemetry: TelemetryConfig,
}

impl SocConfig {
    /// Converts a cycle count on this platform to seconds.
    pub fn seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.freq_ghz * 1e9)
    }

    /// The same platform with the given telemetry configuration.
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> SocConfig {
        self.telemetry = telemetry;
        self
    }
}

// ---- shared cache geometries -------------------------------------------------

/// Rocket L1 (Table 5: 32 KiB, 64 sets / 8 ways).
fn rocket_l1() -> CacheConfig {
    CacheConfig {
        sets: 64,
        ways: 8,
        line_bytes: 64,
        banks: 1,
        hit_latency: 2,
        mshrs: 2,
    }
}

/// Rocket-tile shared L2 (512 KiB, 1024 sets / 8 ways), bank count varies.
fn rocket_l2(banks: u32) -> CacheConfig {
    CacheConfig {
        sets: 1024,
        ways: 8,
        line_bytes: 64,
        banks,
        hit_latency: 14,
        mshrs: 8,
    }
}

/// Small/Medium BOOM L1 (Table 4: 64 sets / 4 ways = 16 KiB).
fn boom_small_l1() -> CacheConfig {
    CacheConfig {
        sets: 64,
        ways: 4,
        line_bytes: 64,
        banks: 4,
        hit_latency: 3,
        mshrs: 4,
    }
}

/// Large BOOM L1 (Table 4: 64 sets / 8 ways = 32 KiB).
fn boom_large_l1() -> CacheConfig {
    CacheConfig {
        sets: 64,
        ways: 8,
        line_bytes: 64,
        banks: 4,
        hit_latency: 3,
        mshrs: 8,
    }
}

/// MILK-V-tuned L1 (Table 5: 64 KiB, 128 sets / 8 ways).
fn milkv_l1() -> CacheConfig {
    CacheConfig {
        sets: 128,
        ways: 8,
        line_bytes: 64,
        banks: 4,
        hit_latency: 3,
        mshrs: 8,
    }
}

/// BOOM-tile shared L2 (512 KiB), 4 banks.
fn boom_l2() -> CacheConfig {
    CacheConfig {
        sets: 1024,
        ways: 8,
        line_bytes: 64,
        banks: 4,
        hit_latency: 14,
        mshrs: 16,
    }
}

/// MILK-V-tuned L2 (Table 5: 1 MiB / 4 cores, 2048 sets / 8 ways).
fn milkv_l2() -> CacheConfig {
    CacheConfig {
        sets: 2048,
        ways: 8,
        line_bytes: 64,
        banks: 4,
        hit_latency: 16,
        mshrs: 16,
    }
}

/// One 16 MiB LLC slice (16384 sets / 16 ways); the paper uses four.
fn llc_slice() -> CacheConfig {
    CacheConfig {
        sets: 16384,
        ways: 16,
        line_bytes: 64,
        banks: 4,
        hit_latency: 10,
        mshrs: 32,
    }
}

// ---- FireSim-hosted models -----------------------------------------------------

/// Table 4 "Rocket 1": Huge Rocket, 1 L2 bank, 64-bit system bus,
/// DDR3-2000 FR-FCFS quad-rank (FireSim's only memory model).
pub fn rocket1(cores: usize) -> SocConfig {
    SocConfig {
        name: "Rocket 1".into(),
        cores,
        freq_ghz: 1.6,
        core: CoreModel::InOrder(InOrderConfig::rocket()),
        hierarchy: HierarchyConfig {
            cores,
            l1i: rocket_l1(),
            l1d: rocket_l1(),
            l2: rocket_l2(1),
            bus: BusConfig {
                width_bits: 64,
                latency: 4,
            },
            llc: None,
            dram: DramConfig::ddr3_2000(1),
            core_freq_ghz: 1.6,
            l1_to_l2_latency: 2,
            prefetch_degree: 0, // stock Rocket has no prefetcher
        },
        is_simulation: true,
        simd_lanes: 1,
        compiler_overhead_per_mille: 200, // GCC 9.4 vs 13.2 (Table 3)
        telemetry: TelemetryConfig::disabled(),
    }
}

/// Table 4 "Rocket 2": Rocket 1 with the L2 banked ×4.
pub fn rocket2(cores: usize) -> SocConfig {
    let mut c = rocket1(cores);
    c.name = "Rocket 2".into();
    c.hierarchy.l2 = rocket_l2(4);
    c
}

/// §4 "Banana Pi Sim Model": Rocket 2 plus a 128-bit system bus.
pub fn banana_pi_sim(cores: usize) -> SocConfig {
    let mut c = rocket2(cores);
    c.name = "Banana Pi Sim Model".into();
    c.hierarchy.bus = BusConfig {
        width_bits: 128,
        latency: 4,
    };
    c
}

/// §4 "Fast Banana Pi Sim Model": the same target clocked at 3.2 GHz to
/// mimic the K1's dual issue. Doubling the clock also (unrealistically)
/// halves cache latencies relative to DRAM — exactly the side effect the
/// paper observes in the MM/MM_st and MG results.
pub fn fast_banana_pi_sim(cores: usize) -> SocConfig {
    let mut c = banana_pi_sim(cores);
    c.name = "Fast Banana Pi Sim Model".into();
    c.freq_ghz = 3.2;
    c.hierarchy.core_freq_ghz = 3.2;
    c
}

fn boom_soc(name: &str, cores: usize, core: OooConfig, l1: CacheConfig) -> SocConfig {
    SocConfig {
        name: name.into(),
        cores,
        freq_ghz: 2.0,
        core: CoreModel::Ooo(core),
        hierarchy: HierarchyConfig {
            cores,
            l1i: l1,
            l1d: l1,
            l2: boom_l2(),
            bus: BusConfig {
                width_bits: 128,
                latency: 4,
            },
            llc: None,
            dram: DramConfig::ddr3_2000(1),
            core_freq_ghz: 2.0,
            l1_to_l2_latency: 2,
            prefetch_degree: 0, // stock BOOM has no prefetcher
        },
        is_simulation: true,
        simd_lanes: 1,
        compiler_overhead_per_mille: 200, // GCC 9.4 vs 13.2 (Table 3)
        telemetry: TelemetryConfig::disabled(),
    }
}

/// Table 4 "Small BOOM".
pub fn small_boom(cores: usize) -> SocConfig {
    boom_soc(
        "Small BOOM",
        cores,
        OooConfig::small_boom(),
        boom_small_l1(),
    )
}

/// Table 4 "Medium BOOM".
pub fn medium_boom(cores: usize) -> SocConfig {
    boom_soc(
        "Medium BOOM",
        cores,
        OooConfig::medium_boom(),
        boom_small_l1(),
    )
}

/// Table 4 "Large BOOM".
pub fn large_boom(cores: usize) -> SocConfig {
    boom_soc(
        "Large BOOM",
        cores,
        OooConfig::large_boom(),
        boom_large_l1(),
    )
}

/// §4 "MILK-V Simulation Model": Large BOOM with the MILK-V cache
/// hierarchy — 64 KiB L1s, 1 MiB L2, and a 64 MiB LLC modeled as four
/// 16 MiB SRAM-like slices on FireSim's four memory channels.
pub fn milkv_sim(cores: usize) -> SocConfig {
    let mut c = boom_soc(
        "MILK-V Sim Model",
        cores,
        OooConfig::large_boom(),
        milkv_l1(),
    );
    c.hierarchy.l2 = milkv_l2();
    c.hierarchy.llc = Some(LlcConfig {
        geometry: llc_slice(),
        slices: 4,
        data_latency: 18,
        style: LlcStyle::FiresimSram,
    });
    c.hierarchy.dram = DramConfig::ddr3_2000(4);
    c
}

// ---- hardware references ---------------------------------------------------------

/// Table 5 Banana Pi hardware column: one 4-core SpacemiT K1 cluster —
/// dual-issue 8-stage in-order cores, 32 KiB L1s, 512 KiB shared L2,
/// dual 32-bit LPDDR4-2666. No token quantization: this is silicon.
pub fn banana_pi_hw(cores: usize) -> SocConfig {
    SocConfig {
        name: "Banana Pi".into(),
        cores,
        freq_ghz: 1.6,
        core: CoreModel::InOrder(InOrderConfig::spacemit_k1()),
        hierarchy: HierarchyConfig {
            cores,
            l1i: CacheConfig {
                sets: 64,
                ways: 8,
                line_bytes: 64,
                banks: 2,
                hit_latency: 2,
                mshrs: 4,
            },
            l1d: CacheConfig {
                sets: 64,
                ways: 8,
                line_bytes: 64,
                banks: 2,
                hit_latency: 2,
                mshrs: 4,
            },
            l2: rocket_l2(4),
            bus: BusConfig {
                width_bits: 128,
                latency: 3,
            },
            llc: None,
            dram: DramConfig::lpddr4_2666(),
            core_freq_ghz: 1.6,
            l1_to_l2_latency: 2,
            prefetch_degree: 3, // the K1 ships an L2 prefetcher
        },
        is_simulation: false,
        simd_lanes: 4, // RVV 1.0, 256-bit
        compiler_overhead_per_mille: 0,
        telemetry: TelemetryConfig::disabled(),
    }
}

/// Table 5 MILK-V hardware column: a 4-core SG2042 cluster — wide OoO
/// cores, 64 KiB L1s, 1 MiB L2, latency-accurate 64 MiB LLC, 4-channel
/// DDR4-3200.
pub fn milkv_hw(cores: usize) -> SocConfig {
    SocConfig {
        name: "MILK-V Pioneer".into(),
        cores,
        freq_ghz: 2.0,
        core: CoreModel::Ooo(OooConfig::sg2042()),
        hierarchy: HierarchyConfig {
            cores,
            l1i: milkv_l1(),
            l1d: milkv_l1(),
            l2: milkv_l2(),
            bus: BusConfig {
                width_bits: 128,
                latency: 3,
            },
            llc: Some(LlcConfig {
                geometry: llc_slice(),
                slices: 4,
                data_latency: 14,
                style: LlcStyle::Silicon,
            }),
            dram: DramConfig::ddr4_3200(4),
            core_freq_ghz: 2.0,
            l1_to_l2_latency: 2,
            prefetch_degree: 4, // the SG2042's XuanTie C920 prefetches
        },
        is_simulation: false,
        simd_lanes: 2, // XuanTie C920: 128-bit vector
        compiler_overhead_per_mille: 0,
        telemetry: TelemetryConfig::disabled(),
    }
}

/// Every named platform of the catalog — the ten configs `bsim list`
/// prints and a service request may reference by name: the four Rocket
/// variants, the four BOOM variants, and the two silicon references.
pub fn catalog(cores: usize) -> Vec<SocConfig> {
    let mut all = rocket_family(cores);
    all.extend(boom_family(cores));
    all.push(banana_pi_hw(cores));
    all.push(milkv_hw(cores));
    all
}

/// Look up a cataloged platform by its display name, case-insensitively.
pub fn by_name(name: &str, cores: usize) -> Option<SocConfig> {
    catalog(cores)
        .into_iter()
        .find(|p| p.name.eq_ignore_ascii_case(name))
}

/// All FireSim Rocket-side configs of Figure 1/3, in figure order.
pub fn rocket_family(cores: usize) -> Vec<SocConfig> {
    vec![
        rocket1(cores),
        rocket2(cores),
        banana_pi_sim(cores),
        fast_banana_pi_sim(cores),
    ]
}

/// All FireSim BOOM-side configs of Figure 2/4, in figure order.
pub fn boom_family(cores: usize) -> Vec<SocConfig> {
    vec![
        small_boom(cores),
        medium_boom(cores),
        large_boom(cores),
        milkv_sim(cores),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_capacities_match_table5() {
        assert_eq!(rocket_l1().capacity(), 32 * 1024);
        assert_eq!(rocket_l2(4).capacity(), 512 * 1024);
        assert_eq!(milkv_l1().capacity(), 64 * 1024);
        assert_eq!(milkv_l2().capacity(), 1024 * 1024);
        assert_eq!(llc_slice().capacity() * 4, 64 * 1024 * 1024);
        assert_eq!(boom_small_l1().capacity(), 16 * 1024);
        assert_eq!(boom_large_l1().capacity(), 32 * 1024);
    }

    #[test]
    fn rocket_variants_differ_as_table4_says() {
        let r1 = rocket1(4);
        let r2 = rocket2(4);
        let bps = banana_pi_sim(4);
        let fast = fast_banana_pi_sim(4);
        assert_eq!(r1.hierarchy.l2.banks, 1);
        assert_eq!(r2.hierarchy.l2.banks, 4);
        assert_eq!(r1.hierarchy.bus.width_bits, 64);
        assert_eq!(r2.hierarchy.bus.width_bits, 64);
        assert_eq!(bps.hierarchy.bus.width_bits, 128);
        assert_eq!(fast.freq_ghz, 3.2);
        assert_eq!(bps.freq_ghz, 1.6);
    }

    #[test]
    fn boom_family_grows_monotonically() {
        let s = small_boom(1);
        let m = medium_boom(1);
        let l = large_boom(1);
        let (CoreModel::Ooo(sc), CoreModel::Ooo(mc), CoreModel::Ooo(lc)) =
            (&s.core, &m.core, &l.core)
        else {
            panic!("BOOM configs must be OoO")
        };
        assert!(sc.rob < mc.rob && mc.rob < lc.rob);
        assert!(sc.decode_width < mc.decode_width && mc.decode_width < lc.decode_width);
        assert!(sc.ldq < mc.ldq && mc.ldq < lc.ldq);
    }

    #[test]
    fn simulation_models_use_ddr3_hardware_does_not() {
        // The paper's central limitation: FireSim only supports DDR3.
        for cfg in rocket_family(4).iter().chain(boom_family(4).iter()) {
            assert!(cfg.is_simulation);
            assert!(
                cfg.hierarchy.dram.name.starts_with("DDR3"),
                "{} must use FireSim's DDR3 model",
                cfg.name
            );
        }
        assert!(banana_pi_hw(4).hierarchy.dram.name.starts_with("LPDDR4"));
        assert!(milkv_hw(4).hierarchy.dram.name.starts_with("DDR4"));
    }

    #[test]
    fn milkv_llc_styles_differ() {
        use bsim_mem::llc::LlcStyle;
        assert_eq!(
            milkv_sim(4).hierarchy.llc.unwrap().style,
            LlcStyle::FiresimSram
        );
        assert_eq!(milkv_hw(4).hierarchy.llc.unwrap().style, LlcStyle::Silicon);
    }

    #[test]
    fn catalog_covers_every_named_platform() {
        let names: Vec<String> = catalog(1).into_iter().map(|c| c.name).collect();
        assert_eq!(names.len(), 10);
        for n in [
            "Rocket 1",
            "MILK-V Sim Model",
            "Banana Pi",
            "MILK-V Pioneer",
        ] {
            assert!(names.iter().any(|c| c == n), "missing {n}");
        }
        assert_eq!(by_name("rocket 1", 2).unwrap().cores, 2);
        assert!(by_name("Pentium", 1).is_none());
    }

    #[test]
    fn seconds_conversion() {
        let c = rocket1(1);
        assert!((c.seconds(1_600_000_000) - 1.0).abs() < 1e-12);
        let f = fast_banana_pi_sim(1);
        assert!((f.seconds(3_200_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hardware_k1_is_dual_issue() {
        let CoreModel::InOrder(k1) = banana_pi_hw(4).core else {
            panic!()
        };
        assert_eq!(k1.issue_width, 2);
        assert_eq!(k1.pipeline_depth, 8);
        let CoreModel::InOrder(rk) = rocket1(4).core else {
            panic!()
        };
        assert_eq!(rk.issue_width, 1);
        assert_eq!(rk.pipeline_depth, 5);
    }
}

//! The runnable SoC: cores + hierarchy + clock.

use crate::configs::{CoreModel, SocConfig};
use bsim_isa::{Cpu, Program, RunResult};
use bsim_mem::{MemStats, MemoryHierarchy};
use bsim_resilience::snapshot::{field, restore_field, CkptError, Snapshot};
use bsim_telemetry::{Telemetry, TelemetrySnapshot};
use bsim_uarch::{CoreStats, InOrderCore, MicroOp, OooCore, TimingCore};
use serde::{Deserialize, Serialize, Value};

/// One instantiated core (either timing model).
pub enum CoreInst {
    /// In-order instance.
    InOrder(InOrderCore),
    /// Out-of-order instance.
    Ooo(OooCore),
}

impl TimingCore for CoreInst {
    fn consume(&mut self, uop: &MicroOp, mem: &mut MemoryHierarchy, core_id: usize) {
        match self {
            CoreInst::InOrder(c) => c.consume(uop, mem, core_id),
            CoreInst::Ooo(c) => c.consume(uop, mem, core_id),
        }
    }
    fn finish(&mut self) -> u64 {
        match self {
            CoreInst::InOrder(c) => c.finish(),
            CoreInst::Ooo(c) => c.finish(),
        }
    }
    fn cycles(&self) -> u64 {
        match self {
            CoreInst::InOrder(c) => c.cycles(),
            CoreInst::Ooo(c) => c.cycles(),
        }
    }
    fn retired(&self) -> u64 {
        match self {
            CoreInst::InOrder(c) => c.retired(),
            CoreInst::Ooo(c) => c.retired(),
        }
    }
    fn stats(&self) -> CoreStats {
        match self {
            CoreInst::InOrder(c) => c.stats(),
            CoreInst::Ooo(c) => c.stats(),
        }
    }
    fn advance_to(&mut self, cycle: u64) {
        match self {
            CoreInst::InOrder(c) => c.advance_to(cycle),
            CoreInst::Ooo(c) => c.advance_to(cycle),
        }
    }
}

impl CoreInst {
    /// `(skipped_cycles, spans)` the timing model bulk-advanced past
    /// instead of stepping — the trace-driven analogue of the harness
    /// quiescence fast-forward (see `TickModel::next_activity`).
    fn ff_stats(&self) -> (u64, u64) {
        match self {
            CoreInst::InOrder(c) => c.ff_stats(),
            CoreInst::Ooo(c) => c.ff_stats(),
        }
    }
}

/// Result of running a workload on an SoC.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunReport {
    /// Platform name.
    pub platform: String,
    /// Total target cycles.
    pub cycles: u64,
    /// Retired instructions / micro-ops.
    pub retired: u64,
    /// Target wall time in seconds at the platform clock.
    pub seconds: f64,
    /// Per-core stats (index = core id).
    pub core_stats: Vec<CoreStats>,
    /// Memory-system stats.
    pub mem_stats: MemStats,
    /// Functional exit code, when the workload was an ISA program.
    pub exit_code: Option<i64>,
    /// Out-of-band telemetry export; `None` unless the platform config
    /// enabled it (see [`SocConfig::with_telemetry`]).
    pub telemetry: Option<TelemetrySnapshot>,
}

impl RunReport {
    /// Aggregate instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }
}

/// Rebuilds a struct whose fields are all `u64` from a checkpoint map,
/// one `restore_field` per named field. `CoreStats` and `MemStats` live
/// in foreign crates, so their restore paths are free functions here
/// (the orphan rule forbids `impl Snapshot for CoreStats` outside the
/// crate that owns one of the two).
macro_rules! restore_u64_struct {
    ($value:expr, $ty:ident { $($f:ident),* $(,)? }) => {
        Ok($ty { $($f: restore_field($value, stringify!($f))?),* })
    };
}

fn core_stats_from(value: &Value) -> Result<CoreStats, CkptError> {
    restore_u64_struct!(
        value,
        CoreStats {
            cycles,
            retired,
            branches,
            mispredicts,
            fetch_stall_cycles,
            data_stall_cycles,
            structural_stall_cycles,
            tlb_stall_cycles,
            loads,
            stores,
            branch_lookups,
            fetch_lines,
            rob_high_water,
            lsq_high_water,
        }
    )
}

fn mem_stats_from(value: &Value) -> Result<MemStats, CkptError> {
    restore_u64_struct!(
        value,
        MemStats {
            l1d_accesses,
            l1d_misses,
            l1i_accesses,
            l1i_misses,
            l2_accesses,
            l2_misses,
            llc_accesses,
            llc_misses,
            dram_reads,
            dram_writes,
            dram_row_hits,
            dram_row_misses,
            dram_token_stall_cycles,
            writebacks,
            bank_conflict_cycles,
            mshr_stall_cycles,
            bus_busy_cycles,
            prefetches,
        }
    )
}

/// Checkpoint form of a finished (or mid-sweep) run result.
///
/// Telemetry is deliberately **not** checkpointed: `TelemetrySnapshot`
/// is an observational export with no restore path, so `save` writes
/// `Null` for it and a restored report always carries `telemetry:
/// None`. Everything architectural — cycles, retired, per-core and
/// memory counters, the exit code — roundtrips exactly, which is what
/// the resume-bit-identity tests compare.
impl Snapshot for RunReport {
    fn save(&self) -> Value {
        Value::Map(vec![
            ("platform".into(), self.platform.save()),
            ("cycles".into(), self.cycles.save()),
            ("retired".into(), self.retired.save()),
            ("seconds".into(), self.seconds.save()),
            (
                "core_stats".into(),
                Value::Seq(self.core_stats.iter().map(|s| s.to_value()).collect()),
            ),
            ("mem_stats".into(), self.mem_stats.to_value()),
            (
                "exit_code".into(),
                match self.exit_code {
                    Some(code) => Value::I64(code),
                    None => Value::Null,
                },
            ),
            ("telemetry".into(), Value::Null),
        ])
    }

    fn restore(value: &Value) -> Result<RunReport, CkptError> {
        let stats_seq = field(value, "core_stats")?
            .as_seq()
            .ok_or(CkptError::WrongType {
                field: "core_stats".into(),
                expected: "sequence",
            })?;
        Ok(RunReport {
            platform: restore_field(value, "platform")?,
            cycles: restore_field(value, "cycles")?,
            retired: restore_field(value, "retired")?,
            seconds: restore_field(value, "seconds")?,
            core_stats: stats_seq
                .iter()
                .map(core_stats_from)
                .collect::<Result<_, _>>()?,
            mem_stats: mem_stats_from(field(value, "mem_stats")?)?,
            exit_code: restore_field(value, "exit_code")?,
            telemetry: None,
        })
    }
}

/// A runnable SoC instance.
pub struct Soc {
    cfg: SocConfig,
    cores: Vec<CoreInst>,
    hierarchy: MemoryHierarchy,
    telemetry: Telemetry,
}

impl Soc {
    /// Instantiates the platform after a mandatory static preflight
    /// (see [`crate::preflight`]). Panics with the rendered diagnostics
    /// if the config has errors; use [`Soc::try_new`] for a typed
    /// result. Warnings do not block — the §4 tuning loop deliberately
    /// drifts configs — but errors mean the run would hang or lie.
    pub fn new(cfg: SocConfig) -> Soc {
        match Soc::try_new(cfg) {
            Ok(soc) => soc,
            Err(report) => panic!("invalid platform config:\n{}", report.render()),
        }
    }

    /// [`Soc::new`] with the preflight surfaced: returns the full
    /// diagnostic report instead of panicking when the config has
    /// error-severity findings.
    pub fn try_new(cfg: SocConfig) -> Result<Soc, bsim_check::Report> {
        let report = crate::preflight::preflight(&cfg);
        if report.has_errors() {
            return Err(report);
        }
        let cores = (0..cfg.cores)
            .map(|_| match &cfg.core {
                CoreModel::InOrder(c) => CoreInst::InOrder(InOrderCore::new(c.clone())),
                CoreModel::Ooo(c) => CoreInst::Ooo(OooCore::new(c.clone())),
            })
            .collect();
        let hierarchy = MemoryHierarchy::new(cfg.hierarchy.clone());
        let telemetry = Telemetry::new(cfg.telemetry);
        Ok(Soc {
            cfg,
            cores,
            hierarchy,
            telemetry,
        })
    }

    /// The platform configuration.
    pub fn config(&self) -> &SocConfig {
        &self.cfg
    }

    /// The run's telemetry state, for out-of-band counters owned by
    /// layers above the SoC (MPI ranks, the engine harness).
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// Feeds one micro-op to core `core_id`.
    pub fn consume(&mut self, core_id: usize, uop: &MicroOp) {
        self.cores[core_id].consume(uop, &mut self.hierarchy, core_id);
        if self.telemetry.enabled() {
            let cycle = self.cores[core_id].cycles();
            observe_retire(
                &mut self.telemetry,
                &self.cores[core_id],
                &self.hierarchy,
                core_id,
                uop,
                cycle,
            );
        }
    }

    /// Current cycle count of core `core_id`.
    pub fn core_cycles(&self, core_id: usize) -> u64 {
        self.cores[core_id].cycles()
    }

    /// Advances core `core_id`'s clock (MPI wait accounting).
    pub fn advance_core(&mut self, core_id: usize, cycle: u64) {
        self.cores[core_id].advance_to(cycle);
    }

    /// Drains all cores and produces a report. The SoC remains usable;
    /// cycle counters continue from where they are.
    pub fn report(&mut self, exit_code: Option<i64>) -> RunReport {
        let mut cycles = 0;
        let mut retired = 0;
        let mut core_stats = Vec::with_capacity(self.cores.len());
        for c in &mut self.cores {
            cycles = cycles.max(c.finish());
            retired += c.retired();
            core_stats.push(c.stats());
        }
        let mem_stats = self.hierarchy.stats();
        if self.telemetry.enabled() {
            for (i, s) in core_stats.iter().enumerate() {
                s.publish(&format!("tile{i}"), self.telemetry.counters_mut());
            }
            mem_stats.publish("mem", self.telemetry.counters_mut());
            self.telemetry
                .counters_mut()
                .set_named("soc.cycles", cycles);
            self.telemetry
                .counters_mut()
                .set_named("soc.retired", retired);
            // Host-side fast-forward accounting: cycles the timing models
            // jumped past in bulk (stall spans, drain waits) rather than
            // stepping. `host.` keeps it out of deterministic compares.
            let (skipped, spans) = self
                .cores
                .iter()
                .map(CoreInst::ff_stats)
                .fold((0, 0), |(s, p), (ds, dp)| (s + ds, p + dp));
            self.telemetry
                .counters_mut()
                .set_named("host.engine.skipped_cycles", skipped);
            self.telemetry
                .counters_mut()
                .set_named("host.engine.ff_spans", spans);
            self.telemetry.tick(cycles);
        }
        RunReport {
            platform: self.cfg.name.clone(),
            cycles,
            retired,
            seconds: self.cfg.seconds(cycles),
            core_stats,
            mem_stats,
            exit_code,
            telemetry: self.telemetry.snapshot(),
        }
    }

    /// Runs an assembled RV64 program to completion on core `core_id`,
    /// feeding every retired instruction through the timing model.
    ///
    /// This is the MicroBench execution path: functional interpretation
    /// with cycle-level timing, exactly one timing sample per dynamic
    /// instruction.
    pub fn run_program(&mut self, core_id: usize, prog: &Program, fuel: u64) -> RunReport {
        let mut cpu = Cpu::new(prog);
        let core = &mut self.cores[core_id];
        let hierarchy = &mut self.hierarchy;
        let telemetry = &mut self.telemetry;
        let result = cpu.run_traced(fuel, |ret| {
            let uop = MicroOp::from_retired(ret);
            core.consume(&uop, hierarchy, core_id);
            if telemetry.enabled() {
                let cycle = core.cycles();
                observe_retire(telemetry, core, hierarchy, core_id, &uop, cycle);
            }
        });
        let exit = match result {
            RunResult::Exited(code) => Some(code),
            RunResult::OutOfFuel => None,
            RunResult::Trapped(t) => panic!("workload trapped on {}: {t:?}", self.cfg.name),
        };
        self.report(exit)
    }
}

/// Records one committed instruction into the trace ring and, when a
/// sample window boundary is crossed, refreshes the published counters so
/// the timeline snapshot sees current values. Takes shared borrows of the
/// core and hierarchy so it is callable from inside `run_traced`'s retire
/// closure, where both are already mutably borrowed by the timing path.
fn observe_retire(
    telemetry: &mut Telemetry,
    core: &CoreInst,
    hierarchy: &MemoryHierarchy,
    core_id: usize,
    uop: &MicroOp,
    cycle: u64,
) {
    telemetry.trace_mut().record(uop.pc, uop.class as u8, cycle);
    if telemetry.sample_due(cycle) {
        core.stats()
            .publish(&format!("tile{core_id}"), telemetry.counters_mut());
        hierarchy.stats().publish("mem", telemetry.counters_mut());
        telemetry.tick(cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;
    use bsim_isa::reg::*;
    use bsim_isa::Asm;
    use bsim_telemetry::TelemetryConfig;

    /// A small pointer-chase + arithmetic kernel for smoke-testing.
    fn kernel(iters: i64) -> Program {
        let mut a = Asm::new();
        a.li(T0, 0).li(T1, iters).li(T2, 0);
        a.label("loop");
        a.addi(T2, T2, 3);
        a.mul(T3, T2, T2);
        a.addi(T0, T0, 1);
        a.blt(T0, T1, "loop");
        a.exit(0);
        a.assemble().unwrap()
    }

    #[test]
    fn rocket_runs_a_program() {
        let mut soc = Soc::new(configs::rocket1(1));
        let rep = soc.run_program(0, &kernel(1000), 1_000_000);
        assert_eq!(rep.exit_code, Some(0));
        assert!(rep.retired > 4000);
        assert!(
            rep.cycles > rep.retired,
            "single-issue cannot exceed IPC 1 on this kernel"
        );
        assert!(rep.seconds > 0.0);
    }

    #[test]
    fn run_report_snapshot_roundtrips_except_telemetry() {
        let mut soc = Soc::new(configs::rocket1(2).with_telemetry(TelemetryConfig::counters()));
        let rep = soc.run_program(0, &kernel(500), 1_000_000);
        assert!(
            rep.telemetry.is_some(),
            "test wants a telemetry-bearing run"
        );

        let restored = RunReport::restore(&rep.save()).unwrap();
        assert_eq!(restored.platform, rep.platform);
        assert_eq!(restored.cycles, rep.cycles);
        assert_eq!(restored.retired, rep.retired);
        assert_eq!(restored.seconds, rep.seconds);
        assert_eq!(restored.core_stats, rep.core_stats);
        assert_eq!(restored.mem_stats, rep.mem_stats);
        assert_eq!(restored.exit_code, rep.exit_code);
        assert!(
            restored.telemetry.is_none(),
            "telemetry is observational and not checkpointed"
        );

        // A second save of the restored report is identical: the
        // checkpoint form is a fixed point.
        assert_eq!(restored.save(), rep.save());

        // Shape errors are typed, not panics.
        assert!(matches!(
            RunReport::restore(&Value::U64(3)),
            Err(CkptError::MissingField { .. })
        ));
    }

    #[test]
    fn boom_beats_rocket_on_ilp_kernel() {
        let prog = kernel(2000);
        let mut rocket = Soc::new(configs::rocket1(1));
        let mut boom = Soc::new(configs::large_boom(1));
        let r = rocket.run_program(0, &prog, 10_000_000);
        let b = boom.run_program(0, &prog, 10_000_000);
        assert!(
            b.cycles < r.cycles,
            "Large BOOM must beat Rocket on an ILP kernel: {} vs {}",
            b.cycles,
            r.cycles
        );
    }

    #[test]
    fn fast_model_is_cycle_identical_but_time_faster() {
        // Doubling the clock does not change cycle counts of a pure-ALU
        // kernel (no DRAM in the loop) but halves seconds.
        let prog = kernel(500);
        let mut base = Soc::new(configs::banana_pi_sim(1));
        let mut fast = Soc::new(configs::fast_banana_pi_sim(1));
        let rb = base.run_program(0, &prog, 10_000_000);
        let rf = fast.run_program(0, &prog, 10_000_000);
        // DRAM timings are ns-based so the fast model spends *more cycles*
        // on misses; for this cache-resident kernel the counts are close.
        let ratio = rf.cycles as f64 / rb.cycles as f64;
        assert!((0.95..=1.1).contains(&ratio), "cycle ratio {ratio}");
        assert!(rf.seconds < rb.seconds * 0.6);
    }

    #[test]
    fn report_includes_mem_stats() {
        let mut soc = Soc::new(configs::milkv_sim(1));
        let rep = soc.run_program(0, &kernel(100), 1_000_000);
        assert!(rep.mem_stats.l1i_accesses > 0);
        assert_eq!(rep.platform, "MILK-V Sim Model");
    }

    #[test]
    fn telemetry_export_has_nonzero_counters_timeline_and_trace() {
        use bsim_telemetry::TelemetryConfig;
        let tcfg = TelemetryConfig {
            enabled: true,
            sample_interval_cycles: 500,
            trace_capacity: 64,
            trace_sample_period: 1,
        };
        let mut soc = Soc::new(configs::rocket1(1).with_telemetry(tcfg));
        let rep = soc.run_program(0, &kernel(1000), 1_000_000);
        let snap = rep.telemetry.expect("enabled telemetry exports a snapshot");
        assert!(snap.counter("tile0.retired").unwrap_or(0) > 0);
        assert!(snap.counter("tile0.branch.lookups").unwrap_or(0) > 0);
        assert!(snap.counter("mem.l1i.accesses").unwrap_or(0) > 0);
        assert_eq!(snap.counter("soc.cycles"), Some(rep.cycles));
        assert!(
            !snap.timeline.is_empty(),
            "sampler should fire within {} cycles",
            rep.cycles
        );
        assert_eq!(snap.trace.len(), 64, "period-1 trace fills its ring");
        assert!(snap.to_json().contains("tile0.retired"));
    }

    /// A strided-load kernel that misses every cache level: each load
    /// touches a new 4 KiB-distant line, so the core spends most of its
    /// cycles stalled on DRAM.
    fn strided_loads(iters: i64) -> Program {
        let mut a = Asm::new();
        a.li(T0, 0x10_0000).li(T1, iters).li(T2, 0);
        a.label("loop");
        a.ld(T3, 0, T0);
        a.addi(T4, T3, 1); // consume the load: scoreboard stalls to DRAM
        a.addi(T0, T0, 2047);
        a.addi(T0, T0, 2047);
        a.addi(T2, T2, 1);
        a.blt(T2, T1, "loop");
        a.exit(0);
        a.assemble().unwrap()
    }

    #[test]
    fn memory_bound_run_reports_skipped_cycles_in_exports() {
        use bsim_telemetry::TelemetryConfig;
        let mut soc = Soc::new(configs::rocket1(1).with_telemetry(TelemetryConfig::counters()));
        let rep = soc.run_program(0, &strided_loads(400), 10_000_000);
        assert_eq!(rep.exit_code, Some(0));
        let snap = rep.telemetry.expect("telemetry enabled");
        let skipped = snap.counter("host.engine.skipped_cycles").unwrap_or(0);
        let spans = snap.counter("host.engine.ff_spans").unwrap_or(0);
        assert!(
            skipped > rep.cycles / 4,
            "a DRAM-bound kernel should fast-forward a large cycle share: \
             skipped {skipped} of {} cycles",
            rep.cycles
        );
        assert!(
            spans > 0 && skipped >= spans,
            "{spans} spans, {skipped} skipped"
        );
        // The counters ride the standard export paths.
        assert!(snap.to_json().contains("host.engine.skipped_cycles"));
        assert!(snap
            .counters_csv()
            .contains(&format!("host.engine.skipped_cycles,{skipped}\n")));
    }

    #[test]
    fn disabled_telemetry_is_absent_and_cycle_neutral() {
        use bsim_telemetry::TelemetryConfig;
        let prog = kernel(800);
        let mut off = Soc::new(configs::rocket1(1));
        let mut on = Soc::new(configs::rocket1(1).with_telemetry(TelemetryConfig::full()));
        let ro = off.run_program(0, &prog, 10_000_000);
        let rn = on.run_program(0, &prog, 10_000_000);
        assert!(ro.telemetry.is_none());
        assert!(rn.telemetry.is_some());
        assert_eq!(
            ro.cycles, rn.cycles,
            "telemetry must not change simulated timing"
        );
        assert_eq!(ro.retired, rn.retired);
        assert_eq!(ro.mem_stats, rn.mem_stats);
    }

    #[test]
    fn report_is_idempotent() {
        // `report` drains the cores but must not consume anything:
        // calling it again without running more work has to produce the
        // same cycles, retired count, stats, and telemetry export —
        // counters are published with set-not-add semantics and the
        // timeline sampler must not emit a duplicate sample at the same
        // cycle.
        use bsim_telemetry::TelemetryConfig;
        let mut soc = Soc::new(configs::rocket1(1).with_telemetry(TelemetryConfig::full()));
        let first = soc.run_program(0, &kernel(800), 10_000_000);
        let second = soc.report(first.exit_code);
        assert_eq!(first.cycles, second.cycles, "cycles must not double-count");
        assert_eq!(first.retired, second.retired);
        assert_eq!(first.core_stats, second.core_stats);
        assert_eq!(first.mem_stats, second.mem_stats);
        assert_eq!(first.seconds, second.seconds);
        let (t1, t2) = (first.telemetry.unwrap(), second.telemetry.unwrap());
        assert_eq!(t1.counters, t2.counters, "set-not-add publish");
        assert_eq!(t1.timeline, t2.timeline, "no duplicate boundary sample");
        assert_eq!(t1.trace, t2.trace);
    }

    #[test]
    fn try_new_reports_bad_configs_instead_of_instantiating() {
        let mut cfg = configs::rocket1(2);
        cfg.hierarchy.cores = 1; // SC003: hierarchy sized for the wrong SoC
        let Err(report) = Soc::try_new(cfg) else {
            panic!("preflight must reject a mis-sized hierarchy")
        };
        assert!(report.has_code("SC003"), "{}", report.render());
        // Warnings alone do not block construction.
        let mut cfg = configs::rocket1(1);
        cfg.hierarchy.core_freq_ghz = 2.5; // SC004 warning
        assert!(Soc::try_new(cfg).is_ok());
    }

    #[test]
    #[should_panic(expected = "SC003")]
    fn new_panics_with_rendered_diagnostics() {
        let mut cfg = configs::rocket1(2);
        cfg.hierarchy.cores = 1;
        let _ = Soc::new(cfg);
    }

    #[test]
    fn multi_core_soc_tracks_independent_clocks() {
        let mut soc = Soc::new(configs::rocket1(2));
        let uop = bsim_uarch::MicroOp::alu(0x1_0000, Some(5), [None; 3]);
        for _ in 0..100 {
            soc.consume(0, &uop);
        }
        assert!(soc.core_cycles(0) >= 99);
        assert_eq!(soc.core_cycles(1), 0);
        soc.advance_core(1, 50);
        assert_eq!(soc.core_cycles(1), 50);
    }
}

//! # bsim-soc — SoC assembly and the paper's platform catalog
//!
//! Combines a core timing model (`bsim-uarch`), a memory hierarchy
//! (`bsim-mem`) and a clock into a runnable [`Soc`], and provides every
//! **named configuration** the paper evaluates:
//!
//! | Config | Paper reference |
//! |---|---|
//! | [`configs::rocket1`] | Table 4 "Rocket 1" (Huge Rocket, 1 L2 bank, 64-bit bus) |
//! | [`configs::rocket2`] | Table 4 "Rocket 2" (4 L2 banks) |
//! | [`configs::banana_pi_sim`] | §4 "Banana Pi Sim Model" (4 banks + 128-bit bus) |
//! | [`configs::fast_banana_pi_sim`] | §4 "Fast Banana Pi Sim Model" (clock ×2 → 3.2 GHz) |
//! | [`configs::small_boom`] / [`configs::medium_boom`] / [`configs::large_boom`] | Table 4 BOOM rows |
//! | [`configs::milkv_sim`] | §4 "MILK-V Simulation Model" (tuned Large BOOM) |
//! | [`configs::banana_pi_hw`] | Table 5 Banana Pi hardware column (dual-issue 8-stage K1, LPDDR4-2666) |
//! | [`configs::milkv_hw`] | Table 5 MILK-V hardware column (SG2042, DDR4-3200, 64 MiB LLC) |
//!
//! The FireSim-hosted configurations use the DDR3-2000 FR-FCFS quad-rank
//! memory model with token quantization; the hardware references use the
//! real parts' memory (LPDDR4 / DDR4) — reproducing the central
//! limitation the paper keeps returning to: *FireSim only has DDR3*.

pub mod configs;
pub mod partition;
pub mod preflight;
pub mod runner;

pub use bsim_telemetry::{GapReport, TelemetryConfig, TelemetrySnapshot};
pub use configs::{CoreModel, SocConfig};
pub use preflight::{preflight, preflight_all};
pub use runner::{CoreInst, RunReport, Soc};

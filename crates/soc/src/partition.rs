//! Model-graph partitioning for multi-core SoCs.
//!
//! The FireSim setup the paper describes spans FPGAs by cutting the
//! target graph along its token links and giving each partition to one
//! host; `bsim-dist` does the same across OS processes. This module
//! computes the SoC-side plan: which cores land on which rank, and the
//! wire list (the nearest-neighbor ring the MPI workloads exercise) the
//! `DL`-series lints validate before any process is spawned.

use bsim_check::rules::{partition_lints, PartitionSpec};
use bsim_check::Report;

/// Contiguous block assignment of `cores` core models to `ranks`
/// partitions: neighboring cores exchange the most ring traffic, so
/// blocks keep the heavy wires in-process and only the block seams
/// become socket links. Ranks beyond the core count get no cores;
/// [`plan_cores`] shrinks the plan to the effective rank count so an
/// oversubscribed request never produces a rank whose rendezvous would
/// wait forever (the DL006 error).
pub fn core_assignment(cores: usize, ranks: usize) -> Vec<usize> {
    assert!(ranks >= 1);
    let eff = ranks.min(cores.max(1));
    let base = cores / eff;
    let rem = cores % eff;
    (0..eff)
        .flat_map(|r| std::iter::repeat_n(r, base + usize::from(r < rem)))
        .collect()
}

/// Builds and lints the partition plan for a `cores`-core SoC whose
/// cores are ringed by `link_latency`-cycle wires, batched at
/// `quantum`. A `ranks` beyond the core count is clamped to the core
/// count — extra ranks would own no models and deadlock at the link
/// rendezvous (DL006). The returned [`Report`] carries any DL findings
/// plus the DD-series cross-rank deadlock analysis; an errored report
/// means the plan must not launch.
pub fn plan_cores(
    cores: usize,
    ranks: usize,
    link_latency: u64,
    quantum: usize,
) -> (PartitionSpec, Report) {
    assert!(ranks >= 1);
    let eff = ranks.min(cores.max(1));
    let wires = if cores > 1 {
        (0..cores)
            .map(|i| (i, (i + 1) % cores, link_latency))
            .collect()
    } else {
        Vec::new()
    };
    let spec = PartitionSpec {
        ranks: eff,
        assignment: core_assignment(cores, eff),
        wires,
        quantum,
    };
    let mut report = partition_lints().run(&spec, "soc.partition");
    // Graph execution always fast-forwards (`RankGraph::new(.., true)`),
    // so the deadlock analysis licenses the same way.
    report.merge(bsim_check::dd::analyze_partition(
        &spec,
        true,
        "soc.partition",
    ));
    (spec, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_assignment_keeps_neighbors_together() {
        assert_eq!(core_assignment(4, 2), vec![0, 0, 1, 1]);
        assert_eq!(core_assignment(5, 2), vec![0, 0, 0, 1, 1]);
        assert_eq!(core_assignment(2, 2), vec![0, 1]);
        // Clamped: 2 cores cannot feed 4 ranks.
        assert_eq!(core_assignment(2, 4), vec![0, 1]);
    }

    #[test]
    fn sane_ring_plans_lint_clean() {
        let (spec, report) = plan_cores(4, 2, 16, 16);
        assert!(report.is_clean(), "{report}");
        // Exactly the two block seams are cut.
        assert_eq!(spec.cut_wires().count(), 2);
    }

    #[test]
    fn tight_ring_draws_dl005() {
        let (_, report) = plan_cores(4, 2, 1, 16);
        assert!(report.has_code("DL005"), "{report}");
        assert!(!report.has_errors());
    }

    #[test]
    fn oversubscribed_ranks_are_clamped_to_the_core_count() {
        // 2 cores cannot feed 4 ranks; the plan shrinks to 2 ranks
        // rather than shipping empty ranks that would deadlock at the
        // link rendezvous (DL006) or merely idle (DL003).
        let (spec, report) = plan_cores(2, 4, 16, 8);
        assert_eq!(spec.ranks, 2);
        assert!(!report.has_code("DL003"), "{report}");
        assert!(!report.has_code("DL006"), "{report}");
        assert!(!report.has_errors(), "{report}");
    }
}

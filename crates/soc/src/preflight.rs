//! Platform preflight: SoC-level consistency (`SC0xx`) and paper-fidelity
//! (`PF0xx`) rules, run before any cycle is simulated.
//!
//! FireSim rejects malformed targets at elaboration, before FPGA bitstream
//! time is spent; [`preflight`] is the software analogue for a
//! [`SocConfig`] — it composes the `bsim-check` hierarchy/core lints with
//! the rules only this crate can know:
//!
//! * `SC0xx` — internal consistency: the core count, clock, and hierarchy
//!   must agree with themselves.
//! * `PF0xx` — paper fidelity: a platform claiming to be a FireSim model
//!   or a §3.2 silicon reference (SpacemiT K1 / SOPHON SG2042) must carry
//!   that platform's published parameters. These are warnings: drifting
//!   is allowed (the §4 tuning loop does it deliberately), but it must be
//!   visible, because a drifted "reference" silently invalidates every
//!   simulation-vs-silicon gap the sweep reports.
//!
//! [`Soc::new`](crate::runner::Soc::new) runs this check and panics on
//! errors; [`Soc::try_new`](crate::runner::Soc::try_new) returns the
//! report for callers that want to render or export it.

use crate::configs::{CoreModel, SocConfig};
use bsim_check::rules::{lint_hierarchy, lint_inorder, lint_ooo};
use bsim_check::{Diagnostic, LintRegistry, Report};
use bsim_uarch::{InOrderConfig, OooConfig};

/// `SC001`–`SC005`, `PF001`–`PF002`: SoC-level consistency and
/// simulation-fidelity rules.
pub fn soc_lints() -> LintRegistry<SocConfig> {
    LintRegistry::new()
        .rule("SC001", "a platform needs cores", |c: &SocConfig, span, out| {
            if c.cores == 0 {
                out.push(Diagnostic::error("SC001", span, "cores = 0: nothing to simulate"));
            }
        })
        .rule("SC002", "clock must be positive and finite", |c, span, out| {
            if !c.freq_ghz.is_finite() || c.freq_ghz <= 0.0 {
                out.push(Diagnostic::error(
                    "SC002",
                    span,
                    format!("freq_ghz = {} must be positive and finite", c.freq_ghz),
                ));
            }
        })
        .rule("SC003", "hierarchy core count must match the SoC", |c, span, out| {
            if c.hierarchy.cores != c.cores {
                out.push(
                    Diagnostic::error(
                        "SC003",
                        span,
                        format!(
                            "SoC instantiates {} core(s) but the hierarchy is sized for {}",
                            c.cores, c.hierarchy.cores
                        ),
                    )
                    .with_help("shared L2/LLC contention modeling depends on the hierarchy knowing the real core count"),
                );
            }
        })
        .rule("SC004", "hierarchy clock must match the SoC clock", |c, span, out| {
            if (c.hierarchy.core_freq_ghz - c.freq_ghz).abs() > 1e-9 {
                out.push(
                    Diagnostic::warning(
                        "SC004",
                        span,
                        format!(
                            "freq_ghz = {} but hierarchy.core_freq_ghz = {}: DRAM ns-to-cycle conversion uses the hierarchy clock",
                            c.freq_ghz, c.hierarchy.core_freq_ghz
                        ),
                    )
                    .with_help("keep both clocks equal or memory latencies silently scale by the ratio"),
                );
            }
        })
        .rule("SC005", "SIMD lanes must be >= 1", |c, span, out| {
            if c.simd_lanes == 0 {
                out.push(Diagnostic::error(
                    "SC005",
                    span,
                    "simd_lanes = 0: vectorizable regions would retire zero ops",
                ));
            }
        })
        .rule("PF001", "FireSim models memory as DDR3", |c, span, out| {
            if c.is_simulation && !c.hierarchy.dram.name.starts_with("DDR3") {
                out.push(
                    Diagnostic::warning(
                        "PF001",
                        format!("{span}.hierarchy.dram"),
                        format!(
                            "simulation platform uses '{}' but FireSim's only memory model is DDR3 FR-FCFS",
                            c.hierarchy.dram.name
                        ),
                    )
                    .with_help("the paper's central limitation (§3.2.2): a FireSim target cannot model the silicon's LPDDR4/DDR4"),
                );
            }
        })
        .rule("PF002", "token quantization matches the host", |c, span, out| {
            let q = c.hierarchy.dram.token_quantum_cycles;
            if c.is_simulation && q < 2 {
                out.push(
                    Diagnostic::warning(
                        "PF002",
                        format!("{span}.hierarchy.dram"),
                        format!(
                            "token_quantum_cycles = {q}: FireSim's software DRAM model exchanges tokens in multi-cycle quanta"
                        ),
                    )
                    .with_help("the DDR3 preset uses 4; a quantum of 1 under-models the batching the paper measures"),
                );
            }
            if !c.is_simulation && q != 1 {
                out.push(
                    Diagnostic::warning(
                        "PF002",
                        format!("{span}.hierarchy.dram"),
                        format!("token_quantum_cycles = {q} on a silicon reference: real hardware has no token quantization"),
                    )
                    .with_help("silicon platforms must use a quantum of 1"),
                );
            }
        })
        .rule("PF010", "in-order silicon must match the SpacemiT K1 (§3.2)", |c, span, out| {
            if c.is_simulation {
                return;
            }
            let CoreModel::InOrder(core) = &c.core else { return };
            pf010_k1_drift(c, core, span, out);
        })
        .rule("PF011", "OoO silicon must match the SG2042 (§3.2)", |c, span, out| {
            if c.is_simulation {
                return;
            }
            let CoreModel::Ooo(core) = &c.core else { return };
            pf011_sg2042_drift(c, core, span, out);
        })
}

/// Pushes one `PF010` warning per parameter drifted from the published
/// BPI-F3 / SpacemiT K1 values (Table 5, §3.2.1).
fn pf010_k1_drift(c: &SocConfig, core: &InOrderConfig, span: &str, out: &mut Report) {
    let mut drift = |field: &str, got: String, want: &str| {
        out.push(
            Diagnostic::warning(
                "PF010",
                format!("{span}.{field}"),
                format!("{field} = {got} drifts from the SpacemiT K1 reference ({want})"),
            )
            .with_help("the Banana Pi BPI-F3 column of Table 5 pins this parameter; a drifted reference invalidates the sim-vs-silicon gap"),
        );
    };
    if (c.freq_ghz - 1.6).abs() > 1e-9 {
        drift("freq_ghz", format!("{}", c.freq_ghz), "1.6 GHz");
    }
    if core.issue_width != 2 {
        drift(
            "core.issue_width",
            core.issue_width.to_string(),
            "dual-issue",
        );
    }
    if core.pipeline_depth != 8 {
        drift(
            "core.pipeline_depth",
            core.pipeline_depth.to_string(),
            "8 stages",
        );
    }
    if c.hierarchy.l1d.capacity() != 32 * 1024 {
        drift(
            "hierarchy.l1d",
            format!("{} bytes", c.hierarchy.l1d.capacity()),
            "32 KiB L1d",
        );
    }
    if c.hierarchy.l2.capacity() != 512 * 1024 {
        drift(
            "hierarchy.l2",
            format!("{} bytes", c.hierarchy.l2.capacity()),
            "512 KiB shared L2",
        );
    }
    if !c.hierarchy.dram.name.starts_with("LPDDR4") {
        drift(
            "hierarchy.dram",
            c.hierarchy.dram.name.clone(),
            "dual 32-bit LPDDR4-2666",
        );
    }
    if c.simd_lanes != 4 {
        drift(
            "simd_lanes",
            c.simd_lanes.to_string(),
            "RVV 1.0 @ 256 bits = 4 lanes",
        );
    }
}

/// Pushes one `PF011` warning per parameter drifted from the published
/// MILK-V Pioneer / SOPHON SG2042 values (Table 5, §3.2.2).
fn pf011_sg2042_drift(c: &SocConfig, core: &OooConfig, span: &str, out: &mut Report) {
    let mut drift = |field: &str, got: String, want: &str| {
        out.push(
            Diagnostic::warning(
                "PF011",
                format!("{span}.{field}"),
                format!("{field} = {got} drifts from the SG2042 reference ({want})"),
            )
            .with_help("the MILK-V Pioneer column of Table 5 pins this parameter; a drifted reference invalidates the sim-vs-silicon gap"),
        );
    };
    if (c.freq_ghz - 2.0).abs() > 1e-9 {
        drift("freq_ghz", format!("{}", c.freq_ghz), "2.0 GHz");
    }
    if core.fetch_width != 8 || core.decode_width != 4 {
        drift(
            "core",
            format!("fetch {} / decode {}", core.fetch_width, core.decode_width),
            "C920: fetch 8, decode 4",
        );
    }
    if c.hierarchy.l1d.capacity() != 64 * 1024 {
        drift(
            "hierarchy.l1d",
            format!("{} bytes", c.hierarchy.l1d.capacity()),
            "64 KiB L1d",
        );
    }
    if c.hierarchy.l2.capacity() != 1024 * 1024 {
        drift(
            "hierarchy.l2",
            format!("{} bytes", c.hierarchy.l2.capacity()),
            "1 MiB L2 per 4-core cluster",
        );
    }
    match &c.hierarchy.llc {
        None => drift("hierarchy.llc", "absent".to_string(), "64 MiB system LLC"),
        Some(llc) => {
            let total = llc.geometry.capacity() * llc.slices as u64;
            if total != 64 * 1024 * 1024 {
                drift(
                    "hierarchy.llc",
                    format!("{total} bytes"),
                    "64 MiB system LLC",
                );
            }
        }
    }
    if !c.hierarchy.dram.name.starts_with("DDR4") || c.hierarchy.dram.channels != 4 {
        drift(
            "hierarchy.dram",
            c.hierarchy.dram.name.clone(),
            "4-channel DDR4-3200",
        );
    }
    if c.simd_lanes != 2 {
        drift(
            "simd_lanes",
            c.simd_lanes.to_string(),
            "C920: 128-bit vector = 2 lanes",
        );
    }
}

/// Runs the full static check for one platform: `SC0xx`/`PF0xx` rules,
/// the hierarchy lints, and the core-model lints, all spanned under the
/// platform's name.
pub fn preflight(cfg: &SocConfig) -> Report {
    let span = cfg.name.as_str();
    let mut report = soc_lints().run(cfg, span);
    report.merge(lint_hierarchy(&cfg.hierarchy, &format!("{span}.hierarchy")));
    match &cfg.core {
        CoreModel::InOrder(c) => report.merge(lint_inorder(c, &format!("{span}.core"))),
        CoreModel::Ooo(c) => report.merge(lint_ooo(c, &format!("{span}.core"))),
    }
    report
}

/// [`preflight`] over many platforms, one merged report.
pub fn preflight_all<'a>(cfgs: impl IntoIterator<Item = &'a SocConfig>) -> Report {
    let mut report = Report::new();
    for cfg in cfgs {
        report.merge(preflight(cfg));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;

    fn all_presets() -> Vec<SocConfig> {
        let mut v = configs::rocket_family(4);
        v.extend(configs::boom_family(4));
        v.push(configs::banana_pi_hw(4));
        v.push(configs::milkv_hw(4));
        v
    }

    #[test]
    fn every_named_preset_passes_preflight_clean() {
        for cfg in all_presets() {
            let r = preflight(&cfg);
            assert!(
                r.is_clean(),
                "{} failed preflight:\n{}",
                cfg.name,
                r.render()
            );
        }
    }

    #[test]
    fn inconsistent_core_count_is_sc003() {
        let mut c = configs::rocket1(4);
        c.hierarchy.cores = 2;
        let r = preflight(&c);
        assert!(r.has_code("SC003") && r.has_errors(), "{}", r.render());
    }

    #[test]
    fn clock_mismatch_is_sc004() {
        let mut c = configs::rocket1(1);
        c.hierarchy.core_freq_ghz = 2.5;
        let r = preflight(&c);
        assert!(r.has_code("SC004"), "{}", r.render());
        assert!(!r.has_errors(), "SC004 warns, it does not block");
    }

    #[test]
    fn degenerate_soc_fields_error() {
        let mut c = configs::rocket1(1);
        c.cores = 0;
        c.hierarchy.cores = 0;
        c.freq_ghz = f64::NAN;
        c.simd_lanes = 0;
        let r = preflight(&c);
        for code in ["SC001", "SC002", "SC005"] {
            assert!(r.has_code(code), "missing {code}: {}", r.render());
        }
    }

    #[test]
    fn non_ddr3_simulation_is_pf001() {
        let mut c = configs::milkv_sim(4);
        c.hierarchy.dram = bsim_mem::DramConfig::ddr4_3200(4);
        let r = preflight(&c);
        assert!(r.has_code("PF001"), "{}", r.render());
        // Silicon quantum on a sim target also drifts (PF002 expects >= 2).
        assert!(r.has_code("PF002"), "{}", r.render());
    }

    #[test]
    fn quantized_silicon_is_pf002() {
        let mut c = configs::banana_pi_hw(4);
        c.hierarchy.dram.token_quantum_cycles = 4;
        let r = preflight(&c);
        assert!(r.has_code("PF002"), "{}", r.render());
    }

    #[test]
    fn drifted_k1_reference_is_pf010() {
        let mut c = configs::banana_pi_hw(4);
        c.freq_ghz = 2.4;
        c.hierarchy.core_freq_ghz = 2.4;
        let r = preflight(&c);
        let d = r.with_code("PF010").next().unwrap_or_else(|| {
            panic!("expected PF010:\n{}", r.render());
        });
        assert!(d.message.contains("freq_ghz"), "{}", d.message);
        assert!(!r.has_errors(), "fidelity drift warns, it does not block");
    }

    #[test]
    fn drifted_sg2042_reference_is_pf011() {
        let mut c = configs::milkv_hw(4);
        c.hierarchy.llc = None;
        c.simd_lanes = 8;
        let r = preflight(&c);
        assert_eq!(r.with_code("PF011").count(), 2, "{}", r.render());
    }

    #[test]
    fn sim_models_never_trip_fidelity_rules() {
        // The §4 tuning loop deliberately clocks sim models differently;
        // PF010/PF011 must only judge silicon references.
        let r = preflight(&configs::fast_banana_pi_sim(4));
        assert!(
            !r.has_code("PF010") && !r.has_code("PF011"),
            "{}",
            r.render()
        );
    }

    #[test]
    fn preflight_all_merges() {
        let presets = all_presets();
        assert!(preflight_all(presets.iter()).is_clean());
        let mut bad = configs::rocket1(2);
        bad.hierarchy.cores = 1;
        let mut set = presets;
        set.push(bad);
        assert!(preflight_all(set.iter()).has_code("SC003"));
    }
}

//! Lockstep execution of one rank's partition of a model graph.
//!
//! [`RankGraph`] is the distributed sibling of the engine's
//! [`Harness`](bsim_engine::Harness): it owns the models assigned to
//! one rank, in-process [`TokenChannel`]s for the wires whose endpoints
//! both live here, and [`RemoteSender`]/[`RemoteReceiver`] halves for
//! the cut wires. The determinism argument is the paper's: every
//! inter-model value crosses a ≥ 1-cycle token link, so each model's
//! input sequence — and therefore its state trajectory — is fixed by
//! target-cycle arithmetic alone. Which side of a socket the producer
//! sits on cannot change a single token, and the tests here assert the
//! resulting states are *bit-identical* to `Harness::run`.
//!
//! Two liveness rules keep N ranks from deadlocking:
//!
//! * **flush-before-block** — a rank flushes every outgoing link before
//!   blocking on any incoming one, so the tokens a peer is waiting for
//!   are never parked in a local buffer;
//! * **verified fast-forward** — a quiescence skip is licensed only by
//!   *arrived* traffic (the leading all-zero run of each remote
//!   in-link), never by a guess about what a peer will send. The skip
//!   then travels compressed: the senders emit constant-size
//!   [`Frame::Run`](crate::frame::Frame::Run) frames.
//!
//! Partition checkpoints ([`RankCkpt`]) capture models, local channels,
//! and the per-out-link replay tails at a segment boundary; restoring
//! on fresh sockets re-sends exactly the in-flight window (see
//! [`crate::link`]), which is what lets the launcher migrate a lost
//! process and continue bit-identically.

use crate::link::{RemoteReceiver, RemoteSender, SenderCkpt};
use bsim_engine::{TickModel, TokenChannel, TokenLink, Wire};
use bsim_resilience::snapshot::{field, CkptError, Snapshot};
use serde::Value;
use std::io::{self, Read, Write};

/// Where one port of a local model connects.
#[derive(Clone, Copy, Debug)]
enum Port {
    Local(usize),
    Remote(usize),
}

/// A cut wire as seen from one rank: which global wire it is, which
/// local model/port it attaches to, and its latency.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CutWire {
    pub wire: usize,
    pub model: usize,
    pub port: usize,
    pub latency: u64,
}

/// One rank's view of a partitioned graph, derived from the global
/// `(assignment, wires)` plan. `ins`/`outs` are in global wire order —
/// the order link streams must be supplied in.
#[derive(Clone, Debug, Default)]
pub struct RankView {
    /// Global model ids owned by this rank, ascending.
    pub local_models: Vec<usize>,
    /// Wires with both endpoints local, re-indexed to local model ids.
    pub local_wires: Vec<Wire>,
    /// Cut wires consumed here.
    pub ins: Vec<CutWire>,
    /// Cut wires produced here.
    pub outs: Vec<CutWire>,
}

/// Projects the global plan onto `rank`.
pub fn rank_view(assignment: &[usize], wires: &[Wire], rank: usize) -> RankView {
    let local_models: Vec<usize> = (0..assignment.len())
        .filter(|&m| assignment[m] == rank)
        .collect();
    let local_of = |global: usize| local_models.iter().position(|&m| m == global);
    let mut view = RankView {
        local_models: local_models.clone(),
        ..RankView::default()
    };
    for (id, w) in wires.iter().enumerate() {
        match (local_of(w.from_model), local_of(w.to_model)) {
            (Some(from), Some(to)) => view.local_wires.push(Wire {
                from_model: from,
                from_port: w.from_port,
                to_model: to,
                to_port: w.to_port,
                latency: w.latency,
            }),
            (Some(from), None) => view.outs.push(CutWire {
                wire: id,
                model: from,
                port: w.from_port,
                latency: w.latency,
            }),
            (None, Some(to)) => view.ins.push(CutWire {
                wire: id,
                model: to,
                port: w.to_port,
                latency: w.latency,
            }),
            (None, None) => {}
        }
    }
    view
}

/// One rank's partition, ready to run.
pub struct RankGraph<M: TickModel> {
    models: Vec<M>,
    /// `in_ports[m][p]` / `out_ports[m][p]`: where model `m`'s port `p`
    /// connects.
    in_ports: Vec<Vec<Port>>,
    out_ports: Vec<Vec<Port>>,
    chans: Vec<TokenChannel<u64>>,
    rxs: Vec<RemoteReceiver<Box<dyn Read + Send>>>,
    txs: Vec<RemoteSender<Box<dyn Write + Send>>>,
    cycle: u64,
    quantum: usize,
    fast_forward: bool,
    skipped: u64,
    scratch_in: Vec<u64>,
    scratch_out: Vec<u64>,
}

fn chan_capacity(latency: u64, quantum: usize) -> usize {
    // The harness auto-sizes to latency + quantum; one extra slot keeps
    // the sequential same-cycle producer-before-consumer order safe at
    // quantum 1.
    latency as usize + quantum + 1
}

fn ckpt_err(e: CkptError) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("bad partition ckpt: {e:?}"),
    )
}

impl<M: TickModel> RankGraph<M> {
    /// Builds a fresh partition. `models` are this rank's models in
    /// [`RankView::local_models`] order; `in_streams`/`out_streams`
    /// pair with [`RankView::ins`]/[`RankView::outs`] positionally.
    pub fn new(
        models: Vec<M>,
        view: &RankView,
        in_streams: Vec<Box<dyn Read + Send>>,
        out_streams: Vec<Box<dyn Write + Send>>,
        quantum: usize,
        fast_forward: bool,
    ) -> RankGraph<M> {
        Self::build(
            models,
            view,
            in_streams,
            out_streams,
            quantum,
            fast_forward,
            None,
        )
        .expect("fresh construction performs no IO") // bsim: allow(AU002) invariant stated in the message
    }

    /// Rebuilds a partition from a [`RankCkpt`] on fresh streams,
    /// re-sending each out-link's replay tail.
    pub fn resume(
        ckpt: &RankCkpt,
        view: &RankView,
        in_streams: Vec<Box<dyn Read + Send>>,
        out_streams: Vec<Box<dyn Write + Send>>,
        quantum: usize,
        fast_forward: bool,
    ) -> io::Result<RankGraph<M>>
    where
        M: Snapshot,
    {
        let models = ckpt
            .models
            .iter()
            .map(|v| M::restore(v).map_err(ckpt_err))
            .collect::<io::Result<Vec<M>>>()?;
        Self::build(
            models,
            view,
            in_streams,
            out_streams,
            quantum,
            fast_forward,
            Some(ckpt),
        )
    }

    fn build(
        models: Vec<M>,
        view: &RankView,
        in_streams: Vec<Box<dyn Read + Send>>,
        out_streams: Vec<Box<dyn Write + Send>>,
        quantum: usize,
        fast_forward: bool,
        ckpt: Option<&RankCkpt>,
    ) -> io::Result<RankGraph<M>> {
        assert!(quantum >= 1, "a quantum of zero advances nothing");
        assert_eq!(models.len(), view.local_models.len(), "one model per slot");
        assert_eq!(in_streams.len(), view.ins.len(), "one stream per in-link");
        assert_eq!(
            out_streams.len(),
            view.outs.len(),
            "one stream per out-link"
        );
        let cycle = ckpt.map_or(0, |c| c.cycle);

        let mut in_ports: Vec<Vec<Option<Port>>> =
            models.iter().map(|m| vec![None; m.num_inputs()]).collect();
        let mut out_ports: Vec<Vec<Option<Port>>> =
            models.iter().map(|m| vec![None; m.num_outputs()]).collect();
        let claim = |slots: &mut Vec<Vec<Option<Port>>>, m: usize, p: usize, port: Port| {
            let slot = slots
                .get_mut(m)
                .and_then(|ports| ports.get_mut(p))
                .unwrap_or_else(|| panic!("wire names missing local port {m}.{p}"));
            assert!(slot.is_none(), "port {m}.{p} is wired twice");
            *slot = Some(port);
        };

        let mut chans = Vec::with_capacity(view.local_wires.len());
        for (i, w) in view.local_wires.iter().enumerate() {
            assert!(
                w.latency >= 1,
                "a zero-latency wire cannot decouple endpoints"
            );
            let cap = chan_capacity(w.latency, quantum);
            let chan = match ckpt {
                Some(c) => {
                    let (push, pop, tokens) = c.chans[i].clone();
                    TokenChannel::restore(cap, push, pop, tokens)
                }
                None => {
                    let mut chan = TokenChannel::new(cap);
                    for at in 0..w.latency {
                        // bsim: allow(AU002) invariant stated in the message
                        chan.push(at, 0).expect("reset window fits fresh capacity");
                    }
                    chan
                }
            };
            chans.push(chan);
            claim(&mut out_ports, w.from_model, w.from_port, Port::Local(i));
            claim(&mut in_ports, w.to_model, w.to_port, Port::Local(i));
        }

        let mut rxs = Vec::with_capacity(view.ins.len());
        for (i, (cut, stream)) in view.ins.iter().zip(in_streams).enumerate() {
            assert!(
                cut.latency >= 1,
                "a zero-latency cut wire cannot cross a socket"
            );
            let rx = match ckpt {
                Some(c) => RemoteReceiver::resume(stream, cut.latency, c.cycle),
                None => RemoteReceiver::new(stream, cut.latency),
            };
            rxs.push(rx);
            claim(&mut in_ports, cut.model, cut.port, Port::Remote(i));
        }

        let mut txs = Vec::with_capacity(view.outs.len());
        for (i, (cut, stream)) in view.outs.iter().zip(out_streams).enumerate() {
            assert!(
                cut.latency >= 1,
                "a zero-latency cut wire cannot cross a socket"
            );
            let tx = match ckpt {
                Some(c) => RemoteSender::resume(stream, cut.latency, quantum, &c.outs[i])?,
                None => RemoteSender::new(stream, cut.latency, quantum),
            };
            txs.push(tx);
            claim(&mut out_ports, cut.model, cut.port, Port::Remote(i));
        }

        let unwrap_ports = |slots: Vec<Vec<Option<Port>>>, dir: &str| -> Vec<Vec<Port>> {
            slots
                .into_iter()
                .enumerate()
                .map(|(m, ports)| {
                    ports
                        .into_iter()
                        .enumerate()
                        .map(|(p, port)| {
                            port.unwrap_or_else(|| panic!("{dir} port {m}.{p} is unwired"))
                        })
                        .collect()
                })
                .collect()
        };
        let in_ports = unwrap_ports(in_ports, "input");
        let out_ports = unwrap_ports(out_ports, "output");

        let scratch_in = vec![0; models.iter().map(M::num_inputs).max().unwrap_or(0)];
        let scratch_out = vec![0; models.iter().map(M::num_outputs).max().unwrap_or(0)];
        Ok(RankGraph {
            models,
            in_ports,
            out_ports,
            chans,
            rxs,
            txs,
            cycle,
            quantum,
            fast_forward,
            skipped: ckpt.map_or(0, |c| c.skipped),
            scratch_in,
            scratch_out,
        })
    }

    /// Current target cycle (cycles fully executed).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Cycles this rank skipped via verified quiescence fast-forward.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// This rank's models, for final-state collection.
    pub fn models(&self) -> &[M] {
        &self.models
    }

    fn flush_all(&mut self) -> io::Result<()> {
        for tx in &mut self.txs {
            tx.flush()?;
        }
        Ok(())
    }

    /// How far this rank is *locally* idle: `Some(n)` when every model
    /// promises inactivity past the current cycle and every local
    /// channel holds only zeros, `None` otherwise. `n` is capped at
    /// `to`.
    fn idle_horizon(&self, to: u64) -> Option<u64> {
        let mut horizon = to;
        for m in &self.models {
            match m.next_activity() {
                Some(t) if t > self.cycle => horizon = horizon.min(t),
                _ => return None,
            }
        }
        for chan in &self.chans {
            if chan.buffered_tokens().any(|&t| t != 0) {
                return None;
            }
        }
        (horizon > self.cycle).then(|| horizon - self.cycle)
    }

    /// Attempts one fast-forward. Skips are licensed only by *verified*
    /// idle traffic — the leading zero run actually buffered on every
    /// remote in-link — so a locally idle rank whose license is merely
    /// *not here yet* blocks for the starving link's next frame (after
    /// flushing, so peers are never starved in turn) and retries,
    /// rather than falling back to stepping through the idle window.
    /// Returns `true` if any cycles were skipped.
    fn try_skip(&mut self, to: u64) -> io::Result<bool> {
        loop {
            let Some(want) = self.idle_horizon(to) else {
                return Ok(false);
            };
            let mut n = want;
            let mut starving = None;
            for (i, rx) in self.rxs.iter().enumerate() {
                if TokenLink::buffered(rx) == 0 {
                    starving.get_or_insert(i);
                } else {
                    let run = rx.leading_zero_run();
                    if run == 0 {
                        // A nonzero token at the head: the idle window
                        // is over on arrival; step() will consume it.
                        return Ok(false);
                    }
                    n = n.min(run);
                }
            }
            if let Some(i) = starving {
                self.flush_all()?;
                self.rxs[i].recv()?;
                continue;
            }
            self.skip(n)?;
            return Ok(true);
        }
    }

    fn skip(&mut self, n: u64) -> io::Result<()> {
        for chan in &mut self.chans {
            chan.fast_forward(n, 0);
        }
        for rx in &mut self.rxs {
            rx.fast_forward(n, 0);
        }
        for tx in &mut self.txs {
            tx.fast_forward(n, 0);
        }
        self.cycle += n;
        self.skipped += n;
        // Peers may be blocked waiting for exactly these idle spans —
        // a skip always flushes so the Run frames travel immediately.
        self.flush_all()
    }

    fn step(&mut self) -> io::Result<()> {
        let cycle = self.cycle;
        for m in 0..self.models.len() {
            for p in 0..self.in_ports[m].len() {
                let token = match self.in_ports[m][p] {
                    Port::Local(c) => self.chans[c]
                        .pop(cycle)
                        .expect("a local producer is never behind the reset window"), // bsim: allow(AU002) invariant stated in the message
                    Port::Remote(r) => {
                        if TokenLink::buffered(&self.rxs[r]) == 0 {
                            // Flush-before-block: our peers may need our
                            // tokens to produce the one we wait for.
                            for tx in &mut self.txs {
                                tx.flush()?;
                            }
                            self.rxs[r].ensure(1)?;
                        }
                        self.rxs[r].pop(cycle).expect("ensured above") // bsim: allow(AU002) invariant stated in the message
                    }
                };
                self.scratch_in[p] = token;
            }
            let (ni, no) = (self.in_ports[m].len(), self.out_ports[m].len());
            self.models[m].tick(cycle, &self.scratch_in[..ni], &mut self.scratch_out[..no]);
            for p in 0..no {
                let token = self.scratch_out[p];
                match self.out_ports[m][p] {
                    Port::Local(c) => {
                        let at = self.chans[c].producer_cycle();
                        self.chans[c]
                            .push(at, token)
                            .expect("capacity covers latency + quantum + 1"); // bsim: allow(AU002) invariant stated in the message
                    }
                    Port::Remote(t) => {
                        let at = self.txs[t].producer_cycle();
                        self.txs[t]
                            .push_batch(at, &[token])
                            .expect("sender buffering is infallible"); // bsim: allow(AU002) invariant stated in the message
                    }
                }
            }
        }
        self.cycle += 1;
        Ok(())
    }

    /// Advances to target cycle `to`, then flushes. Safe to call in
    /// segments — `run(s)` then `run(t)` is bit-identical to `run(t)`.
    pub fn run(&mut self, to: u64) -> io::Result<()> {
        while self.cycle < to {
            if self.fast_forward && self.try_skip(to)? {
                continue;
            }
            self.step()?;
            if self.cycle.is_multiple_of(self.quantum as u64) {
                self.flush_all()?;
            }
        }
        self.flush_all()
    }

    /// Captures the partition checkpoint at the current boundary
    /// (flushing first, so the checkpoint never contains unsent
    /// tokens).
    pub fn checkpoint(&mut self) -> io::Result<RankCkpt>
    where
        M: Snapshot,
    {
        self.flush_all()?;
        Ok(RankCkpt {
            cycle: self.cycle,
            models: self.models.iter().map(Snapshot::save).collect(),
            chans: self.chans.iter().map(TokenChannel::snapshot).collect(),
            outs: self.txs.iter().map(RemoteSender::ckpt).collect(),
            skipped: self.skipped,
        })
    }
}

/// A partition checkpoint: everything one rank needs to resume at a
/// segment boundary on fresh sockets. In-links need no state beyond
/// the boundary cycle — the peer's replay tail reconstructs the
/// in-flight window.
#[derive(Clone, Debug)]
pub struct RankCkpt {
    pub cycle: u64,
    pub models: Vec<Value>,
    pub chans: Vec<(u64, u64, Vec<u64>)>,
    pub outs: Vec<SenderCkpt>,
    pub skipped: u64,
}

impl Snapshot for RankCkpt {
    fn save(&self) -> Value {
        let chans = self
            .chans
            .iter()
            .map(|(push, pop, tokens)| {
                Value::Map(vec![
                    ("push".into(), Value::U64(*push)),
                    ("pop".into(), Value::U64(*pop)),
                    (
                        "tokens".into(),
                        Value::Seq(tokens.iter().map(|&t| Value::U64(t)).collect()),
                    ),
                ])
            })
            .collect();
        Value::Map(vec![
            ("cycle".into(), Value::U64(self.cycle)),
            ("models".into(), Value::Seq(self.models.clone())),
            ("chans".into(), Value::Seq(chans)),
            (
                "outs".into(),
                Value::Seq(self.outs.iter().map(Snapshot::save).collect()),
            ),
            ("skipped".into(), Value::U64(self.skipped)),
        ])
    }

    fn restore(value: &Value) -> Result<RankCkpt, CkptError> {
        let shape = |expected| CkptError::WrongType {
            field: String::new(),
            expected,
        };
        let chans = field(value, "chans")?
            .as_seq()
            .ok_or_else(|| shape("seq"))?
            .iter()
            .map(|c| {
                Ok((
                    u64::restore(field(c, "push")?)?,
                    u64::restore(field(c, "pop")?)?,
                    Vec::<u64>::restore(field(c, "tokens")?)?,
                ))
            })
            .collect::<Result<Vec<_>, CkptError>>()?;
        let outs = field(value, "outs")?
            .as_seq()
            .ok_or_else(|| shape("seq"))?
            .iter()
            .map(SenderCkpt::restore)
            .collect::<Result<Vec<_>, CkptError>>()?;
        Ok(RankCkpt {
            cycle: u64::restore(field(value, "cycle")?)?,
            models: field(value, "models")?
                .as_seq()
                .ok_or_else(|| shape("seq"))?
                .to_vec(),
            chans,
            outs,
            skipped: u64::restore(field(value, "skipped")?)?,
        })
    }
}

/// The demo target for distributed runs: a bursty accumulator node.
/// Active for the first `burst` cycles of every `period`-cycle window
/// (mixing its input into its state and emitting a nonzero token),
/// idle otherwise — which makes ring graphs of these nodes exercise
/// both dense token traffic and long quiescent spans.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DemoNode {
    period: u64,
    burst: u64,
    state: u64,
    /// Cycle of the next promised activity, maintained by `tick`.
    next_burst: u64,
}

impl DemoNode {
    pub fn new(seed: u64, period: u64, burst: u64) -> DemoNode {
        assert!(burst >= 1 && burst <= period, "burst fits the period");
        DemoNode {
            period,
            burst,
            state: seed.wrapping_mul(0x9E3779B97F4A7C15) | 1,
            next_burst: 0,
        }
    }

    /// Final state word, for fingerprinting.
    pub fn state(&self) -> u64 {
        self.state
    }
}

impl TickModel for DemoNode {
    fn num_inputs(&self) -> usize {
        1
    }

    fn num_outputs(&self) -> usize {
        1
    }

    fn tick(&mut self, cycle: u64, inputs: &[u64], outputs: &mut [u64]) {
        let in_burst = cycle % self.period < self.burst;
        if in_burst || inputs[0] != 0 {
            self.state = self
                .state
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(inputs[0] ^ cycle)
                .rotate_left(7);
            outputs[0] = if in_burst { self.state | 1 } else { 0 };
        } else {
            outputs[0] = 0;
        }
        let next = cycle + 1;
        self.next_burst = if next % self.period < self.burst {
            next
        } else {
            next + self.period - next % self.period
        };
    }

    fn next_activity(&self) -> Option<u64> {
        Some(self.next_burst)
    }
}

impl Snapshot for DemoNode {
    fn save(&self) -> Value {
        Value::Map(vec![
            ("period".into(), Value::U64(self.period)),
            ("burst".into(), Value::U64(self.burst)),
            ("state".into(), Value::U64(self.state)),
            ("next_burst".into(), Value::U64(self.next_burst)),
        ])
    }

    fn restore(value: &Value) -> Result<DemoNode, CkptError> {
        Ok(DemoNode {
            period: u64::restore(field(value, "period")?)?,
            burst: u64::restore(field(value, "burst")?)?,
            state: u64::restore(field(value, "state")?)?,
            next_burst: u64::restore(field(value, "next_burst")?)?,
        })
    }
}

/// A ring of `n` [`DemoNode`]s, node `i` feeding `i + 1 mod n` over a
/// `latency`-cycle wire — the same topology as the fault campaign's
/// mixer ring and the paper's nearest-neighbor MPI patterns.
pub fn demo_ring(n: usize, seed: u64, latency: u64) -> (Vec<DemoNode>, Vec<Wire>) {
    assert!(n >= 2, "a ring needs two nodes");
    let models = (0..n)
        .map(|i| DemoNode::new(seed.wrapping_add(i as u64), 64, 8))
        .collect();
    let wires = (0..n)
        .map(|i| Wire {
            from_model: i,
            from_port: 0,
            to_model: (i + 1) % n,
            to_port: 0,
            latency,
        })
        .collect();
    (models, wires)
}

/// Byte-stable fingerprint of an ordered model-state sequence — the
/// object two schedules must agree on bit-for-bit.
pub fn fingerprint<M: Snapshot>(models: &[M]) -> String {
    serde_json::to_string(&Value::Seq(models.iter().map(Snapshot::save).collect()))
        .expect("shim renderer is total") // bsim: allow(AU002) invariant stated in the message
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsim_engine::Harness;
    use std::os::unix::net::UnixStream;

    const RING: usize = 4;
    const LATENCY: u64 = 2;
    const CYCLES: u64 = 500;
    const QUANTUM: usize = 16;
    const SEED: u64 = 0xB51D;

    fn reference_fingerprint() -> String {
        let (models, wires) = demo_ring(RING, SEED, LATENCY);
        let finished = Harness::new(models, wires).run(CYCLES);
        fingerprint(&finished)
    }

    /// Socket plumbing for a 2-rank split of the demo ring: returns
    /// `(in_streams, out_streams)` per rank, in `RankView` order.
    #[allow(clippy::type_complexity)]
    fn two_rank_sockets(
        views: &[RankView; 2],
    ) -> [(Vec<Box<dyn Read + Send>>, Vec<Box<dyn Write + Send>>); 2] {
        // Each cut wire gets one unidirectional socketpair, keyed by
        // global wire id so the two ranks agree on which is which.
        let mut pairs: Vec<(usize, UnixStream, UnixStream)> = Vec::new();
        for cut in views.iter().flat_map(|v| v.outs.iter()) {
            let (w, r) = UnixStream::pair().expect("socketpair");
            pairs.push((cut.wire, w, r));
        }
        views
            .iter()
            .map(|view| {
                let ins = view
                    .ins
                    .iter()
                    .map(|cut| {
                        let at = pairs
                            .iter()
                            .position(|(id, _, _)| *id == cut.wire)
                            .expect("every in-link has a producer");
                        let stream = pairs[at].2.try_clone().expect("clone read half");
                        Box::new(stream) as Box<dyn Read + Send>
                    })
                    .collect();
                let outs = view
                    .outs
                    .iter()
                    .map(|cut| {
                        let at = pairs
                            .iter()
                            .position(|(id, _, _)| *id == cut.wire)
                            .expect("own out-link");
                        let stream = pairs[at].1.try_clone().expect("clone write half");
                        Box::new(stream) as Box<dyn Write + Send>
                    })
                    .collect();
                (ins, outs)
            })
            .collect::<Vec<_>>()
            .try_into()
            .map_err(|_| "two ranks")
            .expect("two ranks")
    }

    /// Runs the 2-rank partition with the given schedule and returns
    /// `(global fingerprint, total skipped cycles)`. `segments` is the
    /// list of target-cycle boundaries each rank runs to in turn; when
    /// `restart_at_boundary` is set, the graphs are checkpointed, torn
    /// down, and resumed on fresh sockets between segments.
    fn partitioned_fingerprint(
        fast_forward: bool,
        segments: &[u64],
        restart_at_boundary: bool,
    ) -> (String, u64) {
        let (models, wires) = demo_ring(RING, SEED, LATENCY);
        let assignment = [0usize, 0, 1, 1];
        let views = [
            rank_view(&assignment, &wires, 0),
            rank_view(&assignment, &wires, 1),
        ];
        let mut ckpts: [Option<RankCkpt>; 2] = [None, None];
        let mut finals: [Vec<DemoNode>; 2] = [Vec::new(), Vec::new()];
        let mut skipped = 0;

        let mut graphs: Vec<Option<RankGraph<DemoNode>>> = {
            let [s0, s1] = two_rank_sockets(&views);
            let mut streams = [s0, s1];
            views
                .iter()
                .enumerate()
                .map(|(rank, view)| {
                    let (ins, outs) = std::mem::take(&mut streams[rank]);
                    let local: Vec<DemoNode> = view
                        .local_models
                        .iter()
                        .map(|&g| models[g].clone())
                        .collect();
                    Some(RankGraph::new(
                        local,
                        view,
                        ins,
                        outs,
                        QUANTUM,
                        fast_forward,
                    ))
                })
                .collect()
        };

        for (seg, &to) in segments.iter().enumerate() {
            let last = seg + 1 == segments.len();
            let handles: Vec<_> = graphs
                .drain(..)
                .map(|g| {
                    let mut g = g.expect("graph present");
                    std::thread::spawn(move || {
                        g.run(to).expect("segment runs");
                        let ckpt = g.checkpoint().expect("boundary checkpoint");
                        (g, ckpt)
                    })
                })
                .collect();
            for (rank, h) in handles.into_iter().enumerate() {
                let (g, ckpt) = h.join().expect("rank thread");
                skipped += if last { g.skipped() } else { 0 };
                if last {
                    finals[rank] = g.models().to_vec();
                }
                ckpts[rank] = Some(ckpt);
                graphs.push(Some(g));
            }
            if restart_at_boundary && !last {
                // Process loss: drop the live graphs (closing every
                // socket) and resume both ranks from their checkpoints,
                // round-tripped through the Value tree like the real
                // launcher's store does.
                graphs.clear();
                let [s0, s1] = two_rank_sockets(&views);
                let mut streams = [s0, s1];
                for (rank, view) in views.iter().enumerate() {
                    let tree = ckpts[rank].as_ref().expect("ckpt taken").save();
                    let ckpt = RankCkpt::restore(&tree).expect("ckpt tree roundtrips");
                    let (ins, outs) = std::mem::take(&mut streams[rank]);
                    graphs.push(Some(
                        RankGraph::resume(&ckpt, view, ins, outs, QUANTUM, fast_forward)
                            .expect("resume replays tails"),
                    ));
                }
            }
        }

        let mut all: Vec<DemoNode> = Vec::new();
        for (global, &rank) in assignment.iter().enumerate().take(RING) {
            let local = views[rank]
                .local_models
                .iter()
                .position(|&g| g == global)
                .expect("assignment covers the ring");
            all.push(finals[rank][local].clone());
        }
        (fingerprint(&all), skipped)
    }

    #[test]
    fn partitioned_ring_matches_the_in_process_harness() {
        let reference = reference_fingerprint();
        let (plain, _) = partitioned_fingerprint(false, &[CYCLES], false);
        assert_eq!(plain, reference, "2-rank schedule is bit-identical");
    }

    #[test]
    fn quiescence_fast_forward_crosses_the_wire_bit_identically() {
        let reference = reference_fingerprint();
        let (ffed, skipped) = partitioned_fingerprint(true, &[CYCLES], false);
        assert_eq!(ffed, reference, "fast-forward changes host work, not state");
        assert!(
            skipped > CYCLES / 4,
            "the idle windows actually skip (got {skipped} of {CYCLES} per-rank cycles)"
        );
    }

    #[test]
    fn partition_checkpoint_restart_is_bit_identical() {
        let reference = reference_fingerprint();
        let (segmented, _) = partitioned_fingerprint(true, &[250, CYCLES], false);
        assert_eq!(segmented, reference, "a mid-run boundary is invisible");
        let (restarted, _) = partitioned_fingerprint(true, &[250, CYCLES], true);
        assert_eq!(
            restarted, reference,
            "kill-and-resume on fresh sockets is invisible too"
        );
    }

    #[test]
    fn rank_view_splits_the_ring_at_the_block_seams() {
        let (_, wires) = demo_ring(RING, SEED, LATENCY);
        let view0 = rank_view(&[0, 0, 1, 1], &wires, 0);
        assert_eq!(view0.local_models, vec![0, 1]);
        assert_eq!(view0.local_wires.len(), 1, "wire 0→1 stays local");
        assert_eq!(view0.outs.len(), 1, "wire 1→2 is cut outbound");
        assert_eq!(view0.ins.len(), 1, "wire 3→0 is cut inbound");
        assert_eq!(view0.outs[0].wire, 1);
        assert_eq!(view0.ins[0].wire, 3);
        let view1 = rank_view(&[0, 0, 1, 1], &wires, 1);
        assert_eq!(view1.ins[0].wire, 1);
        assert_eq!(view1.outs[0].wire, 3);
    }
}

//! The coordinator: spawn workers, distribute plans, collect results,
//! survive process loss.
//!
//! The launcher binds a loopback listener, spawns one worker per rank
//! (real processes via `bsim dist-worker`, or in-process threads for
//! tests), and serves each connection: `Hello` → [`PlanSpec`] → stream
//! of `Cell` results → `Done`. Sweep-mode recovery is re-planning: every
//! completed cell lands in the [`CkptStore`] the moment it arrives, so
//! when a worker dies (socket EOF, nonzero exit, or silence past the
//! [`PeerWatchdog`] budget) the replacement process is handed exactly
//! the cells that are still missing — completed work is never re-run,
//! and because every cell is deterministic and sequential inside
//! ([`WireCell::run`]), the recovered sweep is byte-identical to an
//! undisturbed one.
//!
//! Graph mode adds token-link relays: each cut wire is one extra
//! connection per endpoint, introduced by a `Link` frame; the
//! coordinator pairs the two ends and pipes bytes producer → consumer,
//! so workers never need to know each other's addresses.

use crate::cells::WireCell;
use crate::frame::{read_frame, write_frame, Frame};
use crate::graph::{demo_ring, fingerprint};
use crate::plan::{lint_graph_plan, PlanSpec};
use crate::worker;
use bsim_check::proto::{dist_cached, Tracker};
use bsim_core::experiments::partition_cells;
use bsim_engine::Harness;
use bsim_resilience::{Backoff, Breaker, BreakerState, CkptStore, PeerWatchdog};
use serde::Value;
use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How worker ranks become live workers.
#[derive(Clone, Debug)]
pub enum WorkerSpawn {
    /// Spawn `argv` as a child process with the coordinator address and
    /// rank in the environment (`bsim dist-worker`).
    Process(Vec<String>),
    /// Run [`worker::run`] on an in-process thread. Full wire protocol
    /// over real loopback sockets, but no kill support — used by unit
    /// tests and `--threads` debugging.
    Thread,
}

/// Deliberate process loss, for the fault campaign: SIGKILL `rank`'s
/// worker once it has delivered `after_cells` results.
#[derive(Clone, Copy, Debug)]
pub struct KillSpec {
    pub rank: usize,
    pub after_cells: usize,
}

/// Deliberate wire corruption, for the fault campaign: flip one bit of
/// rank `rank`'s post-plan result byte stream, exactly once. The frame
/// CRC must catch it; the respawned replacement reads clean.
#[derive(Clone, Copy, Debug)]
pub struct WireFaultSpec {
    pub rank: usize,
    /// Bit offset from the first result byte the rank sends.
    pub bit: u64,
}

/// Launcher configuration.
#[derive(Clone, Debug)]
pub struct LaunchOpts {
    pub ranks: usize,
    pub spawn: WorkerSpawn,
    /// A worker silent longer than this is presumed hung and killed
    /// (its cells are re-planned like any other loss).
    pub silence_budget: Duration,
    pub kill: Option<KillSpec>,
    /// Total respawn budget before the launcher gives up.
    pub max_respawns: usize,
    /// Read/write timeout armed on every control and relay socket; zero
    /// disables. A silent peer becomes a typed timeout error feeding
    /// the normal Gone → respawn path, never a wedged thread.
    pub io_timeout: Duration,
    /// One-shot wire corruption injection (fault campaign only).
    pub wire_fault: Option<WireFaultSpec>,
}

impl LaunchOpts {
    /// Process-mode defaults for `workers` ranks running `argv`.
    pub fn processes(ranks: usize, argv: Vec<String>) -> LaunchOpts {
        LaunchOpts {
            ranks,
            spawn: WorkerSpawn::Process(argv),
            silence_budget: Duration::from_secs(120),
            kill: None,
            max_respawns: 3,
            io_timeout: Duration::from_secs(120),
            wire_fault: None,
        }
    }

    /// Thread-mode defaults, for tests.
    pub fn threads(ranks: usize) -> LaunchOpts {
        LaunchOpts {
            ranks,
            spawn: WorkerSpawn::Thread,
            silence_budget: Duration::from_secs(120),
            kill: None,
            max_respawns: 3,
            io_timeout: Duration::from_secs(120),
            wire_fault: None,
        }
    }
}

/// A completed sweep.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// `(cell label, result json)` in cell order.
    pub results: Vec<(String, String)>,
    /// Worker processes respawned along the way.
    pub respawns: usize,
    /// Ranks actually used (after clamping to the cell count).
    pub ranks: usize,
    /// Why each loss happened (`"rank N: <reason>"`), in event order —
    /// the fault campaign asserts a flipped wire bit surfaces here as a
    /// CRC failure, not as silently wrong results.
    pub losses: Vec<String>,
}

/// Arms symmetric socket timeouts; zero means unbounded (std rejects a
/// literal zero timeout).
fn arm_io(stream: &TcpStream, timeout: Duration) {
    let t = if timeout.is_zero() {
        None
    } else {
        Some(timeout)
    };
    let _ = stream.set_read_timeout(t);
    let _ = stream.set_write_timeout(t);
}

/// A `Read` adapter that flips one bit at a fixed byte offset of the
/// wrapped stream — the [`WireFaultSpec`] injection point. Reads pass
/// through untouched once the target byte has gone by.
struct BitFlipReader<R> {
    inner: R,
    /// Bytes left until the target byte; `None` once flipped (or never
    /// armed).
    pending: Option<u64>,
    mask: u8,
}

impl<R> BitFlipReader<R> {
    fn new(inner: R, bit: Option<u64>) -> BitFlipReader<R> {
        BitFlipReader {
            inner,
            pending: bit.map(|b| b / 8),
            mask: bit.map_or(0, |b| 1 << (b % 8)),
        }
    }
}

impl<R: Read> Read for BitFlipReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        if let Some(offset) = self.pending {
            if (offset as usize) < n {
                buf[offset as usize] ^= self.mask;
                self.pending = None;
            } else {
                self.pending = Some(offset - n as u64);
            }
        }
        Ok(n)
    }
}

/// A completed graph demo.
#[derive(Clone, Debug)]
pub struct GraphOutcome {
    /// Fingerprint of the distributed final states, global model order.
    pub fingerprint: String,
    /// Fingerprint of the in-process `Harness::run` of the same target.
    pub reference: String,
}

impl GraphOutcome {
    pub fn identical(&self) -> bool {
        self.fingerprint == self.reference
    }
}

enum Spawned {
    Proc(Child),
    Thread(JoinHandle<()>),
}

impl Spawned {
    fn kill_and_reap(&mut self) {
        if let Spawned::Proc(child) = self {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn spawn_worker(opts: &LaunchOpts, addr: &str, rank: usize) -> io::Result<Spawned> {
    match &opts.spawn {
        WorkerSpawn::Process(argv) => {
            let program = argv.first().ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "empty worker command")
            })?;
            Command::new(program)
                .args(&argv[1..])
                .env(worker::ADDR_ENV, addr)
                .env(worker::RANK_ENV, rank.to_string())
                .stdin(Stdio::null())
                .spawn()
                .map(Spawned::Proc)
        }
        WorkerSpawn::Thread => {
            let addr = addr.to_string();
            Ok(Spawned::Thread(std::thread::spawn(move || {
                if let Err(e) = worker::run(&addr, rank) {
                    eprintln!("dist worker thread (rank {rank}): {e}");
                }
            })))
        }
    }
}

enum Event {
    Cell {
        rank: usize,
        index: u32,
        json: String,
    },
    Done {
        rank: usize,
    },
    Gone {
        rank: usize,
        why: String,
    },
    /// Graph mode: one end of a cut-wire relay arrived.
    Link {
        wire: u32,
        producer: bool,
        stream: TcpStream,
    },
}

struct SweepShared {
    cells: Vec<WireCell>,
    assignment: Vec<usize>,
    done: Mutex<Vec<Option<String>>>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Serves one control connection: handshake, plan, result stream.
/// `graph_plan` serves graph mode; otherwise the plan is the rank's
/// not-yet-done sweep cells.
///
/// The connection drives the `coordinator` role of the PV-checked dist
/// protocol table: every received frame is gated by a `Recv` transition
/// and read failures are `Eof`/`Torn` transitions, so a peer that
/// departs from the model is reported as a [`Event::Gone`] with the
/// violation text, never silently tolerated.
fn serve_conn(
    mut stream: TcpStream,
    sweep: Option<Arc<SweepShared>>,
    graph_plan: Option<Arc<dyn Fn(usize) -> PlanSpec + Send + Sync>>,
    wire_fault: Arc<Mutex<Option<WireFaultSpec>>>,
    events: mpsc::Sender<Event>,
) {
    let Some(mut tracker) = Tracker::new(dist_cached(), "coordinator") else {
        return;
    };
    let first = match read_frame(&mut stream) {
        Ok(f) => f,
        Err(e) => {
            // The shutdown dummy connection lands here: a clean EOF (or
            // a torn read) in `accept` is a table transition to
            // `closed`, not a protocol violation.
            let stepped = if e.kind() == io::ErrorKind::UnexpectedEof {
                tracker.eof()
            } else {
                tracker.torn()
            };
            debug_assert!(stepped.is_ok(), "{stepped:?}");
            return;
        }
    };
    if tracker.recv(first.event()).is_err() {
        // Off-table first frame (a stray Cell, token traffic on the
        // control port): the table has no rule, so drop the connection.
        return;
    }
    let rank = match first {
        Frame::Hello { rank } => rank as usize,
        Frame::Link { wire, producer } => {
            debug_assert!(tracker.is_terminal(), "Link must land in relaying");
            let _ = events.send(Event::Link {
                wire,
                producer,
                stream,
            });
            return;
        }
        _ => return,
    };
    let plan = if let Some(make) = graph_plan {
        make(rank)
    } else if let Some(state) = &sweep {
        let done = lock(&state.done);
        PlanSpec::Sweep {
            cells: state
                .assignment
                .iter()
                .enumerate()
                .filter(|&(i, &r)| r == rank && done[i].is_none())
                .map(|(i, _)| (i as u32, state.cells[i].clone()))
                .collect(),
        }
    } else {
        return;
    };
    if write_frame(
        &mut stream,
        &Frame::Plan {
            json: plan.encode(),
        },
    )
    .is_err()
    {
        let _ = events.send(Event::Gone {
            rank,
            why: "plan write failed".into(),
        });
        return;
    }
    // The fault campaign corrupts this rank's result stream at most
    // once; after the `Plan` nothing is written back, so the stream can
    // move into the (normally pass-through) flipping reader.
    let flip = {
        let mut slot = lock(&wire_fault);
        match *slot {
            Some(f) if f.rank == rank => {
                *slot = None;
                Some(f.bit)
            }
            _ => None,
        }
    };
    let mut reader = BitFlipReader::new(stream, flip);
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(f) => f,
            Err(e) => {
                let stepped = if e.kind() == io::ErrorKind::UnexpectedEof {
                    tracker.eof()
                } else {
                    tracker.torn()
                };
                debug_assert!(stepped.is_ok(), "{stepped:?}");
                let _ = events.send(Event::Gone {
                    rank,
                    why: e.to_string(),
                });
                return;
            }
        };
        if let Err(v) = tracker.recv(frame.event()) {
            let _ = events.send(Event::Gone {
                rank,
                why: v.to_string(),
            });
            return;
        }
        match frame {
            Frame::Cell { index, json } => {
                let _ = events.send(Event::Cell { rank, index, json });
            }
            Frame::Done => {
                debug_assert!(tracker.is_terminal());
                let _ = events.send(Event::Done { rank });
                return;
            }
            Frame::Err { msg } => {
                debug_assert!(tracker.is_terminal());
                let _ = events.send(Event::Gone { rank, why: msg });
                return;
            }
            other => {
                // Unreachable while the table matches this match: any
                // frame the table rejects already returned above.
                let _ = events.send(Event::Gone {
                    rank,
                    why: format!("unexpected frame {other:?}"),
                });
                return;
            }
        }
    }
}

/// The accept loop plus its clean shutdown (a dummy connection unblocks
/// the final `accept`).
struct Acceptor {
    addr: String,
    closing: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Acceptor {
    fn start(
        sweep: Option<Arc<SweepShared>>,
        graph_plan: Option<Arc<dyn Fn(usize) -> PlanSpec + Send + Sync>>,
        io_timeout: Duration,
        wire_fault: Arc<Mutex<Option<WireFaultSpec>>>,
        events: mpsc::Sender<Event>,
    ) -> io::Result<Acceptor> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?.to_string();
        let closing = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&closing);
        let handle = std::thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                if flag.load(Ordering::SeqCst) {
                    return;
                }
                // Control and relay sockets alike: a peer that stalls
                // mid-frame is a typed timeout, not a wedged thread.
                arm_io(&stream, io_timeout);
                let sweep = sweep.clone();
                let graph_plan = graph_plan.clone();
                let wire_fault = Arc::clone(&wire_fault);
                let events = events.clone();
                std::thread::spawn(move || {
                    serve_conn(stream, sweep, graph_plan, wire_fault, events)
                });
            }
        });
        Ok(Acceptor {
            addr,
            closing,
            handle: Some(handle),
        })
    }

    fn shutdown(&mut self) {
        self.closing.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(&self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Acceptor {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.shutdown();
        }
    }
}

/// Runs `cells` across `opts.ranks` worker processes. Results stream
/// into `store` (keyed by cell label) as they arrive, so a killed
/// launcher — not just a killed worker — resumes from what finished.
pub fn run_sweep(
    cells: &[WireCell],
    opts: &LaunchOpts,
    store: &mut CkptStore,
) -> io::Result<SweepOutcome> {
    assert!(opts.ranks >= 1, "a sweep needs at least one worker");
    assert!(
        opts.kill.is_none() || matches!(opts.spawn, WorkerSpawn::Process(_)),
        "kill injection needs real processes"
    );
    let ranks = opts.ranks.min(cells.len()).max(1);
    let assignment = partition_cells(cells.len(), ranks);
    let done: Vec<Option<String>> = cells
        .iter()
        .map(|c| store.get::<String>(&c.label()).ok().flatten())
        .collect();
    if done.iter().all(Option::is_some) {
        return Ok(SweepOutcome {
            results: cells
                .iter()
                .zip(done)
                .map(|(c, d)| (c.label(), d.expect("checked")))
                .collect(),
            respawns: 0,
            ranks,
            losses: Vec::new(),
        });
    }

    let shared = Arc::new(SweepShared {
        cells: cells.to_vec(),
        assignment: assignment.clone(),
        done: Mutex::new(done),
    });
    let (events_tx, events) = mpsc::channel();
    let mut acceptor = Acceptor::start(
        Some(Arc::clone(&shared)),
        None,
        opts.io_timeout,
        Arc::new(Mutex::new(opts.wire_fault)),
        events_tx,
    )?;

    let mut children: HashMap<usize, Spawned> = HashMap::new();
    let mut losses: Vec<String> = Vec::new();
    let mut result = (|| -> io::Result<usize> {
        let mut watchdog = PeerWatchdog::new(ranks, opts.silence_budget);
        // Adaptive retry: every loss backs off with seeded jitter before
        // the respawn, and a rank that keeps flapping trips its breaker
        // so repeated trips sleep progressively longer (the replacement
        // is the half-open probe; its first Cell closes the breaker).
        let backoff = Backoff::new(0xB51D_6A2D);
        let mut breakers: Vec<Breaker> = (0..ranks).map(|_| Breaker::new(3)).collect();
        let mut respawns = 0usize;
        let mut delivered = vec![0usize; ranks];
        let mut kill_pending = opts.kill;
        for rank in 0..ranks {
            children.insert(rank, spawn_worker(opts, &acceptor.addr, rank)?);
        }
        loop {
            {
                let done = lock(&shared.done);
                if done.iter().all(Option::is_some) {
                    return Ok(respawns);
                }
            }
            let rank_pending = |rank: usize| {
                let done = lock(&shared.done);
                assignment
                    .iter()
                    .enumerate()
                    .any(|(i, &r)| r == rank && done[i].is_none())
            };
            match events.recv_timeout(Duration::from_millis(50)) {
                Ok(Event::Cell { rank, index, json }) => {
                    watchdog.beat(rank);
                    breakers[rank].record_success();
                    let label = cells[index as usize].label();
                    store.put(&label, &json);
                    lock(&shared.done)[index as usize] = Some(json);
                    delivered[rank] += 1;
                    if let Some(kill) = kill_pending {
                        if kill.rank == rank && delivered[rank] >= kill.after_cells {
                            if let Some(child) = children.get_mut(&rank) {
                                child.kill_and_reap();
                            }
                            kill_pending = None;
                        }
                    }
                }
                Ok(Event::Done { rank }) => {
                    watchdog.beat(rank);
                }
                Ok(Event::Gone { rank, why }) => {
                    if !rank_pending(rank) {
                        continue;
                    }
                    losses.push(format!("rank {rank}: {why}"));
                    respawns += 1;
                    if respawns > opts.max_respawns {
                        return Err(io::Error::other(format!(
                            "rank {rank} lost ({why}) and the respawn budget of {} is spent",
                            opts.max_respawns
                        )));
                    }
                    eprintln!("bsim dist: rank {rank} lost ({why}); respawning");
                    if let Some(mut old) = children.remove(&rank) {
                        old.kill_and_reap();
                    }
                    watchdog.lost(rank);
                    let tripped = breakers[rank].record_failure() != BreakerState::Closed;
                    let attempt = breakers[rank].consecutive_failures().saturating_sub(1)
                        + breakers[rank].opens() as u32;
                    std::thread::sleep(Duration::from_millis(backoff.delay_ms(attempt)));
                    if tripped {
                        // The respawn below is the breaker's one
                        // half-open probe.
                        breakers[rank].try_probe();
                    }
                    children.insert(rank, spawn_worker(opts, &acceptor.addr, rank)?);
                    watchdog.revive(rank);
                }
                Ok(Event::Link { .. }) => {} // not part of sweep mode
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    for rank in watchdog.dead() {
                        if rank_pending(rank) {
                            // Hung, not dead: kill it so the socket EOF
                            // drives the normal Gone → respawn path.
                            eprintln!("bsim dist: rank {rank} silent past budget; killing");
                            if let Some(child) = children.get_mut(&rank) {
                                child.kill_and_reap();
                            }
                            watchdog.beat(rank); // one kill per budget window
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(io::Error::other(
                        "event channel closed before the sweep finished",
                    ));
                }
            }
        }
    })();

    acceptor.shutdown();
    // bsim: allow(AU003) kill/wait order does not affect results
    for (_, mut child) in children.drain() {
        match &mut child {
            Spawned::Proc(_) => child.kill_and_reap(),
            Spawned::Thread(_) => {
                if let Spawned::Thread(h) = child {
                    let _ = h.join();
                }
            }
        }
    }
    let respawns = match &mut result {
        Ok(r) => *r,
        Err(_) => 0,
    };
    result.map(|_| {
        let done = lock(&shared.done);
        SweepOutcome {
            results: cells
                .iter()
                .zip(done.iter())
                .map(|(c, d)| (c.label(), d.clone().expect("loop exits when complete")))
                .collect(),
            respawns,
            ranks,
            losses,
        }
    })
}

/// Runs the partitioned demo ring across `opts.ranks` workers and the
/// same target in-process, returning both fingerprints. This is the
/// CLI-visible form of the determinism acceptance bar: the distributed
/// schedule must be bit-identical to `Harness::run`.
pub fn run_graph_demo(
    ring: usize,
    latency: u64,
    quantum: usize,
    cycles: u64,
    seed: u64,
    opts: &LaunchOpts,
) -> io::Result<GraphOutcome> {
    let (models, wires) = demo_ring(ring, seed, latency);
    let assignment = bsim_soc::partition::core_assignment(ring, opts.ranks);
    let ranks = assignment.iter().max().map_or(1, |&r| r + 1);
    let report = lint_graph_plan(ranks, &assignment, &wires, quantum);
    if report.has_errors() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("partition plan fails preflight:\n{report}"),
        ));
    }

    let reference = fingerprint(&Harness::new(models.clone(), wires.clone()).run(cycles));

    let plan_assignment = assignment.clone();
    let graph_plan: Arc<dyn Fn(usize) -> PlanSpec + Send + Sync> =
        Arc::new(move |rank| PlanSpec::Graph {
            ring,
            latency,
            quantum,
            cycles,
            seed,
            assignment: plan_assignment.clone(),
            rank,
        });
    let (events_tx, events) = mpsc::channel();
    let mut acceptor = Acceptor::start(
        None,
        Some(graph_plan),
        opts.io_timeout,
        Arc::new(Mutex::new(None)),
        events_tx,
    )?;

    let mut children: HashMap<usize, Spawned> = HashMap::new();
    let result = (|| -> io::Result<String> {
        let mut watchdog = PeerWatchdog::new(ranks, opts.silence_budget);
        for rank in 0..ranks {
            children.insert(rank, spawn_worker(opts, &acceptor.addr, rank)?);
        }
        let mut relays: HashMap<u32, (Option<TcpStream>, Option<TcpStream>)> = HashMap::new();
        let mut states: Vec<Option<Value>> = vec![None; ring];
        let mut finished = vec![false; ranks];
        loop {
            if finished.iter().all(|&f| f) && states.iter().all(Option::is_some) {
                return Ok(serde_json::to_string(&Value::Seq(
                    states.into_iter().map(|s| s.expect("checked")).collect(),
                ))
                .expect("shim renderer is total"));
            }
            match events.recv_timeout(Duration::from_millis(50)) {
                Ok(Event::Link {
                    wire,
                    producer,
                    stream,
                }) => {
                    let slot = relays.entry(wire).or_insert((None, None));
                    if producer {
                        slot.0 = Some(stream);
                    } else {
                        slot.1 = Some(stream);
                    }
                    if slot.0.is_some() && slot.1.is_some() {
                        let mut from = slot.0.take().expect("checked");
                        let mut to = slot.1.take().expect("checked");
                        // Byte relay: frames pass through untouched, so
                        // the endpoints' cycle checks still apply
                        // end-to-end.
                        std::thread::spawn(move || {
                            let _ = io::copy(&mut from, &mut to);
                        });
                        relays.remove(&wire);
                    }
                }
                Ok(Event::Cell { rank, json, .. }) => {
                    watchdog.beat(rank);
                    let tree: Value = serde_json::from_str(&json).map_err(|_| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("rank {rank} sent undecodable states"),
                        )
                    })?;
                    if let Value::Map(entries) = tree {
                        for (key, state) in entries {
                            let id: usize = key.parse().map_err(|_| {
                                io::Error::new(
                                    io::ErrorKind::InvalidData,
                                    format!("rank {rank} sent non-numeric model id {key:?}"),
                                )
                            })?;
                            states[id] = Some(state);
                        }
                    }
                }
                Ok(Event::Done { rank }) => {
                    watchdog.beat(rank);
                    finished[rank] = true;
                }
                Ok(Event::Gone { rank, why }) => {
                    return Err(io::Error::other(format!("rank {rank} died mid-run: {why}")));
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if let Some(&rank) = watchdog.dead().first() {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("rank {rank} silent past the watchdog budget"),
                        ));
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(io::Error::other(
                        "event channel closed before the run finished",
                    ));
                }
            }
        }
    })();

    acceptor.shutdown();
    // bsim: allow(AU003) kill/wait order does not affect results
    for (_, mut child) in children.drain() {
        match &mut child {
            Spawned::Proc(_) => child.kill_and_reap(),
            Spawned::Thread(_) => {
                if let Spawned::Thread(h) = child {
                    let _ = h.join();
                }
            }
        }
    }
    result.map(|fp| GraphOutcome {
        fingerprint: fp,
        reference,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micro_cells() -> Vec<WireCell> {
        // Two cheap kernels × two platforms: enough cells for two ranks
        // to both carry real work.
        ["Rocket 1", "Rocket 2"]
            .into_iter()
            .flat_map(|p| {
                ["Cca", "EI"].into_iter().map(move |k| WireCell::Micro {
                    platform: p.into(),
                    kernel: k.into(),
                    scale: 1,
                })
            })
            .collect()
    }

    #[test]
    fn a_two_rank_sweep_matches_the_in_process_results() {
        let cells = micro_cells();
        let local: Vec<String> = cells
            .iter()
            .map(|c| {
                serde_json::to_string(&c.run().expect("cells are valid"))
                    .expect("shim renderer is total")
            })
            .collect();
        let mut store = CkptStore::new();
        let outcome =
            run_sweep(&cells, &LaunchOpts::threads(2), &mut store).expect("sweep completes");
        assert_eq!(outcome.ranks, 2);
        assert_eq!(outcome.respawns, 0);
        let remote: Vec<&String> = outcome.results.iter().map(|(_, json)| json).collect();
        assert_eq!(remote.len(), local.len());
        for (r, l) in remote.iter().zip(&local) {
            assert_eq!(*r, l, "worker-side results are byte-identical");
        }
        // Every result also landed in the store under its label.
        for cell in &cells {
            assert!(store.contains(&cell.label()));
        }
    }

    #[test]
    fn cached_cells_are_not_rerun() {
        let cells = micro_cells();
        let mut store = CkptStore::new();
        for cell in &cells {
            store.put(&cell.label(), &"\"cached\"".to_string());
        }
        // All cells cached: no listener, no workers, instant return.
        let outcome = run_sweep(&cells, &LaunchOpts::threads(2), &mut store)
            .expect("cache satisfies the sweep");
        assert!(outcome.results.iter().all(|(_, json)| json == "\"cached\""));
    }

    #[test]
    fn a_poisoned_plan_exhausts_the_respawn_budget_loudly() {
        let cells = vec![WireCell::Micro {
            platform: "no-such-platform".into(),
            kernel: "Cca".into(),
            scale: 1,
        }];
        let mut store = CkptStore::new();
        let mut opts = LaunchOpts::threads(1);
        opts.max_respawns = 2;
        let err = run_sweep(&cells, &opts, &mut store).expect_err("cell can never run");
        assert!(err.to_string().contains("respawn budget"), "{err}");
    }

    #[test]
    fn the_graph_demo_is_bit_identical_across_two_thread_ranks() {
        let outcome = run_graph_demo(4, 2, 16, 400, 0xD15C0, &LaunchOpts::threads(2))
            .expect("demo completes");
        assert!(
            outcome.identical(),
            "distributed {} != in-process {}",
            outcome.fingerprint,
            outcome.reference
        );
    }
}

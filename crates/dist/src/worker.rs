//! The worker-process entry point.
//!
//! A worker is spawned by the [`crate::launcher`] with two environment
//! variables — the coordinator's address and its rank — connects back,
//! introduces itself with a `Hello`, receives its [`PlanSpec`], executes
//! it, and streams results back as `Cell` frames followed by `Done`.
//! One plan per process lifetime: a respawned worker is a fresh process
//! with a fresh (smaller) plan, which is exactly what makes the
//! process-loss recovery story simple.
//!
//! The hidden `bsim dist-worker` subcommand and the integration tests'
//! self-exec both land in [`run_from_env`].

use crate::cells::WireCell;
use crate::frame::{read_frame, write_frame, Frame};
use crate::graph::{demo_ring, rank_view, RankGraph};
use crate::plan::PlanSpec;
use bsim_check::proto::{dist_cached, Tracker, Violation};
use bsim_resilience::snapshot::Snapshot;
use serde::Value;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Socket timeout armed on every worker-side connection (control and
/// token links). A coordinator that accepts and then goes silent is a
/// typed [`io::ErrorKind::TimedOut`]/`WouldBlock` error, not a worker
/// process wedged forever.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(120);

/// Arms symmetric read/write timeouts; zero means unbounded (std
/// rejects a literal zero timeout).
fn arm_io(stream: &TcpStream, timeout: Duration) {
    let t = if timeout.is_zero() {
        None
    } else {
        Some(timeout)
    };
    let _ = stream.set_read_timeout(t);
    let _ = stream.set_write_timeout(t);
}

/// A protocol-table violation on the worker side is a bug in this file,
/// not a peer failure: the table is the specification the code below is
/// supposed to implement. Surface it as a typed error.
fn drift(v: Violation) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, v.to_string())
}

fn worker_tracker() -> io::Result<Tracker<'static>> {
    Tracker::new(dist_cached(), "worker")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "dist table lacks a worker role"))
}

/// Environment variable naming the coordinator's `host:port`.
pub const ADDR_ENV: &str = "BSIM_DIST_ADDR";
/// Environment variable naming this worker's rank.
pub const RANK_ENV: &str = "BSIM_DIST_RANK";

/// The coordinator address and rank, if this process was spawned as a
/// worker.
pub fn from_env() -> Option<(String, usize)> {
    let addr = std::env::var(ADDR_ENV).ok()?;
    let rank = std::env::var(RANK_ENV).ok()?.parse().ok()?;
    Some((addr, rank))
}

/// Worker main: connect back and execute the plan. Returns an error
/// (after best-effort reporting it as an `Err` frame) rather than
/// panicking — a worker's death must always be legible to the
/// coordinator as a socket event plus, when possible, a reason.
pub fn run_from_env() -> io::Result<()> {
    let (addr, rank) = from_env().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("{ADDR_ENV}/{RANK_ENV} are not set; this entry point is for spawned workers"),
        )
    })?;
    run(&addr, rank)
}

/// Connects to `addr`, handshakes as `rank`, and executes one plan.
/// The exchange drives the `worker` role of the PV-checked dist
/// protocol table: every frame sent is preceded by a `Local` transition
/// and every frame received is gated by a `Recv` transition, so the
/// runtime cannot silently diverge from the model the checker explored.
pub fn run(addr: &str, rank: usize) -> io::Result<()> {
    run_with(addr, rank, DEFAULT_IO_TIMEOUT)
}

/// [`run`] with an explicit socket timeout (the fault campaign shrinks
/// it to prove a silent coordinator cannot hang a worker).
pub fn run_with(addr: &str, rank: usize, io_timeout: Duration) -> io::Result<()> {
    let mut tracker = worker_tracker()?;
    let control = TcpStream::connect(addr)?;
    arm_io(&control, io_timeout);
    let mut control = control;
    tracker.local("hello").map_err(drift)?;
    write_frame(&mut control, &Frame::Hello { rank: rank as u32 })?;
    let frame = match read_frame(&mut control) {
        Ok(f) => f,
        Err(e) => {
            // Peer loss while awaiting the plan: a table transition to
            // `lost` either way; surface the io error.
            let stepped = if e.kind() == io::ErrorKind::UnexpectedEof {
                tracker.eof()
            } else {
                tracker.torn()
            };
            debug_assert!(stepped.is_ok(), "{stepped:?}");
            return Err(e);
        }
    };
    if let Err(v) = tracker.recv(frame.event()) {
        return Err(drift(v));
    }
    let json = match frame {
        Frame::Plan { json } => json,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a Plan frame, got {other:?}"),
            ))
        }
    };
    let Some(plan) = PlanSpec::decode(&json) else {
        let msg = format!("rank {rank}: undecodable plan");
        let stepped = tracker.local("error");
        debug_assert!(stepped.is_ok(), "{stepped:?}");
        let _ = write_frame(&mut control, &Frame::Err { msg: msg.clone() });
        return Err(io::Error::new(io::ErrorKind::InvalidData, msg));
    };
    match plan {
        PlanSpec::Sweep { cells } => run_sweep(&mut control, &mut tracker, rank, &cells),
        PlanSpec::Graph {
            ring,
            latency,
            quantum,
            cycles,
            seed,
            assignment,
            rank: plan_rank,
        } => run_graph(
            &mut control,
            &mut tracker,
            addr,
            io_timeout,
            plan_rank,
            ring,
            latency,
            quantum,
            cycles,
            seed,
            &assignment,
        ),
    }
}

fn run_sweep(
    control: &mut TcpStream,
    tracker: &mut Tracker<'_>,
    rank: usize,
    cells: &[(u32, WireCell)],
) -> io::Result<()> {
    for (index, cell) in cells {
        match cell.run() {
            Ok(tree) => {
                tracker.local("cell").map_err(drift)?;
                write_frame(
                    control,
                    &Frame::Cell {
                        index: *index,
                        json: serde_json::to_string(&tree).expect("shim renderer is total"),
                    },
                )?
            }
            Err(why) => {
                let msg = format!("rank {rank}: cell {}: {why}", cell.label());
                let stepped = tracker.local("error");
                debug_assert!(stepped.is_ok(), "{stepped:?}");
                let _ = write_frame(control, &Frame::Err { msg: msg.clone() });
                return Err(io::Error::new(io::ErrorKind::InvalidInput, msg));
            }
        }
    }
    tracker.local("done").map_err(drift)?;
    write_frame(control, &Frame::Done)?;
    debug_assert!(tracker.is_terminal(), "worker left the table mid-exchange");
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn run_graph(
    control: &mut TcpStream,
    tracker: &mut Tracker<'_>,
    addr: &str,
    io_timeout: Duration,
    rank: usize,
    ring: usize,
    latency: u64,
    quantum: usize,
    cycles: u64,
    seed: u64,
    assignment: &[usize],
) -> io::Result<()> {
    let (models, wires) = demo_ring(ring, seed, latency);
    let view = rank_view(assignment, &wires, rank);
    // One extra connection per cut wire, introduced by a Link frame so
    // the coordinator can pair producer and consumer ends and relay
    // bytes between them.
    // Each link connection is its own protocol session: a fresh tracker
    // takes the `connect --link--> piping` transition and parks in the
    // `piping` terminal, after which the socket carries raw token frames
    // the control table deliberately does not model.
    let connect_link = |wire: u32, producer: bool| -> io::Result<TcpStream> {
        let mut link = worker_tracker()?;
        link.local("link").map_err(drift)?;
        debug_assert!(link.is_terminal());
        let mut s = TcpStream::connect(addr)?;
        arm_io(&s, io_timeout);
        write_frame(&mut s, &Frame::Link { wire, producer })?;
        Ok(s)
    };
    let mut out_streams: Vec<Box<dyn Write + Send>> = Vec::with_capacity(view.outs.len());
    for cut in &view.outs {
        out_streams.push(Box::new(connect_link(cut.wire as u32, true)?));
    }
    let mut in_streams: Vec<Box<dyn Read + Send>> = Vec::with_capacity(view.ins.len());
    for cut in &view.ins {
        in_streams.push(Box::new(connect_link(cut.wire as u32, false)?));
    }
    let local: Vec<_> = view
        .local_models
        .iter()
        .map(|&g| models[g].clone())
        .collect();
    let mut graph = RankGraph::new(local, &view, in_streams, out_streams, quantum, true);
    graph.run(cycles)?;
    // Final states keyed by global model id, so the coordinator can
    // reassemble the ring in order.
    let states = Value::Map(
        view.local_models
            .iter()
            .zip(graph.models())
            .map(|(&g, m)| (g.to_string(), m.save()))
            .collect(),
    );
    tracker.local("cell").map_err(drift)?;
    write_frame(
        control,
        &Frame::Cell {
            index: rank as u32,
            json: serde_json::to_string(&states).expect("shim renderer is total"),
        },
    )?;
    tracker.local("done").map_err(drift)?;
    write_frame(control, &Frame::Done)?;
    debug_assert!(tracker.is_terminal(), "worker left the table mid-exchange");
    Ok(())
}

//! The worker-process entry point.
//!
//! A worker is spawned by the [`crate::launcher`] with two environment
//! variables — the coordinator's address and its rank — connects back,
//! introduces itself with a `Hello`, receives its [`PlanSpec`], executes
//! it, and streams results back as `Cell` frames followed by `Done`.
//! One plan per process lifetime: a respawned worker is a fresh process
//! with a fresh (smaller) plan, which is exactly what makes the
//! process-loss recovery story simple.
//!
//! The hidden `bsim dist-worker` subcommand and the integration tests'
//! self-exec both land in [`run_from_env`].

use crate::cells::WireCell;
use crate::frame::{read_frame, write_frame, Frame};
use crate::graph::{demo_ring, rank_view, RankGraph};
use crate::plan::PlanSpec;
use bsim_resilience::snapshot::Snapshot;
use serde::Value;
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Environment variable naming the coordinator's `host:port`.
pub const ADDR_ENV: &str = "BSIM_DIST_ADDR";
/// Environment variable naming this worker's rank.
pub const RANK_ENV: &str = "BSIM_DIST_RANK";

/// The coordinator address and rank, if this process was spawned as a
/// worker.
pub fn from_env() -> Option<(String, usize)> {
    let addr = std::env::var(ADDR_ENV).ok()?;
    let rank = std::env::var(RANK_ENV).ok()?.parse().ok()?;
    Some((addr, rank))
}

/// Worker main: connect back and execute the plan. Returns an error
/// (after best-effort reporting it as an `Err` frame) rather than
/// panicking — a worker's death must always be legible to the
/// coordinator as a socket event plus, when possible, a reason.
pub fn run_from_env() -> io::Result<()> {
    let (addr, rank) = from_env().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("{ADDR_ENV}/{RANK_ENV} are not set; this entry point is for spawned workers"),
        )
    })?;
    run(&addr, rank)
}

/// Connects to `addr`, handshakes as `rank`, and executes one plan.
pub fn run(addr: &str, rank: usize) -> io::Result<()> {
    let mut control = TcpStream::connect(addr)?;
    write_frame(&mut control, &Frame::Hello { rank: rank as u32 })?;
    let json = match read_frame(&mut control)? {
        Frame::Plan { json } => json,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a Plan frame, got {other:?}"),
            ))
        }
    };
    let Some(plan) = PlanSpec::decode(&json) else {
        let msg = format!("rank {rank}: undecodable plan");
        let _ = write_frame(&mut control, &Frame::Err { msg: msg.clone() });
        return Err(io::Error::new(io::ErrorKind::InvalidData, msg));
    };
    match plan {
        PlanSpec::Sweep { cells } => run_sweep(&mut control, rank, &cells),
        PlanSpec::Graph {
            ring,
            latency,
            quantum,
            cycles,
            seed,
            assignment,
            rank: plan_rank,
        } => run_graph(
            &mut control,
            addr,
            plan_rank,
            ring,
            latency,
            quantum,
            cycles,
            seed,
            &assignment,
        ),
    }
}

fn run_sweep(control: &mut TcpStream, rank: usize, cells: &[(u32, WireCell)]) -> io::Result<()> {
    for (index, cell) in cells {
        match cell.run() {
            Ok(tree) => write_frame(
                control,
                &Frame::Cell {
                    index: *index,
                    json: serde_json::to_string(&tree).expect("shim renderer is total"),
                },
            )?,
            Err(why) => {
                let msg = format!("rank {rank}: cell {}: {why}", cell.label());
                let _ = write_frame(control, &Frame::Err { msg: msg.clone() });
                return Err(io::Error::new(io::ErrorKind::InvalidInput, msg));
            }
        }
    }
    write_frame(control, &Frame::Done)
}

#[allow(clippy::too_many_arguments)]
fn run_graph(
    control: &mut TcpStream,
    addr: &str,
    rank: usize,
    ring: usize,
    latency: u64,
    quantum: usize,
    cycles: u64,
    seed: u64,
    assignment: &[usize],
) -> io::Result<()> {
    let (models, wires) = demo_ring(ring, seed, latency);
    let view = rank_view(assignment, &wires, rank);
    // One extra connection per cut wire, introduced by a Link frame so
    // the coordinator can pair producer and consumer ends and relay
    // bytes between them.
    let mut out_streams: Vec<Box<dyn Write + Send>> = Vec::with_capacity(view.outs.len());
    for cut in &view.outs {
        let mut s = TcpStream::connect(addr)?;
        write_frame(
            &mut s,
            &Frame::Link {
                wire: cut.wire as u32,
                producer: true,
            },
        )?;
        out_streams.push(Box::new(s));
    }
    let mut in_streams: Vec<Box<dyn Read + Send>> = Vec::with_capacity(view.ins.len());
    for cut in &view.ins {
        let mut s = TcpStream::connect(addr)?;
        write_frame(
            &mut s,
            &Frame::Link {
                wire: cut.wire as u32,
                producer: false,
            },
        )?;
        in_streams.push(Box::new(s));
    }
    let local: Vec<_> = view
        .local_models
        .iter()
        .map(|&g| models[g].clone())
        .collect();
    let mut graph = RankGraph::new(local, &view, in_streams, out_streams, quantum, true);
    graph.run(cycles)?;
    // Final states keyed by global model id, so the coordinator can
    // reassemble the ring in order.
    let states = Value::Map(
        view.local_models
            .iter()
            .zip(graph.models())
            .map(|(&g, m)| (g.to_string(), m.save()))
            .collect(),
    );
    write_frame(
        control,
        &Frame::Cell {
            index: rank as u32,
            json: serde_json::to_string(&states).expect("shim renderer is total"),
        },
    )?;
    write_frame(control, &Frame::Done)
}

//! The wire protocol: length-prefixed binary frames with an integrity
//! header.
//!
//! Every byte that crosses a process boundary is one [`Frame`]:
//! `[magic: u16 LE][version: u8][tag: u8][len: u32 LE][crc32: u32 LE]`
//! `[payload: len bytes]`. Two frame kinds carry token traffic —
//! [`Frame::Data`] for literal token batches and [`Frame::Run`] for
//! run-length spans (the on-the-wire form of the quiescence
//! fast-forward: a million idle cycles is 36 bytes, not 8 MB) — the
//! rest are control-plane: handshake, plan distribution, link pairing,
//! and result collection.
//!
//! Frames carry *channel-absolute* start cycles so every hop re-checks
//! the token protocol: a frame landing at the wrong cycle is a protocol
//! violation surfaced as [`std::io::ErrorKind::InvalidData`], never a
//! silently reordered simulation.
//!
//! Failure taxonomy (see [`FrameError`] / [`classify`]): clean EOF
//! between frames is **peer loss**; EOF inside a frame is a **torn**
//! write; a frame that arrives whole but fails the magic, version, or
//! CRC32 check is **corrupt** — three distinct conditions with three
//! distinct recovery stories, never conflated.

use bsim_resilience::crc32;
use std::io::{self, Read, Write};

/// Upper bound on a frame payload. Nothing legitimate comes close; a
/// corrupt length prefix must not turn into a multi-gigabyte allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// First two bytes of every frame; a stream that does not open with the
/// magic is not speaking this protocol (or a bit flipped in transit).
pub const MAGIC: u16 = 0xB51D;

/// Wire protocol version, bumped when the frame layout changes.
/// Version 1 was the pre-guard `[tag][len]` header without integrity.
pub const PROTO_VERSION: u8 = 2;

/// Total bytes preceding the payload: magic + version + tag + len + crc.
pub const HEADER_LEN: usize = 12;

/// One message on a distributed-simulation socket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Worker → coordinator handshake on the control connection.
    Hello { rank: u32 },
    /// Coordinator → worker: the JSON partition plan ([`crate::plan`]).
    Plan { json: String },
    /// A literal batch of tokens for cycles `start..start + tokens.len()`.
    Data { start: u64, tokens: Vec<u64> },
    /// A run-length span: `n` copies of `fill` for cycles `start..start + n`.
    Run { start: u64, n: u64, fill: u64 },
    /// First frame on a token-link connection: which cut wire this
    /// stream carries and which endpoint the sender is.
    Link { wire: u32, producer: bool },
    /// Worker → coordinator: one completed result (sweep cell or final
    /// partition state), by plan index.
    Cell { index: u32, json: String },
    /// Worker → coordinator: the plan is fully executed.
    Done,
    /// Either direction: fatal error, human-readable.
    Err { msg: String },
}

impl Frame {
    /// The protocol-table message name of this frame, as used by the PV
    /// model in `bsim_check::proto::dist_protocol`. `Data`/`Run` are
    /// token-link traffic and never appear on the control connection the
    /// table models; they keep their own names so a misrouted token
    /// frame shows up as an off-alphabet event, not a silent accept.
    pub fn event(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "Hello",
            Frame::Plan { .. } => "Plan",
            Frame::Data { .. } => "Data",
            Frame::Run { .. } => "Run",
            Frame::Link { .. } => "Link",
            Frame::Cell { .. } => "Cell",
            Frame::Done => "Done",
            Frame::Err { .. } => "Err",
        }
    }
}

const TAG_HELLO: u8 = 1;
const TAG_PLAN: u8 = 2;
const TAG_DATA: u8 = 3;
const TAG_RUN: u8 = 4;
const TAG_LINK: u8 = 5;
const TAG_CELL: u8 = 6;
const TAG_DONE: u8 = 7;
const TAG_ERR: u8 = 8;

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Prefix every integrity failure so [`classify`] can tell corruption
/// apart from a torn write without a new `io::ErrorKind`.
const CORRUPT_PREFIX: &str = "corrupt frame: ";

fn corrupt(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("{CORRUPT_PREFIX}{msg}"))
}

/// The typed failure classes a frame read can produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Clean EOF between frames: the peer is gone, nothing was torn.
    PeerClosed,
    /// EOF or structural garbage inside a frame: a torn write.
    Torn,
    /// The frame arrived whole but failed the magic, version, or CRC32
    /// check — data integrity, not framing.
    Corrupt,
    /// The socket's guard timeout expired before a frame arrived.
    Timeout,
    /// Any other transport error.
    Io,
}

impl FrameError {
    /// Stable lowercase label for telemetry and loss reporting.
    pub fn label(&self) -> &'static str {
        match self {
            FrameError::PeerClosed => "peer_closed",
            FrameError::Torn => "torn",
            FrameError::Corrupt => "corrupt",
            FrameError::Timeout => "timeout",
            FrameError::Io => "io",
        }
    }
}

/// Classifies an error returned by [`read_frame`] (or a write on the
/// same socket) into the [`FrameError`] taxonomy. Total: anything the
/// frame layer did not type lands in [`FrameError::Io`].
pub fn classify(e: &io::Error) -> FrameError {
    match e.kind() {
        io::ErrorKind::UnexpectedEof => FrameError::PeerClosed,
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => FrameError::Timeout,
        io::ErrorKind::InvalidData => {
            if e.to_string().starts_with(CORRUPT_PREFIX) {
                FrameError::Corrupt
            } else {
                FrameError::Torn
            }
        }
        _ => FrameError::Io,
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn take_u32(payload: &[u8], at: usize) -> io::Result<u32> {
    payload
        .get(at..at + 4)
        .map(|b| u32::from_le_bytes(b.try_into().expect("4-byte slice"))) // bsim: allow(AU002) slice width is structural
        .ok_or_else(|| bad("truncated frame payload".into()))
}

fn take_u64(payload: &[u8], at: usize) -> io::Result<u64> {
    payload
        .get(at..at + 8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice"))) // bsim: allow(AU002) slice width is structural
        .ok_or_else(|| bad("truncated frame payload".into()))
}

fn take_str(payload: &[u8], at: usize) -> io::Result<String> {
    String::from_utf8(payload[at..].to_vec()).map_err(|_| bad("non-UTF-8 frame text".into()))
}

/// Serializes and writes one frame. One `write_all` per frame keeps a
/// frame from interleaving with another writer's bytes only if the
/// stream has a single writer — which the link design guarantees (each
/// direction of each cut wire is its own connection).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let (tag, payload) = match frame {
        Frame::Hello { rank } => {
            let mut p = Vec::with_capacity(4);
            put_u32(&mut p, *rank);
            (TAG_HELLO, p)
        }
        Frame::Plan { json } => (TAG_PLAN, json.as_bytes().to_vec()),
        Frame::Data { start, tokens } => {
            let mut p = Vec::with_capacity(8 + tokens.len() * 8);
            put_u64(&mut p, *start);
            for t in tokens {
                put_u64(&mut p, *t);
            }
            (TAG_DATA, p)
        }
        Frame::Run { start, n, fill } => {
            let mut p = Vec::with_capacity(24);
            put_u64(&mut p, *start);
            put_u64(&mut p, *n);
            put_u64(&mut p, *fill);
            (TAG_RUN, p)
        }
        Frame::Link { wire, producer } => {
            let mut p = Vec::with_capacity(5);
            put_u32(&mut p, *wire);
            p.push(u8::from(*producer));
            (TAG_LINK, p)
        }
        Frame::Cell { index, json } => {
            let mut p = Vec::with_capacity(4 + json.len());
            put_u32(&mut p, *index);
            p.extend_from_slice(json.as_bytes());
            (TAG_CELL, p)
        }
        Frame::Done => (TAG_DONE, Vec::new()),
        Frame::Err { msg } => (TAG_ERR, msg.as_bytes().to_vec()),
    };
    if payload.len() > MAX_FRAME {
        return Err(bad(format!(
            "{}-byte frame exceeds MAX_FRAME",
            payload.len()
        )));
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(PROTO_VERSION);
    out.push(tag);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    w.write_all(&out)
}

/// Reads one frame, blocking. EOF *between* frames surfaces as
/// `UnexpectedEof` with message `"peer closed"` — the launcher treats
/// that as the peer's death; EOF *inside* a frame is a torn write and
/// reads as a protocol error; a bad magic, unsupported version, or
/// CRC32 mismatch is a [`FrameError::Corrupt`] integrity failure. A
/// socket read timeout propagates with its own kind so guard deadlines
/// stay a typed condition, not a mislabeled tear.
pub fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let mut head = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < head.len() {
        let n = r.read(&mut head[filled..])?;
        if n == 0 {
            return Err(if filled == 0 {
                io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed")
            } else {
                bad("EOF inside a frame header".into())
            });
        }
        filled += n;
    }
    let magic = u16::from_le_bytes(head[0..2].try_into().expect("2-byte slice")); // bsim: allow(AU002) slice width is structural
    if magic != MAGIC {
        return Err(corrupt(format!("bad magic {magic:#06x}")));
    }
    if head[2] != PROTO_VERSION {
        return Err(corrupt(format!(
            "protocol version {} (this build speaks {PROTO_VERSION})",
            head[2]
        )));
    }
    let tag = head[3];
    let len = u32::from_le_bytes(head[4..8].try_into().expect("4-byte slice")) as usize; // bsim: allow(AU002) slice width is structural
    let want_crc = u32::from_le_bytes(head[8..12].try_into().expect("4-byte slice")); // bsim: allow(AU002) slice width is structural
    if len > MAX_FRAME {
        return Err(corrupt(format!("{len}-byte frame exceeds MAX_FRAME")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        // A timeout is a guard deadline, not a tear; keep its kind.
        if matches!(
            e.kind(),
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
        ) {
            e
        } else {
            bad("EOF inside a frame payload".into())
        }
    })?;
    let got_crc = crc32(&payload);
    if got_crc != want_crc {
        return Err(corrupt(format!(
            "payload CRC32 {got_crc:#010x} != header {want_crc:#010x}"
        )));
    }
    match tag {
        TAG_HELLO => Ok(Frame::Hello {
            rank: take_u32(&payload, 0)?,
        }),
        TAG_PLAN => Ok(Frame::Plan {
            json: take_str(&payload, 0)?,
        }),
        TAG_DATA => {
            let start = take_u64(&payload, 0)?;
            if !(payload.len() - 8).is_multiple_of(8) {
                return Err(bad("Data frame payload is not a whole token count".into()));
            }
            let tokens = payload[8..]
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk"))) // bsim: allow(AU002) slice width is structural
                .collect();
            Ok(Frame::Data { start, tokens })
        }
        TAG_RUN => Ok(Frame::Run {
            start: take_u64(&payload, 0)?,
            n: take_u64(&payload, 8)?,
            fill: take_u64(&payload, 16)?,
        }),
        TAG_LINK => Ok(Frame::Link {
            wire: take_u32(&payload, 0)?,
            producer: *payload.get(4).ok_or_else(|| bad("truncated Link".into()))? != 0,
        }),
        TAG_CELL => Ok(Frame::Cell {
            index: take_u32(&payload, 0)?,
            json: take_str(&payload, 4)?,
        }),
        TAG_DONE => Ok(Frame::Done),
        TAG_ERR => Ok(Frame::Err {
            msg: take_str(&payload, 0)?,
        }),
        // Magic and version already matched, so an unknown tag is a
        // flipped bit in the header, not a foreign protocol.
        other => Err(corrupt(format!("unknown frame tag {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_roundtrips() {
        let frames = vec![
            Frame::Hello { rank: 3 },
            Frame::Plan {
                json: r#"{"mode":"sweep"}"#.into(),
            },
            Frame::Data {
                start: 7,
                tokens: vec![1, 0, u64::MAX],
            },
            Frame::Run {
                start: 10,
                n: 1 << 40,
                fill: 0,
            },
            Frame::Link {
                wire: 2,
                producer: true,
            },
            Frame::Cell {
                index: 5,
                json: "{}".into(),
            },
            Frame::Done,
            Frame::Err {
                msg: "worker 1: kernel not found".into(),
            },
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).expect("vec write is infallible");
        }
        let mut r = &wire[..];
        for f in &frames {
            assert_eq!(&read_frame(&mut r).expect("frame reads back"), f);
        }
        // The stream is exactly consumed: next read is a clean EOF.
        let end = read_frame(&mut r).expect_err("stream is drained");
        assert_eq!(end.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn a_run_frame_is_constant_size() {
        let mut wire = Vec::new();
        write_frame(
            &mut wire,
            &Frame::Run {
                start: 0,
                n: 1_000_000,
                fill: 0,
            },
        )
        .expect("vec write");
        // 12-byte integrity header + 24-byte payload: a million idle
        // cycles in 36 bytes is the point of run-length token traffic.
        assert_eq!(wire.len(), HEADER_LEN + 24);
        assert_eq!(wire.len(), 36);
    }

    /// A valid header for `payload`, for hand-corrupting in tests.
    fn header(tag: u8, payload: &[u8]) -> Vec<u8> {
        let mut h = Vec::with_capacity(HEADER_LEN);
        h.extend_from_slice(&MAGIC.to_le_bytes());
        h.push(PROTO_VERSION);
        h.push(tag);
        h.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        h.extend_from_slice(&crc32(payload).to_le_bytes());
        h
    }

    #[test]
    fn torn_and_corrupt_frames_are_protocol_errors_not_panics() {
        // EOF mid-header: torn, not corrupt.
        let mut r: &[u8] = &[MAGIC.to_le_bytes()[0], MAGIC.to_le_bytes()[1], 9];
        let e = read_frame(&mut r).expect_err("torn header");
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        assert_eq!(classify(&e), FrameError::Torn);
        // EOF mid-payload: torn.
        let mut wire = Vec::new();
        write_frame(
            &mut wire,
            &Frame::Data {
                start: 0,
                tokens: vec![1, 2, 3],
            },
        )
        .expect("vec write");
        wire.truncate(wire.len() - 1);
        let mut r = &wire[..];
        let e = read_frame(&mut r).expect_err("torn payload");
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        assert_eq!(classify(&e), FrameError::Torn);
        // Absurd length prefix under a valid magic/version: corrupt.
        let mut head = header(TAG_PLAN, b"");
        head[4..8].copy_from_slice(&((MAX_FRAME + 1) as u32).to_le_bytes());
        let mut r = &head[..];
        let e = read_frame(&mut r).expect_err("oversized");
        assert_eq!(classify(&e), FrameError::Corrupt);
        // Unknown tag under a valid magic/version: corrupt.
        let head = header(99, b"");
        let mut r = &head[..];
        let e = read_frame(&mut r).expect_err("unknown tag");
        assert_eq!(classify(&e), FrameError::Corrupt);
    }

    #[test]
    fn integrity_failures_are_typed_corrupt_distinct_from_torn() {
        // Bad magic.
        let mut head = header(TAG_DONE, b"");
        head[0] ^= 0xFF;
        let e = read_frame(&mut &head[..]).expect_err("bad magic");
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        assert_eq!(classify(&e), FrameError::Corrupt);
        assert!(e.to_string().contains("magic"), "{e}");
        // Foreign protocol version.
        let mut head = header(TAG_DONE, b"");
        head[2] = PROTO_VERSION + 1;
        let e = read_frame(&mut &head[..]).expect_err("bad version");
        assert_eq!(classify(&e), FrameError::Corrupt);
        assert!(e.to_string().contains("version"), "{e}");
        // A single payload bit flipped: the CRC catches it.
        let mut wire = Vec::new();
        write_frame(
            &mut wire,
            &Frame::Cell {
                index: 7,
                json: r#"{"cycles":123456}"#.into(),
            },
        )
        .expect("vec write");
        for bit in 0..8 {
            let mut flipped = wire.clone();
            let last = flipped.len() - 1;
            flipped[last] ^= 1 << bit;
            let e = read_frame(&mut &flipped[..]).expect_err("flipped payload bit");
            assert_eq!(classify(&e), FrameError::Corrupt, "bit {bit}: {e}");
            assert!(e.to_string().contains("CRC32"), "{e}");
        }
        // Clean EOF stays its own class.
        let e = read_frame(&mut &[][..]).expect_err("clean eof");
        assert_eq!(classify(&e), FrameError::PeerClosed);
        // Timeouts keep their kind through classification.
        let t = io::Error::new(io::ErrorKind::TimedOut, "read timed out");
        assert_eq!(classify(&t), FrameError::Timeout);
        let w = io::Error::new(io::ErrorKind::WouldBlock, "read timed out");
        assert_eq!(classify(&w), FrameError::Timeout);
        assert_eq!(
            classify(&io::Error::new(io::ErrorKind::ConnectionReset, "rst")),
            FrameError::Io
        );
    }

    #[test]
    fn corruption_fuzz_never_panics_the_decoder() {
        // Seeded 10k-round smoke: flip one bit or truncate a valid
        // multi-frame wire at a pseudo-random point, then drain the
        // decoder. Every round must end in a typed error or clean EOF —
        // never a panic, never an unbounded allocation.
        let frames = vec![
            Frame::Hello { rank: 1 },
            Frame::Plan {
                json: r#"{"mode":"sweep","cells":3}"#.into(),
            },
            Frame::Data {
                start: 64,
                tokens: (0..32).collect(),
            },
            Frame::Run {
                start: 96,
                n: 1 << 30,
                fill: 0,
            },
            Frame::Cell {
                index: 2,
                json: r#"{"platform":"milkv","cycles":987654}"#.into(),
            },
            Frame::Done,
        ];
        let mut clean = Vec::new();
        for f in &frames {
            write_frame(&mut clean, f).expect("vec write");
        }
        let mut state: u64 = 0xB51D_600D_F00D_5EED;
        let mut rng = move || {
            // splitmix64, inlined so the test is self-contained.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut corrupt_seen = 0u32;
        for round in 0..10_000u32 {
            let mut wire = clean.clone();
            if round % 4 == 0 {
                wire.truncate((rng() as usize) % (wire.len() + 1));
            } else {
                let at = (rng() as usize) % wire.len();
                wire[at] ^= 1 << (rng() % 8);
            }
            let mut r = &wire[..];
            loop {
                match read_frame(&mut r) {
                    Ok(_) => continue,
                    Err(e) => {
                        match classify(&e) {
                            FrameError::Corrupt => corrupt_seen += 1,
                            FrameError::PeerClosed | FrameError::Torn => {}
                            other => panic!("round {round}: unexpected {other:?}: {e}"),
                        }
                        break;
                    }
                }
            }
        }
        assert!(
            corrupt_seen > 1_000,
            "bit flips barely ever tripped the CRC ({corrupt_seen}/10000)"
        );
    }

    #[test]
    fn control_frame_events_are_in_the_protocol_alphabet() {
        // The runtime gates control-plane frames through the PV table by
        // name; a frame whose `event()` drifted from the table would be
        // rejected as off-alphabet at runtime. Data/Run are token-link
        // traffic the control table deliberately does not model.
        let alphabet = bsim_check::proto::dist_protocol().alphabet();
        let control = [
            Frame::Hello { rank: 0 },
            Frame::Plan {
                json: String::new(),
            },
            Frame::Link {
                wire: 0,
                producer: true,
            },
            Frame::Cell {
                index: 0,
                json: String::new(),
            },
            Frame::Done,
            Frame::Err { msg: String::new() },
        ];
        for f in &control {
            assert!(
                alphabet.contains(&f.event()),
                "{} is missing from the dist protocol alphabet",
                f.event()
            );
        }
        for f in &[
            Frame::Data {
                start: 0,
                tokens: vec![],
            },
            Frame::Run {
                start: 0,
                n: 0,
                fill: 0,
            },
        ] {
            assert!(
                !alphabet.contains(&f.event()),
                "token traffic {} must stay off the control alphabet",
                f.event()
            );
        }
    }
}

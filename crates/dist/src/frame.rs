//! The wire protocol: length-prefixed binary frames.
//!
//! Every byte that crosses a process boundary is one [`Frame`]:
//! `[tag: u8][len: u32 LE][payload: len bytes]`. Two frame kinds carry
//! token traffic — [`Frame::Data`] for literal token batches and
//! [`Frame::Run`] for run-length spans (the on-the-wire form of the
//! quiescence fast-forward: a million idle cycles is 25 bytes, not 8 MB)
//! — the rest are control-plane: handshake, plan distribution, link
//! pairing, and result collection.
//!
//! Frames carry *channel-absolute* start cycles so every hop re-checks
//! the token protocol: a frame landing at the wrong cycle is a protocol
//! violation surfaced as [`std::io::ErrorKind::InvalidData`], never a
//! silently reordered simulation.

use std::io::{self, Read, Write};

/// Upper bound on a frame payload. Nothing legitimate comes close; a
/// corrupt length prefix must not turn into a multi-gigabyte allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// One message on a distributed-simulation socket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Worker → coordinator handshake on the control connection.
    Hello { rank: u32 },
    /// Coordinator → worker: the JSON partition plan ([`crate::plan`]).
    Plan { json: String },
    /// A literal batch of tokens for cycles `start..start + tokens.len()`.
    Data { start: u64, tokens: Vec<u64> },
    /// A run-length span: `n` copies of `fill` for cycles `start..start + n`.
    Run { start: u64, n: u64, fill: u64 },
    /// First frame on a token-link connection: which cut wire this
    /// stream carries and which endpoint the sender is.
    Link { wire: u32, producer: bool },
    /// Worker → coordinator: one completed result (sweep cell or final
    /// partition state), by plan index.
    Cell { index: u32, json: String },
    /// Worker → coordinator: the plan is fully executed.
    Done,
    /// Either direction: fatal error, human-readable.
    Err { msg: String },
}

impl Frame {
    /// The protocol-table message name of this frame, as used by the PV
    /// model in `bsim_check::proto::dist_protocol`. `Data`/`Run` are
    /// token-link traffic and never appear on the control connection the
    /// table models; they keep their own names so a misrouted token
    /// frame shows up as an off-alphabet event, not a silent accept.
    pub fn event(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "Hello",
            Frame::Plan { .. } => "Plan",
            Frame::Data { .. } => "Data",
            Frame::Run { .. } => "Run",
            Frame::Link { .. } => "Link",
            Frame::Cell { .. } => "Cell",
            Frame::Done => "Done",
            Frame::Err { .. } => "Err",
        }
    }
}

const TAG_HELLO: u8 = 1;
const TAG_PLAN: u8 = 2;
const TAG_DATA: u8 = 3;
const TAG_RUN: u8 = 4;
const TAG_LINK: u8 = 5;
const TAG_CELL: u8 = 6;
const TAG_DONE: u8 = 7;
const TAG_ERR: u8 = 8;

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn take_u32(payload: &[u8], at: usize) -> io::Result<u32> {
    payload
        .get(at..at + 4)
        .map(|b| u32::from_le_bytes(b.try_into().expect("4-byte slice"))) // bsim: allow(AU002) slice width is structural
        .ok_or_else(|| bad("truncated frame payload".into()))
}

fn take_u64(payload: &[u8], at: usize) -> io::Result<u64> {
    payload
        .get(at..at + 8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice"))) // bsim: allow(AU002) slice width is structural
        .ok_or_else(|| bad("truncated frame payload".into()))
}

fn take_str(payload: &[u8], at: usize) -> io::Result<String> {
    String::from_utf8(payload[at..].to_vec()).map_err(|_| bad("non-UTF-8 frame text".into()))
}

/// Serializes and writes one frame. One `write_all` per frame keeps a
/// frame from interleaving with another writer's bytes only if the
/// stream has a single writer — which the link design guarantees (each
/// direction of each cut wire is its own connection).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let (tag, payload) = match frame {
        Frame::Hello { rank } => {
            let mut p = Vec::with_capacity(4);
            put_u32(&mut p, *rank);
            (TAG_HELLO, p)
        }
        Frame::Plan { json } => (TAG_PLAN, json.as_bytes().to_vec()),
        Frame::Data { start, tokens } => {
            let mut p = Vec::with_capacity(8 + tokens.len() * 8);
            put_u64(&mut p, *start);
            for t in tokens {
                put_u64(&mut p, *t);
            }
            (TAG_DATA, p)
        }
        Frame::Run { start, n, fill } => {
            let mut p = Vec::with_capacity(24);
            put_u64(&mut p, *start);
            put_u64(&mut p, *n);
            put_u64(&mut p, *fill);
            (TAG_RUN, p)
        }
        Frame::Link { wire, producer } => {
            let mut p = Vec::with_capacity(5);
            put_u32(&mut p, *wire);
            p.push(u8::from(*producer));
            (TAG_LINK, p)
        }
        Frame::Cell { index, json } => {
            let mut p = Vec::with_capacity(4 + json.len());
            put_u32(&mut p, *index);
            p.extend_from_slice(json.as_bytes());
            (TAG_CELL, p)
        }
        Frame::Done => (TAG_DONE, Vec::new()),
        Frame::Err { msg } => (TAG_ERR, msg.as_bytes().to_vec()),
    };
    if payload.len() > MAX_FRAME {
        return Err(bad(format!(
            "{}-byte frame exceeds MAX_FRAME",
            payload.len()
        )));
    }
    let mut out = Vec::with_capacity(5 + payload.len());
    out.push(tag);
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    w.write_all(&out)
}

/// Reads one frame, blocking. EOF *between* frames surfaces as
/// `UnexpectedEof` with message `"peer closed"` — the launcher treats
/// that as the peer's death; EOF *inside* a frame is a torn write and
/// reads as a protocol error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let mut head = [0u8; 5];
    let mut filled = 0;
    while filled < head.len() {
        let n = r.read(&mut head[filled..])?;
        if n == 0 {
            return Err(if filled == 0 {
                io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed")
            } else {
                bad("EOF inside a frame header".into())
            });
        }
        filled += n;
    }
    let tag = head[0];
    let len = u32::from_le_bytes(head[1..5].try_into().expect("4-byte slice")) as usize; // bsim: allow(AU002) slice width is structural
    if len > MAX_FRAME {
        return Err(bad(format!("{len}-byte frame exceeds MAX_FRAME")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|_| bad("EOF inside a frame payload".into()))?;
    match tag {
        TAG_HELLO => Ok(Frame::Hello {
            rank: take_u32(&payload, 0)?,
        }),
        TAG_PLAN => Ok(Frame::Plan {
            json: take_str(&payload, 0)?,
        }),
        TAG_DATA => {
            let start = take_u64(&payload, 0)?;
            if !(payload.len() - 8).is_multiple_of(8) {
                return Err(bad("Data frame payload is not a whole token count".into()));
            }
            let tokens = payload[8..]
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk"))) // bsim: allow(AU002) slice width is structural
                .collect();
            Ok(Frame::Data { start, tokens })
        }
        TAG_RUN => Ok(Frame::Run {
            start: take_u64(&payload, 0)?,
            n: take_u64(&payload, 8)?,
            fill: take_u64(&payload, 16)?,
        }),
        TAG_LINK => Ok(Frame::Link {
            wire: take_u32(&payload, 0)?,
            producer: *payload.get(4).ok_or_else(|| bad("truncated Link".into()))? != 0,
        }),
        TAG_CELL => Ok(Frame::Cell {
            index: take_u32(&payload, 0)?,
            json: take_str(&payload, 4)?,
        }),
        TAG_DONE => Ok(Frame::Done),
        TAG_ERR => Ok(Frame::Err {
            msg: take_str(&payload, 0)?,
        }),
        other => Err(bad(format!("unknown frame tag {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_roundtrips() {
        let frames = vec![
            Frame::Hello { rank: 3 },
            Frame::Plan {
                json: r#"{"mode":"sweep"}"#.into(),
            },
            Frame::Data {
                start: 7,
                tokens: vec![1, 0, u64::MAX],
            },
            Frame::Run {
                start: 10,
                n: 1 << 40,
                fill: 0,
            },
            Frame::Link {
                wire: 2,
                producer: true,
            },
            Frame::Cell {
                index: 5,
                json: "{}".into(),
            },
            Frame::Done,
            Frame::Err {
                msg: "worker 1: kernel not found".into(),
            },
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).expect("vec write is infallible");
        }
        let mut r = &wire[..];
        for f in &frames {
            assert_eq!(&read_frame(&mut r).expect("frame reads back"), f);
        }
        // The stream is exactly consumed: next read is a clean EOF.
        let end = read_frame(&mut r).expect_err("stream is drained");
        assert_eq!(end.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn a_run_frame_is_constant_size() {
        let mut wire = Vec::new();
        write_frame(
            &mut wire,
            &Frame::Run {
                start: 0,
                n: 1_000_000,
                fill: 0,
            },
        )
        .expect("vec write");
        // 5-byte header + 24-byte payload: a million idle cycles in 29
        // bytes is the point of run-length token traffic.
        assert_eq!(wire.len(), 29);
    }

    #[test]
    fn torn_and_corrupt_frames_are_protocol_errors_not_panics() {
        // EOF mid-header.
        let mut r: &[u8] = &[TAG_DATA, 9];
        assert_eq!(
            read_frame(&mut r).expect_err("torn header").kind(),
            io::ErrorKind::InvalidData
        );
        // EOF mid-payload.
        let mut wire = Vec::new();
        write_frame(
            &mut wire,
            &Frame::Data {
                start: 0,
                tokens: vec![1, 2, 3],
            },
        )
        .expect("vec write");
        wire.truncate(wire.len() - 1);
        let mut r = &wire[..];
        assert_eq!(
            read_frame(&mut r).expect_err("torn payload").kind(),
            io::ErrorKind::InvalidData
        );
        // Absurd length prefix.
        let huge = [(MAX_FRAME + 1) as u32];
        let mut r: &[u8] = &[
            TAG_PLAN,
            huge[0].to_le_bytes()[0],
            huge[0].to_le_bytes()[1],
            huge[0].to_le_bytes()[2],
            huge[0].to_le_bytes()[3],
        ];
        assert_eq!(
            read_frame(&mut r).expect_err("oversized").kind(),
            io::ErrorKind::InvalidData
        );
        // Unknown tag.
        let mut r: &[u8] = &[99, 0, 0, 0, 0];
        assert_eq!(
            read_frame(&mut r).expect_err("unknown tag").kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn control_frame_events_are_in_the_protocol_alphabet() {
        // The runtime gates control-plane frames through the PV table by
        // name; a frame whose `event()` drifted from the table would be
        // rejected as off-alphabet at runtime. Data/Run are token-link
        // traffic the control table deliberately does not model.
        let alphabet = bsim_check::proto::dist_protocol().alphabet();
        let control = [
            Frame::Hello { rank: 0 },
            Frame::Plan {
                json: String::new(),
            },
            Frame::Link {
                wire: 0,
                producer: true,
            },
            Frame::Cell {
                index: 0,
                json: String::new(),
            },
            Frame::Done,
            Frame::Err { msg: String::new() },
        ];
        for f in &control {
            assert!(
                alphabet.contains(&f.event()),
                "{} is missing from the dist protocol alphabet",
                f.event()
            );
        }
        for f in &[
            Frame::Data {
                start: 0,
                tokens: vec![],
            },
            Frame::Run {
                start: 0,
                n: 0,
                fill: 0,
            },
        ] {
            assert!(
                !alphabet.contains(&f.event()),
                "token traffic {} must stay off the control alphabet",
                f.event()
            );
        }
    }
}

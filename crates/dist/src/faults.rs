//! The process-loss scenario for the `bsim faults` survival matrix.
//!
//! The nine in-process scenarios (`bsim-core::campaign`) cover token,
//! model, and host-thread faults inside one address space. Scale-out
//! adds a tenth fault class the engine cannot see from inside: an
//! entire worker process disappearing mid-sweep. [`process_kill_scenario`]
//! stages it for real — two worker processes, SIGKILL one after its
//! first result, and require that the launcher respawns it and that the
//! recovered sweep is byte-identical to the in-process schedule. It
//! plugs straight into the campaign's [`Scenario`] row type so the CLI
//! can append it to the matrix and `--deny-unsurvived` gates on it like
//! any other row.

use crate::cells::WireCell;
use crate::launcher::{run_sweep, KillSpec, LaunchOpts, WorkerSpawn};
use bsim_core::campaign::Scenario;
use bsim_resilience::CkptStore;
use std::time::Duration;

/// The sweep the kill scenario runs: cheap microbenchmark cells, enough
/// of them that the victim rank always has pending work when the kill
/// lands after its first result.
pub fn kill_sweep_cells() -> Vec<WireCell> {
    ["Rocket 1", "Rocket 2"]
        .into_iter()
        .flat_map(|platform| {
            ["Cca", "CCh", "EI", "EM5", "MD"]
                .into_iter()
                .map(move |kernel| WireCell::Micro {
                    platform: platform.into(),
                    kernel: kernel.into(),
                    scale: 1,
                })
        })
        .collect()
}

/// Runs the sweep across two real worker processes (`worker_cmd` must
/// be a `bsim dist-worker`-style argv), killing one mid-sweep, and
/// reports the outcome as a campaign [`Scenario`].
pub fn process_kill_scenario(seed: u64, worker_cmd: Vec<String>) -> Scenario {
    let cells = kill_sweep_cells();
    // The ground truth: the same cells run in this process. Every cell
    // is sequential inside, so this is the bit-identical reference.
    let reference: Vec<String> = cells
        .iter()
        .map(|cell| match cell.run() {
            Ok(tree) => serde_json::to_string(&tree).expect("shim renderer is total"),
            Err(why) => format!("error: {why}"),
        })
        .collect();
    // Which of the two ranks dies derives from the campaign seed, like
    // every other injection site in the matrix.
    let victim = (seed % 2) as usize;
    let opts = LaunchOpts {
        ranks: 2,
        spawn: WorkerSpawn::Process(worker_cmd),
        silence_budget: Duration::from_secs(120),
        kill: Some(KillSpec {
            rank: victim,
            after_cells: 1,
        }),
        max_respawns: 3,
    };
    let mut store = CkptStore::new();
    let (observed, pass) = match run_sweep(&cells, &opts, &mut store) {
        Ok(outcome) => {
            let identical = outcome
                .results
                .iter()
                .zip(&reference)
                .all(|((_, got), want)| got == want);
            (
                format!(
                    "rank {victim} killed after 1 cell; respawns={} identical={}",
                    outcome.respawns, identical
                ),
                outcome.respawns >= 1 && identical,
            )
        }
        Err(e) => (format!("sweep did not complete: {e}"), false),
    };
    Scenario {
        name: "process-kill",
        fault: "worker SIGKILL",
        expected: "respawn; sweep completes bit-identically",
        observed,
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_kill_sweep_gives_both_ranks_real_work() {
        let cells = kill_sweep_cells();
        assert!(cells.len() >= 6, "enough cells to survive a kill mid-rank");
        for cell in &cells {
            assert!(cell.run().is_ok(), "{} must be runnable", cell.label());
        }
    }

    #[test]
    fn an_unspawnable_worker_is_a_miss_not_a_panic() {
        let scenario = process_kill_scenario(42, vec!["/no/such/binary".into()]);
        assert_eq!(scenario.name, "process-kill");
        assert!(!scenario.pass);
        assert!(scenario.observed.contains("did not complete"));
    }
}

//! The scale-out scenarios for the `bsim faults` survival matrix.
//!
//! The nine in-process scenarios (`bsim-core::campaign`) cover token,
//! model, and host-thread faults inside one address space. Scale-out
//! adds fault classes the engine cannot see from inside:
//!
//! * [`process_kill_scenario`] — an entire worker process disappears
//!   mid-sweep (real processes, SIGKILL): the launcher must respawn it
//!   and the recovered sweep must be byte-identical to the in-process
//!   schedule.
//! * [`wire_bitflip_scenario`] — one bit of a rank's result stream
//!   flips in flight: the frame CRC must detect it, the backoff-gated
//!   respawn must recover, and the merged result must stay
//!   byte-identical (never silently wrong).
//! * [`slow_peer_scenario`] — the coordinator accepts a worker and then
//!   goes silent: the worker's socket timeout must surface a typed
//!   error within the io budget instead of hanging the process.
//!
//! Each plugs straight into the campaign's [`Scenario`] row type so the
//! CLI can append it to the matrix and `--deny-unsurvived` gates on it
//! like any other row.

use crate::cells::WireCell;
use crate::frame;
use crate::launcher::{run_sweep, KillSpec, LaunchOpts, WireFaultSpec, WorkerSpawn};
use crate::worker;
use bsim_core::campaign::Scenario;
use bsim_resilience::CkptStore;
use std::io;
use std::net::TcpListener;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// The sweep the kill scenario runs: cheap microbenchmark cells, enough
/// of them that the victim rank always has pending work when the kill
/// lands after its first result.
pub fn kill_sweep_cells() -> Vec<WireCell> {
    ["Rocket 1", "Rocket 2"]
        .into_iter()
        .flat_map(|platform| {
            ["Cca", "CCh", "EI", "EM5", "MD"]
                .into_iter()
                .map(move |kernel| WireCell::Micro {
                    platform: platform.into(),
                    kernel: kernel.into(),
                    scale: 1,
                })
        })
        .collect()
}

/// Runs the sweep across two real worker processes (`worker_cmd` must
/// be a `bsim dist-worker`-style argv), killing one mid-sweep, and
/// reports the outcome as a campaign [`Scenario`].
pub fn process_kill_scenario(seed: u64, worker_cmd: Vec<String>) -> Scenario {
    let cells = kill_sweep_cells();
    // The ground truth: the same cells run in this process. Every cell
    // is sequential inside, so this is the bit-identical reference.
    let reference: Vec<String> = cells
        .iter()
        .map(|cell| match cell.run() {
            Ok(tree) => serde_json::to_string(&tree).expect("shim renderer is total"),
            Err(why) => format!("error: {why}"),
        })
        .collect();
    // Which of the two ranks dies derives from the campaign seed, like
    // every other injection site in the matrix.
    let victim = (seed % 2) as usize;
    let opts = LaunchOpts {
        ranks: 2,
        spawn: WorkerSpawn::Process(worker_cmd),
        silence_budget: Duration::from_secs(120),
        kill: Some(KillSpec {
            rank: victim,
            after_cells: 1,
        }),
        max_respawns: 3,
        io_timeout: Duration::from_secs(120),
        wire_fault: None,
    };
    let mut store = CkptStore::new();
    let (observed, pass) = match run_sweep(&cells, &opts, &mut store) {
        Ok(outcome) => {
            let identical = outcome
                .results
                .iter()
                .zip(&reference)
                .all(|((_, got), want)| got == want);
            (
                format!(
                    "rank {victim} killed after 1 cell; respawns={} identical={}",
                    outcome.respawns, identical
                ),
                outcome.respawns >= 1 && identical,
            )
        }
        Err(e) => (format!("sweep did not complete: {e}"), false),
    };
    Scenario {
        name: "process-kill",
        fault: "worker SIGKILL",
        expected: "respawn; sweep completes bit-identically",
        observed,
        pass,
    }
}

/// Runs the sweep across two in-process thread ranks with one result
/// bit flipped on the victim's wire. The flip lands inside the first
/// `Cell` frame's JSON payload — past the 12-byte integrity header and
/// the 4-byte cell index — so the frame CRC, not the JSON parser, is
/// what has to catch it.
pub fn wire_bitflip_scenario(seed: u64) -> Scenario {
    let cells = kill_sweep_cells();
    let reference: Vec<String> = cells
        .iter()
        .map(|cell| match cell.run() {
            Ok(tree) => serde_json::to_string(&tree).expect("shim renderer is total"),
            Err(why) => format!("error: {why}"),
        })
        .collect();
    let victim = (seed % 2) as usize;
    let bit = ((frame::HEADER_LEN as u64 + 4 + 8) * 8) + (seed % 8);
    let mut opts = LaunchOpts::threads(2);
    opts.wire_fault = Some(WireFaultSpec { rank: victim, bit });
    let mut store = CkptStore::new();
    let (observed, pass) = match run_sweep(&cells, &opts, &mut store) {
        Ok(outcome) => {
            let identical = outcome
                .results
                .iter()
                .zip(&reference)
                .all(|((_, got), want)| got == want);
            let crc_caught = outcome
                .losses
                .iter()
                .any(|why| why.contains("corrupt frame"));
            (
                format!(
                    "rank {victim} bit {bit} flipped; respawns={} crc_caught={crc_caught} \
                     identical={identical}",
                    outcome.respawns
                ),
                outcome.respawns >= 1 && crc_caught && identical,
            )
        }
        Err(e) => (format!("sweep did not complete: {e}"), false),
    };
    Scenario {
        name: "wire-bitflip",
        fault: "one bit flipped on the result wire",
        expected: "frame CRC detects; backoff respawn; bit-identical",
        observed,
        pass,
    }
}

/// Connects a worker to a coordinator that accepts and then never
/// speaks. The worker's armed socket timeout must convert the stall
/// into a typed `TimedOut`/`WouldBlock` error within the io budget —
/// a silent peer may cost a timeout, never a wedged process.
pub fn slow_peer_scenario(seed: u64) -> Scenario {
    let verdict = (|| -> io::Result<(String, bool)> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?.to_string();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let mute = std::thread::spawn(move || {
            // Accept, then hold the socket open without writing a byte.
            let held = listener.accept();
            let _ = release_rx.recv();
            drop(held);
        });
        let budget = Duration::from_millis(100 + seed % 100);
        let started = Instant::now();
        let outcome = worker::run_with(&addr, 0, budget);
        let waited = started.elapsed();
        let _ = release_tx.send(());
        let _ = mute.join();
        match outcome {
            Ok(()) => Ok((
                "worker reported success against a silent coordinator".into(),
                false,
            )),
            Err(err) => {
                let typed = matches!(
                    err.kind(),
                    io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                );
                let bounded = waited < Duration::from_secs(10);
                Ok((
                    format!("budget {budget:?}: {:?} after {waited:?}", err.kind()),
                    typed && bounded,
                ))
            }
        }
    })();
    let (observed, pass) = match verdict {
        Ok(v) => v,
        Err(e) => (format!("scenario setup failed: {e}"), false),
    };
    Scenario {
        name: "slow-peer",
        fault: "coordinator accepts, then goes silent",
        expected: "typed socket timeout within the io budget; no hang",
        observed,
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_kill_sweep_gives_both_ranks_real_work() {
        let cells = kill_sweep_cells();
        assert!(cells.len() >= 6, "enough cells to survive a kill mid-rank");
        for cell in &cells {
            assert!(cell.run().is_ok(), "{} must be runnable", cell.label());
        }
    }

    #[test]
    fn an_unspawnable_worker_is_a_miss_not_a_panic() {
        let scenario = process_kill_scenario(42, vec!["/no/such/binary".into()]);
        assert_eq!(scenario.name, "process-kill");
        assert!(!scenario.pass);
        assert!(scenario.observed.contains("did not complete"));
    }

    #[test]
    fn a_flipped_wire_bit_is_detected_and_survived() {
        for seed in [0, 1] {
            let scenario = wire_bitflip_scenario(seed);
            assert!(scenario.pass, "seed {seed}: {}", scenario.observed);
            assert!(
                scenario.observed.contains("crc_caught=true"),
                "{}",
                scenario.observed
            );
        }
    }

    #[test]
    fn a_silent_coordinator_times_out_instead_of_hanging() {
        let scenario = slow_peer_scenario(7);
        assert!(scenario.pass, "{}", scenario.observed);
    }
}

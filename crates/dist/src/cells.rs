//! The serializable unit of sweep work a worker process executes.
//!
//! `bsim-svc` schedules [`CellSpec`](../../svc/request/enum.CellSpec.html)s
//! inside one process; a worker on the far side of a socket needs the
//! same thing as *data*. [`WireCell`] is that wire form: it names the
//! work (platform by catalog name, figure by id/sizes/index) instead of
//! carrying live config structs, travels as a JSON tree inside a
//! [`crate::frame::Frame::Plan`], and [`WireCell::run`] reconstructs
//! the real objects on the worker.
//!
//! Every cell runs with [`Parallelism::Sequential`] internals: results
//! are bit-identical across worker counts by construction (the same
//! argument `bsim-svc` makes for its cell keys), which is what lets the
//! launcher compare a 2-process sweep byte-for-byte against the
//! in-process schedule.

use bsim_core::experiments::{self, figure_plan, Parallelism, Sizes};
use bsim_core::tuning::choose_best_model;
use bsim_resilience::snapshot::Snapshot;
use bsim_soc::configs;
use bsim_workloads::microbench;
use serde::Value;

/// One schedulable, serializable cell of sweep work.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireCell {
    /// One subfigure of a paper figure: `figure_plan(id, sizes)[index]`.
    Fig {
        id: String,
        sizes: String,
        index: usize,
    },
    /// One microbenchmark kernel on one named platform.
    Micro {
        platform: String,
        kernel: String,
        scale: u32,
    },
    /// The §4 model-selection loop.
    Tune { scale: u32 },
}

fn str_field(v: &Value, name: &str) -> Option<String> {
    v.get(name)?.as_str().map(str::to_string)
}

fn u64_field(v: &Value, name: &str) -> Option<u64> {
    v.get(name)?.as_u64()
}

impl WireCell {
    /// A stable human-readable label — the launcher's result key and
    /// the checkpoint-store cell name (`fig:3/smoke/0`, `micro:...`).
    pub fn label(&self) -> String {
        match self {
            WireCell::Fig { id, sizes, index } => format!("fig:{id}/{sizes}/{index}"),
            WireCell::Micro {
                platform,
                kernel,
                scale,
            } => format!("micro:{platform}/{kernel}/x{scale}"),
            WireCell::Tune { scale } => format!("tune:x{scale}"),
        }
    }

    /// The JSON tree shipped inside the plan.
    pub fn encode(&self) -> Value {
        match self {
            WireCell::Fig { id, sizes, index } => Value::Map(vec![
                ("kind".into(), Value::Str("fig".into())),
                ("id".into(), Value::Str(id.clone())),
                ("sizes".into(), Value::Str(sizes.clone())),
                ("index".into(), Value::U64(*index as u64)),
            ]),
            WireCell::Micro {
                platform,
                kernel,
                scale,
            } => Value::Map(vec![
                ("kind".into(), Value::Str("micro".into())),
                ("platform".into(), Value::Str(platform.clone())),
                ("kernel".into(), Value::Str(kernel.clone())),
                ("scale".into(), Value::U64(u64::from(*scale))),
            ]),
            WireCell::Tune { scale } => Value::Map(vec![
                ("kind".into(), Value::Str("tune".into())),
                ("scale".into(), Value::U64(u64::from(*scale))),
            ]),
        }
    }

    /// Parses a plan tree back. `None` on any malformed shape — the
    /// worker turns that into an `Err` frame, never a panic.
    pub fn decode(v: &Value) -> Option<WireCell> {
        match str_field(v, "kind")?.as_str() {
            "fig" => Some(WireCell::Fig {
                id: str_field(v, "id")?,
                sizes: str_field(v, "sizes")?,
                index: u64_field(v, "index")? as usize,
            }),
            "micro" => Some(WireCell::Micro {
                platform: str_field(v, "platform")?,
                kernel: str_field(v, "kernel")?,
                scale: u32::try_from(u64_field(v, "scale")?).ok()?,
            }),
            "tune" => Some(WireCell::Tune {
                scale: u32::try_from(u64_field(v, "scale")?).ok()?,
            }),
            _ => None,
        }
    }

    /// Runs the cell and returns the result tree, or a description of
    /// why the spec names something this binary doesn't have. Internals
    /// are sequential — see the module docs for why.
    pub fn run(&self) -> Result<Value, String> {
        match self {
            WireCell::Fig { id, sizes, index } => {
                let sizes =
                    Sizes::parse(sizes).ok_or_else(|| format!("unknown sizes {sizes:?}"))?;
                let plan = figure_plan(id, sizes, Parallelism::Sequential)
                    .ok_or_else(|| format!("unknown figure {id:?}"))?;
                let sub = plan
                    .get(*index)
                    .ok_or_else(|| format!("figure {id} has no subfigure {index}"))?;
                Ok((sub.1)().save())
            }
            WireCell::Micro {
                platform,
                kernel,
                scale,
            } => {
                let cfg = configs::by_name(platform, 1)
                    .ok_or_else(|| format!("unknown platform {platform:?}"))?;
                experiments::microbench_cell(cfg, kernel, *scale)
                    .map(|report| report.save())
                    .ok_or_else(|| format!("unknown kernel {kernel:?}"))
            }
            WireCell::Tune { scale } => {
                let probes: Vec<_> = microbench::evaluated()
                    .into_iter()
                    .filter(|k| {
                        ["Cca", "CCh", "ED1", "EI", "EM5", "MD", "ML2", "DP1d"].contains(&k.name)
                    })
                    .collect();
                let out = choose_best_model(
                    &[
                        configs::small_boom(1),
                        configs::medium_boom(1),
                        configs::large_boom(1),
                    ],
                    &configs::milkv_hw(1),
                    &probes,
                    *scale,
                );
                Ok(Value::Map(vec![
                    ("best".into(), Value::Str(out.best().to_string())),
                    ("explanation".into(), Value::Str(out.explanation(10))),
                ]))
            }
        }
    }

    /// The subfigure cells of one figure, in plan order.
    pub fn figure_cells(id: &str, sizes: &str) -> Vec<WireCell> {
        let Some(parsed) = Sizes::parse(sizes) else {
            return Vec::new();
        };
        match figure_plan(id, parsed, Parallelism::Sequential) {
            Some(plan) => (0..plan.len())
                .map(|index| WireCell::Fig {
                    id: id.to_string(),
                    sizes: sizes.to_string(),
                    index,
                })
                .collect(),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsim_core::experiments::FIGURE_IDS;

    #[test]
    fn cells_roundtrip_through_their_wire_form() {
        let cells = vec![
            WireCell::Fig {
                id: "3".into(),
                sizes: "smoke".into(),
                index: 1,
            },
            WireCell::Micro {
                platform: "Rocket".into(),
                kernel: "Cca".into(),
                scale: 2,
            },
            WireCell::Tune { scale: 1 },
        ];
        for cell in cells {
            let json = serde_json::to_string(&cell.encode()).expect("shim renderer is total");
            let back = WireCell::decode(&serde_json::from_str(&json).expect("valid json"))
                .expect("decodes");
            assert_eq!(back, cell);
        }
        assert_eq!(WireCell::decode(&Value::Map(vec![])), None);
        assert_eq!(
            WireCell::decode(&Value::Map(vec![(
                "kind".into(),
                Value::Str("warp".into())
            )])),
            None
        );
    }

    #[test]
    fn figure_cells_cover_every_declared_subfigure() {
        let mut total = 0;
        for id in FIGURE_IDS {
            let cells = WireCell::figure_cells(id, "smoke");
            assert!(!cells.is_empty(), "figure {id} has cells");
            total += cells.len();
        }
        // The ten stable subfigure keys: fig1, fig2, fig3a/b, fig4a,
        // fig4b1/b4, fig5, fig6, fig7.
        assert_eq!(total, 10);
        assert!(WireCell::figure_cells("9", "smoke").is_empty());
        assert!(WireCell::figure_cells("1", "galactic").is_empty());
    }

    #[test]
    fn bad_specs_run_to_errors_not_panics() {
        let bad = WireCell::Micro {
            platform: "not-a-platform".into(),
            kernel: "Cca".into(),
            scale: 1,
        };
        assert!(bad
            .run()
            .expect_err("unknown platform")
            .contains("platform"));
        let bad = WireCell::Fig {
            id: "1".into(),
            sizes: "smoke".into(),
            index: 99,
        };
        assert!(bad.run().expect_err("index range").contains("subfigure"));
    }
}

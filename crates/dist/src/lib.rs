//! # bsim-dist — multi-process scale-out
//!
//! FireSim spans big targets across FPGAs by cutting the target graph
//! along its token links and carrying the cut links over the host
//! network; determinism survives because the links are *token* links —
//! every value crosses with ≥ 1 target-cycle of latency, so the
//! computation is independent of host timing (DESIGN.md §13). This
//! crate does the same across OS processes:
//!
//! * [`frame`] — the length-prefixed binary wire protocol,
//! * [`link`] — [`link::RemoteSender`]/[`link::RemoteReceiver`], the two
//!   halves of a cut token link, implementing the engine's
//!   [`bsim_engine::TokenLink`] surface over any byte stream (TCP, Unix
//!   socket pairs) — including run-length `Run` frames so the quiescence
//!   fast-forward works *across the wire*,
//! * [`graph`] — a per-rank lockstep driver for a partitioned model
//!   graph, bit-identical to the in-process [`bsim_engine::Harness`],
//!   with partition checkpoints for restart-after-loss,
//! * [`cells`] — [`cells::WireCell`], the serializable unit of sweep
//!   work a worker process executes,
//! * [`plan`] — the partition plan a coordinator distributes, validated
//!   by the `DL`-series lints in `bsim-check`,
//! * [`launcher`] — spawns workers, distributes the plan, collects
//!   results, and — via [`bsim_resilience::PeerWatchdog`] and the
//!   checkpoint store — respawns and re-plans when a worker process
//!   dies,
//! * [`worker`] — the worker-process entry point (`bsim dist-worker`),
//! * [`faults`] — the process-kill survival scenario the `bsim faults`
//!   matrix appends to the in-process campaign.

pub mod cells;
pub mod faults;
pub mod frame;
pub mod graph;
pub mod launcher;
pub mod link;
pub mod plan;
pub mod worker;

pub use cells::WireCell;
pub use frame::{Frame, FrameError};
pub use graph::RankGraph;
pub use launcher::{LaunchOpts, WorkerSpawn};
pub use link::{RemoteReceiver, RemoteSender};
pub use plan::PlanSpec;

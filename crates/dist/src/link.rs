//! The two halves of a cut token link.
//!
//! When a wire of the model graph is cut at a process boundary, the
//! producer side keeps a [`RemoteSender`] and the consumer side a
//! [`RemoteReceiver`]; together they behave like the
//! [`bsim_engine::TokenChannel`] they replace, and each half implements
//! the engine's [`TokenLink`] trait so drivers are written against one
//! surface for both the in-process and the socket case.
//!
//! Three properties carry the whole design:
//!
//! * **No IO inside the trait.** `push_batch` buffers, `pop_batch`
//!   drains what already arrived; the socket is touched only by the
//!   explicit [`RemoteSender::flush`] / [`RemoteReceiver::ensure`]
//!   calls, which return `io::Result` and let the driver apply the
//!   *flush-before-block* rule (flush every outgoing link before
//!   blocking on any incoming one) that makes cross-rank deadlock
//!   impossible.
//! * **Run-length on the wire.** [`TokenLink::fast_forward`] spans and
//!   all-equal batches travel as constant-size [`Frame::Run`] frames, so
//!   PR 5's quiescence skip keeps its asymptotics across processes.
//! * **Channel-absolute cycles.** Every frame names the cycle its first
//!   token belongs to and the receiver verifies it against its own
//!   cursor — host-timing races cannot silently reorder target time.
//!
//! Checkpoint/restore follows the token-protocol algebra: at a segment
//! boundary `S` (consumer cycles consumed = `S`), the unconsumed window
//! is exactly the channel cycles `[S, S+L)` for a latency-`L` link —
//! the remaining original reset tokens (if `S < L`) plus the producer's
//! last `min(S, L)` pushes. So a [`SenderCkpt`] is just the push cursor
//! and that replay tail, a receiver checkpoint is just `S`, and
//! [`RemoteSender::resume`] re-sends the tail on the fresh connection.

use crate::frame::{read_frame, write_frame, Frame};
use bsim_engine::{ChannelError, TokenLink};
use bsim_resilience::snapshot::{field, CkptError, Snapshot};
use serde::Value;
use std::collections::VecDeque;
use std::io::{self, Read, Write};

/// Outgoing traffic not yet handed to the OS, in cycle order.
#[derive(Clone, Debug)]
enum Seg {
    Lit(Vec<u64>),
    Run { n: u64, fill: u64 },
}

/// The producer half of a cut token link.
pub struct RemoteSender<W: Write> {
    w: W,
    /// Next cycle `push_batch` will accept (channel-absolute: starts at
    /// the link's reset latency, like a `TokenChannel` pre-filled with
    /// reset tokens).
    next_cycle: u64,
    /// Channel cycle of the first unflushed token.
    outbox_start: u64,
    outbox: VecDeque<Seg>,
    /// Cycles currently buffered in `outbox`.
    unflushed: u64,
    quantum: usize,
    /// Last `tail_cap` tokens pushed — the replay window a restarted
    /// consumer needs.
    tail: VecDeque<u64>,
    tail_cap: usize,
}

impl<W: Write> RemoteSender<W> {
    /// A fresh link with `reset` cycles of latency already in flight as
    /// zero tokens (the receiver synthesizes them; nothing crosses the
    /// wire). The first accepted push cycle is `reset`.
    pub fn new(w: W, reset: u64, quantum: usize) -> RemoteSender<W> {
        assert!(quantum >= 1, "a quantum of zero would flush nothing");
        RemoteSender {
            w,
            next_cycle: reset,
            outbox_start: reset,
            outbox: VecDeque::new(),
            unflushed: 0,
            quantum,
            tail: VecDeque::new(),
            tail_cap: reset as usize,
        }
    }

    /// Rebuilds the producer half on a fresh connection after a process
    /// loss, re-sending the checkpoint's replay tail (the tokens the
    /// restarted consumer has not consumed yet).
    pub fn resume(
        w: W,
        reset: u64,
        quantum: usize,
        ckpt: &SenderCkpt,
    ) -> io::Result<RemoteSender<W>> {
        let mut tx = RemoteSender::new(w, reset, quantum);
        tx.next_cycle = ckpt.next_cycle;
        tx.outbox_start = ckpt.next_cycle;
        tx.tail = ckpt.tail.iter().copied().collect();
        if !ckpt.tail.is_empty() {
            write_frame(
                &mut tx.w,
                &Frame::Data {
                    start: ckpt.next_cycle - ckpt.tail.len() as u64,
                    tokens: ckpt.tail.clone(),
                },
            )?;
            tx.w.flush()?;
        }
        Ok(tx)
    }

    fn remember(&mut self, token: u64) {
        if self.tail_cap == 0 {
            return;
        }
        if self.tail.len() == self.tail_cap {
            self.tail.pop_front();
        }
        self.tail.push_back(token);
    }

    /// True once a quantum's worth of cycles is buffered — the driver's
    /// cue to [`RemoteSender::flush`].
    pub fn due(&self) -> bool {
        self.unflushed as usize >= self.quantum
    }

    /// Writes everything buffered to the stream. All-equal literal
    /// batches and fast-forward spans go out as constant-size
    /// [`Frame::Run`] frames.
    pub fn flush(&mut self) -> io::Result<()> {
        let mut at = self.outbox_start;
        while let Some(seg) = self.outbox.pop_front() {
            match seg {
                Seg::Lit(tokens) => {
                    let n = tokens.len() as u64;
                    let frame = match tokens.split_first() {
                        Some((first, rest)) if rest.iter().all(|t| t == first) => Frame::Run {
                            start: at,
                            n,
                            fill: *first,
                        },
                        _ => Frame::Data { start: at, tokens },
                    };
                    write_frame(&mut self.w, &frame)?;
                    at += n;
                }
                Seg::Run { n, fill } => {
                    write_frame(&mut self.w, &Frame::Run { start: at, n, fill })?;
                    at += n;
                }
            }
        }
        self.outbox_start = at;
        self.unflushed = 0;
        debug_assert_eq!(at, self.next_cycle);
        self.w.flush()
    }

    /// Captures the producer-side checkpoint. The outbox must be
    /// flushed first — a checkpoint of unsent tokens would be a
    /// checkpoint of a state the consumer can never reach.
    pub fn ckpt(&self) -> SenderCkpt {
        assert!(
            self.outbox.is_empty(),
            "flush the sender before checkpointing it"
        );
        SenderCkpt {
            next_cycle: self.next_cycle,
            tail: self.tail.iter().copied().collect(),
        }
    }
}

impl<W: Write> TokenLink<u64> for RemoteSender<W> {
    fn push_batch(&mut self, start_cycle: u64, tokens: &[u64]) -> Result<usize, ChannelError> {
        if start_cycle != self.next_cycle {
            return Err(ChannelError::WrongCycle {
                expected: self.next_cycle,
                got: start_cycle,
            });
        }
        if !tokens.is_empty() {
            match self.outbox.back_mut() {
                Some(Seg::Lit(lit)) => lit.extend_from_slice(tokens),
                _ => self.outbox.push_back(Seg::Lit(tokens.to_vec())),
            }
            for &t in tokens {
                self.remember(t);
            }
            self.next_cycle += tokens.len() as u64;
            self.unflushed += tokens.len() as u64;
        }
        Ok(tokens.len())
    }

    /// A producer half has nothing to pop.
    fn pop_batch(&mut self, _start_cycle: u64, _out: &mut [u64]) -> Result<usize, ChannelError> {
        Err(ChannelError::Empty)
    }

    fn fast_forward(&mut self, n: u64, fill: u64) {
        if n == 0 {
            return;
        }
        match self.outbox.back_mut() {
            Some(Seg::Run { n: run, fill: f }) if *f == fill => *run += n,
            _ => self.outbox.push_back(Seg::Run { n, fill }),
        }
        self.next_cycle += n;
        self.unflushed += n;
        if n as usize >= self.tail_cap {
            self.tail.clear();
            self.tail.extend(std::iter::repeat_n(fill, self.tail_cap));
        } else {
            for _ in 0..n {
                self.remember(fill);
            }
        }
    }

    /// On the producer half the "consumer" is the stream: the next
    /// cycle not yet handed to the OS.
    fn consumer_cycle(&self) -> u64 {
        self.outbox_start
    }

    fn producer_cycle(&self) -> u64 {
        self.next_cycle
    }

    fn buffered(&self) -> usize {
        self.unflushed.min(usize::MAX as u64) as usize
    }
}

/// The producer-side partition checkpoint: push cursor plus the replay
/// tail a restarted consumer must be re-sent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SenderCkpt {
    pub next_cycle: u64,
    pub tail: Vec<u64>,
}

impl Snapshot for SenderCkpt {
    fn save(&self) -> Value {
        Value::Map(vec![
            ("next_cycle".into(), Value::U64(self.next_cycle)),
            (
                "tail".into(),
                Value::Seq(self.tail.iter().map(|&t| Value::U64(t)).collect()),
            ),
        ])
    }

    fn restore(value: &Value) -> Result<SenderCkpt, CkptError> {
        Ok(SenderCkpt {
            next_cycle: u64::restore(field(value, "next_cycle")?)?,
            tail: Vec::<u64>::restore(field(value, "tail")?)?,
        })
    }
}

/// The consumer half of a cut token link. Arrived-but-unpopped traffic
/// is stored run-length — a fast-forward span never materializes.
pub struct RemoteReceiver<R: Read> {
    r: R,
    /// `(token, count)` runs in pop order.
    runs: VecDeque<(u64, u64)>,
    buffered: u64,
    /// Next cycle `pop_batch` will accept.
    next_pop: u64,
    /// Next cycle the wire will deliver (frames are verified against it).
    produced: u64,
}

impl<R: Read> RemoteReceiver<R> {
    /// A fresh link with `reset` zero tokens pre-buffered — the
    /// receiver-side synthesis of the latency window, mirroring how the
    /// harness pre-fills its `TokenChannel`s.
    pub fn new(r: R, reset: u64) -> RemoteReceiver<R> {
        let mut runs = VecDeque::new();
        if reset > 0 {
            runs.push_back((0, reset));
        }
        RemoteReceiver {
            r,
            runs,
            buffered: reset,
            next_pop: 0,
            produced: reset,
        }
    }

    /// Rebuilds the consumer half at boundary `consumer_cycle` on a
    /// fresh connection. Whatever part of the original reset window is
    /// still unconsumed is re-synthesized locally; everything else in
    /// the latency window is the producer's replay tail, which
    /// [`RemoteSender::resume`] re-sends.
    pub fn resume(r: R, reset: u64, consumer_cycle: u64) -> RemoteReceiver<R> {
        let mut rx = RemoteReceiver::new(r, reset.saturating_sub(consumer_cycle));
        rx.next_pop = consumer_cycle;
        rx.produced = reset.max(consumer_cycle);
        rx
    }

    fn accept(&mut self, token: u64, count: u64) {
        if count == 0 {
            return;
        }
        match self.runs.back_mut() {
            Some((t, c)) if *t == token => *c += count,
            _ => self.runs.push_back((token, count)),
        }
        self.buffered += count;
        self.produced += count;
    }

    /// Blocks for one token frame and buffers it. Control frames on a
    /// token link, cycle mismatches, and `Err` frames are protocol
    /// errors.
    pub fn recv(&mut self) -> io::Result<()> {
        match read_frame(&mut self.r)? {
            Frame::Data { start, tokens } => {
                if start != self.produced {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("Data frame at cycle {start}, expected {}", self.produced),
                    ));
                }
                for t in tokens {
                    self.accept(t, 1);
                }
                Ok(())
            }
            Frame::Run { start, n, fill } => {
                if start != self.produced {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("Run frame at cycle {start}, expected {}", self.produced),
                    ));
                }
                self.accept(fill, n);
                Ok(())
            }
            Frame::Err { msg } => Err(io::Error::other(format!("peer reported: {msg}"))),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected control frame on a token link: {other:?}"),
            )),
        }
    }

    /// Blocks until at least `n` cycles are buffered. The driver calls
    /// this (after flushing its own senders) before any trait call that
    /// must not come up short.
    pub fn ensure(&mut self, n: u64) -> io::Result<()> {
        while self.buffered < n {
            self.recv()?;
        }
        Ok(())
    }

    /// Length of the leading all-zero run — how far a quiescence skip
    /// may advance through *already verified* idle traffic without
    /// blocking or guessing.
    pub fn leading_zero_run(&self) -> u64 {
        let mut n = 0;
        for &(token, count) in &self.runs {
            if token != 0 {
                break;
            }
            n += count;
        }
        n
    }

    /// Pops exactly one token for `cycle`.
    pub fn pop(&mut self, cycle: u64) -> Result<u64, ChannelError> {
        let mut one = [0u64];
        match self.pop_batch(cycle, &mut one)? {
            1 => Ok(one[0]),
            _ => Err(ChannelError::Empty),
        }
    }
}

impl<R: Read> TokenLink<u64> for RemoteReceiver<R> {
    /// A consumer half accepts nothing.
    fn push_batch(&mut self, _start_cycle: u64, _tokens: &[u64]) -> Result<usize, ChannelError> {
        Err(ChannelError::Full)
    }

    fn pop_batch(&mut self, start_cycle: u64, out: &mut [u64]) -> Result<usize, ChannelError> {
        if start_cycle != self.next_pop {
            return Err(ChannelError::WrongCycle {
                expected: self.next_pop,
                got: start_cycle,
            });
        }
        let want = (out.len() as u64).min(self.buffered);
        let mut wrote = 0usize;
        while (wrote as u64) < want {
            let (token, count) = self.runs.front_mut().expect("buffered count says more"); // bsim: allow(AU002) invariant stated in the message
            let take = (*count).min(want - wrote as u64);
            for slot in out[wrote..wrote + take as usize].iter_mut() {
                *slot = *token;
            }
            wrote += take as usize;
            *count -= take;
            if *count == 0 {
                self.runs.pop_front();
            }
        }
        self.buffered -= want;
        self.next_pop += want;
        Ok(wrote)
    }

    /// Consumes `n` already-buffered cycles in one run-length step (the
    /// consumer ignores the skipped tokens, per the channel contract).
    /// The producer-side synthesis happened remotely — the peer's
    /// fast-forward emitted the matching `Run` frame. Callers must
    /// [`RemoteReceiver::ensure`] the horizon first; skipping past what
    /// arrived would mean guessing at tokens.
    fn fast_forward(&mut self, n: u64, _fill: u64) {
        assert!(
            n <= self.buffered,
            "fast_forward({n}) past the {} buffered cycles; call ensure(n) first",
            self.buffered
        );
        let mut left = n;
        while left > 0 {
            let (_, count) = self.runs.front_mut().expect("buffered count says more"); // bsim: allow(AU002) invariant stated in the message
            let take = (*count).min(left);
            *count -= take;
            left -= take;
            if *count == 0 {
                self.runs.pop_front();
            }
        }
        self.buffered -= n;
        self.next_pop += n;
    }

    fn consumer_cycle(&self) -> u64 {
        self.next_pop
    }

    fn producer_cycle(&self) -> u64 {
        self.produced
    }

    fn buffered(&self) -> usize {
        self.buffered.min(usize::MAX as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::unix::net::UnixStream;

    /// The satellite test: `TokenChannel`'s fast-forward contract
    /// (`fast_forward_advances_both_cursors_and_preserves_depth` in
    /// `channel.rs`), replayed over a real socket pair. Two real tokens
    /// in flight, a 5-cycle skip: the consumer cursor lands at 5, the
    /// producer at 7, and the depth of 2 survives as synthesized fill.
    #[test]
    fn fast_forward_over_a_socketpair_mirrors_the_in_process_contract() {
        let (a, b) = UnixStream::pair().expect("socketpair");
        let mut tx = RemoteSender::new(a, 0, 64);
        let mut rx = RemoteReceiver::new(b, 0);

        assert_eq!(tx.push_batch(0, &[10, 11]), Ok(2));
        tx.fast_forward(5, 0);
        assert_eq!(tx.producer_cycle(), 7);
        tx.flush().expect("socket write");

        rx.ensure(7).expect("both frames arrive");
        rx.fast_forward(5, 0);
        assert_eq!(rx.consumer_cycle(), 5);
        assert_eq!(rx.producer_cycle(), 7);
        assert_eq!(TokenLink::buffered(&rx), 2, "depth is preserved");
        // What remains is synthesized fill, exactly like the in-process
        // channel after the same skip.
        let mut rest = [99u64; 2];
        assert_eq!(rx.pop_batch(5, &mut rest), Ok(2));
        assert_eq!(rest, [0, 0]);
    }

    #[test]
    fn ordered_token_traffic_survives_odd_batching() {
        let (a, b) = UnixStream::pair().expect("socketpair");
        let reference: Vec<u64> = (0..10_000u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) >> 7)
            .collect();
        let expect = reference.clone();
        let producer = std::thread::spawn(move || {
            let mut tx = RemoteSender::new(a, 0, 64);
            let mut at = 0u64;
            for chunk in reference.chunks(7) {
                tx.push_batch(at, chunk).expect("cycle cursor tracks");
                at += chunk.len() as u64;
                if tx.due() {
                    tx.flush().expect("socket write");
                }
            }
            tx.flush().expect("final flush");
        });
        let mut rx = RemoteReceiver::new(b, 0);
        let mut got = Vec::new();
        let mut cycle = 0u64;
        while got.len() < expect.len() {
            rx.ensure(1).expect("producer keeps sending");
            let mut buf = [0u64; 13];
            let n = rx.pop_batch(cycle, &mut buf).expect("cycle cursor tracks");
            got.extend_from_slice(&buf[..n]);
            cycle += n as u64;
        }
        producer.join().expect("producer thread");
        assert_eq!(got, expect);
    }

    #[test]
    fn reset_window_and_cycle_checks_match_the_channel() {
        let (a, b) = UnixStream::pair().expect("socketpair");
        let mut tx = RemoteSender::new(a, 3, 8);
        let mut rx = RemoteReceiver::new(b, 3);
        // Pushes start after the reset window, pops at zero — exactly a
        // latency-3 TokenChannel.
        assert_eq!(
            tx.push_batch(0, &[1]),
            Err(ChannelError::WrongCycle {
                expected: 3,
                got: 0
            })
        );
        assert_eq!(
            rx.pop_batch(1, &mut [0u64]),
            Err(ChannelError::WrongCycle {
                expected: 0,
                got: 1
            })
        );
        let mut first = [9u64; 3];
        assert_eq!(rx.pop_batch(0, &mut first), Ok(3));
        assert_eq!(first, [0, 0, 0], "the latency window is reset tokens");
        // An empty receiver reports zero moved, like the channel.
        assert_eq!(rx.pop_batch(3, &mut [0u64]), Ok(0));
        drop(tx);
    }

    #[test]
    fn sender_resume_replays_the_unconsumed_tail() {
        // First life: a latency-2 link, six pushes, consumer reaches
        // cycle 6 — so tokens for cycles 6 and 7 are in flight when the
        // "process" dies.
        let (a, b) = UnixStream::pair().expect("socketpair");
        let mut tx = RemoteSender::new(a, 2, 4);
        let mut rx = RemoteReceiver::new(b, 2);
        tx.push_batch(2, &[101, 102, 103, 104, 105, 106])
            .expect("in window");
        tx.flush().expect("socket write");
        let mut consumed = [0u64; 6];
        rx.ensure(6).expect("frames arrive");
        assert_eq!(rx.pop_batch(0, &mut consumed), Ok(6));
        assert_eq!(consumed[..2], [0, 0]);
        assert_eq!(consumed[2..], [101, 102, 103, 104]);

        let ckpt = tx.ckpt();
        assert_eq!(ckpt.next_cycle, 8);
        assert_eq!(ckpt.tail, vec![105, 106]);
        let reloaded = SenderCkpt::restore(&ckpt.save()).expect("ckpt tree roundtrips");
        assert_eq!(reloaded, ckpt);

        // Second life: fresh sockets, both halves resumed at the
        // boundary. The replay tail covers exactly cycles 6 and 7.
        let (a2, b2) = UnixStream::pair().expect("socketpair");
        let mut tx2 = RemoteSender::resume(a2, 2, 4, &reloaded).expect("replay write");
        let mut rx2 = RemoteReceiver::resume(b2, 2, 6);
        assert_eq!(rx2.consumer_cycle(), 6);
        rx2.ensure(2).expect("replay arrives");
        let mut tail = [0u64; 2];
        assert_eq!(rx2.pop_batch(6, &mut tail), Ok(2));
        assert_eq!(tail, [105, 106]);
        // And the link keeps working normally from there.
        tx2.push_batch(8, &[107]).expect("cursor resumed");
        tx2.flush().expect("socket write");
        rx2.ensure(1).expect("frame arrives");
        assert_eq!(rx2.pop(8), Ok(107));
    }

    #[test]
    fn early_resume_resynthesizes_the_reset_remainder() {
        // Boundary before the reset window is exhausted: S=1, L=3. The
        // receiver owes itself cycles [1,3) as zeros; the producer's
        // tail covers [3, 4).
        let (a, _b) = UnixStream::pair().expect("socketpair");
        let mut tx = RemoteSender::new(a, 3, 4);
        tx.push_batch(3, &[42]).expect("in window");
        tx.flush().expect("socket write");
        let ckpt = tx.ckpt();
        assert_eq!(ckpt.tail, vec![42]);

        let (a2, b2) = UnixStream::pair().expect("socketpair");
        let _tx2 = RemoteSender::resume(a2, 3, 4, &ckpt).expect("replay write");
        let mut rx2 = RemoteReceiver::resume(b2, 3, 1);
        let mut out = [9u64; 3];
        rx2.ensure(3).expect("zeros are local, tail arrives");
        assert_eq!(rx2.pop_batch(1, &mut out), Ok(3));
        assert_eq!(out, [0, 0, 42]);
    }

    #[test]
    fn misaligned_frames_are_protocol_errors() {
        let (mut a, b) = UnixStream::pair().expect("socketpair");
        write_frame(
            &mut a,
            &Frame::Data {
                start: 5,
                tokens: vec![1],
            },
        )
        .expect("socket write");
        let mut rx = RemoteReceiver::new(b, 0);
        let err = rx.recv().expect_err("cycle 5 ≠ expected 0");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}

//! The partition plan a coordinator distributes to workers.
//!
//! A plan is plain JSON inside a [`Frame::Plan`](crate::frame::Frame):
//! either a **sweep** (independent [`WireCell`]s, indexed so results
//! can be collected and re-planned after a process loss) or a **graph**
//! (one rank's slice of a partitioned demo ring, everything needed to
//! rebuild [`rank_view`](crate::graph::rank_view) locally).
//!
//! Before any process is spawned, [`lint_graph_plan`] runs the
//! `DL`-series lints from `bsim-check` over the partition shape —
//! out-of-range ranks, empty partitions, cut wires too tight for the
//! quantum — the same preflight-before-cycles discipline the rest of
//! the stack uses.

use crate::cells::WireCell;
use bsim_check::rules::{partition_lints, PartitionSpec};
use bsim_check::Report;
use bsim_engine::Wire;
use serde::Value;

/// What a worker process is asked to do.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanSpec {
    /// Run these sweep cells (global cell index, cell) sequentially,
    /// reporting each as a `Cell` frame.
    Sweep { cells: Vec<(u32, WireCell)> },
    /// Run one rank of the partitioned demo ring and report the final
    /// model states.
    Graph {
        ring: usize,
        latency: u64,
        quantum: usize,
        cycles: u64,
        seed: u64,
        /// Rank per global model — the worker derives its own view.
        assignment: Vec<usize>,
        /// This worker's rank.
        rank: usize,
    },
}

impl PlanSpec {
    pub fn encode(&self) -> String {
        let tree = match self {
            PlanSpec::Sweep { cells } => Value::Map(vec![
                ("mode".into(), Value::Str("sweep".into())),
                (
                    "cells".into(),
                    Value::Seq(
                        cells
                            .iter()
                            .map(|(index, cell)| {
                                Value::Map(vec![
                                    ("index".into(), Value::U64(u64::from(*index))),
                                    ("cell".into(), cell.encode()),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            PlanSpec::Graph {
                ring,
                latency,
                quantum,
                cycles,
                seed,
                assignment,
                rank,
            } => Value::Map(vec![
                ("mode".into(), Value::Str("graph".into())),
                ("ring".into(), Value::U64(*ring as u64)),
                ("latency".into(), Value::U64(*latency)),
                ("quantum".into(), Value::U64(*quantum as u64)),
                ("cycles".into(), Value::U64(*cycles)),
                ("seed".into(), Value::U64(*seed)),
                (
                    "assignment".into(),
                    Value::Seq(assignment.iter().map(|&r| Value::U64(r as u64)).collect()),
                ),
                ("rank".into(), Value::U64(*rank as u64)),
            ]),
        };
        serde_json::to_string(&tree).expect("shim renderer is total")
    }

    pub fn decode(json: &str) -> Option<PlanSpec> {
        let tree = serde_json::from_str(json).ok()?;
        let usize_field = |name: &str| tree.get(name)?.as_u64().map(|v| v as usize);
        match tree.get("mode")?.as_str()? {
            "sweep" => {
                let cells = tree
                    .get("cells")?
                    .as_seq()?
                    .iter()
                    .map(|entry| {
                        let index = u32::try_from(entry.get("index")?.as_u64()?).ok()?;
                        Some((index, WireCell::decode(entry.get("cell")?)?))
                    })
                    .collect::<Option<Vec<_>>>()?;
                Some(PlanSpec::Sweep { cells })
            }
            "graph" => Some(PlanSpec::Graph {
                ring: usize_field("ring")?,
                latency: tree.get("latency")?.as_u64()?,
                quantum: usize_field("quantum")?,
                cycles: tree.get("cycles")?.as_u64()?,
                seed: tree.get("seed")?.as_u64()?,
                assignment: tree
                    .get("assignment")?
                    .as_seq()?
                    .iter()
                    .map(|v| v.as_u64().map(|r| r as usize))
                    .collect::<Option<Vec<_>>>()?,
                rank: usize_field("rank")?,
            }),
            _ => None,
        }
    }
}

/// Runs the `DL`-series partition lints plus the `DD`-series cross-rank
/// deadlock analysis over a graph-mode plan shape. Graph mode always
/// runs with fast-forward enabled ([`crate::graph::RankGraph::new`] is
/// called with `ff = true`), so the DD pass licenses accordingly.
pub fn lint_graph_plan(
    ranks: usize,
    assignment: &[usize],
    wires: &[Wire],
    quantum: usize,
) -> Report {
    let spec = PartitionSpec {
        ranks,
        assignment: assignment.to_vec(),
        wires: wires
            .iter()
            .map(|w| (w.from_model, w.to_model, w.latency))
            .collect(),
        quantum,
    };
    let mut report = partition_lints().run(&spec, "dist.plan");
    report.merge(bsim_check::dd::analyze_partition(&spec, true, "dist.plan"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::demo_ring;

    #[test]
    fn both_plan_modes_roundtrip() {
        let sweep = PlanSpec::Sweep {
            cells: vec![
                (
                    0,
                    WireCell::Fig {
                        id: "1".into(),
                        sizes: "smoke".into(),
                        index: 0,
                    },
                ),
                (3, WireCell::Tune { scale: 2 }),
            ],
        };
        assert_eq!(PlanSpec::decode(&sweep.encode()), Some(sweep));
        let graph = PlanSpec::Graph {
            ring: 4,
            latency: 2,
            quantum: 16,
            cycles: 500,
            seed: 7,
            assignment: vec![0, 0, 1, 1],
            rank: 1,
        };
        assert_eq!(PlanSpec::decode(&graph.encode()), Some(graph));
        assert_eq!(PlanSpec::decode("{}"), None);
        assert_eq!(PlanSpec::decode("not json"), None);
    }

    #[test]
    fn sane_demo_plans_lint_clean_and_broken_ones_do_not() {
        let (_, wires) = demo_ring(4, 1, 16);
        assert!(lint_graph_plan(2, &[0, 0, 1, 1], &wires, 16).is_clean());
        // A model on a rank that does not exist is a DL001 error.
        assert!(lint_graph_plan(2, &[0, 0, 1, 5], &wires, 16).has_errors());
        // Cut latency below the quantum serializes the link: DL005,
        // and the DD pass piles on — the rank cycle is shorter than
        // the quantum (DD002) and fast-forward can overrun the slack
        // (DD004). All warnings; the plan still runs.
        let (_, tight) = demo_ring(4, 1, 1);
        let report = lint_graph_plan(2, &[0, 0, 1, 1], &tight, 16);
        assert!(report.has_code("DL005") && !report.has_errors());
        assert!(report.has_code("DD002") && report.has_code("DD004"));
    }
}

//! Loom interleaving test for the cut-link halves: a [`RemoteSender`]
//! flushing run-length traffic races a [`RemoteReceiver`] verifying and
//! fast-forwarding through it over a shared in-memory byte pipe.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p bsim-dist --release --test loom_link
//! ```
//!
//! The property: under *every* schedule the receiver observes exactly
//! the cycle-ordered token stream the sender pushed — the quiescence
//! fast-forward may only skip zeros the wire has already verified, so no
//! interleaving of `flush` against `ensure`/`leading_zero_run` can make
//! the skip overrun into live traffic or double-count the reset window.
//! This holds because each frame leaves the sender as one `write_all`
//! (frames are never torn) and the receiver re-checks every frame's
//! start cycle against its own `produced` cursor.

#![cfg(loom)]

use bsim_dist::link::{RemoteReceiver, RemoteSender};
use bsim_engine::TokenLink;
use loom::sync::{Arc, Mutex};
use loom::thread;
use std::collections::VecDeque;
use std::io::{self, Read, Write};

/// One direction of an in-memory socket: every `write` appends under the
/// loom mutex (a schedule point), every `read` takes what is available
/// or yields until the producer catches up. Mirrors a loopback TCP
/// stream closely enough for the link protocol: bytes arrive in order,
/// possibly split at arbitrary boundaries.
#[derive(Clone)]
struct Pipe {
    buf: Arc<Mutex<VecDeque<u8>>>,
}

impl Pipe {
    fn new() -> Pipe {
        Pipe {
            buf: Arc::new(Mutex::new(VecDeque::new())),
        }
    }
}

impl Write for Pipe {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buf.lock().unwrap().extend(data.iter().copied());
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Read for Pipe {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        loop {
            {
                let mut q = self.buf.lock().unwrap();
                if !q.is_empty() {
                    let n = out.len().min(q.len());
                    for slot in out[..n].iter_mut() {
                        *slot = q.pop_front().unwrap();
                    }
                    return Ok(n);
                }
            }
            // Nothing buffered yet: let the producer run. The loom shim
            // deprioritizes a yielded thread, so this spin is bounded.
            thread::yield_now();
        }
    }
}

#[test]
fn flush_racing_fast_forward_verification_is_order_safe() {
    loom::model(|| {
        const RESET: u64 = 2;
        let pipe = Pipe::new();
        let rx_end = pipe.clone();

        let producer = thread::spawn(move || {
            let mut tx = RemoteSender::new(pipe, RESET, 4);
            // Two pushed idle cycles, a four-cycle quiescence span, then
            // the first live token: cycles 2..8 are zeros, cycle 8 is 7.
            tx.push_batch(RESET, &[0, 0]).unwrap();
            tx.fast_forward(4, 0);
            tx.push_batch(RESET + 6, &[7]).unwrap();
            tx.flush().unwrap();
        });

        let mut rx = RemoteReceiver::new(rx_end, RESET);
        // Verify the whole window (2 reset + 2 pushed + 4 fast-forward +
        // 1 live), however the producer's flush interleaves with it.
        rx.ensure(RESET + 7).unwrap();
        assert_eq!(rx.leading_zero_run(), RESET + 6);
        for cycle in 0..RESET + 6 {
            assert_eq!(rx.pop(cycle).unwrap(), 0, "cycle {cycle} must be idle");
        }
        assert_eq!(rx.pop(RESET + 6).unwrap(), 7, "live token after the skip");

        producer.join().unwrap();
    });
}

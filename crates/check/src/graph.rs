//! Model-graph analysis: prove a token-coupled target graph can run
//! before any cycle is simulated.
//!
//! FireSim elaborates its target design before FPGA synthesis and
//! rejects malformed channel topologies at that stage; this module is
//! the software analogue. The engine's `Harness` wiring is lifted into a
//! [`GraphSpec`] — plain data, no models attached — and [`analyze`]
//! proves the three properties token simulation needs:
//!
//! 1. **Decoupling** — every channel has ≥ 1 cycle of latency (`MG001`),
//!    so producer and consumer never need the same cycle's token.
//! 2. **Deadlock freedom** — every cycle in the graph carries at least
//!    one reset token (`MG002`). A token loop with no initial tokens is
//!    a combinational loop in FireSim terms: every model waits on input
//!    that can only be produced after its own output.
//! 3. **Wiring completeness** — endpoints exist (`MG004`), every input
//!    port has exactly one driver (`MG003`), capacities hold a full
//!    latency + quantum window (`MG005`), and outputs that drive nothing
//!    are called out (`MG006`).
//!
//! Diagnostic codes are stable; see `crates/check/README.md`.

use crate::diag::{Diagnostic, Report};

/// One model's shape, without the model itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelSpec {
    /// Display name used in diagnostics (e.g. `"core0"`, `"model 2"`).
    pub name: String,
    /// Number of input ports.
    pub inputs: usize,
    /// Number of output ports.
    pub outputs: usize,
}

impl ModelSpec {
    /// A spec named `model {index}`, matching the engine's diagnostics.
    pub fn indexed(index: usize, inputs: usize, outputs: usize) -> ModelSpec {
        ModelSpec {
            name: format!("model {index}"),
            inputs,
            outputs,
        }
    }
}

/// One directed channel in the analyzable graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireSpec {
    /// Producing model index.
    pub from_model: usize,
    /// Producing port.
    pub from_port: usize,
    /// Consuming model index.
    pub to_model: usize,
    /// Consuming port.
    pub to_port: usize,
    /// Target-cycle latency.
    pub latency: u64,
    /// Initial (reset) tokens; `None` means the engine default of one
    /// token per cycle of latency.
    pub reset_tokens: Option<u64>,
    /// Channel capacity in tokens; `None` means the engine default of
    /// `latency + quantum` (always sufficient by construction).
    pub capacity: Option<usize>,
}

impl WireSpec {
    /// The engine-default wire: reset tokens = latency, auto capacity.
    pub fn new(
        from_model: usize,
        from_port: usize,
        to_model: usize,
        to_port: usize,
        latency: u64,
    ) -> WireSpec {
        WireSpec {
            from_model,
            from_port,
            to_model,
            to_port,
            latency,
            reset_tokens: None,
            capacity: None,
        }
    }

    /// Reset tokens actually present at cycle 0.
    pub fn effective_reset_tokens(&self) -> u64 {
        self.reset_tokens.unwrap_or(self.latency)
    }

    fn span(&self, index: usize) -> String {
        format!(
            "wire {index}: model {}.out{} -> model {}.in{}",
            self.from_model, self.from_port, self.to_model, self.to_port
        )
    }
}

/// A complete target graph, ready for [`analyze`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GraphSpec {
    /// The models (index = model id, as used by the wires).
    pub models: Vec<ModelSpec>,
    /// The channels.
    pub wires: Vec<WireSpec>,
}

/// Statically checks a target graph for the given channel quantum.
/// Returns every violation found, never panics.
pub fn analyze(spec: &GraphSpec, quantum: usize) -> Report {
    let mut report = Report::new();
    let nmodels = spec.models.len();

    // MG001/MG004/MG005 are per-wire properties.
    let mut wired_ok = vec![false; spec.wires.len()];
    for (wi, w) in spec.wires.iter().enumerate() {
        let span = w.span(wi);
        if w.from_model >= nmodels || w.to_model >= nmodels {
            report.push(
                Diagnostic::error(
                    "MG004",
                    &span,
                    format!(
                        "dangling endpoint: wire references model {} but the graph has {nmodels} model(s)",
                        w.from_model.max(w.to_model)
                    ),
                )
                .with_help("wire endpoints must index into the model list"),
            );
            continue; // port checks below would index out of range
        }
        let mut endpoints_ok = true;
        if w.from_port >= spec.models[w.from_model].outputs {
            endpoints_ok = false;
            report.push(Diagnostic::error(
                "MG004",
                &span,
                format!(
                    "dangling from_port: {} has {} output port(s), wire drives out{}",
                    spec.models[w.from_model].name, spec.models[w.from_model].outputs, w.from_port
                ),
            ));
        }
        if w.to_port >= spec.models[w.to_model].inputs {
            endpoints_ok = false;
            report.push(Diagnostic::error(
                "MG004",
                &span,
                format!(
                    "dangling to_port: {} has {} input port(s), wire feeds in{}",
                    spec.models[w.to_model].name, spec.models[w.to_model].inputs, w.to_port
                ),
            ));
        }
        wired_ok[wi] = endpoints_ok;
        if w.latency == 0 {
            report.push(
                Diagnostic::error(
                    "MG001",
                    &span,
                    "token channels need >= 1 cycle latency to decouple their endpoints",
                )
                .with_help("a zero-latency channel couples producer and consumer combinationally; raise the wire latency to at least 1"),
            );
        }
        let needed = w.latency as usize + quantum;
        if let Some(cap) = w.capacity {
            if cap < needed {
                report.push(
                    Diagnostic::error(
                        "MG005",
                        &span,
                        format!(
                            "channel capacity {cap} cannot hold a full window: latency {} + quantum {quantum} = {needed} tokens",
                            w.latency
                        ),
                    )
                    .with_help("size the channel to at least latency + quantum, or the producer stalls inside its own quantum"),
                );
            }
        }
        if w.effective_reset_tokens() > w.latency {
            report.push(
                Diagnostic::warning(
                    "MG002",
                    &span,
                    format!(
                        "channel starts with {} reset tokens but only {} cycle(s) of latency; the extra tokens shift target time",
                        w.effective_reset_tokens(),
                        w.latency
                    ),
                )
                .with_help("reset tokens beyond the latency make the consumer observe the producer's cycle-0 output early"),
            );
        }
    }

    // MG003: every input port needs exactly one driver. Count only wires
    // with valid endpoints so a dangling wire yields MG004, not a bogus
    // fan-in conflict as well.
    for (mi, m) in spec.models.iter().enumerate() {
        for p in 0..m.inputs {
            let n = spec
                .wires
                .iter()
                .zip(&wired_ok)
                .filter(|(w, ok)| **ok && w.to_model == mi && w.to_port == p)
                .count();
            if n != 1 {
                report.push(
                    Diagnostic::error(
                        "MG003",
                        format!("model {mi} input {p}"),
                        format!("model {mi} input {p} must have exactly one driver, has {n}"),
                    )
                    .with_help(if n == 0 {
                        "an undriven input can never receive a token: the model stalls at cycle 0"
                    } else {
                        "two producers racing one channel break the one-token-per-cycle protocol"
                    }),
                );
            }
        }
    }

    // MG006: outputs driving nothing (legal, but the values vanish).
    for (mi, m) in spec.models.iter().enumerate() {
        for p in 0..m.outputs {
            let n = spec
                .wires
                .iter()
                .zip(&wired_ok)
                .filter(|(w, ok)| **ok && w.from_model == mi && w.from_port == p)
                .count();
            if n == 0 {
                report.push(
                    Diagnostic::warning(
                        "MG006",
                        format!("{} output {p}", m.name),
                        format!(
                            "output port {p} of {} drives no channel; its tokens are discarded",
                            m.name
                        ),
                    )
                    .with_help("remove the port or wire it to a consumer"),
                );
            }
        }
    }

    // MG002 (deadlock): a cycle whose every edge carries zero reset
    // tokens can never produce its first token — each model waits on
    // input only producible after its own output. Restrict the graph to
    // zero-reset edges and look for any cycle.
    find_tokenless_cycles(spec, &wired_ok, &mut report);

    report
}

/// DFS over the subgraph of valid, zero-reset-token wires; any cycle in
/// that subgraph deadlocks at cycle 0. Reports each cycle once, listing
/// the models on it.
fn find_tokenless_cycles(spec: &GraphSpec, wired_ok: &[bool], report: &mut Report) {
    let n = spec.models.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (wi, w) in spec.wires.iter().enumerate() {
        if wired_ok[wi] && w.effective_reset_tokens() == 0 {
            adj[w.from_model].push(w.to_model);
        }
    }
    // Colors: 0 = unvisited, 1 = on the current DFS path, 2 = done.
    let mut color = vec![0u8; n];
    let mut path: Vec<usize> = Vec::new();
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        // Iterative DFS with an explicit edge cursor per path node.
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = 1;
        path.push(start);
        while let Some(top) = stack.len().checked_sub(1) {
            let (node, cursor) = stack[top];
            if cursor < adj[node].len() {
                let next = adj[node][cursor];
                stack[top].1 += 1;
                match color[next] {
                    0 => {
                        color[next] = 1;
                        path.push(next);
                        stack.push((next, 0));
                    }
                    1 => {
                        // Back edge: the cycle is path[pos..] -> next.
                        let pos = path.iter().position(|&m| m == next).expect("on path");
                        let cycle: Vec<String> =
                            path[pos..].iter().map(|&m| format!("model {m}")).collect();
                        report.push(
                            Diagnostic::error(
                                "MG002",
                                format!("cycle through {}", cycle.join(" -> ")),
                                "token cycle carries zero reset tokens: every model on it waits for input that can only be produced after its own output (deadlock at cycle 0)",
                            )
                            .with_help("give at least one channel on the cycle a nonzero latency (reset tokens default to the latency)"),
                        );
                    }
                    _ => {}
                }
            } else {
                color[node] = 2;
                path.pop();
                stack.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize, latency: u64) -> GraphSpec {
        GraphSpec {
            models: (0..n).map(|i| ModelSpec::indexed(i, 1, 1)).collect(),
            wires: (0..n)
                .map(|i| WireSpec::new(i, 0, (i + 1) % n, 0, latency))
                .collect(),
        }
    }

    #[test]
    fn healthy_ring_is_clean() {
        let r = analyze(&ring(4, 2), 8);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn zero_latency_wire_is_mg001() {
        let mut g = ring(3, 1);
        g.wires[1].latency = 0;
        let r = analyze(&g, 1);
        assert!(r.has_code("MG001"), "{}", r.render());
        assert!(r.has_errors());
        // The rest of the ring still has reset tokens, so no deadlock.
        assert!(!r.has_code("MG002"), "{}", r.render());
    }

    #[test]
    fn tokenless_cycle_is_mg002() {
        let mut g = ring(3, 1);
        for w in &mut g.wires {
            w.reset_tokens = Some(0);
        }
        let r = analyze(&g, 1);
        assert!(r.has_code("MG002"), "{}", r.render());
        let d = r.with_code("MG002").next().unwrap();
        assert!(d.span.contains("model 0"), "{}", d.span);
    }

    #[test]
    fn tokenless_self_loop_is_mg002() {
        let g = GraphSpec {
            models: vec![ModelSpec::indexed(0, 1, 1)],
            wires: vec![WireSpec {
                reset_tokens: Some(0),
                ..WireSpec::new(0, 0, 0, 0, 1)
            }],
        };
        assert!(analyze(&g, 1).has_code("MG002"));
    }

    #[test]
    fn acyclic_tokenless_edge_is_fine() {
        // A zero-reset edge without a cycle just means the consumer
        // waits one quantum; it is not a deadlock.
        let g = GraphSpec {
            models: vec![ModelSpec::indexed(0, 0, 1), ModelSpec::indexed(1, 1, 0)],
            wires: vec![WireSpec {
                reset_tokens: Some(0),
                ..WireSpec::new(0, 0, 1, 0, 1)
            }],
        };
        let r = analyze(&g, 1);
        assert!(!r.has_code("MG002"), "{}", r.render());
    }

    #[test]
    fn undriven_and_fanin_inputs_are_mg003() {
        let mut g = ring(2, 1);
        let extra = g.wires[0]; // second driver for model 1 input 0
        g.wires.push(extra);
        let r = analyze(&g, 1);
        let msgs: Vec<&str> = r.with_code("MG003").map(|d| d.message.as_str()).collect();
        assert_eq!(msgs.len(), 1, "{}", r.render());
        assert!(msgs[0].contains("exactly one driver, has 2"), "{}", msgs[0]);

        let empty = GraphSpec {
            models: vec![ModelSpec::indexed(0, 1, 1)],
            wires: vec![],
        };
        let r = analyze(&empty, 1);
        assert!(r
            .with_code("MG003")
            .any(|d| d.message.contains("exactly one driver, has 0")));
    }

    #[test]
    fn out_of_range_endpoints_are_mg004() {
        let mut g = ring(2, 1);
        g.wires[0].to_model = 9;
        g.wires[1].from_port = 7;
        let r = analyze(&g, 1);
        assert_eq!(r.with_code("MG004").count(), 2, "{}", r.render());
        assert!(r.has_errors());
    }

    #[test]
    fn undersized_capacity_is_mg005() {
        let mut g = ring(2, 3);
        g.wires[0].capacity = Some(4); // needs 3 + 8 = 11
        let r = analyze(&g, 8);
        assert!(r.has_code("MG005"), "{}", r.render());
        // Auto capacity (None) is sufficient by construction.
        g.wires[0].capacity = None;
        assert!(analyze(&g, 8).is_clean());
    }

    #[test]
    fn unconsumed_output_is_mg006_warning_only() {
        let g = GraphSpec {
            models: vec![ModelSpec::indexed(0, 0, 2), ModelSpec::indexed(1, 1, 0)],
            wires: vec![WireSpec::new(0, 0, 1, 0, 1)],
        };
        let r = analyze(&g, 1);
        assert!(r.has_code("MG006"), "{}", r.render());
        assert!(!r.has_errors() && r.has_warnings());
    }

    #[test]
    fn excess_reset_tokens_warn_as_mg002() {
        let mut g = ring(2, 1);
        g.wires[0].reset_tokens = Some(5);
        let r = analyze(&g, 1);
        assert!(r.has_code("MG002") && !r.has_errors(), "{}", r.render());
    }
}

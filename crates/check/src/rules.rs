//! The domain rule catalog: `CL0xx` config lints over the memory-system
//! and core-model configuration structs.
//!
//! Each `*_lints()` function builds the [`LintRegistry`] for one config
//! type; the `lint_*` composites walk a whole structure (a memory
//! hierarchy, a core model) and run every applicable registry with
//! dotted spans (`milkv_sim.hierarchy.l1d`). SoC-level (`SC0xx`) and
//! paper-fidelity (`PF0xx`) rules live in `bsim-soc::preflight`, next to
//! the platform catalog they judge; the `NC001` network lint lives in
//! `bsim-mpi`, next to `NetConfig`.
//!
//! Every code is documented in `crates/check/README.md`.

use crate::diag::{Diagnostic, Report};
use crate::lint::LintRegistry;
use bsim_mem::cache::CacheConfig;
use bsim_mem::llc::LlcConfig;
use bsim_mem::{BusConfig, DramConfig, HierarchyConfig};
use bsim_uarch::{InOrderConfig, OooConfig, TlbConfig};

/// `CL001`–`CL007`: cache geometry and timing.
pub fn cache_lints() -> LintRegistry<CacheConfig> {
    LintRegistry::new()
        .rule("CL001", "sets must be a power of two", |c: &CacheConfig, span, out| {
            if !c.sets.is_power_of_two() {
                out.push(
                    Diagnostic::error(
                        "CL001",
                        span,
                        format!("sets = {} is not a power of two", c.sets),
                    )
                    .with_help("set indexing uses address bit slices; non-power-of-two set counts cannot be indexed"),
                );
            }
        })
        .rule("CL002", "line size must be a power of two", |c, span, out| {
            if !c.line_bytes.is_power_of_two() {
                out.push(Diagnostic::error(
                    "CL002",
                    span,
                    format!("line_bytes = {} is not a power of two", c.line_bytes),
                ));
            }
        })
        .rule("CL003", "bank count must be a power of two", |c, span, out| {
            if !c.banks.is_power_of_two() {
                out.push(Diagnostic::error(
                    "CL003",
                    span,
                    format!("banks = {} is not a power of two", c.banks),
                ));
            }
        })
        .rule("CL004", "need at least one way", |c, span, out| {
            if c.ways == 0 {
                out.push(Diagnostic::error(
                    "CL004",
                    span,
                    "ways = 0: a cache needs at least one way",
                ));
            }
        })
        .rule("CL005", "associativity should divide the set count", |c, span, out| {
            if c.ways >= 1 && c.sets >= 1 && !c.sets.is_multiple_of(c.ways) {
                out.push(
                    Diagnostic::warning(
                        "CL005",
                        span,
                        format!("ways = {} does not divide sets = {}", c.ways, c.sets),
                    )
                    .with_help("banked LRU arrays are usually sliced ways-per-set-group; uneven slicing wastes tag storage"),
                );
            }
        })
        .rule("CL006", "zero MSHRs means a fully blocking cache", |c, span, out| {
            if c.mshrs == 0 {
                out.push(Diagnostic::note(
                    "CL006",
                    span,
                    "mshrs = 0: the cache blocks on every miss (no memory-level parallelism)",
                ));
            }
        })
        .rule("CL007", "zero hit latency is not a cache", |c, span, out| {
            if c.hit_latency == 0 {
                out.push(Diagnostic::warning(
                    "CL007",
                    span,
                    "hit_latency = 0: hits complete in the issue cycle, which no real SRAM does",
                ));
            }
        })
}

/// `CL010`–`CL011`: system bus.
pub fn bus_lints() -> LintRegistry<BusConfig> {
    LintRegistry::new()
        .rule(
            "CL010",
            "bus width must be a power of two, >= 8 bits",
            |b: &BusConfig, span, out| {
                if !b.width_bits.is_power_of_two() || b.width_bits < 8 {
                    out.push(Diagnostic::error(
                        "CL010",
                        span,
                        format!(
                            "width_bits = {} must be a power of two and at least 8",
                            b.width_bits
                        ),
                    ));
                }
            },
        )
        .rule(
            "CL011",
            "a zero-latency bus is combinational",
            |b, span, out| {
                if b.latency == 0 {
                    out.push(Diagnostic::warning(
                        "CL011",
                        span,
                        "latency = 0: the bus forwards in the issue cycle",
                    ));
                }
            },
        )
}

/// `CL020`–`CL023`: DRAM device and controller parameters.
pub fn dram_lints() -> LintRegistry<DramConfig> {
    LintRegistry::new()
        .rule("CL020", "channel/rank/bank counts must be >= 1", |d: &DramConfig, span, out| {
            for (field, v) in [("channels", d.channels), ("ranks", d.ranks), ("banks", d.banks)] {
                if v == 0 {
                    out.push(Diagnostic::error(
                        "CL020",
                        span,
                        format!("{field} = 0: DRAM needs at least one"),
                    ));
                }
            }
        })
        .rule("CL021", "data rate must be positive", |d, span, out| {
            if d.data_rate_mtps == 0 {
                out.push(Diagnostic::error(
                    "CL021",
                    span,
                    "data_rate_mtps = 0: bandwidth would be zero, every access takes forever",
                ));
            }
        })
        .rule("CL022", "timing parameters must be finite and non-negative", |d, span, out| {
            for (field, v) in [
                ("t_cas_ns", d.t_cas_ns),
                ("t_rcd_ns", d.t_rcd_ns),
                ("t_rp_ns", d.t_rp_ns),
                ("ctrl_latency_ns", d.ctrl_latency_ns),
            ] {
                if !v.is_finite() || v < 0.0 {
                    out.push(Diagnostic::error(
                        "CL022",
                        span,
                        format!("{field} = {v} must be finite and non-negative"),
                    ));
                }
            }
        })
        .rule("CL023", "token quantum must be >= 1 cycle", |d, span, out| {
            if d.token_quantum_cycles == 0 {
                out.push(
                    Diagnostic::error(
                        "CL023",
                        span,
                        "token_quantum_cycles = 0: the DRAM token loop would never advance",
                    )
                    .with_help("silicon references use 1 (no quantization); FireSim's DDR3 model uses 4"),
                );
            }
        })
}

/// `CL030`–`CL032`: TLB sizing.
pub fn tlb_lints() -> LintRegistry<TlbConfig> {
    LintRegistry::new()
        .rule(
            "CL030",
            "L1 TLB needs at least one entry",
            |t: &TlbConfig, span, out| {
                if t.l1_entries == 0 {
                    out.push(Diagnostic::error(
                        "CL030",
                        span,
                        "l1_entries = 0: every access would walk the page table",
                    ));
                }
            },
        )
        .rule(
            "CL031",
            "an L2 TLB, if present, needs entries",
            |t, span, out| {
                if t.l2_entries == Some(0) {
                    out.push(
                        Diagnostic::error("CL031", span, "l2_entries = Some(0): an empty L2 TLB")
                            .with_help("use None to model a single-level TLB"),
                    );
                }
            },
        )
        .rule(
            "CL032",
            "free page walks hide TLB pressure",
            |t, span, out| {
                if t.walk_latency == 0 {
                    out.push(Diagnostic::warning(
                        "CL032",
                        span,
                        "walk_latency = 0: page walks are free, TLB misses cost nothing",
                    ));
                }
            },
        )
}

/// `CL050`–`CL052`: in-order core model.
pub fn inorder_lints() -> LintRegistry<InOrderConfig> {
    LintRegistry::new()
        .rule("CL050", "issue width must be >= 1", |c: &InOrderConfig, span, out| {
            if c.issue_width == 0 {
                out.push(Diagnostic::error(
                    "CL050",
                    span,
                    "issue_width = 0: the core can never issue",
                ));
            }
        })
        .rule("CL051", "fetch should keep up with issue", |c, span, out| {
            if c.fetch_width < c.issue_width {
                out.push(Diagnostic::warning(
                    "CL051",
                    span,
                    format!(
                        "fetch_width = {} < issue_width = {}: the front end starves the issue stage",
                        c.fetch_width, c.issue_width
                    ),
                ));
            }
        })
        .rule("CL052", "pipeline needs at least one stage", |c, span, out| {
            if c.pipeline_depth == 0 {
                out.push(Diagnostic::error(
                    "CL052",
                    span,
                    "pipeline_depth = 0: mispredict penalties and bypass timing are undefined",
                ));
            }
        })
}

/// `CL060`–`CL064`: out-of-order core model.
pub fn ooo_lints() -> LintRegistry<OooConfig> {
    LintRegistry::new()
        .rule(
            "CL060",
            "the RoB needs entries",
            |c: &OooConfig, span, out| {
                if c.rob == 0 {
                    out.push(Diagnostic::error(
                        "CL060",
                        span,
                        "rob = 0: no instruction can be in flight",
                    ));
                }
            },
        )
        .rule(
            "CL061",
            "LSQ entries should fit in the RoB",
            |c, span, out| {
                if c.rob < c.ldq + c.stq {
                    out.push(
                        Diagnostic::warning(
                            "CL061",
                            span,
                            format!(
                                "ldq + stq = {} exceeds rob = {}: part of the LSQ can never fill",
                                c.ldq + c.stq,
                                c.rob
                            ),
                        )
                        .with_help("every queued load/store also occupies a RoB entry"),
                    );
                }
            },
        )
        .rule(
            "CL062",
            "fetch should keep up with decode",
            |c, span, out| {
                if c.fetch_width < c.decode_width {
                    out.push(Diagnostic::warning(
                        "CL062",
                        span,
                        format!(
                            "fetch_width = {} < decode_width = {}: decode starves",
                            c.fetch_width, c.decode_width
                        ),
                    ));
                }
            },
        )
        .rule("CL063", "execution units must exist", |c, span, out| {
            for (field, v) in [
                ("int_units", c.int_units),
                ("mem_ports", c.mem_ports),
                ("fp_units", c.fp_units),
            ] {
                if v == 0 {
                    out.push(Diagnostic::error(
                        "CL063",
                        span,
                        format!("{field} = 0: instructions of that class can never execute"),
                    ));
                }
            }
        })
        .rule(
            "CL064",
            "free branch mispredictions hide the front end",
            |c, span, out| {
                if c.mispredict_penalty == 0 {
                    out.push(Diagnostic::warning(
                        "CL064",
                        span,
                        "mispredict_penalty = 0: branchy code is modeled as perfectly predicted",
                    ));
                }
            },
        )
}

/// A harness run's host-schedule parameters, as seen by the engine
/// lints: the token-exchange `quantum`, the smallest wire latency in
/// the graph (the tightest channel window), how many models publish a
/// `next_activity` quiescence hint, and whether fast-forward is on.
/// Built by `bsim-engine`'s `Harness::lint_schedule`.
#[derive(Clone, Debug)]
pub struct ScheduleSpec {
    /// Token-exchange batch size per lock acquisition.
    pub quantum: usize,
    /// Smallest wire latency in the model graph, in cycles.
    pub min_latency: u64,
    /// Models whose `next_activity()` returns a hint.
    pub hinted_models: usize,
    /// Whether the harness will use quiescence fast-forward.
    pub fast_forward: bool,
}

/// `CL070`–`CL071`: engine host-schedule tuning.
pub fn engine_lints() -> LintRegistry<ScheduleSpec> {
    LintRegistry::new()
        .rule(
            "CL070",
            "quantum exceeds the tightest channel window",
            |s: &ScheduleSpec, span, out| {
                if s.quantum as u64 > s.min_latency && s.min_latency > 0 {
                    out.push(
                        Diagnostic::warning(
                            "CL070",
                            span,
                            format!(
                                "quantum = {} exceeds the smallest channel latency ({}): \
                                 channels must be auto-resized to latency + quantum to hold a batch",
                                s.quantum, s.min_latency
                            ),
                        )
                        .with_help(
                            "a producer can only run `latency` cycles ahead of its consumer, so \
                             batches beyond the smallest latency are latency-bound; the extra \
                             quantum only grows channel buffers",
                        ),
                    );
                }
            },
        )
        .rule(
            "CL071",
            "quiescence hints present but fast-forward disabled",
            |s, span, out| {
                if s.hinted_models > 0 && !s.fast_forward {
                    out.push(
                        Diagnostic::warning(
                            "CL071",
                            span,
                            format!(
                                "{} model(s) publish next_activity() hints but fast-forward is off",
                                s.hinted_models
                            ),
                        )
                        .with_help(
                            "results are bit-identical either way; enable fast-forward with \
                             Harness::set_fast_forward(true) to skip quiescent ticks",
                        ),
                    );
                }
            },
        )
}

/// A distributed partition plan, as seen by the `DL`-series lints: how
/// many worker ranks the graph splits across, the model → rank
/// assignment, and each wire as `(from_model, to_model, latency)`.
/// Built by `bsim-dist`'s partition planner before any process spawns.
#[derive(Clone, Debug)]
pub struct PartitionSpec {
    /// Worker ranks (OS processes) the plan targets.
    pub ranks: usize,
    /// Rank owning each model, indexed by model id.
    pub assignment: Vec<usize>,
    /// Every wire in the graph: `(from_model, to_model, latency)`.
    pub wires: Vec<(usize, usize, u64)>,
    /// Token-exchange quantum the remote links batch at.
    pub quantum: usize,
}

impl PartitionSpec {
    /// Wires whose endpoints land on different ranks — the ones that
    /// become socket token links.
    pub fn cut_wires(&self) -> impl Iterator<Item = &(usize, usize, u64)> {
        self.wires.iter().filter(|(f, t, _)| {
            match (self.assignment.get(*f), self.assignment.get(*t)) {
                (Some(a), Some(b)) => a != b,
                _ => false, // dangling endpoints are DL004's problem
            }
        })
    }
}

/// `DL001`–`DL006`: distributed partition-plan lints. Errors here mean
/// the plan cannot run (dangling ranks or models, rendezvous that can
/// never complete); warnings flag plans that run but serialize a socket
/// link.
pub fn partition_lints() -> LintRegistry<PartitionSpec> {
    LintRegistry::new()
        .rule(
            "DL001",
            "model assigned to a rank outside the plan",
            |p: &PartitionSpec, span, out| {
                for (model, &rank) in p.assignment.iter().enumerate() {
                    if rank >= p.ranks {
                        out.push(Diagnostic::error(
                            "DL001",
                            span,
                            format!("model {model} assigned to rank {rank}, plan has {} rank(s)", p.ranks),
                        ));
                    }
                }
            },
        )
        .rule(
            "DL002",
            "degenerate plan shape",
            |p, span, out| {
                if p.ranks == 0 {
                    out.push(Diagnostic::error("DL002", span, "plan has zero ranks"));
                }
                if p.assignment.is_empty() {
                    out.push(Diagnostic::error("DL002", span, "plan assigns no models"));
                }
            },
        )
        .rule(
            "DL003",
            "rank owns no models",
            |p, span, out| {
                for rank in 0..p.ranks {
                    if !p.assignment.contains(&rank) {
                        out.push(
                            Diagnostic::warning(
                                "DL003",
                                span,
                                format!("rank {rank} owns no models: an idle worker process"),
                            )
                            .with_help("shrink --ranks or rebalance the assignment"),
                        );
                    }
                }
            },
        )
        .rule(
            "DL004",
            "wire endpoint outside the assignment",
            |p, span, out| {
                for &(f, t, _) in &p.wires {
                    for m in [f, t] {
                        if m >= p.assignment.len() {
                            out.push(Diagnostic::error(
                                "DL004",
                                span,
                                format!(
                                    "wire {f}->{t} references model {m}, assignment covers {}",
                                    p.assignment.len()
                                ),
                            ));
                        }
                    }
                }
            },
        )
        .rule(
            "DL005",
            "cut wire tighter than the link quantum",
            |p, span, out| {
                for &(f, t, lat) in p.cut_wires() {
                    if lat < p.quantum as u64 {
                        out.push(
                            Diagnostic::warning(
                                "DL005",
                                span,
                                format!(
                                    "cut wire {f}->{t} has latency {lat} below the link quantum {}: \
                                     the socket link can never carry a full batch",
                                    p.quantum
                                ),
                            )
                            .with_help(
                                "a remote producer can only run `latency` cycles ahead; \
                                 partition along high-latency wires or lower the quantum",
                            ),
                        );
                    }
                }
            },
        )
        .rule(
            "DL006",
            "plan hangs at rendezvous: empty rank or dangling relay wire",
            |p, span, out| {
                // An empty rank still gets a worker slot in the launcher's
                // rendezvous: the switchboard waits for its Hello and link
                // connections forever. DL003 used to wave this through as
                // "an idle worker"; in graph mode it is a hang, not waste.
                for rank in 0..p.ranks {
                    if !p.assignment.is_empty() && !p.assignment.contains(&rank) {
                        out.push(
                            Diagnostic::error(
                                "DL006",
                                span,
                                format!(
                                    "rank {rank} owns no models: the rendezvous waits for link \
                                     connections that never come"
                                ),
                            )
                            .with_help("shrink the rank count or rebalance the assignment"),
                        );
                    }
                }
                // A relay created for a wire whose endpoint rank is outside
                // the plan dangles: the owning worker is never spawned.
                for &(f, t, _) in &p.wires {
                    let (a, b) = match (p.assignment.get(f), p.assignment.get(t)) {
                        (Some(&a), Some(&b)) => (a, b),
                        _ => continue, // DL004's problem
                    };
                    if a == b {
                        continue;
                    }
                    for rank in [a, b] {
                        if rank >= p.ranks {
                            out.push(
                                Diagnostic::error(
                                    "DL006",
                                    span,
                                    format!(
                                        "relay for cut wire {f}->{t} dangles: endpoint rank \
                                         {rank} is outside the {}-rank plan and its worker is \
                                         never spawned",
                                        p.ranks
                                    ),
                                )
                                .with_help("fix the assignment before the switchboard is built"),
                            );
                        }
                    }
                }
            },
        )
}

/// Estimated DRAM access latency in core cycles — the CAS + RCD + controller
/// path, the comparison point for `CL041` monotonicity.
fn dram_latency_cycles(d: &DramConfig, core_freq_ghz: f64) -> u64 {
    if !core_freq_ghz.is_finite() || core_freq_ghz <= 0.0 {
        return u64::MAX;
    }
    ((d.t_cas_ns + d.t_rcd_ns + d.ctrl_latency_ns) * core_freq_ghz).max(0.0) as u64
}

/// Full LLC load-to-use latency: tag lookup plus data array.
fn llc_latency(llc: &LlcConfig) -> u64 {
    llc.geometry.hit_latency as u64 + llc.data_latency as u64
}

/// Lints one LLC config: slice geometry plus `CL044` slice-count rules.
pub fn lint_llc(llc: &LlcConfig, span: &str) -> Report {
    let mut out = cache_lints().run(&llc.geometry, &format!("{span}.geometry"));
    if llc.slices == 0 {
        out.push(Diagnostic::error(
            "CL044",
            span,
            "slices = 0: the LLC has no storage",
        ));
    } else if !llc.slices.is_power_of_two() {
        out.push(
            Diagnostic::warning(
                "CL044",
                span,
                format!("slices = {} is not a power of two", llc.slices),
            )
            .with_help(
                "slice selection hashes address bits; power-of-two slice counts interleave evenly",
            ),
        );
    }
    out
}

/// Lints a whole memory hierarchy: every level's geometry, the bus, the
/// DRAM, plus the cross-level `CL040`–`CL045` structure rules.
pub fn lint_hierarchy(h: &HierarchyConfig, span: &str) -> Report {
    let mut out = Report::new();
    cache_lints().run_into(&h.l1i, &format!("{span}.l1i"), &mut out);
    cache_lints().run_into(&h.l1d, &format!("{span}.l1d"), &mut out);
    cache_lints().run_into(&h.l2, &format!("{span}.l2"), &mut out);
    bus_lints().run_into(&h.bus, &format!("{span}.bus"), &mut out);
    dram_lints().run_into(&h.dram, &format!("{span}.dram"), &mut out);
    if let Some(llc) = &h.llc {
        out.merge(lint_llc(llc, &format!("{span}.llc")));
    }

    if h.cores == 0 {
        out.push(Diagnostic::error(
            "CL040",
            span,
            "cores = 0: the hierarchy serves no one",
        ));
    }
    if !h.core_freq_ghz.is_finite() || h.core_freq_ghz <= 0.0 {
        out.push(Diagnostic::error(
            "CL042",
            span,
            format!(
                "core_freq_ghz = {} must be positive and finite",
                h.core_freq_ghz
            ),
        ));
    }

    // CL041: latency must grow down the hierarchy — L1 < L2 < LLC < DRAM.
    // An inversion is legal to simulate but almost certainly a typo'd
    // config, and it breaks the locality story every result rests on.
    let mut level_latency: Vec<(String, u64)> = vec![
        (format!("{span}.l1d"), h.l1d.hit_latency as u64),
        (format!("{span}.l2"), h.l2.hit_latency as u64),
    ];
    if let Some(llc) = &h.llc {
        level_latency.push((format!("{span}.llc"), llc_latency(llc)));
    }
    level_latency.push((
        format!("{span}.dram"),
        dram_latency_cycles(&h.dram, h.core_freq_ghz),
    ));
    for pair in level_latency.windows(2) {
        let (inner, outer) = (&pair[0], &pair[1]);
        if inner.1 >= outer.1 {
            out.push(
                Diagnostic::warning(
                    "CL041",
                    &inner.0,
                    format!(
                        "latency inversion: {} costs {} cycle(s) but the next level out ({}) costs {}",
                        inner.0, inner.1, outer.0, outer.1
                    ),
                )
                .with_help("hit latency must grow down the hierarchy: L1 < L2 < LLC < DRAM"),
            );
        }
    }

    // CL043: so must capacity.
    let mut level_capacity: Vec<(String, u64)> = vec![
        (format!("{span}.l1d"), h.l1d.capacity()),
        (format!("{span}.l2"), h.l2.capacity()),
    ];
    if let Some(llc) = &h.llc {
        level_capacity.push((
            format!("{span}.llc"),
            llc.geometry.capacity() * llc.slices as u64,
        ));
    }
    for pair in level_capacity.windows(2) {
        let (inner, outer) = (&pair[0], &pair[1]);
        if inner.1 >= outer.1 {
            out.push(Diagnostic::warning(
                "CL043",
                &inner.0,
                format!(
                    "capacity inversion: {} holds {} bytes but the next level out ({}) holds {}",
                    inner.0, inner.1, outer.0, outer.1
                ),
            ));
        }
    }

    if h.l1_to_l2_latency == 0 {
        out.push(Diagnostic::warning(
            "CL045",
            span,
            "l1_to_l2_latency = 0: the L1-L2 crossing is free",
        ));
    }
    out
}

/// Lints an in-order core model, including its TLB.
pub fn lint_inorder(c: &InOrderConfig, span: &str) -> Report {
    let mut out = inorder_lints().run(c, span);
    tlb_lints().run_into(&c.tlb, &format!("{span}.tlb"), &mut out);
    out
}

/// Lints an out-of-order core model, including its TLB.
pub fn lint_ooo(c: &OooConfig, span: &str) -> Report {
    let mut out = ooo_lints().run(c, span);
    tlb_lints().run_into(&c.tlb, &format!("{span}.tlb"), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good_cache() -> CacheConfig {
        CacheConfig {
            sets: 64,
            ways: 8,
            line_bytes: 64,
            banks: 4,
            hit_latency: 2,
            mshrs: 4,
        }
    }

    #[test]
    fn healthy_cache_is_clean() {
        assert!(cache_lints().run(&good_cache(), "t").is_clean());
    }

    #[test]
    fn non_power_of_two_geometry_is_an_error() {
        let mut c = good_cache();
        c.sets = 65;
        let r = cache_lints().run(&c, "t.l1d");
        assert!(r.has_code("CL001") && r.has_errors(), "{}", r.render());
        assert_eq!(r.diagnostics[0].span, "t.l1d");

        let mut c = good_cache();
        c.line_bytes = 48;
        assert!(cache_lints().run(&c, "t").has_code("CL002"));
        let mut c = good_cache();
        c.banks = 3;
        assert!(cache_lints().run(&c, "t").has_code("CL003"));
    }

    #[test]
    fn degenerate_cache_parameters() {
        let mut c = good_cache();
        c.ways = 0;
        assert!(cache_lints().run(&c, "t").has_code("CL004"));
        let mut c = good_cache();
        c.ways = 6; // 64 % 6 != 0, and 6 is not a power of two is fine
        assert!(cache_lints().run(&c, "t").has_code("CL005"));
        let mut c = good_cache();
        c.mshrs = 0;
        let r = cache_lints().run(&c, "t");
        assert!(r.has_code("CL006") && !r.has_errors() && !r.has_warnings());
        let mut c = good_cache();
        c.hit_latency = 0;
        assert!(cache_lints().run(&c, "t").has_code("CL007"));
    }

    #[test]
    fn partition_rules() {
        // A healthy 2-rank split of a 4-model ring along latency-16
        // wires is clean.
        let good = PartitionSpec {
            ranks: 2,
            assignment: vec![0, 0, 1, 1],
            wires: vec![(0, 1, 1), (1, 2, 16), (2, 3, 1), (3, 0, 16)],
            quantum: 16,
        };
        assert!(partition_lints().run(&good, "t").is_clean());
        assert_eq!(good.cut_wires().count(), 2);

        let mut p = good.clone();
        p.assignment[3] = 7;
        assert!(partition_lints().run(&p, "t").has_code("DL001"));

        let empty = PartitionSpec {
            ranks: 0,
            assignment: vec![],
            wires: vec![],
            quantum: 16,
        };
        let r = partition_lints().run(&empty, "t");
        assert_eq!(r.with_code("DL002").count(), 2, "{}", r.render());

        // An empty rank used to be merely DL003 (idle worker); in graph
        // mode the rendezvous waits for it forever, so DL006 rejects it.
        let mut p = good.clone();
        p.ranks = 3;
        let r = partition_lints().run(&p, "t");
        assert!(r.has_code("DL003"), "{}", r.render());
        assert!(r.has_code("DL006") && r.has_errors(), "{}", r.render());

        // A cut wire pointing at an out-of-plan rank dangles its relay.
        let mut p = good.clone();
        p.assignment = vec![0, 0, 1, 2];
        p.ranks = 2;
        let r = partition_lints().run(&p, "t");
        assert!(r.has_code("DL006"), "{}", r.render());

        let mut p = good.clone();
        p.wires.push((0, 9, 4));
        assert!(partition_lints().run(&p, "t").has_code("DL004"));

        // A cut wire with latency 1 under a quantum of 16 serializes
        // the socket link: warned, not fatal.
        let mut p = good.clone();
        p.wires[1].2 = 1;
        let r = partition_lints().run(&p, "t");
        assert!(r.has_code("DL005") && !r.has_errors(), "{}", r.render());
    }

    #[test]
    fn bus_rules() {
        let b = BusConfig {
            width_bits: 96,
            latency: 0,
        };
        let r = bus_lints().run(&b, "t.bus");
        assert!(r.has_code("CL010") && r.has_code("CL011"), "{}", r.render());
        let ok = BusConfig {
            width_bits: 128,
            latency: 4,
        };
        assert!(bus_lints().run(&ok, "t.bus").is_clean());
    }

    #[test]
    fn dram_rules() {
        let mut d = DramConfig::ddr3_2000(1);
        assert!(dram_lints().run(&d, "t").is_clean());
        d.channels = 0;
        d.data_rate_mtps = 0;
        d.t_cas_ns = f64::NAN;
        d.token_quantum_cycles = 0;
        let r = dram_lints().run(&d, "t.dram");
        for code in ["CL020", "CL021", "CL022", "CL023"] {
            assert!(r.has_code(code), "missing {code}: {}", r.render());
        }
    }

    #[test]
    fn tlb_rules() {
        let mut t = TlbConfig::rocket();
        assert!(tlb_lints().run(&t, "t").is_clean());
        t.l1_entries = 0;
        t.l2_entries = Some(0);
        t.walk_latency = 0;
        let r = tlb_lints().run(&t, "t.tlb");
        for code in ["CL030", "CL031", "CL032"] {
            assert!(r.has_code(code), "missing {code}: {}", r.render());
        }
    }

    #[test]
    fn core_model_rules() {
        let mut c = InOrderConfig::rocket();
        assert!(lint_inorder(&c, "t").is_clean());
        c.issue_width = 3;
        c.fetch_width = 2;
        assert!(lint_inorder(&c, "t").has_code("CL051"));

        let mut o = OooConfig::small_boom();
        assert!(lint_ooo(&o, "t").is_clean());
        o.rob = 8; // ldq + stq = 16 > 8
        assert!(lint_ooo(&o, "t").has_code("CL061"));
        o.fetch_width = 1;
        o.decode_width = 2;
        assert!(lint_ooo(&o, "t").has_code("CL062"));
        o.int_units = 0;
        assert!(lint_ooo(&o, "t").has_code("CL063"));
    }

    #[test]
    fn engine_schedule_lints() {
        let good = ScheduleSpec {
            quantum: 4,
            min_latency: 4,
            hinted_models: 2,
            fast_forward: true,
        };
        assert!(engine_lints().run(&good, "t").is_clean());
        let oversized = ScheduleSpec {
            quantum: 64,
            min_latency: 2,
            ..good.clone()
        };
        let r = engine_lints().run(&oversized, "t");
        assert!(r.has_code("CL070"), "{}", r.render());
        assert!(!r.has_errors());
        let wasted = ScheduleSpec {
            fast_forward: false,
            ..good.clone()
        };
        let r = engine_lints().run(&wasted, "t");
        assert!(r.has_code("CL071"), "{}", r.render());
        let unhinted = ScheduleSpec {
            hinted_models: 0,
            fast_forward: false,
            ..good
        };
        assert!(engine_lints().run(&unhinted, "t").is_clean());
    }

    #[test]
    fn latency_inversion_fires_cl041() {
        let mut h = hierarchy();
        h.l2.hit_latency = 1; // below the L1's 2
        let r = lint_hierarchy(&h, "t");
        assert!(r.has_code("CL041"), "{}", r.render());
        assert!(!r.has_errors(), "inversions warn, they do not block");
    }

    #[test]
    fn capacity_inversion_fires_cl043() {
        let mut h = hierarchy();
        h.l2.sets = 64; // L2 shrinks to L1 size
        let r = lint_hierarchy(&h, "t");
        assert!(r.has_code("CL043"), "{}", r.render());
    }

    #[test]
    fn healthy_hierarchy_is_clean() {
        let r = lint_hierarchy(&hierarchy(), "t");
        assert!(r.is_clean(), "{}", r.render());
    }

    fn hierarchy() -> HierarchyConfig {
        HierarchyConfig {
            cores: 4,
            l1i: good_cache(),
            l1d: good_cache(),
            l2: CacheConfig {
                sets: 1024,
                ways: 8,
                line_bytes: 64,
                banks: 4,
                hit_latency: 14,
                mshrs: 8,
            },
            bus: BusConfig {
                width_bits: 128,
                latency: 4,
            },
            llc: None,
            dram: DramConfig::ddr3_2000(1),
            core_freq_ghz: 1.6,
            l1_to_l2_latency: 2,
            prefetch_degree: 0,
        }
    }
}

//! The lint framework: a [`Lint`] checks one invariant of one config
//! type, a [`LintRegistry`] runs a whole rule set and collects a
//! [`Report`].
//!
//! Rules are data, not control flow: the CLI can enumerate them
//! (`bsim check --list`), tests can assert a registry carries a given
//! code, and new rules are one [`Rule::new`] call — no match arms to
//! extend.

use crate::diag::Report;

/// One named invariant over a config type `T`.
pub trait Lint<T: ?Sized> {
    /// Stable diagnostic code this rule emits (`CL001`, `PF010`, ...).
    fn code(&self) -> &'static str;
    /// One-line description for `--list` output.
    fn summary(&self) -> &'static str;
    /// Checks `target`, pushing findings (spanned at `span`) into `out`.
    fn check(&self, target: &T, span: &str, out: &mut Report);
}

/// A [`Lint`] built from a plain function — the common case.
pub struct Rule<T: ?Sized + 'static> {
    code: &'static str,
    summary: &'static str,
    check: fn(&T, &str, &mut Report),
}

impl<T: ?Sized + 'static> Rule<T> {
    /// Wraps `check` as a rule emitting `code`.
    pub fn new(
        code: &'static str,
        summary: &'static str,
        check: fn(&T, &str, &mut Report),
    ) -> Rule<T> {
        Rule {
            code,
            summary,
            check,
        }
    }
}

impl<T: ?Sized + 'static> Lint<T> for Rule<T> {
    fn code(&self) -> &'static str {
        self.code
    }

    fn summary(&self) -> &'static str {
        self.summary
    }

    fn check(&self, target: &T, span: &str, out: &mut Report) {
        (self.check)(target, span, out)
    }
}

/// An ordered set of lints over one config type.
pub struct LintRegistry<T: ?Sized + 'static> {
    lints: Vec<Box<dyn Lint<T>>>,
}

impl<T: ?Sized + 'static> Default for LintRegistry<T> {
    fn default() -> Self {
        LintRegistry::new()
    }
}

impl<T: ?Sized + 'static> LintRegistry<T> {
    /// An empty registry.
    pub fn new() -> LintRegistry<T> {
        LintRegistry { lints: Vec::new() }
    }

    /// Adds a boxed lint.
    pub fn register(&mut self, lint: Box<dyn Lint<T>>) -> &mut Self {
        self.lints.push(lint);
        self
    }

    /// Adds a function rule (builder style).
    pub fn rule(
        mut self,
        code: &'static str,
        summary: &'static str,
        check: fn(&T, &str, &mut Report),
    ) -> Self {
        self.lints.push(Box::new(Rule::new(code, summary, check)));
        self
    }

    /// `(code, summary)` for every registered lint, in order.
    pub fn codes(&self) -> Vec<(&'static str, &'static str)> {
        self.lints.iter().map(|l| (l.code(), l.summary())).collect()
    }

    /// Runs every lint against `target`, findings spanned at `span`.
    pub fn run(&self, target: &T, span: &str) -> Report {
        let mut out = Report::new();
        self.run_into(target, span, &mut out);
        out
    }

    /// [`LintRegistry::run`], appending into an existing report.
    pub fn run_into(&self, target: &T, span: &str, out: &mut Report) {
        for lint in &self.lints {
            lint.check(target, span, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostic;

    fn nonzero_rule() -> LintRegistry<u32> {
        LintRegistry::new().rule("T001", "value must be nonzero", |v, span, out| {
            if *v == 0 {
                out.push(Diagnostic::error("T001", span, "value is zero"));
            }
        })
    }

    #[test]
    fn rules_fire_only_on_violations() {
        let reg = nonzero_rule();
        assert!(reg.run(&3, "x").is_clean());
        let r = reg.run(&0, "x");
        assert!(r.has_code("T001"));
        assert_eq!(r.diagnostics[0].span, "x");
    }

    #[test]
    fn registries_enumerate_their_codes() {
        let reg = nonzero_rule().rule("T002", "another", |_, _, _| {});
        assert_eq!(
            reg.codes(),
            vec![("T001", "value must be nonzero"), ("T002", "another")]
        );
    }

    #[test]
    fn custom_lint_impls_register() {
        struct Always;
        impl Lint<u32> for Always {
            fn code(&self) -> &'static str {
                "T003"
            }
            fn summary(&self) -> &'static str {
                "always fires"
            }
            fn check(&self, _: &u32, span: &str, out: &mut Report) {
                out.push(Diagnostic::note("T003", span, "hello"));
            }
        }
        let mut reg = LintRegistry::new();
        reg.register(Box::new(Always));
        assert!(reg.run(&1, "y").has_code("T003"));
    }
}

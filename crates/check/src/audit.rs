//! AU-series workspace source audit.
//!
//! A lightweight line-oriented scanner over the workspace's crate sources
//! that flags patterns banned in deterministic or hot-path code:
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | AU000 | note     | summary of findings waived via `// bsim: allow(..)` |
//! | AU001 | error    | `.unwrap()` outside tests: a panic tears the simulation down instead of surfacing a typed error |
//! | AU002 | warning  | `.expect(..)` in a designated hot-path file (token channel, wire framing, daemon dispatch) |
//! | AU003 | warning  | iteration over a `HashMap` binding: order is nondeterministic and must not feed results or wire frames |
//! | AU004 | warning  | `Instant`/`SystemTime` in a virtual-time crate: host clocks break determinism |
//!
//! Findings are waived inline with a `// bsim: allow(AU001)` comment on the
//! same line or on the line directly above; several codes may be listed,
//! comma-separated. `#[cfg(test)]` regions are skipped entirely (brace-depth
//! tracked), and line comments are stripped before pattern matching so
//! documentation cannot trip the scanner.
//!
//! The scan is deliberately textual, not syntactic: it runs in milliseconds
//! over the whole workspace, has no parser to keep in sync with the
//! language, and the waiver escape hatch keeps the false-positive cost at
//! one comment. `bsim check --source` runs it over every `crates/*/src` and
//! the root `src/`.

use crate::diag::{Diagnostic, Report};
use std::fs;
use std::path::{Path, PathBuf};

// Pattern needles are assembled with `concat!` so this file does not flag
// itself when the audit runs over the check crate.
const UNWRAP: &str = concat!(".unw", "rap()");
const EXPECT: &str = concat!(".exp", "ect(");
const INSTANT: &str = concat!("Instant::", "now");
const SYSTIME: &str = concat!("System", "Time");
const HASHMAP_TY: &str = concat!("Hash", "Map<");
const HASHMAP_NEW: &str = concat!("Hash", "Map::new");
const ALLOW: &str = concat!("bsim: ", "allow(");
const CFG_TEST: &str = concat!("#[cfg(", "test)]");

/// Files whose failure modes reach the per-token or per-frame path: a panic
/// here kills a quantum mid-flight, so even `.expect` needs a waiver arguing
/// the invariant.
const HOT_PATHS: &[&str] = &[
    "crates/engine/src/channel.rs",
    "crates/engine/src/harness.rs",
    "crates/dist/src/frame.rs",
    "crates/dist/src/link.rs",
    "crates/dist/src/graph.rs",
    "crates/svc/src/proto.rs",
    "crates/svc/src/daemon.rs",
    "crates/sweepx/src/replay.rs",
];

/// Crates whose code runs under virtual time; host clocks are banned there
/// (the resilience watchdog in `engine` carries explicit waivers).
const VIRTUAL_TIME_CRATES: &[&str] = &[
    "engine",
    "mem",
    "uarch",
    "isa",
    "soc",
    "workloads",
    "mpi",
    "core",
    "sweepx",
];

const ITER_METHODS: &[&str] = &[
    "iter()",
    "iter_mut()",
    "keys()",
    "values()",
    "values_mut()",
    "drain(",
    "into_iter()",
];

/// Outcome of a workspace audit.
#[derive(Debug)]
pub struct Audit {
    pub report: Report,
    /// Files scanned.
    pub files: usize,
    /// Findings suppressed by inline waivers.
    pub waived: usize,
}

/// Waiver codes listed on a line, e.g. `// bsim: allow(AU001, AU003)`.
fn waivers_in(raw: &str) -> Vec<String> {
    let mut out = Vec::new();
    if let Some(i) = raw.find(ALLOW) {
        let rest = &raw[i + ALLOW.len()..];
        if let Some(end) = rest.find(')') {
            for code in rest[..end].split(',') {
                let code = code.trim();
                if !code.is_empty() {
                    out.push(code.to_string());
                }
            }
        }
    }
    out
}

/// Binding or field name a `HashMap` is stored under on this line, if any.
fn hashmap_binding(code: &str) -> Option<String> {
    if !(code.contains(HASHMAP_TY) || code.contains(HASHMAP_NEW)) {
        return None;
    }
    let t = code.trim_start();
    if let Some(i) = t.find("let ") {
        let rest = t[i + 4..].trim_start().trim_start_matches("mut ");
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() && !name.starts_with(|c: char| c.is_ascii_digit()) {
            return Some(name);
        }
    }
    // Struct field or parameter: the identifier directly before the `:`.
    if let Some(i) = t.find(':') {
        let head = &t[..i];
        let name: String = head
            .chars()
            .rev()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        if !name.is_empty() && !name.starts_with(|c: char| c.is_ascii_digit()) {
            return Some(name);
        }
    }
    None
}

fn iterates_map(code: &str, name: &str) -> bool {
    for m in ITER_METHODS {
        if code.contains(&format!("{name}.{m}")) {
            return true;
        }
    }
    code.contains(&format!("in &{name}")) || code.contains(&format!("in &mut {name}"))
}

/// Crate a repo-relative source path belongs to (`crates/<name>/src/..`).
fn crate_of(path: &str) -> Option<&str> {
    path.strip_prefix("crates/")?.split('/').next()
}

/// Scan one file's source text, pushing findings into `report` and counting
/// waived ones into `waived`. `path` is the repo-relative path used both for
/// spans and for the hot-path / virtual-time scoping.
pub fn scan_source(path: &str, text: &str, report: &mut Report, waived: &mut usize) {
    let hot = HOT_PATHS.contains(&path);
    let vt = crate_of(path).is_some_and(|c| VIRTUAL_TIME_CRATES.contains(&c));

    // Pass 1: HashMap binding and field names declared anywhere in the file.
    let mut map_names: Vec<String> = Vec::new();
    for line in text.lines() {
        let code = line.split("//").next().unwrap_or(line);
        if let Some(name) = hashmap_binding(code) {
            if !map_names.contains(&name) {
                map_names.push(name);
            }
        }
    }

    // Pass 2: findings, with `#[cfg(test)]` regions skipped via brace depth.
    let mut depth: i32 = 0;
    let mut in_test = false;
    let mut exit_depth: i32 = 0;
    let mut armed = false;
    let mut prev_waivers: Vec<String> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let code = raw.split("//").next().unwrap_or(raw);
        let mut allowed = waivers_in(raw);
        allowed.extend(prev_waivers.iter().cloned());
        let in_test_here = in_test;

        if code.contains(CFG_TEST) {
            armed = true;
        }
        for ch in code.chars() {
            match ch {
                '{' => {
                    if armed && !in_test {
                        in_test = true;
                        exit_depth = depth;
                        armed = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if in_test && depth <= exit_depth {
                        in_test = false;
                    }
                }
                _ => {}
            }
        }

        prev_waivers = if raw.trim_start().starts_with("//") {
            waivers_in(raw)
        } else {
            Vec::new()
        };

        if in_test_here {
            continue;
        }
        let span = format!("{path}:{lineno}");
        let mut emit = |d: Diagnostic, code: &str, report: &mut Report| {
            if allowed.iter().any(|c| c == code) {
                *waived += 1;
            } else {
                report.push(d);
            }
        };

        if code.contains(UNWRAP) {
            emit(
                Diagnostic::error(
                    "AU001",
                    span.clone(),
                    format!("{UNWRAP} in non-test code: a panic here tears the simulation down"),
                )
                .with_help("return a typed error (SimError / io::Error) or waive with a rationale"),
                "AU001",
                report,
            );
        }
        if hot && code.contains(EXPECT) {
            emit(
                Diagnostic::warning(
                    "AU002",
                    span.clone(),
                    format!("{EXPECT}..) on a hot path: a panic here kills a quantum mid-flight"),
                )
                .with_help("convert to a typed error, or waive stating why the invariant holds"),
                "AU002",
                report,
            );
        }
        if let Some(name) = map_names.iter().find(|n| iterates_map(code, n)) {
            emit(
                Diagnostic::warning(
                    "AU003",
                    span.clone(),
                    format!(
                        "iteration over `{name}` (a HashMap): iteration order is nondeterministic \
                         and must not feed results or wire frames"
                    ),
                )
                .with_help(
                    "sort the keys first, use an indexed Vec, or waive if order is irrelevant",
                ),
                "AU003",
                report,
            );
        }
        if vt && (code.contains(INSTANT) || code.contains(SYSTIME)) {
            emit(
                Diagnostic::warning(
                    "AU004",
                    span.clone(),
                    "host clock in a virtual-time crate: time must derive from cycles".to_string(),
                )
                .with_help("use the harness cycle counter, or waive for host-side watchdog code"),
                "AU004",
                report,
            );
        }
    }
}

/// Locate the workspace root: the nearest ancestor (of the check crate's
/// manifest dir, or of the current directory) whose `Cargo.toml` declares
/// `[workspace]`.
fn workspace_root() -> Option<PathBuf> {
    let mut candidates: Vec<PathBuf> = vec![PathBuf::from(env!("CARGO_MANIFEST_DIR"))];
    if let Ok(cwd) = std::env::current_dir() {
        candidates.push(cwd);
    }
    for base in candidates {
        for dir in base.ancestors() {
            let manifest = dir.join("Cargo.toml");
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir.to_path_buf());
                }
            }
        }
    }
    None
}

/// Collect `.rs` files under `dir`, recursively, sorted by path for
/// deterministic diagnostic order. Test/bench/example trees are skipped —
/// the audit is about shipped simulation code.
fn collect_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if matches!(name, "tests" | "benches" | "examples") {
                continue;
            }
            collect_sources(&p, out);
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(p);
        }
    }
}

/// Run the AU-series audit over the whole workspace (`crates/*/src` plus the
/// root `src/`). Returns the report plus scan statistics; waived findings
/// surface as a single AU000 summary note.
pub fn audit_workspace() -> Audit {
    let mut report = Report::new();
    let Some(root) = workspace_root() else {
        report.push(
            Diagnostic::warning(
                "AU000",
                "audit",
                "workspace root not found; source audit skipped",
            )
            .with_help("run from inside the repository"),
        );
        return Audit {
            report,
            files: 0,
            waived: 0,
        };
    };

    let mut files: Vec<PathBuf> = Vec::new();
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut crates: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        crates.sort();
        for c in crates {
            collect_sources(&c.join("src"), &mut files);
        }
    }
    collect_sources(&root.join("src"), &mut files);

    let mut waived = 0usize;
    let scanned = files.len();
    for path in &files {
        let Ok(text) = fs::read_to_string(path) else {
            continue;
        };
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        scan_source(&rel, &text, &mut report, &mut waived);
    }
    if waived > 0 {
        report.push(Diagnostic::note(
            "AU000",
            "audit",
            format!("{waived} finding(s) waived inline via `{ALLOW}..)`"),
        ));
    }
    Audit {
        report,
        files: scanned,
        waived,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(path: &str, text: &str) -> (Report, usize) {
        let mut r = Report::new();
        let mut w = 0;
        scan_source(path, text, &mut r, &mut w);
        (r, w)
    }

    #[test]
    fn unwrap_is_flagged_and_waivable() {
        let hit = format!("fn f() {{ x{UNWRAP}; }}\n");
        let (r, w) = scan("crates/mem/src/x.rs", &hit);
        assert!(r.has_code("AU001") && r.has_errors(), "{}", r.render());
        assert_eq!(w, 0);

        let inline = format!("fn f() {{ x{UNWRAP}; }} // {ALLOW}AU001) infallible\n");
        let (r, w) = scan("crates/mem/src/x.rs", &inline);
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!(w, 1);

        let above = format!("// {ALLOW}AU001) infallible\nfn f() {{ x{UNWRAP}; }}\n");
        let (r, w) = scan("crates/mem/src/x.rs", &above);
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!(w, 1);
    }

    #[test]
    fn cfg_test_regions_and_comments_are_skipped() {
        let text = format!(
            "fn f() {{}}\n{CFG_TEST}\nmod tests {{\n    fn g() {{ x{UNWRAP}; }}\n}}\nfn h() {{}}\n"
        );
        let (r, _) = scan("crates/mem/src/x.rs", &text);
        assert!(r.is_clean(), "{}", r.render());

        let doc = format!("/// calls {UNWRAP} internally\nfn f() {{}}\n");
        let (r, _) = scan("crates/mem/src/x.rs", &doc);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn code_after_cfg_test_region_is_still_scanned() {
        let text =
            format!("{CFG_TEST}\nmod tests {{\n    fn g() {{}}\n}}\nfn h() {{ x{UNWRAP}; }}\n");
        let (r, _) = scan("crates/mem/src/x.rs", &text);
        assert!(r.has_code("AU001"), "{}", r.render());
    }

    #[test]
    fn expect_only_flags_hot_paths() {
        let text = format!("fn f() {{ x{EXPECT}\"y\"); }}\n");
        let (r, _) = scan("crates/dist/src/frame.rs", &text);
        assert!(r.has_code("AU002") && !r.has_errors(), "{}", r.render());
        let (r, _) = scan("crates/workloads/src/x.rs", &text);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn hashmap_iteration_is_flagged() {
        let text = format!(
            "fn f() {{\n    let mut seen: {HASHMAP_TY}u32, u32> = {HASHMAP_NEW}();\n    for (k, v) in &seen {{ use_(k, v); }}\n}}\n"
        );
        let (r, _) = scan("crates/mem/src/x.rs", &text);
        assert!(r.has_code("AU003"), "{}", r.render());

        let methods = format!(
            "struct S {{ children: {HASHMAP_TY}u32, u32> }}\nfn f(s: &mut S) {{ for c in s.children.values() {{ go(c); }} }}\n"
        );
        let (r, _) = scan("crates/mem/src/x.rs", &methods);
        assert!(r.has_code("AU003"), "{}", r.render());

        // Lookups are fine — only iteration is order-sensitive.
        let lookup = format!(
            "fn f() {{\n    let seen: {HASHMAP_TY}u32, u32> = {HASHMAP_NEW}();\n    let _ = seen.get(&1);\n}}\n"
        );
        let (r, _) = scan("crates/mem/src/x.rs", &lookup);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn host_clocks_flag_only_virtual_time_crates() {
        let text = format!("fn f() {{ let t = {INSTANT}(); }}\n");
        let (r, _) = scan("crates/engine/src/x.rs", &text);
        assert!(r.has_code("AU004"), "{}", r.render());
        let (r, _) = scan("crates/svc/src/x.rs", &text);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn workspace_audit_runs_and_has_no_errors() {
        let audit = audit_workspace();
        assert!(audit.files > 20, "scanned only {} files", audit.files);
        let errs: Vec<String> = audit
            .report
            .with_code("AU001")
            .map(|d| format!("{d:?}"))
            .collect();
        assert!(
            !audit.report.has_errors(),
            "unwaived AU001 findings:\n{}",
            errs.join("\n")
        );
    }
}

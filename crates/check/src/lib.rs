//! # bsim-check — static analysis before the first simulated cycle
//!
//! The paper's contribution is *trusting a simulator's numbers*, and a
//! FireSim-style token simulation only earns that trust if (a) the model
//! graph is well-formed — every channel decoupled, reset tokens present,
//! capacities sized for the quantum — and (b) the target configs
//! actually describe the silicon being modeled (§3.2's BPI-F3/Pioneer
//! tables). FireSim enforces (a) at target *elaboration*, before any
//! FPGA cycle runs; this crate is the software analogue, run before any
//! simulated cycle:
//!
//! * [`graph`] — lifts the engine's wire list into a [`graph::GraphSpec`]
//!   and proves deadlock-freedom, wiring completeness, and capacity
//!   sufficiency (`MG0xx` codes),
//! * [`lint`] + [`rules`] — a [`lint::Lint`] trait with registries of
//!   domain rules over the cache/bus/DRAM/TLB/core config structs
//!   (`CL0xx` codes),
//! * [`diag`] — the typed [`Diagnostic`]/[`Report`] values everything
//!   returns instead of panicking mid-run,
//! * [`proto`] — typed transition tables for the svc HTTP-lite and dist
//!   launcher/worker wire protocols, driven by the runtime through
//!   [`proto::Tracker`] and exhaustively model-checked by
//!   [`proto::explore`] (`PV0xx` codes),
//! * [`dd`] — rank-level deadlock analysis of partitioned plans: token
//!   cycles, missing back-pressure, fast-forward licensing holes
//!   (`DD0xx` codes),
//! * [`audit`] — a workspace source audit banning panicking calls,
//!   `HashMap` iteration, and host clocks from deterministic paths
//!   (`AU0xx` codes, `// bsim: allow(..)` waivers),
//! * [`guard`] — overload-protection configuration lints over the
//!   svc/dist admission, deadline, retry, and link-checksum settings
//!   (`GD0xx` codes), run by the daemon's spawn preflight.
//!
//! Platform-level rules live next to the types they judge: `SC0xx`
//! SoC-consistency and `PF0xx` paper-fidelity rules in
//! `bsim-soc::preflight`, the `NC001` network lint in `bsim-mpi`, and
//! `WL001` workload sizing in `bsim-core`. The `bsim check` CLI
//! subcommand runs all of them; `Soc::new` and the sweep drivers run the
//! relevant subset as a mandatory preflight so a bad sweep fails in
//! microseconds, not after an hour of simulation.
//!
//! Every diagnostic code is documented in `crates/check/README.md`.

pub mod audit;
pub mod dd;
pub mod diag;
pub mod graph;
pub mod guard;
pub mod lint;
pub mod proto;
pub mod rules;

pub use diag::{Diagnostic, Report, Severity};
pub use graph::{analyze, GraphSpec, ModelSpec, WireSpec};
pub use lint::{Lint, LintRegistry, Rule};

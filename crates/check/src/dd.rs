//! DD-series distributed deadlock analysis.
//!
//! The MG-series analyzer reasons about one in-process model graph; this
//! module lifts the same token-conservation arguments to a partitioned
//! [`PartitionSpec`]: the unit of progress is a whole rank (an OS process),
//! and the only tokens that matter are the ones crossing rank boundaries
//! over socket links. A rank-level condensation of the cut wires is built
//! and checked for:
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | DD001 | error    | a cross-rank cycle carries zero total latency: no rank can take the first step, the rendezvous deadlocks |
//! | DD002 | warning  | a cross-rank cycle's total latency is below the quantum: the lockstep schedule serializes around it |
//! | DD003 | warning  | a cut wire has no return path: nothing back-pressures the producer rank, receiver buffering is unbounded |
//! | DD004 | warning  | (fast-forward only) a cut wire's latency is below the quantum: a verified-zero skip can never be licensed for a full quantum |
//!
//! DD004 refines DL005: DL005 says the link never carries a full batch;
//! DD004 says specifically that the *fast-forward licensing window*
//! (`RemoteReceiver` may only skip over zeros it has verified as arrived)
//! is smaller than the quantum, so distributed quiescence skipping
//! degenerates to per-sub-quantum hops on that wire.

use crate::diag::{Diagnostic, Report};
use crate::rules::PartitionSpec;

const INF: u64 = u64::MAX / 4;

/// Analyze the rank-level token topology of a partition plan.
///
/// `fast_forward` states whether the runtime will attempt distributed
/// quiescence fast-forward over the cut wires (DD004 only applies then).
/// `span` names the plan's origin in diagnostics (e.g. `dist.plan`).
pub fn analyze_partition(spec: &PartitionSpec, fast_forward: bool, span: &str) -> Report {
    let mut report = Report::new();
    let n = spec.ranks;
    if n == 0 {
        return report; // DL002's problem
    }

    // Rank-level condensation: one edge per (src rank, dst rank) pair,
    // keeping the minimum latency (the binding constraint). Wires with
    // endpoints outside the assignment are DL004's problem; intra-rank
    // wires stay in-process and are MG-series territory.
    let mut w = vec![vec![INF; n]; n];
    let mut example = vec![vec![(0usize, 0usize); n]; n];
    for &(f, t, lat) in spec.cut_wires() {
        let (a, b) = (spec.assignment[f], spec.assignment[t]);
        if a >= n || b >= n {
            continue; // DL001's problem
        }
        if lat < w[a][b] {
            w[a][b] = lat;
            example[a][b] = (f, t);
        }
    }

    // DD004: per cut wire, not per condensed edge — every tight wire is a
    // separate licensing hole.
    if fast_forward {
        for &(f, t, lat) in spec.cut_wires() {
            let (a, b) = (spec.assignment[f], spec.assignment[t]);
            if a >= n || b >= n || a == b {
                continue;
            }
            if lat < spec.quantum as u64 {
                report.push(
                    Diagnostic::warning(
                        "DD004",
                        span,
                        format!(
                            "cut wire {f}->{t} (rank {a} -> rank {b}) has latency {lat} below the \
                             quantum {}: a verified-zero fast-forward can never be licensed for a \
                             full quantum on this link",
                            spec.quantum
                        ),
                    )
                    .with_help(
                        "the receiver may only skip zeros it has verified as arrived; widen the \
                         wire latency to at least the quantum or disable distributed fast-forward",
                    ),
                );
            }
        }
    }

    // All-pairs min-latency paths over the rank graph (Floyd–Warshall with
    // next-hop reconstruction). n is the rank count — single digits in
    // practice, so O(n^3) is free.
    let mut dist = w.clone();
    let mut next: Vec<Vec<Option<usize>>> = vec![vec![None; n]; n];
    for (a, row) in w.iter().enumerate() {
        for (b, &lat) in row.iter().enumerate() {
            if lat < INF {
                next[a][b] = Some(b);
            }
        }
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let via = dist[i][k].saturating_add(dist[k][j]);
                if via < dist[i][j] {
                    dist[i][j] = via;
                    next[i][j] = next[i][k];
                }
            }
        }
    }

    // Minimum-weight directed cycle through each rank: dist[i][i].
    let mut best: Option<(usize, u64)> = None;
    for (i, row) in dist.iter().enumerate() {
        if row[i] < INF && best.is_none_or(|(_, bw)| row[i] < bw) {
            best = Some((i, row[i]));
        }
    }
    if let Some((start, weight)) = best {
        // Reconstruct the cycle path for the message.
        let mut path = vec![start];
        let mut cur = start;
        while let Some(hop) = next[cur][start] {
            path.push(hop);
            if hop == start || path.len() > n + 1 {
                break; // cycle closed, or defensive: malformed next-hop table
            }
            cur = hop;
        }
        let cycle = path
            .iter()
            .map(|r| format!("rank {r}"))
            .collect::<Vec<_>>()
            .join(" -> ");
        if weight == 0 {
            report.push(
                Diagnostic::error(
                    "DD001",
                    span,
                    format!(
                        "cross-rank cycle {cycle} carries zero total latency: every rank waits \
                         for its upstream before producing, the rendezvous deadlocks"
                    ),
                )
                .with_help(
                    "token-coupled cycles need at least one buffered token; give some wire on \
                     the cycle a nonzero latency or keep the cycle inside one rank",
                ),
            );
        } else if weight < spec.quantum as u64 {
            report.push(
                Diagnostic::warning(
                    "DD002",
                    span,
                    format!(
                        "cross-rank cycle {cycle} carries total latency {weight}, below the \
                         quantum {}: the lockstep schedule serializes around this cycle",
                        spec.quantum
                    ),
                )
                .with_help(
                    "no rank on the cycle can run a full quantum ahead; raise the cycle's wire \
                     latencies or shrink the quantum",
                ),
            );
        }
    }

    // DD003: a condensed edge with no return path. The producer rank can run
    // arbitrarily far ahead of the consumer — nothing bounds the receiver's
    // buffered tokens, and a relay-switchboard wire downstream of it can
    // stall the lockstep schedule while the backlog drains.
    for a in 0..n {
        for b in 0..n {
            if w[a][b] < INF && dist[b][a] >= INF {
                let (f, t) = example[a][b];
                report.push(
                    Diagnostic::warning(
                        "DD003",
                        span,
                        format!(
                            "cut wire {f}->{t} (rank {a} -> rank {b}) has no return path from \
                             rank {b} to rank {a}: nothing back-pressures the producer and \
                             receiver-side buffering is unbounded"
                        ),
                    )
                    .with_help(
                        "add a return wire (even a high-latency one) so the token exchange \
                         bounds how far rank-to-rank progress can diverge",
                    ),
                );
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_spec(latencies: &[u64], quantum: usize) -> PartitionSpec {
        // One model per rank, wired in a ring: model i -> model i+1.
        let n = latencies.len();
        PartitionSpec {
            ranks: n,
            assignment: (0..n).collect(),
            wires: latencies
                .iter()
                .enumerate()
                .map(|(i, &lat)| (i, (i + 1) % n, lat))
                .collect(),
            quantum,
        }
    }

    #[test]
    fn zero_latency_cycle_is_dd001() {
        let r = analyze_partition(&ring_spec(&[0, 0], 8), false, "test");
        assert!(r.has_code("DD001") && r.has_errors(), "{}", r.render());
    }

    #[test]
    fn tight_cycle_is_dd002() {
        let r = analyze_partition(&ring_spec(&[2, 3], 8), false, "test");
        assert!(r.has_code("DD002") && !r.has_errors(), "{}", r.render());
        assert!(!r.has_code("DD001"));
    }

    #[test]
    fn roomy_cycle_is_clean() {
        let r = analyze_partition(&ring_spec(&[16, 16], 16), true, "test");
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn one_way_wire_is_dd003() {
        let spec = PartitionSpec {
            ranks: 2,
            assignment: vec![0, 1],
            wires: vec![(0, 1, 32)],
            quantum: 16,
        };
        let r = analyze_partition(&spec, false, "test");
        assert!(r.has_code("DD003") && !r.has_errors(), "{}", r.render());
    }

    #[test]
    fn return_path_through_third_rank_counts() {
        // 0 -> 1 -> 2 -> 0: every edge has a (transitive) return path.
        let spec = PartitionSpec {
            ranks: 3,
            assignment: vec![0, 1, 2],
            wires: vec![(0, 1, 16), (1, 2, 16), (2, 0, 16)],
            quantum: 16,
        };
        let r = analyze_partition(&spec, false, "test");
        assert!(!r.has_code("DD003"), "{}", r.render());
    }

    #[test]
    fn tight_wire_with_fast_forward_is_dd004() {
        let spec = ring_spec(&[4, 32], 16);
        let with_ff = analyze_partition(&spec, true, "test");
        assert!(with_ff.has_code("DD004"), "{}", with_ff.render());
        let without = analyze_partition(&spec, false, "test");
        assert!(!without.has_code("DD004"), "{}", without.render());
    }

    #[test]
    fn intra_rank_wires_are_ignored() {
        // Everything on one rank: no cut wires, nothing to report.
        let spec = PartitionSpec {
            ranks: 1,
            assignment: vec![0, 0, 0],
            wires: vec![(0, 1, 0), (1, 2, 0), (2, 0, 0)],
            quantum: 16,
        };
        assert!(analyze_partition(&spec, true, "test").is_clean());
    }

    #[test]
    fn out_of_range_endpoints_are_skipped() {
        // DL001/DL004 territory must not panic the DD analysis.
        let spec = PartitionSpec {
            ranks: 2,
            assignment: vec![0, 9],
            wires: vec![(0, 1, 0), (0, 7, 0)],
            quantum: 16,
        };
        let r = analyze_partition(&spec, true, "test");
        assert!(!r.has_code("DD001"), "{}", r.render());
    }
}

//! `GD0xx` — overload-protection ("guard") configuration lints.
//!
//! The bsim-guard admission controller (svc daemon connection pool,
//! request deadlines, adaptive dist retry, checksummed links) is only
//! protective when it is actually switched on: a pool of zero workers
//! deadlocks every client, a zero deadline rejects every request, a
//! retry policy without a backoff cap can hammer a struggling peer, and
//! a remote link with checksums disabled turns silent corruption back
//! into wrong results. Each of those is a *configuration* bug —
//! decidable before the daemon accepts a byte — so they are lints, not
//! runtime errors.
//!
//! The daemon builds a [`GuardSpec`] from its `DaemonConfig` and runs
//! [`guard_lints`] as part of its spawn preflight; `bsim check --list`
//! enumerates the codes.
//!
//! | Code | Severity | Meaning |
//! |---|---|---|
//! | GD001 | error | connection pool has zero workers or zero backlog (unbounded or wedged) |
//! | GD002 | error | request deadline is configured but zero — every request expires on arrival |
//! | GD003 | warning | retries enabled without a backoff cap — retry storms are unbounded |
//! | GD004 | warning | remote link carries frames with checksum verification disabled |

use crate::diag::Diagnostic;
use crate::lint::LintRegistry;

/// One wire link as the guard lints see it: where it goes and whether
/// frames on it are checksum-verified.
#[derive(Clone, Debug)]
pub struct LinkGuard {
    /// Human label for spans (`"rank2.ctrl"`, `"store"`, ...).
    pub name: String,
    /// `true` when the peer is another process/host — where bit flips
    /// are silent unless checksums catch them. In-process links may
    /// reasonably skip the CRC.
    pub remote: bool,
    /// `true` when frames on this link are CRC-verified.
    pub checksum: bool,
}

/// The guard-relevant slice of a daemon/launcher configuration,
/// decoupled from the concrete config structs so svc and dist can both
/// feed it without a dependency cycle.
#[derive(Clone, Debug)]
pub struct GuardSpec {
    /// Connection pool threads draining the accept backlog.
    pub conn_workers: usize,
    /// Bounded accepted-connection backlog (shed beyond this).
    pub conn_backlog: usize,
    /// Job queue admission cap (shed beyond this).
    pub queue_cap: usize,
    /// Per-request deadline in ms; `None` means "no deadline" (legal),
    /// `Some(0)` means every request is born expired (GD002).
    pub deadline_ms: Option<u64>,
    /// Maximum attempts of the retry policy (1 = no retries).
    pub retry_max_attempts: u32,
    /// Backoff cap in ms for the retry policy; `None` = uncapped.
    pub retry_backoff_cap_ms: Option<u64>,
    /// Every wire link this configuration will open.
    pub links: Vec<LinkGuard>,
}

/// The GD-series registry. Codes stay stable; `bsim check --list`
/// renders `codes()`.
pub fn guard_lints() -> LintRegistry<GuardSpec> {
    LintRegistry::new()
        .rule(
            "GD001",
            "connection pool must be bounded and non-empty",
            |g: &GuardSpec, span, out| {
                if g.conn_workers == 0 {
                    out.push(
                        Diagnostic::error(
                            "GD001",
                            span,
                            "conn_workers is 0: no thread ever drains the accept backlog",
                        )
                        .with_help("set conn_workers >= 1 (default 8)"),
                    );
                }
                if g.conn_backlog == 0 {
                    out.push(
                        Diagnostic::error(
                            "GD001",
                            span,
                            "conn_backlog is 0: every connection is shed before a byte is read",
                        )
                        .with_help("set conn_backlog >= conn_workers"),
                    );
                }
                if g.queue_cap == 0 {
                    out.push(
                        Diagnostic::error(
                            "GD001",
                            span,
                            "queue_cap is 0: every well-formed submit is shed with 429",
                        )
                        .with_help("set queue_cap >= 1 (default 64)"),
                    );
                }
            },
        )
        .rule(
            "GD002",
            "a configured deadline must be nonzero",
            |g: &GuardSpec, span, out| {
                if g.deadline_ms == Some(0) {
                    out.push(
                        Diagnostic::error(
                            "GD002",
                            span,
                            "deadline is 0 ms: every request expires before its first cell",
                        )
                        .with_help("drop the deadline entirely or give work time to finish"),
                    );
                }
            },
        )
        .rule(
            "GD003",
            "retries need a backoff cap",
            |g: &GuardSpec, span, out| {
                if g.retry_max_attempts > 1 && g.retry_backoff_cap_ms.is_none() {
                    out.push(
                        Diagnostic::warning(
                            "GD003",
                            span,
                            format!(
                                "{} attempts with uncapped backoff: delays grow geometrically \
                                 without bound",
                                g.retry_max_attempts
                            ),
                        )
                        .with_help("cap the backoff (bsim_resilience::Backoff::cap_ms)"),
                    );
                }
            },
        )
        .rule(
            "GD004",
            "remote links must verify checksums",
            |g: &GuardSpec, span, out| {
                for link in &g.links {
                    if link.remote && !link.checksum {
                        out.push(
                            Diagnostic::warning(
                                "GD004",
                                format!("{span}.{}", link.name),
                                "remote link carries frames without CRC verification: \
                                 wire corruption becomes silent wrong results",
                            )
                            .with_help("enable the frame CRC (dist wire protocol v2)"),
                        );
                    }
                }
            },
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sane() -> GuardSpec {
        GuardSpec {
            conn_workers: 8,
            conn_backlog: 32,
            queue_cap: 64,
            deadline_ms: Some(30_000),
            retry_max_attempts: 3,
            retry_backoff_cap_ms: Some(2_000),
            links: vec![LinkGuard {
                name: "rank0.ctrl".into(),
                remote: true,
                checksum: true,
            }],
        }
    }

    #[test]
    fn a_sane_guard_config_is_clean() {
        assert!(guard_lints().run(&sane(), "daemon").is_clean());
        // No deadline at all is a legal (if unguarded) choice.
        let mut g = sane();
        g.deadline_ms = None;
        assert!(guard_lints().run(&g, "daemon").is_clean());
    }

    #[test]
    fn unbounded_or_wedged_pools_are_gd001_errors() {
        for mutate in [
            (|g: &mut GuardSpec| g.conn_workers = 0) as fn(&mut GuardSpec),
            |g| g.conn_backlog = 0,
            |g| g.queue_cap = 0,
        ] {
            let mut g = sane();
            mutate(&mut g);
            let r = guard_lints().run(&g, "daemon");
            assert!(r.has_code("GD001") && r.has_errors(), "{r}");
        }
    }

    #[test]
    fn zero_deadline_and_uncapped_retry_are_flagged() {
        let mut g = sane();
        g.deadline_ms = Some(0);
        let r = guard_lints().run(&g, "daemon");
        assert!(r.has_code("GD002") && r.has_errors(), "{r}");

        let mut g = sane();
        g.retry_backoff_cap_ms = None;
        let r = guard_lints().run(&g, "daemon");
        assert!(
            r.has_code("GD003") && r.has_warnings() && !r.has_errors(),
            "{r}"
        );
        // A single attempt never backs off, so no cap is needed.
        g.retry_max_attempts = 1;
        assert!(guard_lints().run(&g, "daemon").is_clean());
    }

    #[test]
    fn only_remote_unchecksummed_links_trip_gd004() {
        let mut g = sane();
        g.links = vec![
            LinkGuard {
                name: "local".into(),
                remote: false,
                checksum: false,
            },
            LinkGuard {
                name: "rank1.ctrl".into(),
                remote: true,
                checksum: false,
            },
        ];
        let r = guard_lints().run(&g, "daemon");
        let hits: Vec<_> = r.with_code("GD004").collect();
        assert_eq!(hits.len(), 1, "{r}");
        assert!(hits[0].span.contains("rank1.ctrl"), "{r}");
    }
}

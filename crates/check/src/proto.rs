//! PV-series protocol model checking.
//!
//! The svc HTTP-lite exchange and the dist launcher/worker wire protocol are
//! encoded here as explicit typed transition tables ([`ProtocolSpec`]). The
//! runtime code in `bsim-svc` and `bsim-dist` *drives* these tables through a
//! [`Tracker`] — every frame received and every response chosen is first
//! checked against the table, so the model and the implementation cannot
//! drift: an implementation move the table does not allow surfaces as a
//! [`Violation`] at runtime, and a table hole surfaces as a PV diagnostic at
//! `bsim check --proto` time.
//!
//! [`explore`] exhaustively enumerates the *joint* state space of the two
//! roles (states × liveness × bounded in-flight message queues) with a DFS in
//! the spirit of the mini-loom engine, both fault-free and under clean-EOF,
//! torn-frame, and process-kill events, and checks:
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | PV001 | warning  | a declared role state is unreachable in the joint exploration |
//! | PV002 | error    | a message can arrive in a reachable state with no transition for it |
//! | PV003 | error    | a reachable joint state has no enabled move and is not quiescent (deadlock) |
//! | PV004 | error    | a fault-free reachable state has no path to quiescence (livelock / lost progress) |
//! | PV005 | error    | the transition table itself is malformed (unknown states, duplicate rules) |
//! | PV006 | error    | clean EOF or a torn frame is unhandled in a reachable non-terminal state |
//! | PV007 | error    | the state-space bound was exceeded (table under-constrained) |

use crate::diag::{Diagnostic, Report};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::OnceLock;

/// Bound on in-flight messages per direction. Sends that would overflow the
/// peer's inbox are disabled (back-pressure), which keeps the joint state
/// space finite even for tables with send loops.
const QUEUE_CAP: usize = 3;

/// Hard bound on explored joint states; real tables here sit far below it.
const MAX_STATES: usize = 1 << 20;

/// Trigger of a transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ev {
    /// A message received from the peer (wire frame or HTTP-lite message).
    Recv(&'static str),
    /// A local decision by this role (request chosen, result ready, ...).
    Local(&'static str),
    /// The peer's connection closed cleanly between frames.
    Eof,
    /// The peer's connection died mid-frame (torn frame / reset).
    Torn,
}

impl fmt::Display for Ev {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ev::Recv(m) => write!(f, "Recv({m})"),
            Ev::Local(t) => write!(f, "Local({t})"),
            Ev::Eof => write!(f, "Eof"),
            Ev::Torn => write!(f, "Torn"),
        }
    }
}

/// One row of a role's transition table.
#[derive(Debug, Clone)]
pub struct TransitionRule {
    /// Source state.
    pub state: &'static str,
    /// Triggering event.
    pub on: Ev,
    /// Destination state.
    pub next: &'static str,
    /// Message emitted to the peer when the transition fires, if any.
    pub send: Option<&'static str>,
}

/// One side of a two-party protocol.
#[derive(Debug, Clone)]
pub struct RoleSpec {
    pub name: &'static str,
    pub start: &'static str,
    pub states: Vec<&'static str>,
    /// States in which the role considers the exchange finished. Clean EOF
    /// and torn frames are silently absorbed in terminal states (the socket
    /// is being torn down anyway).
    pub terminal: Vec<&'static str>,
    pub rules: Vec<TransitionRule>,
}

/// A two-party protocol: exactly two roles exchanging messages over one
/// connection.
#[derive(Debug, Clone)]
pub struct ProtocolSpec {
    pub name: &'static str,
    pub roles: [RoleSpec; 2],
}

fn t(state: &'static str, on: Ev, next: &'static str) -> TransitionRule {
    TransitionRule {
        state,
        on,
        next,
        send: None,
    }
}

fn ts(state: &'static str, on: Ev, next: &'static str, send: &'static str) -> TransitionRule {
    TransitionRule {
        state,
        on,
        next,
        send: Some(send),
    }
}

/// The svc HTTP-lite exchange: one request per connection, one response.
///
/// Message names are abstract: `Submit`/`Status`/`Fetch`/`Metrics`/
/// `Shutdown`/`Bad` classify the request line (see `Request::event` in
/// `bsim-svc`), and `Ok`/`Busy`/`Reject` classify the response status
/// (2xx / 429-and-503 / everything else). The `shed` locals model the
/// bsim-guard admission controller: any post-read state may answer
/// Busy when the daemon is at capacity, and clients treat Busy as a
/// clean close (retry later), never a protocol error. Accept-level
/// shedding (backlog full) happens before a request byte is read, so
/// it deliberately has no transition here — that connection never
/// enters the exchange, the same shape as an OS-level reset.
pub fn svc_protocol() -> ProtocolSpec {
    let client = RoleSpec {
        name: "client",
        start: "connect",
        states: vec!["connect", "await", "closed", "lost"],
        terminal: vec!["closed", "lost"],
        rules: vec![
            ts("connect", Ev::Local("submit"), "await", "Submit"),
            ts("connect", Ev::Local("status"), "await", "Status"),
            ts("connect", Ev::Local("fetch"), "await", "Fetch"),
            ts("connect", Ev::Local("metrics"), "await", "Metrics"),
            ts("connect", Ev::Local("shutdown"), "await", "Shutdown"),
            ts("connect", Ev::Local("bad"), "await", "Bad"),
            t("connect", Ev::Eof, "lost"),
            t("connect", Ev::Torn, "lost"),
            t("await", Ev::Recv("Ok"), "closed"),
            t("await", Ev::Recv("Busy"), "closed"),
            t("await", Ev::Recv("Reject"), "closed"),
            t("await", Ev::Eof, "lost"),
            t("await", Ev::Torn, "lost"),
        ],
    };
    let daemon = RoleSpec {
        name: "daemon",
        start: "read",
        states: vec!["read", "submitted", "queried", "admin", "closed", "lost"],
        terminal: vec!["closed", "lost"],
        rules: vec![
            t("read", Ev::Recv("Submit"), "submitted"),
            t("read", Ev::Recv("Status"), "queried"),
            t("read", Ev::Recv("Fetch"), "queried"),
            t("read", Ev::Recv("Metrics"), "queried"),
            t("read", Ev::Recv("Shutdown"), "admin"),
            ts("read", Ev::Recv("Bad"), "closed", "Reject"),
            t("read", Ev::Eof, "lost"),
            t("read", Ev::Torn, "lost"),
            ts("submitted", Ev::Local("accept"), "closed", "Ok"),
            ts("submitted", Ev::Local("reject"), "closed", "Reject"),
            ts("submitted", Ev::Local("busy"), "closed", "Busy"),
            t("submitted", Ev::Eof, "lost"),
            t("submitted", Ev::Torn, "lost"),
            ts("queried", Ev::Local("found"), "closed", "Ok"),
            ts("queried", Ev::Local("missing"), "closed", "Reject"),
            ts("queried", Ev::Local("shed"), "closed", "Busy"),
            t("queried", Ev::Eof, "lost"),
            t("queried", Ev::Torn, "lost"),
            ts("admin", Ev::Local("ack"), "closed", "Ok"),
            ts("admin", Ev::Local("shed"), "closed", "Busy"),
            t("admin", Ev::Eof, "lost"),
            t("admin", Ev::Torn, "lost"),
        ],
    };
    ProtocolSpec {
        name: "svc",
        roles: [client, daemon],
    }
}

/// The dist launcher/worker control protocol. Message names match
/// `Frame::event` in `bsim-dist`. Link connections (`piping`/`relaying`)
/// carry raw token frames (`Data`/`Run`) that bypass the control protocol;
/// they are terminal here.
pub fn dist_protocol() -> ProtocolSpec {
    let worker = RoleSpec {
        name: "worker",
        start: "connect",
        states: vec![
            "connect",
            "await-plan",
            "executing",
            "piping",
            "done",
            "failed",
            "lost",
        ],
        terminal: vec!["piping", "done", "failed", "lost"],
        rules: vec![
            ts("connect", Ev::Local("hello"), "await-plan", "Hello"),
            ts("connect", Ev::Local("link"), "piping", "Link"),
            t("connect", Ev::Eof, "lost"),
            t("connect", Ev::Torn, "lost"),
            t("await-plan", Ev::Recv("Plan"), "executing"),
            t("await-plan", Ev::Eof, "lost"),
            t("await-plan", Ev::Torn, "lost"),
            ts("executing", Ev::Local("cell"), "executing", "Cell"),
            ts("executing", Ev::Local("done"), "done", "Done"),
            ts("executing", Ev::Local("error"), "failed", "Err"),
            t("executing", Ev::Eof, "lost"),
            t("executing", Ev::Torn, "lost"),
        ],
    };
    let coordinator = RoleSpec {
        name: "coordinator",
        start: "accept",
        states: vec![
            "accept",
            "collecting",
            "relaying",
            "closed",
            "peer-failed",
            "lost",
        ],
        terminal: vec!["relaying", "closed", "peer-failed", "lost"],
        rules: vec![
            ts("accept", Ev::Recv("Hello"), "collecting", "Plan"),
            t("accept", Ev::Recv("Link"), "relaying"),
            t("accept", Ev::Eof, "closed"),
            t("accept", Ev::Torn, "closed"),
            t("collecting", Ev::Recv("Cell"), "collecting"),
            t("collecting", Ev::Recv("Done"), "closed"),
            t("collecting", Ev::Recv("Err"), "peer-failed"),
            t("collecting", Ev::Eof, "lost"),
            t("collecting", Ev::Torn, "lost"),
        ],
    };
    ProtocolSpec {
        name: "dist",
        roles: [worker, coordinator],
    }
}

/// Cached svc table for runtime trackers.
pub fn svc_cached() -> &'static ProtocolSpec {
    static SPEC: OnceLock<ProtocolSpec> = OnceLock::new();
    SPEC.get_or_init(svc_protocol)
}

/// Cached dist table for runtime trackers.
pub fn dist_cached() -> &'static ProtocolSpec {
    static SPEC: OnceLock<ProtocolSpec> = OnceLock::new();
    SPEC.get_or_init(dist_protocol)
}

impl RoleSpec {
    fn has_state(&self, s: &str) -> bool {
        self.states.contains(&s)
    }

    fn is_terminal(&self, s: &str) -> bool {
        self.terminal.contains(&s)
    }
}

impl ProtocolSpec {
    /// All message names appearing anywhere in the table (received or sent).
    pub fn alphabet(&self) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = Vec::new();
        for role in &self.roles {
            for r in &role.rules {
                if let Ev::Recv(m) = r.on {
                    if !out.contains(&m) {
                        out.push(m);
                    }
                }
                if let Some(m) = r.send {
                    if !out.contains(&m) {
                        out.push(m);
                    }
                }
            }
        }
        out
    }

    /// Structural well-formedness (PV005): known states everywhere, no
    /// duplicate `(state, event)` rows, a start state, at least one terminal.
    pub fn validate(&self) -> Report {
        let mut report = Report::new();
        let span = format!("proto.{}", self.name);
        for role in &self.roles {
            if role.states.is_empty() {
                report.push(Diagnostic::error(
                    "PV005",
                    span.clone(),
                    format!("role `{}` declares no states", role.name),
                ));
                continue;
            }
            if !role.has_state(role.start) {
                report.push(Diagnostic::error(
                    "PV005",
                    span.clone(),
                    format!(
                        "role `{}` start state `{}` is not in its state list",
                        role.name, role.start
                    ),
                ));
            }
            if role.terminal.is_empty() {
                report.push(Diagnostic::error(
                    "PV005",
                    span.clone(),
                    format!("role `{}` declares no terminal states", role.name),
                ));
            }
            for s in &role.terminal {
                if !role.has_state(s) {
                    report.push(Diagnostic::error(
                        "PV005",
                        span.clone(),
                        format!("role `{}` terminal state `{s}` is unknown", role.name),
                    ));
                }
            }
            let mut seen: HashSet<(&str, Ev)> = HashSet::new();
            for r in &role.rules {
                for (which, s) in [("source", r.state), ("destination", r.next)] {
                    if !role.has_state(s) {
                        report.push(Diagnostic::error(
                            "PV005",
                            span.clone(),
                            format!(
                                "role `{}` rule `{} --{}-> {}` names unknown {which} state `{s}`",
                                role.name, r.state, r.on, r.next
                            ),
                        ));
                    }
                }
                if !seen.insert((r.state, r.on)) {
                    report.push(
                        Diagnostic::error(
                            "PV005",
                            span.clone(),
                            format!(
                                "role `{}` has duplicate rules for state `{}` on {}",
                                role.name, r.state, r.on
                            ),
                        )
                        .with_help("transition tables must be deterministic per (state, event)"),
                    );
                }
            }
        }
        report
    }
}

/// A table/implementation drift observed at runtime: the implementation
/// attempted a move the transition table does not allow.
#[derive(Debug, Clone)]
pub struct Violation {
    pub protocol: &'static str,
    pub role: &'static str,
    pub state: &'static str,
    pub ev: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "protocol violation ({}): role `{}` in state `{}` cannot handle {}",
            self.protocol, self.role, self.state, self.ev
        )
    }
}

impl std::error::Error for Violation {}

/// Runtime driver: holds one role's current state and advances it through
/// table transitions. The runtime code calls [`Tracker::recv`] for every
/// frame read off the wire and [`Tracker::local`] for every decision it
/// makes; an `Err(Violation)` means the move is not in the table and the
/// implementation must treat the input as a protocol error.
#[derive(Debug, Clone)]
pub struct Tracker<'a> {
    spec: &'a ProtocolSpec,
    role: usize,
    state: &'static str,
}

impl<'a> Tracker<'a> {
    /// Start tracking `role` (by name) at its start state. Returns `None` if
    /// the protocol has no such role.
    pub fn new(spec: &'a ProtocolSpec, role: &str) -> Option<Tracker<'a>> {
        let idx = spec.roles.iter().position(|r| r.name == role)?;
        Some(Tracker {
            spec,
            role: idx,
            state: spec.roles[idx].start,
        })
    }

    pub fn state(&self) -> &'static str {
        self.state
    }

    pub fn role(&self) -> &'static str {
        self.spec.roles[self.role].name
    }

    pub fn is_terminal(&self) -> bool {
        self.spec.roles[self.role].is_terminal(self.state)
    }

    fn step(
        &mut self,
        matches: impl Fn(&Ev) -> bool,
        desc: String,
    ) -> Result<Option<&'static str>, Violation> {
        let role = &self.spec.roles[self.role];
        for r in &role.rules {
            if r.state == self.state && matches(&r.on) {
                self.state = r.next;
                return Ok(r.send);
            }
        }
        // Terminal states absorb teardown events: the connection is being
        // closed on purpose, a racing EOF is not a protocol error.
        if role.is_terminal(self.state) && (desc == "Eof" || desc == "Torn") {
            return Ok(None);
        }
        Err(Violation {
            protocol: self.spec.name,
            role: role.name,
            state: self.state,
            ev: desc,
        })
    }

    /// A message arrived from the peer. On success returns the message this
    /// role must now emit, if the transition sends one.
    pub fn recv(&mut self, msg: &str) -> Result<Option<&'static str>, Violation> {
        self.step(
            |e| matches!(e, Ev::Recv(m) if *m == msg),
            format!("Recv({msg})"),
        )
    }

    /// The role made a local decision (chose a request, produced a result).
    pub fn local(&mut self, tag: &str) -> Result<Option<&'static str>, Violation> {
        self.step(
            |e| matches!(e, Ev::Local(t) if *t == tag),
            format!("Local({tag})"),
        )
    }

    /// The peer closed the connection cleanly between frames.
    pub fn eof(&mut self) -> Result<Option<&'static str>, Violation> {
        self.step(|e| matches!(e, Ev::Eof), "Eof".to_string())
    }

    /// The peer's connection died mid-frame.
    pub fn torn(&mut self) -> Result<Option<&'static str>, Violation> {
        self.step(|e| matches!(e, Ev::Torn), "Torn".to_string())
    }
}

// ---------------------------------------------------------------------------
// Exhaustive joint exploration
// ---------------------------------------------------------------------------

/// Result of [`explore`]: the merged report plus state-space statistics from
/// the full (fault-injecting) pass.
#[derive(Debug)]
pub struct Explored {
    pub report: Report,
    /// Distinct joint states reached with faults enabled.
    pub states: usize,
    /// Transitions taken between distinct joint states.
    pub transitions: usize,
}

#[derive(Clone, PartialEq, Eq, Hash)]
enum Item {
    Msg(u8),
    Eof,
    Torn,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct Joint {
    state: [u8; 2],
    alive: [bool; 2],
    q: [Vec<Item>; 2],
}

enum CEv {
    Recv(u8),
    Local,
    Eof,
    Torn,
}

struct CRule {
    on: CEv,
    next: u8,
    send: Option<u8>,
}

struct CRole {
    start: u8,
    terminal: Vec<bool>,
    /// rules grouped per source state, in declaration order
    rules: Vec<Vec<CRule>>,
}

struct Compiled<'a> {
    spec: &'a ProtocolSpec,
    alphabet: Vec<&'static str>,
    roles: [CRole; 2],
}

fn compile(spec: &ProtocolSpec) -> Compiled<'_> {
    let alphabet = spec.alphabet();
    let midx = |m: &str| alphabet.iter().position(|a| *a == m).unwrap_or(0) as u8;
    let roles = [0, 1].map(|i| {
        let role = &spec.roles[i];
        let sidx = |s: &str| role.states.iter().position(|x| *x == s).unwrap_or(0) as u8;
        let mut rules: Vec<Vec<CRule>> = (0..role.states.len()).map(|_| Vec::new()).collect();
        for r in &role.rules {
            let on = match r.on {
                Ev::Recv(m) => CEv::Recv(midx(m)),
                Ev::Local(_) => CEv::Local,
                Ev::Eof => CEv::Eof,
                Ev::Torn => CEv::Torn,
            };
            rules[sidx(r.state) as usize].push(CRule {
                on,
                next: sidx(r.next),
                send: r.send.map(&midx),
            });
        }
        CRole {
            start: sidx(role.start),
            terminal: role.states.iter().map(|s| role.is_terminal(s)).collect(),
            rules,
        }
    });
    Compiled {
        spec,
        alphabet,
        roles,
    }
}

impl Compiled<'_> {
    fn describe(&self, j: &Joint) -> String {
        let mut out = String::new();
        for i in 0..2 {
            let role = &self.spec.roles[i];
            if i > 0 {
                out.push(' ');
            }
            if j.alive[i] {
                out.push_str(&format!(
                    "{}={}",
                    role.name, role.states[j.state[i] as usize]
                ));
            } else {
                out.push_str(&format!("{}=<dead>", role.name));
            }
            let items: Vec<String> = j.q[i]
                .iter()
                .map(|it| match it {
                    Item::Msg(m) => self.alphabet[*m as usize].to_string(),
                    Item::Eof => "EOF".to_string(),
                    Item::Torn => "TORN".to_string(),
                })
                .collect();
            out.push_str(&format!(" inbox[{}]", items.join(",")));
        }
        out
    }

    fn quiesced(&self, j: &Joint) -> bool {
        (0..2).all(|i| {
            !j.alive[i] || (self.roles[i].terminal[j.state[i] as usize] && j.q[i].is_empty())
        })
    }
}

/// Diagnostics deduplication shared across the fault-free and full passes.
#[derive(Default)]
struct Dedup {
    pv002: HashSet<(usize, u8, u8)>,
    pv006: HashSet<(usize, u8, bool)>,
}

struct PassOut {
    states: usize,
    transitions: usize,
    /// Role states visited by live roles anywhere in the exploration.
    seen: [HashSet<u8>; 2],
}

/// Breadth-first enumeration of the joint state space. Successor generation
/// order is fully deterministic (role order, then rule declaration order), so
/// diagnostic order is stable run-to-run.
fn run_pass(c: &Compiled<'_>, faults: bool, dedup: &mut Dedup, report: &mut Report) -> PassOut {
    let span = format!("proto.{}", c.spec.name);
    let start = Joint {
        state: [c.roles[0].start, c.roles[1].start],
        alive: [true, true],
        q: [Vec::new(), Vec::new()],
    };
    let mut index: HashMap<Joint, usize> = HashMap::new();
    let mut states: Vec<Joint> = Vec::new();
    let mut edges: Vec<Vec<usize>> = Vec::new();
    index.insert(start.clone(), 0);
    states.push(start);
    edges.push(Vec::new());
    let mut transitions = 0usize;
    let mut deadlocks: Vec<usize> = Vec::new();
    let mut head = 0usize;
    let mut truncated = false;
    let mut seen: [HashSet<u8>; 2] = [HashSet::new(), HashSet::new()];

    while head < states.len() {
        let j = states[head].clone();
        for (i, role_seen) in seen.iter_mut().enumerate() {
            if j.alive[i] {
                role_seen.insert(j.state[i]);
            }
        }
        let mut succs: Vec<Joint> = Vec::new();

        // Delivery moves: pop the head of each live role's inbox.
        for i in 0..2 {
            if !j.alive[i] || j.q[i].is_empty() {
                continue;
            }
            let peer = 1 - i;
            let item = j.q[i][0].clone();
            let si = j.state[i];
            let role = &c.roles[i];
            match item {
                Item::Msg(m) => {
                    let rule = role.rules[si as usize]
                        .iter()
                        .find(|r| matches!(r.on, CEv::Recv(x) if x == m));
                    if let Some(r) = rule {
                        // Sends triggered by delivery respect the peer's
                        // inbox bound; full inbox disables the move.
                        let room =
                            r.send.is_none() || !j.alive[peer] || j.q[peer].len() < QUEUE_CAP;
                        if room {
                            let mut n = j.clone();
                            n.q[i].remove(0);
                            n.state[i] = r.next;
                            if let Some(msg) = r.send {
                                if n.alive[peer] {
                                    n.q[peer].push(Item::Msg(msg));
                                }
                            }
                            succs.push(n);
                        }
                    } else {
                        if dedup.pv002.insert((i, si, m)) {
                            report.push(
                                Diagnostic::error(
                                    "PV002",
                                    span.clone(),
                                    format!(
                                        "role `{}`: message `{}` is unhandled in reachable state `{}`",
                                        c.spec.roles[i].name,
                                        c.alphabet[m as usize],
                                        c.spec.roles[i].states[si as usize]
                                    ),
                                )
                                .with_help(
                                    "add a transition for it or stop the peer from sending it here",
                                ),
                            );
                        }
                        // Consume-and-stay so exploration continues past the
                        // hole and can surface further problems.
                        let mut n = j.clone();
                        n.q[i].remove(0);
                        succs.push(n);
                    }
                }
                Item::Eof | Item::Torn => {
                    let torn = matches!(item, Item::Torn);
                    let rule = role.rules[si as usize]
                        .iter()
                        .find(|r| matches!((&r.on, torn), (CEv::Eof, false) | (CEv::Torn, true)));
                    if let Some(r) = rule {
                        let mut n = j.clone();
                        n.q[i].remove(0);
                        n.state[i] = r.next;
                        if let Some(msg) = r.send {
                            if n.alive[peer] {
                                n.q[peer].push(Item::Msg(msg));
                            }
                        }
                        succs.push(n);
                    } else if role.terminal[si as usize] {
                        // Teardown events are absorbed in terminal states.
                        let mut n = j.clone();
                        n.q[i].remove(0);
                        succs.push(n);
                    } else {
                        if dedup.pv006.insert((i, si, torn)) {
                            report.push(
                                Diagnostic::error(
                                    "PV006",
                                    span.clone(),
                                    format!(
                                        "role `{}`: {} is unhandled in reachable non-terminal state `{}`",
                                        c.spec.roles[i].name,
                                        if torn { "a torn frame" } else { "clean EOF" },
                                        c.spec.roles[i].states[si as usize]
                                    ),
                                )
                                .with_help("peer loss must be handled everywhere the role blocks on the wire"),
                            );
                        }
                        let mut n = j.clone();
                        n.q[i].remove(0);
                        succs.push(n);
                    }
                }
            }
        }

        // Local moves: any local rule of a live role, send-gated by the
        // peer's inbox bound.
        for i in 0..2 {
            if !j.alive[i] {
                continue;
            }
            let peer = 1 - i;
            for r in &c.roles[i].rules[j.state[i] as usize] {
                if !matches!(r.on, CEv::Local) {
                    continue;
                }
                let room = r.send.is_none() || !j.alive[peer] || j.q[peer].len() < QUEUE_CAP;
                if !room {
                    continue;
                }
                let mut n = j.clone();
                n.state[i] = r.next;
                if let Some(msg) = r.send {
                    if n.alive[peer] {
                        n.q[peer].push(Item::Msg(msg));
                    }
                }
                succs.push(n);
            }
        }

        // Fault moves: kill a live role; the peer observes either clean EOF
        // (process exited, socket flushed) or a torn frame (SIGKILL mid-write).
        if faults {
            for i in 0..2 {
                if !j.alive[i] {
                    continue;
                }
                let peer = 1 - i;
                for torn in [false, true] {
                    let mut n = j.clone();
                    n.alive[i] = false;
                    n.q[i].clear();
                    if n.alive[peer] {
                        n.q[peer].push(if torn { Item::Torn } else { Item::Eof });
                    }
                    succs.push(n);
                }
            }
        }

        if succs.is_empty() && !c.quiesced(&j) {
            deadlocks.push(head);
        }

        for n in succs {
            let next_id = match index.get(&n) {
                Some(id) => *id,
                None => {
                    if states.len() >= MAX_STATES {
                        truncated = true;
                        continue;
                    }
                    let id = states.len();
                    index.insert(n.clone(), id);
                    states.push(n);
                    edges.push(Vec::new());
                    id
                }
            };
            transitions += 1;
            edges[head].push(next_id);
        }
        head += 1;
    }

    if truncated {
        report.push(
            Diagnostic::error(
                "PV007",
                span.clone(),
                format!(
                    "joint state space exceeded the {MAX_STATES}-state bound; the table is under-constrained"
                ),
            )
            .with_help("bound send loops or split the protocol into phases"),
        );
    }

    if let Some(&first) = deadlocks.first() {
        let mut d = Diagnostic::error(
            "PV003",
            span.clone(),
            format!(
                "protocol can deadlock{}: no move enabled in reachable state [{}]",
                if faults { " under faults" } else { "" },
                c.describe(&states[first])
            ),
        );
        if deadlocks.len() > 1 {
            d = d.with_help(format!(
                "{} further deadlocked states elided",
                deadlocks.len() - 1
            ));
        }
        report.push(d);
    }

    // PV004 (fault-free pass only): every reachable state must be able to
    // reach quiescence. Reverse BFS from the quiesced states.
    if !faults && !truncated {
        let quiesced: Vec<usize> = (0..states.len())
            .filter(|&i| c.quiesced(&states[i]))
            .collect();
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); states.len()];
        for (from, outs) in edges.iter().enumerate() {
            for &to in outs {
                rev[to].push(from);
            }
        }
        let mut ok = vec![false; states.len()];
        let mut bfs: VecDeque<usize> = VecDeque::new();
        for &q in &quiesced {
            if !ok[q] {
                ok[q] = true;
                bfs.push_back(q);
            }
        }
        while let Some(v) = bfs.pop_front() {
            for &p in &rev[v] {
                if !ok[p] {
                    ok[p] = true;
                    bfs.push_back(p);
                }
            }
        }
        if let Some(bad) = (0..states.len()).find(|&i| !ok[i]) {
            let stuck = (0..states.len()).filter(|&i| !ok[i]).count();
            report.push(
                Diagnostic::error(
                    "PV004",
                    span.clone(),
                    format!(
                        "no path to completion from reachable state [{}]",
                        c.describe(&states[bad])
                    ),
                )
                .with_help(format!(
                    "{stuck} of {} fault-free states cannot reach quiescence",
                    states.len()
                )),
            );
        }
    }

    PassOut {
        states: states.len(),
        transitions,
        seen,
    }
}

/// Exhaustively explore the joint state space of `spec`, fault-free first and
/// then with clean-EOF / torn-frame / process-kill events injected, and
/// report PV001–PV007.
pub fn explore(spec: &ProtocolSpec) -> Explored {
    let mut report = spec.validate();
    if report.has_errors() {
        return Explored {
            report,
            states: 0,
            transitions: 0,
        };
    }
    let c = compile(spec);
    let mut dedup = Dedup::default();
    // Fault-free pass: deadlock-freedom (PV003) and progress (PV004) on the
    // protocol's own moves.
    run_pass(&c, false, &mut dedup, &mut report);
    // Full pass: every state must also survive peer loss (PV002/PV006 under
    // kills, PV003 under faults).
    let full = run_pass(&c, true, &mut dedup, &mut report);

    // PV001: declared states never visited even with faults enabled.
    for i in 0..2 {
        let role = &spec.roles[i];
        for (si, name) in role.states.iter().enumerate() {
            if !full.seen[i].contains(&(si as u8)) {
                report.push(
                    Diagnostic::warning(
                        "PV001",
                        format!("proto.{}", spec.name),
                        format!("role `{}`: state `{name}` is unreachable", role.name),
                    )
                    .with_help("remove the state or add a transition that can reach it"),
                );
            }
        }
    }

    Explored {
        report,
        states: full.states,
        transitions: full.transitions,
    }
}

/// Validate and explore every built-in protocol; the merged report is what
/// `bsim check --proto` renders.
pub fn check_protocols() -> Report {
    let mut report = Report::new();
    for spec in [svc_cached(), dist_cached()] {
        report.merge(explore(spec).report);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_tables_validate_clean() {
        assert!(
            svc_protocol().validate().is_clean(),
            "{}",
            svc_protocol().validate().render()
        );
        assert!(dist_protocol().validate().is_clean());
    }

    #[test]
    fn builtin_tables_explore_clean() {
        for spec in [svc_protocol(), dist_protocol()] {
            let e = explore(&spec);
            assert!(e.report.is_clean(), "{}:\n{}", spec.name, e.report.render());
            assert!(
                e.states > 10,
                "{} explored only {} states",
                spec.name,
                e.states
            );
            assert!(e.transitions > e.states, "exploration should branch");
        }
    }

    #[test]
    fn tracker_drives_svc_submit_roundtrip() {
        let spec = svc_cached();
        let mut client = Tracker::new(spec, "client").unwrap();
        let mut daemon = Tracker::new(spec, "daemon").unwrap();
        let sent = client.local("submit").unwrap().expect("client must send");
        assert_eq!(sent, "Submit");
        assert!(daemon.recv(sent).unwrap().is_none());
        assert_eq!(daemon.state(), "submitted");
        let resp = daemon
            .local("accept")
            .unwrap()
            .expect("daemon must respond");
        assert_eq!(resp, "Ok");
        assert!(daemon.is_terminal());
        assert!(client.recv(resp).unwrap().is_none());
        assert!(client.is_terminal());
    }

    #[test]
    fn tracker_rejects_out_of_table_moves() {
        let spec = dist_cached();
        let mut coord = Tracker::new(spec, "coordinator").unwrap();
        let v = coord.recv("Cell").unwrap_err();
        assert_eq!(v.role, "coordinator");
        assert_eq!(v.state, "accept");
        assert!(v.to_string().contains("Recv(Cell)"), "{v}");
        // state unchanged after a violation
        assert_eq!(coord.state(), "accept");
        // terminal states absorb teardown events
        let mut worker = Tracker::new(spec, "worker").unwrap();
        worker.local("link").unwrap();
        assert_eq!(worker.state(), "piping");
        assert!(worker.eof().unwrap().is_none());
    }

    #[test]
    fn unknown_role_is_none() {
        assert!(Tracker::new(svc_cached(), "nonesuch").is_none());
    }

    fn toy(rules0: Vec<TransitionRule>, rules1: Vec<TransitionRule>) -> ProtocolSpec {
        ProtocolSpec {
            name: "toy",
            roles: [
                RoleSpec {
                    name: "a",
                    start: "s",
                    states: vec!["s", "t"],
                    terminal: vec!["t"],
                    rules: rules0,
                },
                RoleSpec {
                    name: "b",
                    start: "s",
                    states: vec!["s", "t"],
                    terminal: vec!["t"],
                    rules: rules1,
                },
            ],
        }
    }

    #[test]
    fn validate_flags_duplicates_and_unknown_states() {
        let spec = toy(
            vec![t("s", Ev::Local("go"), "t"), t("s", Ev::Local("go"), "s")],
            vec![t("s", Ev::Local("go"), "zzz")],
        );
        let r = spec.validate();
        assert!(r.has_errors());
        assert_eq!(r.with_code("PV005").count(), 2);
    }

    #[test]
    fn explorer_finds_deadlock() {
        // Both roles wait for a message nobody sends: deadlock at the start.
        let spec = toy(
            vec![
                t("s", Ev::Recv("M"), "t"),
                t("s", Ev::Eof, "t"),
                t("s", Ev::Torn, "t"),
            ],
            vec![
                t("s", Ev::Recv("M"), "t"),
                t("s", Ev::Eof, "t"),
                t("s", Ev::Torn, "t"),
            ],
        );
        let e = explore(&spec);
        assert!(e.report.has_code("PV003"), "{}", e.report.render());
    }

    #[test]
    fn explorer_finds_unhandled_message() {
        // a sends M; b has no rule for it.
        let spec = toy(
            vec![ts("s", Ev::Local("go"), "t", "M")],
            vec![t("s", Ev::Eof, "t"), t("s", Ev::Torn, "t")],
        );
        let e = explore(&spec);
        assert!(e.report.has_code("PV002"), "{}", e.report.render());
    }

    #[test]
    fn explorer_finds_unhandled_eof() {
        // b never handles EOF/torn in its non-terminal start state.
        let spec = toy(
            vec![t("s", Ev::Local("go"), "t")],
            vec![t("s", Ev::Recv("M"), "t")],
        );
        let e = explore(&spec);
        assert!(e.report.has_code("PV006"), "{}", e.report.render());
    }

    #[test]
    fn explorer_finds_unreachable_state() {
        let spec = ProtocolSpec {
            name: "toy",
            roles: [
                RoleSpec {
                    name: "a",
                    start: "s",
                    states: vec!["s", "island", "t"],
                    terminal: vec!["t"],
                    rules: vec![
                        t("s", Ev::Local("go"), "t"),
                        t("s", Ev::Eof, "t"),
                        t("s", Ev::Torn, "t"),
                        t("island", Ev::Local("x"), "t"),
                    ],
                },
                RoleSpec {
                    name: "b",
                    start: "t",
                    states: vec!["t"],
                    terminal: vec!["t"],
                    rules: vec![],
                },
            ],
        };
        let e = explore(&spec);
        assert!(e.report.has_code("PV001"), "{}", e.report.render());
        assert!(!e.report.has_errors(), "{}", e.report.render());
    }

    #[test]
    fn alphabet_collects_all_messages() {
        let a = dist_protocol().alphabet();
        for m in ["Hello", "Plan", "Link", "Cell", "Done", "Err"] {
            assert!(a.contains(&m), "missing {m}");
        }
    }
}

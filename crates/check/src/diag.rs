//! Typed diagnostics: what an analysis *found*, separated from what the
//! caller does about it.
//!
//! Every check in this crate reports through [`Diagnostic`] values
//! collected in a [`Report`] instead of panicking: a sweep driver can
//! render them rustc-style, export them as JSON, or promote warnings to
//! errors (`--deny-warnings`) without this crate deciding the policy.
//! Codes are stable identifiers (`MG001`, `CL041`, `PF010`, ...) so CI
//! and tests can assert on *which* invariant broke, not on message text.

use serde::Serialize;
use std::fmt;

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Severity {
    /// Informational: worth knowing, never blocks.
    Note,
    /// Suspicious: almost certainly a misconfiguration, simulation would
    /// still run and terminate.
    Warning,
    /// Invalid: the simulation would panic, hang, or produce garbage.
    Error,
}

impl Severity {
    /// Lowercase label as rendered in diagnostics.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding from a static check.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Stable code (`MG001`, `CL041`, `PF010`, ...), asserted on by tests.
    pub code: String,
    /// Where: a config path or graph location, e.g.
    /// `milkv_sim.hierarchy.l1d` or `wire 3: model 0.out0 -> model 1.in0`.
    pub span: String,
    /// What is wrong, with the offending values inline.
    pub message: String,
    /// How to fix it, when a concrete suggestion exists.
    pub help: Option<String>,
}

impl Diagnostic {
    /// An [`Severity::Error`] finding.
    pub fn error(code: &str, span: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            code: code.to_string(),
            span: span.into(),
            message: message.into(),
            help: None,
        }
    }

    /// A [`Severity::Warning`] finding.
    pub fn warning(code: &str, span: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, span, message)
        }
    }

    /// A [`Severity::Note`] finding.
    pub fn note(code: &str, span: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Note,
            ..Diagnostic::error(code, span, message)
        }
    }

    /// Attaches a fix suggestion.
    pub fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    /// Rustc-style rendering:
    ///
    /// ```text
    /// error[MG001]: token channels need >= 1 cycle latency
    ///   --> wire 0: model 0.out0 -> model 1.in0
    ///   = help: raise the wire latency to at least 1
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}\n  --> {}",
            self.severity.label(),
            self.code,
            self.message,
            self.span
        )?;
        if let Some(h) = &self.help {
            write!(f, "\n  = help: {h}")?;
        }
        Ok(())
    }
}

/// A batch of findings from one or more checks.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct Report {
    /// The findings, in discovery order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Adds one finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends all findings from another report.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// No findings at all (notes included)?
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Any [`Severity::Error`] findings?
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Any [`Severity::Warning`] findings?
    pub fn has_warnings(&self) -> bool {
        self.warning_count() > 0
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// All findings with the given code.
    pub fn with_code<'a>(&'a self, code: &'a str) -> impl Iterator<Item = &'a Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }

    /// Does any finding carry `code`?
    pub fn has_code(&self, code: &str) -> bool {
        self.with_code(code).next().is_some()
    }

    /// Renders all findings rustc-style, one blank line between them,
    /// followed by a summary line. Empty string when clean.
    pub fn render(&self) -> String {
        if self.is_clean() {
            return String::new();
        }
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push_str("\n\n");
        }
        let (e, w) = (self.error_count(), self.warning_count());
        out.push_str(&format!(
            "check result: {e} error(s), {w} warning(s), {} note(s)\n",
            self.diagnostics.len() - e - w
        ));
        out
    }

    /// JSON export of the finding list (machine-readable CI surface).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_note_warning_error() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn rendering_is_rustc_style() {
        let d = Diagnostic::error("MG001", "wire 0", "token channels need >= 1 cycle latency")
            .with_help("raise the wire latency to at least 1");
        let s = d.to_string();
        assert!(s.starts_with("error[MG001]: "), "{s}");
        assert!(s.contains("--> wire 0"), "{s}");
        assert!(s.contains("= help: raise"), "{s}");
    }

    #[test]
    fn report_counts_and_codes() {
        let mut r = Report::new();
        assert!(r.is_clean() && r.render().is_empty());
        r.push(Diagnostic::warning("CL005", "a.l1d", "sets not divisible"));
        r.push(Diagnostic::error(
            "CL001",
            "a.l1d",
            "sets not a power of two",
        ));
        r.push(Diagnostic::note("CL006", "a.l1d", "blocking cache"));
        assert!(r.has_errors() && r.has_warnings() && !r.is_clean());
        assert_eq!((r.error_count(), r.warning_count()), (1, 1));
        assert!(r.has_code("CL001") && !r.has_code("MG001"));
        assert!(r.render().contains("1 error(s), 1 warning(s), 1 note(s)"));
    }

    #[test]
    fn merge_concatenates() {
        let mut a = Report::new();
        a.push(Diagnostic::note("X1", "s", "m"));
        let mut b = Report::new();
        b.push(Diagnostic::error("X2", "s", "m"));
        a.merge(b);
        assert_eq!(a.diagnostics.len(), 2);
        assert!(a.has_errors());
    }

    #[test]
    fn json_export_includes_code_and_severity() {
        let mut r = Report::new();
        r.push(Diagnostic::error(
            "MG002",
            "graph",
            "cycle without reset tokens",
        ));
        let j = r.to_json();
        assert!(j.contains("\"MG002\""), "{j}");
        assert!(j.contains("Error"), "{j}");
    }
}

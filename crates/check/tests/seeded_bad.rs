//! Acceptance tests: every seeded-bad artifact the issue names must be
//! flagged with its stable code, and both paper platform families must
//! pass the full preflight clean. Uses `bsim-soc` as a dev-dependency so
//! the checks run against the real Table 4/5 catalog, not mocks.

use bsim_check::{analyze, GraphSpec, ModelSpec, WireSpec};
use bsim_soc::configs;
use bsim_soc::preflight::preflight;

/// A two-model ring where one direction has latency 0: the combinational
/// path MG001 exists to reject. (With a latency, the same ring is the
/// stock ping-pong topology.)
fn ring(latency_back: u64) -> GraphSpec {
    let mut fwd = WireSpec::new(0, 0, 1, 0, 1);
    fwd.capacity = None;
    let back = WireSpec::new(1, 0, 0, 0, latency_back);
    GraphSpec {
        models: vec![ModelSpec::indexed(0, 1, 1), ModelSpec::indexed(1, 1, 1)],
        wires: vec![fwd, back],
    }
}

#[test]
fn zero_latency_cycle_is_mg001() {
    let report = analyze(&ring(0), 1);
    assert!(report.has_code("MG001"), "got:\n{}", report.render());
    assert!(report.has_errors());
    // The same ring with latency 1 everywhere is legal.
    assert!(analyze(&ring(1), 1).is_clean());
}

#[test]
fn tokenless_cycle_is_mg002() {
    let mut spec = ring(1);
    // Strip the reset tokens from both wires: each model now waits on
    // the other's first token forever — the classic simulation deadlock.
    for w in &mut spec.wires {
        w.reset_tokens = Some(0);
    }
    let report = analyze(&spec, 1);
    assert!(report.has_code("MG002"), "got:\n{}", report.render());
    assert!(report.has_errors());
}

#[test]
fn undersized_channel_capacity_is_mg005() {
    let mut spec = ring(1);
    // latency 1 + quantum 4 needs capacity >= 5; 3 deadlocks under a
    // batched schedule.
    spec.wires[0].capacity = Some(3);
    let report = analyze(&spec, 4);
    assert!(report.has_code("MG005"), "got:\n{}", report.render());
    assert!(report.has_errors());
    // An explicit capacity that meets the bound is clean.
    spec.wires[0].capacity = Some(5);
    assert!(analyze(&spec, 4).is_clean());
}

#[test]
fn non_power_of_two_cache_is_cl001() {
    let mut cfg = configs::rocket1(1);
    cfg.hierarchy.l1d.sets = 65;
    let report = preflight(&cfg);
    assert!(report.has_code("CL001"), "got:\n{}", report.render());
    assert!(report.has_errors());
}

#[test]
fn drifted_k1_preset_is_pf010() {
    let mut cfg = configs::banana_pi_hw(1);
    cfg.freq_ghz = 2.4; // the K1 clocks at 1.6 GHz (Table 5)
    cfg.hierarchy.core_freq_ghz = 2.4; // keep SC004 quiet: this is drift, not a typo
    let report = preflight(&cfg);
    assert!(report.has_code("PF010"), "got:\n{}", report.render());
    assert!(
        !report.has_errors(),
        "drift is a warning: the §4 tuning loop moves knobs on purpose"
    );
}

#[test]
fn drifted_sg2042_preset_is_pf011() {
    let mut cfg = configs::milkv_hw(1);
    cfg.hierarchy.l1d.ways /= 2; // halves the 64 KiB L1D (Table 5)
    let report = preflight(&cfg);
    assert!(report.has_code("PF011"), "got:\n{}", report.render());
    assert!(!report.has_errors());
}

#[test]
fn every_catalog_platform_passes_clean() {
    for cfg in [
        configs::rocket1(4),
        configs::rocket2(4),
        configs::banana_pi_sim(4),
        configs::fast_banana_pi_sim(4),
        configs::small_boom(4),
        configs::medium_boom(4),
        configs::large_boom(4),
        configs::milkv_sim(4),
        configs::banana_pi_hw(4),
        configs::milkv_hw(4),
    ] {
        let report = preflight(&cfg);
        assert!(
            report.is_clean(),
            "{} must preflight clean:\n{}",
            cfg.name,
            report.render()
        );
    }
}

//! Mutation tests for the protocol model checker: seed a deliberate bug
//! into a known-good transition table and require the explorer to flag
//! it. A checker that passes a broken table is worse than no checker —
//! these tests are the checker's own regression harness.

use bsim_check::proto::{dist_protocol, explore, Ev};

#[test]
fn baseline_tables_explore_clean() {
    let explored = explore(&dist_protocol());
    assert!(
        explored.report.is_clean(),
        "unmutated dist table must be clean:\n{}",
        explored.report.render()
    );
}

#[test]
fn dropping_the_done_handler_is_caught() {
    // Remove the coordinator's `collecting --Done--> closed` rule: a
    // worker that finishes its plan now sends a frame the coordinator
    // has no transition for. The explorer must flag the unhandled
    // message (PV002) — and losing the only clean-completion path also
    // strands the joint state space short of quiescence (PV004).
    let mut spec = dist_protocol();
    spec.roles[1]
        .rules
        .retain(|r| !(r.state == "collecting" && r.on == Ev::Recv("Done")));
    let explored = explore(&spec);
    assert!(
        explored.report.has_code("PV002"),
        "expected PV002 for the dropped Done handler:\n{}",
        explored.report.render()
    );
}

#[test]
fn dropping_the_err_handler_is_caught() {
    // Same mutation for the failure path: a worker's `Err` frame must
    // always have a coordinator transition, or a failing worker wedges
    // its connection instead of surfacing the failure.
    let mut spec = dist_protocol();
    spec.roles[1]
        .rules
        .retain(|r| !(r.state == "collecting" && r.on == Ev::Recv("Err")));
    let explored = explore(&spec);
    assert!(
        explored.report.has_code("PV002"),
        "expected PV002 for the dropped Err handler:\n{}",
        explored.report.render()
    );
}

#[test]
fn a_worker_that_can_never_finish_is_caught() {
    // Remove the worker's `done` and `error` moves: the executing state
    // can still stream cells forever but has no way to complete, so no
    // fault-free run reaches a quiesced joint state (PV004).
    let mut spec = dist_protocol();
    spec.roles[0]
        .rules
        .retain(|r| !(r.on == Ev::Local("done") || r.on == Ev::Local("error")));
    let explored = explore(&spec);
    assert!(
        explored.report.has_code("PV004"),
        "expected PV004 when the worker cannot complete:\n{}",
        explored.report.render()
    );
}

//! Loom interleaving tests for the engine's token-channel protocol and
//! the harness's poison-flag teardown.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p bsim-check --release --test loom_channel
//! ```
//!
//! Each `loom::model` closure is executed once per distinct thread
//! interleaving (exhaustively, up to the scheduler's bound), so an
//! assertion here holds for *every* schedule, not just the one the host
//! OS happened to pick — the same strengthening FireSim gets from its
//! token protocol being host-schedule invariant by construction.

#![cfg(loom)]

use bsim_engine::{ChannelError, TokenChannel};
use loom::sync::atomic::{AtomicBool, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;

/// Batched producer/consumer over a shared channel: under every
/// interleaving the consumer observes the tokens in cycle order, exactly
/// once each, and both cursors agree at the end.
#[test]
fn batched_producer_consumer_is_order_safe_under_all_schedules() {
    loom::model(|| {
        const TOKENS: u64 = 4;
        let ch = Arc::new(Mutex::new(TokenChannel::new(2)));

        let producer = {
            let ch = Arc::clone(&ch);
            thread::spawn(move || {
                let mut next = 0u64;
                while next < TOKENS {
                    let batch: Vec<u64> = (next..TOKENS).collect();
                    let pushed = ch
                        .lock()
                        .unwrap()
                        .push_batch(next, &batch)
                        .expect("producer cycles are consecutive by construction");
                    next += pushed as u64;
                    if pushed == 0 {
                        // Channel full: the consumer owes us slack.
                        thread::yield_now();
                    }
                }
            })
        };

        let mut popped: Vec<u64> = Vec::new();
        let mut next = 0u64;
        while (popped.len() as u64) < TOKENS {
            let mut out = [0u64; TOKENS as usize];
            let got = ch
                .lock()
                .unwrap()
                .pop_batch(next, &mut out)
                .expect("consumer cycles are consecutive by construction");
            popped.extend(&out[..got]);
            next += got as u64;
            if got == 0 {
                thread::yield_now();
            }
        }
        producer.join().unwrap();

        assert_eq!(popped, (0..TOKENS).collect::<Vec<u64>>());
        let ch = ch.lock().unwrap();
        assert_eq!(ch.producer_cycle(), TOKENS);
        assert_eq!(ch.consumer_cycle(), TOKENS);
        assert_eq!(ch.buffered(), 0);
    });
}

/// The channel's cycle protocol refuses stale batches under every
/// schedule: a second push for an already-pushed cycle is `WrongCycle`
/// no matter where the consumer is.
#[test]
fn stale_push_is_rejected_under_all_schedules() {
    loom::model(|| {
        let ch = Arc::new(Mutex::new(TokenChannel::new(4)));
        let racer = {
            let ch = Arc::clone(&ch);
            thread::spawn(move || {
                let mut guard = ch.lock().unwrap();
                let _ = guard.pop_batch(0, &mut [0u64; 2]);
            })
        };
        {
            let mut guard = ch.lock().unwrap();
            guard.push_batch(0, &[7u64, 8]).unwrap();
            // Replaying cycle 0 must fail regardless of consumer progress.
            assert_eq!(
                guard.push_batch(0, &[9u64]),
                Err(ChannelError::WrongCycle {
                    expected: 2,
                    got: 0
                })
            );
        }
        racer.join().unwrap();
    });
}

/// The harness teardown protocol: a panicking model stores its payload
/// *before* the Release store of the poison flag, and every peer that
/// Acquire-loads the flag as set must observe the payload. This is the
/// happens-before edge `AbortFlag` relies on.
#[test]
fn poison_payload_is_visible_after_acquire_load() {
    loom::model(|| {
        let payload = Arc::new(Mutex::new(None::<String>));
        let poisoned = Arc::new(AtomicBool::new(false));

        let dying = {
            let payload = Arc::clone(&payload);
            let poisoned = Arc::clone(&poisoned);
            thread::spawn(move || {
                *payload.lock().unwrap() = Some("model 3 died".into());
                poisoned.store(true, Ordering::Release);
            })
        };

        if poisoned.load(Ordering::Acquire) {
            let slot = payload.lock().unwrap();
            assert!(
                slot.is_some(),
                "flag observed set but the payload write was not visible"
            );
        }
        dying.join().unwrap();
        assert!(poisoned.load(Ordering::Acquire));
        assert_eq!(payload.lock().unwrap().as_deref(), Some("model 3 died"));
    });
}

/// A consumer stalled on an empty channel must exit its spin loop when a
/// peer raises the poison flag — under every schedule, including the one
/// where the flag is raised before the consumer's first check. This is
/// the hang the PR-2 teardown fix closed; loom proves it stays closed.
#[test]
fn poisoned_consumer_stall_loop_terminates() {
    loom::model(|| {
        let ch = Arc::new(Mutex::new(TokenChannel::<u64>::new(2)));
        let poisoned = Arc::new(AtomicBool::new(false));

        let dying_producer = {
            let poisoned = Arc::clone(&poisoned);
            thread::spawn(move || {
                // Panics before producing anything; the harness's
                // catch_unwind would run this exact store.
                poisoned.store(true, Ordering::Release);
            })
        };

        // The harness's stall loop: retry Empty until token or poison.
        let mut bailed = false;
        loop {
            match ch.lock().unwrap().pop_batch(0, &mut [0u64; 1]) {
                Ok(n) if n > 0 => break,
                Ok(_) | Err(ChannelError::Empty) => {
                    if poisoned.load(Ordering::Acquire) {
                        bailed = true;
                        break;
                    }
                    thread::yield_now();
                }
                Err(e) => panic!("unexpected channel error: {e}"),
            }
        }
        assert!(
            bailed,
            "no producer exists: only the poison flag can free us"
        );
        dying_producer.join().unwrap();
    });
}

//! `bsimd` — the simulation-as-a-service daemon.
//!
//! A [`Daemon`] owns a std-TCP accept loop speaking the HTTP-lite
//! framing of [`crate::proto`], an async job queue drained by a pool of
//! worker threads, and the content-addressed [`ResultStore`]. A
//! `/submit` body parses and preflights into an [`SvcRequest`]
//! (rejected with SV/MG/CL/SC diagnostics before any worker time is
//! spent), decomposes into content-addressed cells, and fans across
//! `run_grid_resilient` with the configured retry policy.
//!
//! ## Exactly-once simulation
//!
//! Each cell key is simulated at most once, ever:
//!
//! 1. a cell first probes the store — a hit is served as the stored
//!    tree, verbatim;
//! 2. on a miss it must *claim* the key in the in-flight set. Claiming
//!    re-checks the store under the in-flight lock, and a finished cell
//!    stores its tree **before** releasing its claim — so a competitor
//!    either sees the claim (and waits on the condvar), or sees the
//!    claim gone and therefore the store populated. Identical cells in
//!    concurrent requests coalesce onto one simulation.
//!
//! A claim is released by a drop guard, so a panicking cell (retried by
//! the policy) never wedges its key.
//!
//! ## Endpoints
//!
//! | `POST /submit`       | request JSON → `202 {"job": ...}` or `400` report |
//! | `GET /status/<job>`  | state + per-request hit/simulated/coalesced counters |
//! | `GET /fetch/<job>`   | the result document (`200`), `202` while running |
//! | `GET /metrics`       | every `host.svc.*` counter as JSON |
//! | `POST /shutdown`     | drain in-flight work, flush store atomically |
//!
//! There is no OS signal handling (the workspace has no libc binding);
//! `/shutdown` is the admin path, and the store is only ever written
//! through [`ResultStore::flush`]'s temp-file + rename, so even a hard
//! kill leaves the previous complete store behind.
//!
//! ## Admission control (bsim-guard)
//!
//! The pre-guard daemon spawned one unbounded handler thread per
//! accepted connection — a connection burst *was* a thread burst. Now
//! the accept loop only enqueues: accepted sockets land in a bounded
//! backlog drained by a fixed pool of `conn_workers` connection
//! threads, each read/write-timeout-armed so a slow-loris peer times
//! out instead of pinning its worker. When the backlog is full the
//! accept loop sheds inline with `503` + `Retry-After`; when the job
//! queue is at `queue_cap` a well-formed `/submit` sheds with `429` +
//! `Retry-After`. An optional per-request deadline rides each job into
//! sweep execution: expired cells fail fast with a typed diagnostic
//! instead of burning workers on work nobody is waiting for. All of it
//! is visible as `host.guard.*` counters in `/metrics`.

use crate::proto;
use crate::request::{Cell, CellSpec, SvcRequest};
use crate::store::ResultStore;
use bsim_check::proto::Tracker;
use bsim_check::Report;
use bsim_core::{run_grid_resilient, CellOutcome, Parallelism, RetryPolicy};
use bsim_dist::launcher::{run_sweep as dist_sweep, LaunchOpts, WorkerSpawn};
use bsim_dist::WireCell;
use bsim_resilience::CkptStore;
use bsim_soc::configs;
use bsim_telemetry::CounterBlock;
use serde::Value;
use std::collections::{HashSet, VecDeque};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Locks a daemon mutex, recovering from poisoning. A cell or handler
/// that panicked while holding a lock must not cascade into every
/// other worker and connection thread panicking on `lock().unwrap()` —
/// the shared state (queues, stats, store) stays structurally valid
/// across a panic, so continuing with the inner value is safe.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Condvar wait with the same poison-recovery policy as [`lock`].
fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard)
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Per-connection error log line. The daemon keeps serving — a torn,
/// half-closed, or misbehaving peer is that connection's problem, not
/// the pool's — but the event is visible instead of silently dropped.
fn log_conn(context: &str, err: &io::Error) {
    eprintln!("bsimd: connection error ({context}): {err}");
}

/// Every counter `/metrics` exports. CI and the lifecycle tests assert
/// each of these appears in the JSON export, so a renamed counter is a
/// loud failure, not a silently vanished metric.
pub const COUNTERS: [&str; 18] = [
    "host.svc.requests.submitted",
    "host.svc.requests.rejected",
    "host.svc.requests.completed",
    "host.svc.requests.failed",
    "host.svc.queue.depth",
    "host.svc.cells.inflight",
    "host.svc.cells.total",
    "host.svc.cells.simulated",
    "host.svc.cache.hits",
    "host.svc.cache.coalesced",
    "host.svc.cache.entries",
    "host.svc.rate.cells_per_sec",
    "host.guard.conns.accepted",
    "host.guard.conns.peak",
    "host.guard.conns.shed",
    "host.guard.requests.shed",
    "host.guard.deadline.expired",
    "host.guard.store.quarantined",
];

/// `Retry-After` seconds advertised on every shed response. Small on
/// purpose: shed load is transient (a burst outran the pool), so the
/// honest advice is "come straight back".
const RETRY_AFTER_SECS: u64 = 1;

/// Daemon configuration, CLI-shaped.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Bind address; port 0 picks an ephemeral port (tests).
    pub addr: String,
    /// Backing file for the result store; `None` keeps it in memory.
    pub store_path: Option<PathBuf>,
    /// Job worker threads (jobs run concurrently up to this).
    pub workers: usize,
    /// Per-request cell budget (SV002 above this).
    pub budget: usize,
    /// Host parallelism for the cell fan *within* one job.
    pub par: Parallelism,
    /// Retry/degrade policy for poisoned cells (PR 4 semantics).
    pub retry: RetryPolicy,
    /// Scale-out worker ranks per job; 0 keeps every cell in-process.
    pub dist_ranks: usize,
    /// argv spawned per rank (`bsim dist-worker`); empty runs the ranks
    /// as in-process threads instead — same wire protocol, no processes.
    pub dist_worker: Vec<String>,
    /// Connection pool threads draining the accept backlog. The old
    /// thread-per-connection daemon is `conn_workers = usize::MAX` in
    /// spirit; bounding it is the overload protection.
    pub conn_workers: usize,
    /// Accepted connections queued ahead of the pool; beyond this the
    /// accept loop sheds inline with `503` + `Retry-After`.
    pub conn_backlog: usize,
    /// Queued jobs admitted before a well-formed `/submit` sheds with
    /// `429` + `Retry-After`.
    pub queue_cap: usize,
    /// Optional per-request deadline, stamped at submit time and
    /// enforced inside sweep execution; `None` runs unbounded.
    pub deadline: Option<Duration>,
    /// Socket read timeout armed on every pooled connection; zero means
    /// unbounded (see [`proto::WireTimeouts`]).
    pub read_timeout: Duration,
    /// Socket write timeout armed on every pooled connection; zero
    /// means unbounded.
    pub write_timeout: Duration,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        let wire = proto::WireTimeouts::default();
        DaemonConfig {
            addr: "127.0.0.1:0".into(),
            store_path: None,
            workers: 2,
            budget: 64,
            par: Parallelism::Auto,
            retry: RetryPolicy::once(),
            dist_ranks: 0,
            dist_worker: Vec::new(),
            conn_workers: 8,
            conn_backlog: 32,
            queue_cap: 64,
            deadline: None,
            read_timeout: wire.read,
            write_timeout: wire.write,
        }
    }
}

impl DaemonConfig {
    /// The guard-lint view of this configuration, preflighted by
    /// [`Daemon::spawn`] so a misconfigured admission controller is a
    /// `GD0xx` diagnostic before the first byte is accepted.
    fn guard_spec(&self) -> bsim_check::guard::GuardSpec {
        bsim_check::guard::GuardSpec {
            conn_workers: self.conn_workers,
            conn_backlog: self.conn_backlog,
            queue_cap: self.queue_cap,
            deadline_ms: self.deadline.map(|d| d.as_millis() as u64),
            retry_max_attempts: self.retry.max_attempts,
            // RetryPolicy clamps every backoff at this cap.
            retry_backoff_cap_ms: Some(bsim_resilience::retry::BACKOFF_CAP_MS),
            links: (0..self.dist_ranks)
                .map(|r| bsim_check::guard::LinkGuard {
                    name: format!("rank{r}.ctrl"),
                    // Thread-spawned ranks share this address space;
                    // argv-spawned ones cross a process boundary where
                    // only the frame CRC catches corruption.
                    remote: !self.dist_worker.is_empty(),
                    // Wire protocol v2 CRCs every frame, both spawns.
                    checksum: true,
                })
                .collect(),
        }
    }

    /// The socket timeouts pooled connections are armed with.
    fn wire_timeouts(&self) -> proto::WireTimeouts {
        proto::WireTimeouts {
            read: self.read_timeout,
            write: self.write_timeout,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Failed,
}

impl JobState {
    fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

/// Per-request accounting, shared with the worker closure.
#[derive(Default)]
struct JobStats {
    hits: AtomicU64,
    simulated: AtomicU64,
    coalesced: AtomicU64,
}

struct Job {
    id: String,
    state: JobState,
    cells: Vec<Cell>,
    body: Option<String>,
    stats: Arc<JobStats>,
    /// Absolute expiry stamped at submit; cells past it fail fast.
    deadline: Option<Instant>,
}

#[derive(Default)]
struct Jobs {
    queue: VecDeque<usize>,
    table: Vec<Job>,
}

#[derive(Default)]
struct Stats {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cells_total: AtomicU64,
    cells_simulated: AtomicU64,
    cache_hits: AtomicU64,
    coalesced: AtomicU64,
    // bsim-guard admission/integrity counters (`host.guard.*`).
    conns_accepted: AtomicU64,
    conns_active: AtomicU64,
    conns_peak: AtomicU64,
    conns_shed: AtomicU64,
    requests_shed: AtomicU64,
    deadline_expired: AtomicU64,
    store_quarantined: AtomicU64,
}

struct Shared {
    cfg: DaemonConfig,
    self_addr: SocketAddr,
    jobs: Mutex<Jobs>,
    jobs_cv: Condvar,
    store: Mutex<ResultStore>,
    inflight: Mutex<HashSet<String>>,
    inflight_cv: Condvar,
    /// Accepted-but-unserved connections, bounded at `conn_backlog`.
    conns: Mutex<VecDeque<TcpStream>>,
    conns_cv: Condvar,
    stats: Stats,
    shutdown: AtomicBool,
    started: Instant,
}

/// A running daemon: the ephemeral-port address plus the accept-loop,
/// connection-pool, and job-worker threads to join on shutdown.
pub struct Daemon {
    addr: SocketAddr,
    accept: JoinHandle<()>,
    conn_pool: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// Tests pin races deterministically through the live state (claim
    /// an inflight key, watch the backlog drain); production code only
    /// reaches it through the wire.
    #[cfg_attr(not(test), allow(dead_code))]
    shared: Arc<Shared>,
}

impl Daemon {
    /// Binds, opens (and possibly quarantines/verifies) the store, and
    /// starts the job workers, connection pool, and accept loop. The
    /// [`Report`] carries any SV003–SV005 store findings plus the
    /// `GD0xx` guard-config preflight — the daemon still starts (pool
    /// sizes are clamped to at least 1), so a degraded configuration is
    /// loud but not fatal.
    pub fn spawn(cfg: DaemonConfig) -> io::Result<(Daemon, Report)> {
        let (store, mut report) = match &cfg.store_path {
            Some(path) => ResultStore::open(path),
            None => (ResultStore::ephemeral(), Report::new()),
        };
        bsim_check::guard::guard_lints().run_into(&cfg.guard_spec(), "daemon.guard", &mut report);
        let quarantined = ["SV003", "SV004", "SV005"]
            .iter()
            .map(|c| report.with_code(c).count())
            .sum::<usize>() as u64;
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cfg,
            self_addr: addr,
            jobs: Mutex::new(Jobs::default()),
            jobs_cv: Condvar::new(),
            store: Mutex::new(store),
            inflight: Mutex::new(HashSet::new()),
            inflight_cv: Condvar::new(),
            conns: Mutex::new(VecDeque::new()),
            conns_cv: Condvar::new(),
            stats: Stats::default(),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
        });
        shared
            .stats
            .store_quarantined
            .store(quarantined, Ordering::SeqCst);
        let workers = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let sh = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&sh))
            })
            .collect();
        let conn_pool = (0..shared.cfg.conn_workers.max(1))
            .map(|_| {
                let sh = Arc::clone(&shared);
                std::thread::spawn(move || conn_loop(&sh))
            })
            .collect();
        let accept = {
            let sh = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&sh, &listener))
        };
        Ok((
            Daemon {
                addr,
                accept,
                conn_pool,
                workers,
                shared,
            },
            report,
        ))
    }

    /// The bound address (`127.0.0.1:<ephemeral>` when port 0 was asked).
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// Blocks until `/shutdown` stops the daemon, then joins all
    /// threads — the body of `bsim serve`.
    pub fn join(self) {
        self.accept.join().ok();
        for c in self.conn_pool {
            c.join().ok();
        }
        for w in self.workers {
            w.join().ok();
        }
    }
}

/// The accept loop only ever *enqueues or sheds* — it never reads a
/// byte. A slow or hostile peer therefore cannot stall accepting, and a
/// connection burst is bounded by `conn_backlog` plus the pool instead
/// of becoming a thread burst.
fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        shared.stats.conns_accepted.fetch_add(1, Ordering::SeqCst);
        {
            let mut conns = lock(&shared.conns);
            if conns.len() < shared.cfg.conn_backlog.max(1) {
                conns.push_back(stream);
                drop(conns);
                shared.conns_cv.notify_one();
                continue;
            }
        }
        // Backlog full: shed inline with an honest 503 + Retry-After.
        // No request byte has been read, so no protocol tracker is
        // driven — in the PV model this connection never enters the
        // exchange, the same shape as an OS-level reset.
        shared.stats.conns_shed.fetch_add(1, Ordering::SeqCst);
        shared.cfg.wire_timeouts().apply(&stream).ok();
        let body = json_line(&[("error", Value::Str("connection backlog is full".into()))]);
        if let Err(e) = proto::write_response_retry(
            &mut stream,
            503,
            "Service Unavailable",
            RETRY_AFTER_SECS,
            &body,
        ) {
            log_conn("shedding connection", &e);
        }
    }
    // Wake the pool so every thread observes the shutdown flag after
    // draining whatever the backlog still holds.
    shared.conns_cv.notify_all();
}

/// One connection-pool thread: pop, arm timeouts, serve, repeat. Exits
/// when the daemon is shutting down and the backlog is drained.
fn conn_loop(shared: &Arc<Shared>) {
    loop {
        let stream = {
            let mut conns = lock(&shared.conns);
            loop {
                if let Some(s) = conns.pop_front() {
                    break s;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                conns = wait(&shared.conns_cv, conns);
            }
        };
        let active = shared.stats.conns_active.fetch_add(1, Ordering::SeqCst) + 1;
        shared.stats.conns_peak.fetch_max(active, Ordering::SeqCst);
        // Arm both socket directions before the first read: a slow-loris
        // peer times out with a typed io error instead of pinning this
        // pool thread forever.
        if let Err(e) = shared.cfg.wire_timeouts().apply(&stream) {
            log_conn("arming socket timeouts", &e);
        }
        handle(shared, stream);
        shared.stats.conns_active.fetch_sub(1, Ordering::SeqCst);
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let idx = {
            let mut jobs = lock(&shared.jobs);
            loop {
                if let Some(i) = jobs.queue.pop_front() {
                    break i;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                jobs = wait(&shared.jobs_cv, jobs);
            }
        };
        // A panic anywhere in the job path (cell panics are already
        // caught by the retry policy, but rendering or accounting could
        // still blow up) must not strip this worker from the pool or
        // leave the job wedged in Running, which would hang a draining
        // /shutdown forever.
        if let Err(payload) =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_job(shared, idx)))
        {
            let msg = bsim_resilience::retry::panic_message(payload.as_ref());
            eprintln!("bsimd: job {} panicked: {msg}", idx + 1);
            shared.stats.failed.fetch_add(1, Ordering::SeqCst);
            let mut jobs = lock(&shared.jobs);
            let job = &mut jobs.table[idx];
            job.state = JobState::Failed;
            job.body = Some(json_line(&[(
                "error",
                Value::Str(format!("job panicked: {msg}")),
            )]));
            shared.jobs_cv.notify_all();
        }
    }
}

fn run_job(shared: &Arc<Shared>, idx: usize) {
    let (cells, stats, deadline) = {
        let mut jobs = lock(&shared.jobs);
        let job = &mut jobs.table[idx];
        job.state = JobState::Running;
        (job.cells.clone(), Arc::clone(&job.stats), job.deadline)
    };
    let expired = deadline.is_some_and(|d| Instant::now() >= d);
    if shared.cfg.dist_ranks > 0 && !expired {
        prewarm_dist(shared, &cells);
    }
    let sweep = run_grid_resilient(cells.len(), shared.cfg.par, &shared.cfg.retry, |i| {
        exec_cell(shared, &stats, &cells[i], deadline)
    });
    let (state, body) = if sweep.all_ok() {
        shared.stats.completed.fetch_add(1, Ordering::SeqCst);
        (JobState::Done, render_body(&cells, &sweep.outcomes))
    } else {
        shared.stats.failed.fetch_add(1, Ordering::SeqCst);
        (JobState::Failed, render_failure(&cells, &sweep.outcomes))
    };
    let mut jobs = lock(&shared.jobs);
    let job = &mut jobs.table[idx];
    job.state = state;
    job.body = Some(body);
    // Wake both idle workers and a draining /shutdown handler.
    shared.jobs_cv.notify_all();
}

/// The wire form of a cell spec, when it has one. `Fig` and `Tune` name
/// their work directly; a `Micro` cell travels by catalog name, so only
/// a config that *is* its catalog entry (which is how the preflight
/// builds them) can be dispatched — anything custom stays local.
fn to_wire(spec: &CellSpec) -> Option<WireCell> {
    match spec {
        CellSpec::Micro { cfg, kernel, scale } => {
            (configs::by_name(&cfg.name, 1).as_ref() == Some(&**cfg)).then(|| WireCell::Micro {
                platform: cfg.name.clone(),
                kernel: kernel.clone(),
                scale: *scale,
            })
        }
        CellSpec::Fig { id, sizes, index } => Some(WireCell::Fig {
            id: id.clone(),
            sizes: sizes.clone(),
            index: *index,
        }),
        CellSpec::Tune { scale } => Some(WireCell::Tune { scale: *scale }),
    }
}

/// Scale-out dispatch: ship the job's not-yet-cached cells to the dist
/// worker ranks and seed the result store with what comes back, so the
/// in-process sweep below sees them as plain cache hits. Cell results
/// are bit-identical across schedules by construction, so seeding the
/// store from a rank is indistinguishable from simulating locally. On
/// any dispatch failure the cells simply stay missing and run locally —
/// scale-out is an accelerator, never a correctness dependency.
fn prewarm_dist(shared: &Shared, cells: &[Cell]) {
    let todo: Vec<(usize, WireCell)> = cells
        .iter()
        .enumerate()
        .filter(|(_, c)| lock(&shared.store).get(&c.key).is_none())
        .filter_map(|(i, c)| to_wire(&c.spec).map(|w| (i, w)))
        .collect();
    if todo.is_empty() {
        return;
    }
    let wire: Vec<WireCell> = todo.iter().map(|(_, w)| w.clone()).collect();
    let opts = LaunchOpts {
        ranks: shared.cfg.dist_ranks,
        spawn: if shared.cfg.dist_worker.is_empty() {
            WorkerSpawn::Thread
        } else {
            WorkerSpawn::Process(shared.cfg.dist_worker.clone())
        },
        silence_budget: std::time::Duration::from_secs(120),
        kill: None,
        max_respawns: 3,
        io_timeout: std::time::Duration::from_secs(120),
        wire_fault: None,
    };
    let mut scratch = CkptStore::new();
    match dist_sweep(&wire, &opts, &mut scratch) {
        Ok(outcome) => {
            let mut seeded = 0usize;
            for ((i, _), (label, json)) in todo.iter().zip(outcome.results) {
                match serde_json::from_str(&json) {
                    Ok(tree) => {
                        lock(&shared.store).put(&cells[*i].key, &tree);
                        seeded += 1;
                    }
                    Err(_) => {
                        eprintln!("bsimd: rank result for {label} is not JSON; re-running locally")
                    }
                }
            }
            eprintln!(
                "bsimd: dist ranks seeded {seeded}/{} cells (respawns: {})",
                todo.len(),
                outcome.respawns
            );
        }
        Err(e) => {
            eprintln!("bsimd: dist dispatch failed ({e}); falling back to local execution");
        }
    }
}

/// Releases an in-flight claim even when the cell panics mid-compute,
/// so a retried cell can re-claim instead of deadlocking on itself.
struct Claim<'a> {
    shared: &'a Shared,
    key: &'a str,
}

impl Drop for Claim<'_> {
    fn drop(&mut self) {
        lock(&self.shared.inflight).remove(self.key);
        self.shared.inflight_cv.notify_all();
    }
}

fn exec_cell(shared: &Shared, job: &JobStats, cell: &Cell, deadline: Option<Instant>) -> Value {
    shared.stats.cells_total.fetch_add(1, Ordering::SeqCst);
    let hit = |tree: Value| {
        shared.stats.cache_hits.fetch_add(1, Ordering::SeqCst);
        job.hits.fetch_add(1, Ordering::SeqCst);
        tree
    };
    let mut counted_wait = false;
    loop {
        // Deadline gate, re-checked after every coalesce wake: work
        // nobody is waiting for anymore fails fast with a typed
        // diagnostic (the retry layer renders the panic message into
        // the job's failure body) instead of occupying a worker.
        if deadline.is_some_and(|d| Instant::now() >= d) {
            shared.stats.deadline_expired.fetch_add(1, Ordering::SeqCst);
            panic!("request deadline exceeded");
        }
        if let Some(tree) = lock(&shared.store).get(&cell.key) {
            return hit(tree);
        }
        let mut inflight = lock(&shared.inflight);
        if !inflight.contains(&cell.key) {
            // Re-check under the claim lock: a racing winner stores its
            // tree *before* releasing its claim, so "no claim" +
            // "store miss" here proves nobody has simulated this key.
            if let Some(tree) = lock(&shared.store).get(&cell.key) {
                return hit(tree);
            }
            inflight.insert(cell.key.clone());
            break;
        }
        if !counted_wait {
            counted_wait = true;
            shared.stats.coalesced.fetch_add(1, Ordering::SeqCst);
            job.coalesced.fetch_add(1, Ordering::SeqCst);
        }
        let _unused: MutexGuard<'_, _> = wait(&shared.inflight_cv, inflight);
    }
    let claim = Claim {
        shared,
        key: &cell.key,
    };
    let tree = cell.spec.run(shared.cfg.par);
    lock(&shared.store).put(&cell.key, &tree);
    shared.stats.cells_simulated.fetch_add(1, Ordering::SeqCst);
    job.simulated.fetch_add(1, Ordering::SeqCst);
    drop(claim);
    tree
}

/// The result document: schema header plus one entry per cell, in
/// request order. Rendered from the exact trees the store holds, so a
/// cache-served response is byte-identical to the simulated one.
fn render_body(cells: &[Cell], outcomes: &[CellOutcome<Value>]) -> String {
    let entries = cells
        .iter()
        .zip(outcomes)
        .map(|(c, o)| {
            let tree = match o {
                CellOutcome::Ok { value, .. } => value.clone(),
                CellOutcome::Failed { .. } => unreachable!("render_body needs all_ok"),
            };
            Value::Map(vec![
                ("key".into(), Value::Str(c.key.clone())),
                ("label".into(), Value::Str(c.label.clone())),
                ("result".into(), tree),
            ])
        })
        .collect();
    let doc = Value::Map(vec![
        ("schema".into(), Value::Str(crate::key::STORE_SCHEMA.into())),
        ("cells".into(), Value::Seq(entries)),
    ]);
    serde_json::to_string_pretty(&doc).expect("shim renderer is total") // bsim: allow(AU002) invariant stated in the message
}

fn render_failure(cells: &[Cell], outcomes: &[CellOutcome<Value>]) -> String {
    let entries = cells
        .iter()
        .zip(outcomes)
        .filter_map(|(c, o)| match o {
            CellOutcome::Failed { diag, attempts } => Some(Value::Map(vec![
                ("key".into(), Value::Str(c.key.clone())),
                ("label".into(), Value::Str(c.label.clone())),
                ("attempts".into(), Value::U64(u64::from(*attempts))),
                ("diag".into(), Value::Str(diag.clone())),
            ])),
            CellOutcome::Ok { .. } => None,
        })
        .collect();
    let doc = Value::Map(vec![
        (
            "error".into(),
            Value::Str("cells failed every attempt".into()),
        ),
        ("failed_cells".into(), Value::Seq(entries)),
    ]);
    serde_json::to_string_pretty(&doc).expect("shim renderer is total") // bsim: allow(AU002) invariant stated in the message
}

fn metrics_json(shared: &Shared) -> String {
    let mut block = CounterBlock::new(true);
    let s = &shared.stats;
    let get = |a: &AtomicU64| a.load(Ordering::SeqCst);
    block.set_named("host.svc.requests.submitted", get(&s.submitted));
    block.set_named("host.svc.requests.rejected", get(&s.rejected));
    block.set_named("host.svc.requests.completed", get(&s.completed));
    block.set_named("host.svc.requests.failed", get(&s.failed));
    block.set_named(
        "host.svc.queue.depth",
        lock(&shared.jobs).queue.len() as u64,
    );
    block.set_named(
        "host.svc.cells.inflight",
        lock(&shared.inflight).len() as u64,
    );
    block.set_named("host.svc.cells.total", get(&s.cells_total));
    block.set_named("host.svc.cells.simulated", get(&s.cells_simulated));
    block.set_named("host.svc.cache.hits", get(&s.cache_hits));
    block.set_named("host.svc.cache.coalesced", get(&s.coalesced));
    block.set_named("host.svc.cache.entries", lock(&shared.store).len() as u64);
    let ms = shared.started.elapsed().as_millis().max(1) as u64;
    block.set_named(
        "host.svc.rate.cells_per_sec",
        get(&s.cells_total) * 1000 / ms,
    );
    block.set_named("host.guard.conns.accepted", get(&s.conns_accepted));
    block.set_named("host.guard.conns.peak", get(&s.conns_peak));
    block.set_named("host.guard.conns.shed", get(&s.conns_shed));
    block.set_named("host.guard.requests.shed", get(&s.requests_shed));
    block.set_named("host.guard.deadline.expired", get(&s.deadline_expired));
    block.set_named("host.guard.store.quarantined", get(&s.store_quarantined));
    let doc = Value::Map(
        block
            .counters()
            .map(|(name, v)| (name.to_string(), Value::U64(v)))
            .collect(),
    );
    serde_json::to_string_pretty(&doc).expect("shim renderer is total") // bsim: allow(AU002) invariant stated in the message
}

fn respond(stream: &mut TcpStream, status: u16, reason: &str, body: &str) {
    if let Err(e) = proto::write_response(stream, status, reason, body) {
        log_conn("writing response", &e);
    }
}

/// Respond *through* the protocol table: the daemon's current table state
/// plus the response's message class name the `Local` transition that must
/// exist for this response to be legal. A miss means the handler drifted
/// from the model — logged (and asserted in debug builds), never served
/// differently, so the model checker's view and the wire stay aligned.
fn respond_tracked(
    tracker: &mut Tracker<'_>,
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &str,
) {
    track_response(tracker, status);
    respond(stream, status, reason, body);
}

/// [`respond_tracked`] for shed responses: the same table step, but the
/// response carries a `Retry-After` header so well-behaved clients back
/// off instead of hammering a loaded daemon.
fn respond_tracked_retry(
    tracker: &mut Tracker<'_>,
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    retry_after_secs: u64,
    body: &str,
) {
    track_response(tracker, status);
    if let Err(e) = proto::write_response_retry(stream, status, reason, retry_after_secs, body) {
        log_conn("writing response", &e);
    }
}

/// Steps the tracker for a response about to be served: the daemon's
/// current table state plus the response's message class name the
/// `Local` transition that must exist for this response to be legal.
fn track_response(tracker: &mut Tracker<'_>, status: u16) {
    let tag = match (tracker.state(), proto::response_event(status)) {
        ("submitted", "Ok") => "accept",
        ("submitted", "Busy") => "busy",
        ("submitted", _) => "reject",
        ("queried", "Ok") => "found",
        ("queried", "Busy") => "shed",
        ("queried", _) => "missing",
        ("admin", "Busy") => "shed",
        ("admin", _) => "ack",
        // Already terminal (the `Bad` transition responded on receipt).
        _ => "",
    };
    if !tag.is_empty() {
        match tracker.local(tag) {
            Ok(send) => debug_assert_eq!(send, Some(proto::response_event(status))),
            Err(v) => {
                debug_assert!(false, "response drifted from the protocol table: {v}");
                eprintln!("svc: {v}");
            }
        }
    }
}

fn json_line(fields: &[(&str, Value)]) -> String {
    let doc = Value::Map(
        fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    );
    serde_json::to_string(&doc).expect("shim renderer is total") // bsim: allow(AU002) invariant stated in the message
}

fn handle(shared: &Arc<Shared>, mut stream: TcpStream) {
    let Some(mut tracker) = Tracker::new(bsim_check::proto::svc_cached(), "daemon") else {
        // Unreachable for the built-in table; degrade to a served error.
        respond(&mut stream, 500, "Internal Server Error", "{}");
        return;
    };
    let peer = match stream.try_clone() {
        Ok(p) => p,
        Err(e) => {
            log_conn("cloning stream", &e);
            return;
        }
    };
    let req = match proto::read_request(&mut BufReader::new(peer)) {
        Ok(r) => r,
        // Torn or half-closed connection: nothing to respond to, and
        // nothing worth panicking over — a table transition to `lost`,
        // logged, and the daemon keeps serving.
        Err(e) => {
            let stepped = if e.kind() == io::ErrorKind::UnexpectedEof {
                tracker.eof()
            } else {
                tracker.torn()
            };
            debug_assert!(stepped.is_ok(), "{stepped:?}");
            log_conn("reading request", &e);
            return;
        }
    };
    // The table is the dispatcher: the request's message class must have a
    // transition out of `read`, and handlers answer through the table too
    // (`respond_tracked`), so model and implementation cannot drift.
    let ev = req.event();
    if let Err(v) = tracker.recv(ev) {
        debug_assert!(false, "request classification drifted from the table: {v}");
        eprintln!("svc: {v}");
        respond(&mut stream, 400, "Bad Request", "{}");
        return;
    }
    match ev {
        "Submit" => handle_submit(shared, &mut tracker, &mut stream, &req.body),
        "Status" => handle_status(
            shared,
            &mut tracker,
            &mut stream,
            req.path.strip_prefix("/status/").unwrap_or_default(),
        ),
        "Fetch" => handle_fetch(
            shared,
            &mut tracker,
            &mut stream,
            req.path.strip_prefix("/fetch/").unwrap_or_default(),
        ),
        "Metrics" => {
            let body = metrics_json(shared);
            respond_tracked(&mut tracker, &mut stream, 200, "OK", &body);
        }
        "Shutdown" => handle_shutdown(shared, &mut tracker, &mut stream),
        // `Bad`: the Recv transition already moved the table to `closed`
        // with a Reject-class send — exactly what a 404 is.
        _ => respond(
            &mut stream,
            404,
            "Not Found",
            &json_line(&[(
                "error",
                Value::Str(format!("no endpoint {} {}", req.method, req.path)),
            )]),
        ),
    }
    debug_assert!(tracker.is_terminal(), "handler left the table mid-exchange");
}

fn handle_submit(
    shared: &Arc<Shared>,
    tracker: &mut Tracker<'_>,
    stream: &mut TcpStream,
    body: &str,
) {
    let checked = SvcRequest::parse(body).and_then(|r| {
        let report = r.preflight(shared.cfg.budget);
        if report.has_errors() {
            Err(report)
        } else {
            Ok(r)
        }
    });
    let request = match checked {
        Ok(r) => r,
        Err(report) => {
            shared.stats.rejected.fetch_add(1, Ordering::SeqCst);
            respond_tracked(tracker, stream, 400, "Bad Request", &report.to_json());
            return;
        }
    };
    if shared.shutdown.load(Ordering::SeqCst) {
        respond_tracked(
            tracker,
            stream,
            503,
            "Service Unavailable",
            &json_line(&[("error", Value::Str("daemon is draining".into()))]),
        );
        return;
    }
    let cells = request.cells();
    let cell_count = cells.len();
    // Deadline is stamped at admission: it bounds the whole queued +
    // running lifetime, which is what a waiting client experiences.
    let deadline = shared.cfg.deadline.map(|d| Instant::now() + d);
    let id = {
        let mut jobs = lock(&shared.jobs);
        if jobs.queue.len() >= shared.cfg.queue_cap.max(1) {
            drop(jobs);
            shared.stats.requests_shed.fetch_add(1, Ordering::SeqCst);
            respond_tracked_retry(
                tracker,
                stream,
                429,
                "Too Many Requests",
                RETRY_AFTER_SECS,
                &json_line(&[("error", Value::Str("job queue is at capacity".into()))]),
            );
            return;
        }
        let idx = jobs.table.len();
        let id = format!("job-{}", idx + 1);
        jobs.table.push(Job {
            id: id.clone(),
            state: JobState::Queued,
            cells,
            body: None,
            stats: Arc::new(JobStats::default()),
            deadline,
        });
        jobs.queue.push_back(idx);
        shared.stats.submitted.fetch_add(1, Ordering::SeqCst);
        shared.jobs_cv.notify_all();
        id
    };
    respond_tracked(
        tracker,
        stream,
        202,
        "Accepted",
        &json_line(&[
            ("job", Value::Str(id)),
            ("cells", Value::U64(cell_count as u64)),
            ("state", Value::Str("queued".into())),
        ]),
    );
}

fn handle_status(
    shared: &Arc<Shared>,
    tracker: &mut Tracker<'_>,
    stream: &mut TcpStream,
    id: &str,
) {
    let jobs = lock(&shared.jobs);
    let Some(job) = jobs.table.iter().find(|j| j.id == id) else {
        drop(jobs);
        respond_tracked(
            tracker,
            stream,
            404,
            "Not Found",
            &json_line(&[("error", Value::Str(format!("unknown job {id:?}")))]),
        );
        return;
    };
    let body = json_line(&[
        ("job", Value::Str(job.id.clone())),
        ("state", Value::Str(job.state.label().into())),
        ("cells", Value::U64(job.cells.len() as u64)),
        ("hits", Value::U64(job.stats.hits.load(Ordering::SeqCst))),
        (
            "simulated",
            Value::U64(job.stats.simulated.load(Ordering::SeqCst)),
        ),
        (
            "coalesced",
            Value::U64(job.stats.coalesced.load(Ordering::SeqCst)),
        ),
    ]);
    drop(jobs);
    respond_tracked(tracker, stream, 200, "OK", &body);
}

fn handle_fetch(shared: &Arc<Shared>, tracker: &mut Tracker<'_>, stream: &mut TcpStream, id: &str) {
    let jobs = lock(&shared.jobs);
    let Some(job) = jobs.table.iter().find(|j| j.id == id) else {
        drop(jobs);
        respond_tracked(
            tracker,
            stream,
            404,
            "Not Found",
            &json_line(&[("error", Value::Str(format!("unknown job {id:?}")))]),
        );
        return;
    };
    let (state, body) = (job.state, job.body.clone());
    let pending = json_line(&[
        ("job", Value::Str(job.id.clone())),
        ("state", Value::Str(state.label().into())),
    ]);
    drop(jobs);
    // A Done/Failed job always has a body, but a missing one must
    // degrade to a served error, not a panicking connection thread.
    let body = body.unwrap_or_else(|| {
        json_line(&[("error", Value::Str("job finished without a body".into()))])
    });
    match state {
        JobState::Done => respond_tracked(tracker, stream, 200, "OK", &body),
        JobState::Failed => respond_tracked(tracker, stream, 500, "Internal Server Error", &body),
        JobState::Queued | JobState::Running => {
            respond_tracked(tracker, stream, 202, "Accepted", &pending)
        }
    }
}

fn handle_shutdown(shared: &Arc<Shared>, tracker: &mut Tracker<'_>, stream: &mut TcpStream) {
    shared.shutdown.store(true, Ordering::SeqCst);
    shared.jobs_cv.notify_all();
    // Drain: every queued job still runs to completion before the store
    // flushes — a `/shutdown` never abandons accepted work.
    {
        let mut jobs = lock(&shared.jobs);
        while !jobs.queue.is_empty()
            || jobs
                .table
                .iter()
                .any(|j| matches!(j.state, JobState::Queued | JobState::Running))
        {
            jobs = wait(&shared.jobs_cv, jobs);
        }
    }
    let (entries, flushed) = {
        let store = lock(&shared.store);
        (store.len() as u64, store.flush())
    };
    let body = match flushed {
        Ok(bytes) => json_line(&[
            ("ok", Value::Bool(true)),
            ("entries", Value::U64(entries)),
            ("flushed_bytes", Value::U64(bytes)),
        ]),
        Err(e) => json_line(&[
            ("ok", Value::Bool(false)),
            ("error", Value::Str(e.to_string())),
        ]),
    };
    respond_tracked(tracker, stream, 200, "OK", &body);
    // Unblock the accept loop: it re-checks the shutdown flag per
    // connection, so one wake-up connection to ourselves ends it.
    TcpStream::connect(shared.self_addr).ok();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::roundtrip;

    fn daemon() -> Daemon {
        let (d, report) = Daemon::spawn(DaemonConfig::default()).unwrap();
        assert!(report.is_clean(), "{report}");
        d
    }

    #[test]
    fn metrics_always_exports_every_counter() {
        let d = daemon();
        let (status, body) = roundtrip(&d.addr(), "GET", "/metrics", "").unwrap();
        assert_eq!(status, 200);
        for name in COUNTERS {
            assert!(
                body.contains(&format!("\"{name}\"")),
                "{name} missing: {body}"
            );
        }
        roundtrip(&d.addr(), "POST", "/shutdown", "").unwrap();
        d.join();
    }

    #[test]
    fn unknown_endpoint_and_job_are_404() {
        let d = daemon();
        let (status, _) = roundtrip(&d.addr(), "GET", "/nope", "").unwrap();
        assert_eq!(status, 404);
        let (status, body) = roundtrip(&d.addr(), "GET", "/fetch/job-99", "").unwrap();
        assert_eq!(status, 404, "{body}");
        roundtrip(&d.addr(), "POST", "/shutdown", "").unwrap();
        d.join();
    }

    #[test]
    fn half_closed_and_torn_sockets_leave_the_daemon_serving() {
        use std::io::Write;
        use std::net::{Shutdown, TcpStream};

        let d = daemon();

        // A peer that connects and vanishes without a byte.
        drop(TcpStream::connect(d.addr()).unwrap());

        // A peer that half-closes mid-headers: the connection thread
        // sees "connection closed inside headers" and must log-and-move-
        // on, not panic.
        let mut partial = TcpStream::connect(d.addr()).unwrap();
        partial
            .write_all(b"POST /submit HTTP/1.1\r\nContent-")
            .unwrap();
        partial.shutdown(Shutdown::Write).unwrap();
        drop(partial);

        // A peer that promises a body and never delivers it.
        let mut liar = TcpStream::connect(d.addr()).unwrap();
        liar.write_all(b"POST /submit HTTP/1.1\r\nContent-Length: 100\r\n\r\n{")
            .unwrap();
        liar.shutdown(Shutdown::Write).unwrap();
        drop(liar);

        // A peer that sends a clean request but half-closes its write
        // side before the response: the daemon still answers into the
        // open read half.
        let mut early = TcpStream::connect(d.addr()).unwrap();
        early.write_all(b"GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        early.shutdown(Shutdown::Write).unwrap();
        let mut answer = String::new();
        std::io::Read::read_to_string(&mut early, &mut answer).unwrap();
        assert!(answer.contains("host.svc.requests.submitted"), "{answer}");
        drop(early);

        // After all of that abuse the daemon serves normally.
        let (status, body) = roundtrip(&d.addr(), "GET", "/metrics", "").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("host.svc.cells.total"), "{body}");
        roundtrip(&d.addr(), "POST", "/shutdown", "").unwrap();
        d.join();
    }

    #[test]
    fn dist_dispatched_jobs_are_byte_identical_to_local_ones() {
        let submit = "{\"kind\":\"sweep\",\"platforms\":[\"Rocket 1\"],\
                      \"kernels\":[\"Cca\",\"EI\"],\"scale\":1}";
        let fetch = |cfg: DaemonConfig| {
            let (d, report) = Daemon::spawn(cfg).unwrap();
            assert!(report.is_clean(), "{report}");
            let (status, body) = roundtrip(&d.addr(), "POST", "/submit", submit).unwrap();
            assert_eq!(status, 202, "{body}");
            let job = body
                .split('"')
                .nth(3)
                .expect("submit answers {\"job\": ...}")
                .to_string();
            let path = format!("/fetch/{job}");
            let body = loop {
                let (status, body) = roundtrip(&d.addr(), "GET", &path, "").unwrap();
                match status {
                    200 => break body,
                    202 => std::thread::sleep(std::time::Duration::from_millis(20)),
                    other => panic!("fetch answered {other}: {body}"),
                }
            };
            roundtrip(&d.addr(), "POST", "/shutdown", "").unwrap();
            d.join();
            body
        };
        let local = fetch(DaemonConfig::default());
        let dist = fetch(DaemonConfig {
            dist_ranks: 2,
            ..DaemonConfig::default()
        });
        assert_eq!(
            local, dist,
            "rank-dispatched results serve byte-identically"
        );
    }

    #[test]
    fn bursts_beyond_the_backlog_shed_with_retry_after() {
        use std::net::TcpStream;
        let (d, report) = Daemon::spawn(DaemonConfig {
            conn_workers: 1,
            conn_backlog: 1,
            ..DaemonConfig::default()
        })
        .unwrap();
        assert!(report.is_clean(), "{report}");
        // Pin the single pool worker with a connection that never sends
        // a byte, then park a second one in the one-slot backlog.
        let pinned = TcpStream::connect(d.addr()).unwrap();
        while d.shared.stats.conns_active.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        let parked = TcpStream::connect(d.addr()).unwrap();
        while lock(&d.shared.conns).is_empty() {
            std::thread::sleep(Duration::from_millis(2));
        }
        // The third connection overflows the backlog: the accept loop
        // sheds it with 503 + Retry-After without reading a byte.
        let shed = TcpStream::connect(d.addr()).unwrap();
        let (status, headers, body) = proto::read_response_full(&mut BufReader::new(shed)).unwrap();
        assert_eq!(status, 503, "{body}");
        assert_eq!(
            headers
                .iter()
                .find(|(k, _)| k == "retry-after")
                .map(|(_, v)| v.as_str()),
            Some("1"),
            "{headers:?}"
        );
        // Releasing the pinned sockets frees the pool (clean EOFs). Wait
        // for the backlog to drain so the metrics probe below cannot
        // itself be shed, then the daemon serves normally with the shed
        // on the books.
        drop(pinned);
        drop(parked);
        while !lock(&d.shared.conns).is_empty() {
            std::thread::sleep(Duration::from_millis(2));
        }
        let (_, metrics) = roundtrip(&d.addr(), "GET", "/metrics", "").unwrap();
        assert!(
            metrics.contains("\"host.guard.conns.shed\": 1"),
            "{metrics}"
        );
        assert!(
            metrics.contains("\"host.guard.conns.peak\": 1"),
            "one pool worker caps concurrency at one: {metrics}"
        );
        roundtrip(&d.addr(), "POST", "/shutdown", "").unwrap();
        d.join();
    }

    #[test]
    fn a_full_job_queue_sheds_submits_with_429_and_admits_identically() {
        let submit = "{\"kind\":\"sweep\",\"platforms\":[\"Rocket 1\"],\
                      \"kernels\":[\"Cca\"],\"scale\":1}";
        let (d, report) = Daemon::spawn(DaemonConfig {
            workers: 1,
            queue_cap: 1,
            ..DaemonConfig::default()
        })
        .unwrap();
        assert!(report.is_clean(), "{report}");
        // Pre-claim the cell every copy of this request resolves to, so
        // the single job worker blocks in the coalesce wait — pinning
        // job 1 in Running and job 2 in the queue, deterministically.
        let key = SvcRequest::parse(submit).unwrap().cells()[0].key.clone();
        lock(&d.shared.inflight).insert(key.clone());
        let (s1, _) = roundtrip(&d.addr(), "POST", "/submit", submit).unwrap();
        assert_eq!(s1, 202);
        while !lock(&d.shared.jobs).queue.is_empty() {
            std::thread::sleep(Duration::from_millis(2));
        }
        let (s2, _) = roundtrip(&d.addr(), "POST", "/submit", submit).unwrap();
        assert_eq!(s2, 202);
        // Queue is now at queue_cap: the next well-formed submit sheds.
        let (s3, headers, body) = proto::roundtrip_with(
            &d.addr(),
            "POST",
            "/submit",
            submit,
            proto::WireTimeouts::default(),
        )
        .unwrap();
        assert_eq!(s3, 429, "{body}");
        assert!(
            headers.iter().any(|(k, v)| k == "retry-after" && v == "1"),
            "{headers:?}"
        );
        // Release the claim: both admitted jobs complete, and the
        // queued one serves byte-identically to the first.
        lock(&d.shared.inflight).remove(&key);
        d.shared.inflight_cv.notify_all();
        let fetch = |job: &str| loop {
            let (status, body) = roundtrip(&d.addr(), "GET", &format!("/fetch/{job}"), "").unwrap();
            match status {
                200 => break body,
                202 => std::thread::sleep(Duration::from_millis(5)),
                other => panic!("fetch answered {other}: {body}"),
            }
        };
        assert_eq!(fetch("job-1"), fetch("job-2"));
        let (_, metrics) = roundtrip(&d.addr(), "GET", "/metrics", "").unwrap();
        assert!(
            metrics.contains("\"host.guard.requests.shed\": 1"),
            "{metrics}"
        );
        roundtrip(&d.addr(), "POST", "/shutdown", "").unwrap();
        d.join();
    }

    #[test]
    fn expired_deadlines_fail_fast_with_a_typed_diagnostic() {
        let submit = "{\"kind\":\"sweep\",\"platforms\":[\"Rocket 1\"],\
                      \"kernels\":[\"Cca\"],\"scale\":1}";
        let (d, report) = Daemon::spawn(DaemonConfig {
            workers: 1,
            deadline: Some(Duration::from_millis(50)),
            ..DaemonConfig::default()
        })
        .unwrap();
        assert!(report.is_clean(), "{report}");
        // Hold the job's cell claim until well past the deadline; the
        // woken worker re-checks expiry and fails fast instead of
        // simulating work nobody is waiting for.
        let key = SvcRequest::parse(submit).unwrap().cells()[0].key.clone();
        lock(&d.shared.inflight).insert(key.clone());
        let (status, _) = roundtrip(&d.addr(), "POST", "/submit", submit).unwrap();
        assert_eq!(status, 202);
        std::thread::sleep(Duration::from_millis(80));
        lock(&d.shared.inflight).remove(&key);
        d.shared.inflight_cv.notify_all();
        let body = loop {
            let (status, body) = roundtrip(&d.addr(), "GET", "/fetch/job-1", "").unwrap();
            match status {
                500 => break body,
                202 => std::thread::sleep(Duration::from_millis(5)),
                other => panic!("an expired job must fail, got {other}: {body}"),
            }
        };
        assert!(body.contains("request deadline exceeded"), "{body}");
        let (_, metrics) = roundtrip(&d.addr(), "GET", "/metrics", "").unwrap();
        assert!(
            metrics.contains("\"host.guard.deadline.expired\": 1"),
            "{metrics}"
        );
        roundtrip(&d.addr(), "POST", "/shutdown", "").unwrap();
        d.join();
    }

    #[test]
    fn spawn_preflights_guard_misconfiguration_but_still_serves() {
        let (d, report) = Daemon::spawn(DaemonConfig {
            conn_workers: 0,
            deadline: Some(Duration::ZERO),
            ..DaemonConfig::default()
        })
        .unwrap();
        assert!(report.has_code("GD001"), "{report}");
        assert!(report.has_code("GD002"), "{report}");
        // Pool sizes clamp to one, so the degraded daemon still serves.
        let (status, _) = roundtrip(&d.addr(), "GET", "/metrics", "").unwrap();
        assert_eq!(status, 200);
        roundtrip(&d.addr(), "POST", "/shutdown", "").unwrap();
        d.join();
    }

    #[test]
    fn malformed_submit_rejects_without_burning_workers() {
        let d = daemon();
        let (status, body) =
            roundtrip(&d.addr(), "POST", "/submit", "{\"kind\":\"dance\"}").unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("SV000"), "{body}");
        let (_, metrics) = roundtrip(&d.addr(), "GET", "/metrics", "").unwrap();
        assert!(
            metrics.contains("\"host.svc.requests.rejected\": 1"),
            "{metrics}"
        );
        assert!(metrics.contains("\"host.svc.cells.total\": 0"), "{metrics}");
        roundtrip(&d.addr(), "POST", "/shutdown", "").unwrap();
        d.join();
    }
}

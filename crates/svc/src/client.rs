//! Thin client helpers over [`crate::proto::roundtrip`] — the calls
//! `bsim submit` / `bsim status` / `bsim fetch` and the lifecycle tests
//! make. Each returns `(http_status, body)` so callers decide policy.

use crate::proto::roundtrip;
use std::io;
use std::time::{Duration, Instant};

/// `POST /submit` with a request JSON body.
pub fn submit(addr: &str, body: &str) -> io::Result<(u16, String)> {
    roundtrip(addr, "POST", "/submit", body)
}

/// `GET /status/<job>`.
pub fn status(addr: &str, job: &str) -> io::Result<(u16, String)> {
    roundtrip(addr, "GET", &format!("/status/{job}"), "")
}

/// `GET /fetch/<job>`.
pub fn fetch(addr: &str, job: &str) -> io::Result<(u16, String)> {
    roundtrip(addr, "GET", &format!("/fetch/{job}"), "")
}

/// `GET /metrics` — every `host.svc.*` counter as JSON.
pub fn metrics(addr: &str) -> io::Result<(u16, String)> {
    roundtrip(addr, "GET", "/metrics", "")
}

/// `POST /shutdown` — drain, flush, stop.
pub fn shutdown(addr: &str) -> io::Result<(u16, String)> {
    roundtrip(addr, "POST", "/shutdown", "")
}

/// Extracts the `"job"` id from a 202 submit response.
pub fn job_id(submit_body: &str) -> Option<String> {
    let tree = serde_json::from_str(submit_body).ok()?;
    match &tree {
        serde::Value::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == "job")
            .and_then(|(_, v)| v.as_str().map(str::to_string)),
        _ => None,
    }
}

/// Polls `/fetch/<job>` until the job leaves the queue (HTTP != 202) or
/// the timeout lapses. Returns the final `(status, body)`.
pub fn wait(addr: &str, job: &str, timeout: Duration) -> io::Result<(u16, String)> {
    let deadline = Instant::now() + timeout;
    loop {
        let (status, body) = fetch(addr, job)?;
        if status != 202 {
            return Ok((status, body));
        }
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("job {job} still {body} after {timeout:?}"),
            ));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_id_parses_a_submit_response() {
        assert_eq!(
            job_id(r#"{"job":"job-3","cells":4,"state":"queued"}"#),
            Some("job-3".to_string())
        );
        assert_eq!(job_id("not json"), None);
        assert_eq!(job_id(r#"{"cells":4}"#), None);
    }
}

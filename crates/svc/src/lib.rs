//! # bsim-svc — simulation as a service
//!
//! The ROADMAP north-star in miniature: serve overlapping design-space
//! sweeps as fast as the host allows by never simulating the same cell
//! twice. `bsimd` (a [`Daemon`]) accepts figure/sweep/tune requests
//! over std-TCP HTTP-lite, preflights them through `bsim-check`,
//! decomposes them into **content-addressed cells** — keyed on a stable
//! hash of (canonicalized platform config × workload × seed ×
//! code/schema version, [`key`]) — and fans the misses across
//! `run_grid_resilient` workers while hits and identical in-flight
//! cells are served from the memoizing [`store::ResultStore`].
//!
//! Layering:
//!
//! | Module | Role |
//! |---|---|
//! | [`key`] | canonical config hashing → 16-hex cell keys |
//! | [`store`] | content-addressed result store (CkptStore-backed, quarantine on SV003/SV004) |
//! | [`proto`] | hand-rolled HTTP-lite framing (`curl`-compatible, no network deps) |
//! | [`request`] | wire shapes, SV000–SV002 preflight, cell decomposition |
//! | [`daemon`] | job queue, worker pool, exactly-once cell execution, `/shutdown` drain |
//! | [`client`] | one-call helpers for the CLI and tests |
//! | [`faults`] | the store-corruption row for the `bsim faults` matrix |
//!
//! See README.md "Simulation as a service" for the wire workflow and
//! DESIGN.md §12 for the architecture.

pub mod client;
pub mod daemon;
pub mod faults;
pub mod key;
pub mod proto;
pub mod request;
pub mod store;

pub use daemon::{Daemon, DaemonConfig, COUNTERS};
pub use key::{micro_cell_key, CODE_VERSION, STORE_SCHEMA};
pub use proto::WireTimeouts;
pub use request::SvcRequest;
pub use store::{scrub, ResultStore, ScrubReport};
